//! The [`Model`] abstraction: a learner with a flat parameter vector.
//!
//! Federated learning exchanges parameter vectors and parameter *deltas* between silos
//! and the server, and the per-user weighted clipping of ULDP-AVG operates directly on
//! those flat vectors. Every model therefore exposes its parameters as a single `&[f64]`
//! and computes the average loss and gradient of a mini-batch with respect to that flat
//! vector.

use crate::sample::Sample;

/// Identifier of a model architecture, used by dataset presets and the benchmark harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// Multinomial logistic regression (linear classifier with softmax).
    Linear,
    /// One-hidden-layer perceptron classifier.
    Mlp,
    /// Cox proportional-hazards regression.
    Cox,
}

/// A trainable model with a flat parameter vector.
pub trait Model: Send + Sync {
    /// Read access to the flat parameter vector.
    fn parameters(&self) -> &[f64];

    /// Mutable access to the flat parameter vector.
    fn parameters_mut(&mut self) -> &mut [f64];

    /// Number of trainable parameters.
    fn num_parameters(&self) -> usize {
        self.parameters().len()
    }

    /// Replaces the parameters with `params`.
    ///
    /// # Panics
    /// Panics if the length does not match [`Model::num_parameters`].
    fn set_parameters(&mut self, params: &[f64]) {
        let dst = self.parameters_mut();
        assert_eq!(dst.len(), params.len(), "parameter length mismatch");
        dst.copy_from_slice(params);
    }

    /// Average loss and gradient (w.r.t. the flat parameters) over a mini-batch.
    ///
    /// Returns `(loss, gradient)` where the gradient has length
    /// [`Model::num_parameters`]. The batch must be non-empty.
    fn loss_and_gradient(&self, batch: &[&Sample]) -> (f64, Vec<f64>);

    /// Average loss over a mini-batch (no gradient).
    fn loss(&self, batch: &[&Sample]) -> f64 {
        self.loss_and_gradient(batch).0
    }

    /// Raw scores for one feature vector: class logits for classifiers, the scalar risk
    /// score for survival models.
    fn scores(&self, features: &[f64]) -> Vec<f64>;

    /// The architecture identifier.
    fn kind(&self) -> ModelKind;

    /// Clones the model into a boxed trait object (models are small, so this is cheap).
    fn clone_model(&self) -> Box<dyn Model>;
}

impl Clone for Box<dyn Model> {
    fn clone(&self) -> Self {
        self.clone_model()
    }
}

/// Numerically estimates the gradient of `model` at its current parameters by central
/// finite differences. Only used by tests to validate analytic gradients.
pub fn finite_difference_gradient(model: &mut dyn Model, batch: &[&Sample], step: f64) -> Vec<f64> {
    let original = model.parameters().to_vec();
    let n = original.len();
    let mut grad = vec![0.0; n];
    for i in 0..n {
        let mut plus = original.clone();
        plus[i] += step;
        model.set_parameters(&plus);
        let loss_plus = model.loss(batch);

        let mut minus = original.clone();
        minus[i] -= step;
        model.set_parameters(&minus);
        let loss_minus = model.loss(batch);

        grad[i] = (loss_plus - loss_minus) / (2.0 * step);
    }
    model.set_parameters(&original);
    grad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearClassifier;

    #[test]
    fn set_parameters_roundtrip() {
        let mut model = LinearClassifier::new(3, 2);
        let params: Vec<f64> = (0..model.num_parameters()).map(|i| i as f64 * 0.1).collect();
        model.set_parameters(&params);
        assert_eq!(model.parameters(), params.as_slice());
    }

    #[test]
    #[should_panic(expected = "parameter length mismatch")]
    fn set_parameters_rejects_wrong_length() {
        let mut model = LinearClassifier::new(3, 2);
        model.set_parameters(&[1.0, 2.0]);
    }

    #[test]
    fn boxed_clone_preserves_parameters() {
        let mut model = LinearClassifier::new(2, 2);
        model.parameters_mut()[0] = 7.5;
        let boxed: Box<dyn Model> = Box::new(model);
        let cloned = boxed.clone();
        assert_eq!(cloned.parameters()[0], 7.5);
        assert_eq!(cloned.kind(), ModelKind::Linear);
    }
}
