//! Multinomial logistic regression (a linear classifier with softmax cross-entropy).
//!
//! This is the model scale used by the paper for Creditcard (≈4k parameters with the
//! engineered feature set) and HeartDisease (<100 parameters): a single linear layer with
//! a bias per class.

use crate::model::{Model, ModelKind};
use crate::sample::{Sample, Target};
use crate::tensor::{matvec, softmax};
use rand::Rng;

/// Parameters are stored as `[W (classes × dim, row-major) | b (classes)]`.
#[derive(Clone, Debug)]
pub struct LinearClassifier {
    dim: usize,
    classes: usize,
    params: Vec<f64>,
}

impl LinearClassifier {
    /// Creates a zero-initialised classifier for `dim`-dimensional inputs and `classes`
    /// output classes.
    pub fn new(dim: usize, classes: usize) -> Self {
        assert!(classes >= 2, "a classifier needs at least two classes");
        assert!(dim >= 1, "at least one input feature is required");
        LinearClassifier { dim, classes, params: vec![0.0; classes * dim + classes] }
    }

    /// Creates a classifier with small random (Gaussian, std `0.01`) initial weights.
    pub fn new_random<R: Rng + ?Sized>(dim: usize, classes: usize, rng: &mut R) -> Self {
        let mut model = Self::new(dim, classes);
        for p in model.params.iter_mut() {
            *p = crate::rng::gaussian(rng) * 0.01;
        }
        model
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    fn logits(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(features.len(), self.dim, "feature dimensionality mismatch");
        let weights = &self.params[..self.classes * self.dim];
        let bias = &self.params[self.classes * self.dim..];
        let mut out = matvec(weights, self.classes, self.dim, features);
        for (o, b) in out.iter_mut().zip(bias.iter()) {
            *o += b;
        }
        out
    }

    /// Predicted class (argmax of the logits).
    pub fn predict(&self, features: &[f64]) -> usize {
        let logits = self.logits(features);
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

impl Model for LinearClassifier {
    fn parameters(&self) -> &[f64] {
        &self.params
    }

    fn parameters_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    fn loss_and_gradient(&self, batch: &[&Sample]) -> (f64, Vec<f64>) {
        assert!(!batch.is_empty(), "mini-batch must be non-empty");
        let mut grad = vec![0.0; self.params.len()];
        let mut total_loss = 0.0;
        let bias_offset = self.classes * self.dim;
        for sample in batch {
            let label = match sample.target {
                Target::Class(c) => c,
                _ => panic!("LinearClassifier requires classification targets"),
            };
            assert!(label < self.classes, "label {label} out of range");
            let logits = self.logits(&sample.features);
            let probs = softmax(&logits);
            total_loss += -(probs[label].max(1e-300)).ln();
            for c in 0..self.classes {
                let err = probs[c] - if c == label { 1.0 } else { 0.0 };
                let row = &mut grad[c * self.dim..(c + 1) * self.dim];
                for (g, &x) in row.iter_mut().zip(sample.features.iter()) {
                    *g += err * x;
                }
                grad[bias_offset + c] += err;
            }
        }
        let scale = 1.0 / batch.len() as f64;
        for g in grad.iter_mut() {
            *g *= scale;
        }
        (total_loss * scale, grad)
    }

    fn scores(&self, features: &[f64]) -> Vec<f64> {
        self.logits(features)
    }

    fn kind(&self) -> ModelKind {
        ModelKind::Linear
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::finite_difference_gradient;
    use crate::optimizer::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_free_dataset() -> Vec<Sample> {
        // Linearly separable 2-class data.
        vec![
            Sample::classification(vec![2.0, 1.0], 1),
            Sample::classification(vec![1.5, 2.0], 1),
            Sample::classification(vec![2.5, 1.5], 1),
            Sample::classification(vec![-2.0, -1.0], 0),
            Sample::classification(vec![-1.5, -2.0], 0),
            Sample::classification(vec![-2.5, -0.5], 0),
        ]
    }

    #[test]
    fn parameter_count() {
        let m = LinearClassifier::new(30, 2);
        assert_eq!(m.num_parameters(), 30 * 2 + 2);
        assert_eq!(m.dim(), 30);
        assert_eq!(m.classes(), 2);
    }

    #[test]
    fn uniform_loss_at_initialisation() {
        // With zero weights every class is equally likely: loss = ln(classes).
        let m = LinearClassifier::new(4, 3);
        let s = Sample::classification(vec![1.0, -1.0, 0.5, 2.0], 1);
        let loss = m.loss(&[&s]);
        assert!((loss - (3.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = LinearClassifier::new_random(3, 3, &mut rng);
        let samples = [
            Sample::classification(vec![0.5, -1.0, 2.0], 0),
            Sample::classification(vec![1.5, 0.3, -0.7], 2),
        ];
        let batch: Vec<&Sample> = samples.iter().collect();
        let (_, analytic) = m.loss_and_gradient(&batch);
        let numeric = finite_difference_gradient(&mut m, &batch, 1e-6);
        for (a, n) in analytic.iter().zip(numeric.iter()) {
            assert!((a - n).abs() < 1e-6, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn sgd_learns_separable_data() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = LinearClassifier::new_random(2, 2, &mut rng);
        let data = xor_free_dataset();
        let batch: Vec<&Sample> = data.iter().collect();
        let sgd = Sgd::new(0.5);
        let initial_loss = m.loss(&batch);
        for _ in 0..200 {
            let (_, grad) = m.loss_and_gradient(&batch);
            sgd.step(m.parameters_mut(), &grad);
        }
        let final_loss = m.loss(&batch);
        assert!(final_loss < initial_loss * 0.2, "{initial_loss} -> {final_loss}");
        for s in &data {
            assert_eq!(m.predict(&s.features), s.target.class().unwrap());
        }
    }

    #[test]
    #[should_panic(expected = "classification targets")]
    fn rejects_survival_targets() {
        let m = LinearClassifier::new(2, 2);
        let s = Sample::survival(vec![1.0, 2.0], 5.0, true);
        let _ = m.loss(&[&s]);
    }
}
