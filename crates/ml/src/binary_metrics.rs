//! Additional binary-classification metrics for imbalanced tasks.
//!
//! The Creditcard task is heavily imbalanced, so plain accuracy can look good even for a
//! trivial majority-class predictor. These metrics (precision, recall, F1 and ROC-AUC on
//! the positive class) make the utility comparison between methods more informative; the
//! figure binaries report them alongside accuracy.

use crate::model::Model;
use crate::sample::{Sample, Target};
use crate::tensor::softmax;

/// Confusion-matrix counts for the positive class of a binary task.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConfusionCounts {
    /// Correctly predicted positives.
    pub true_positives: usize,
    /// Negatives predicted as positive.
    pub false_positives: usize,
    /// Correctly predicted negatives.
    pub true_negatives: usize,
    /// Positives predicted as negative.
    pub false_negatives: usize,
}

impl ConfusionCounts {
    /// Precision of the positive class (`tp / (tp + fp)`, 0 when undefined).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall of the positive class (`tp / (tp + fn)`, 0 when undefined).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall, 0 when undefined).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Computes the confusion counts of a binary classifier (class 1 is "positive").
pub fn confusion_counts(model: &dyn Model, samples: &[Sample]) -> ConfusionCounts {
    let mut counts = ConfusionCounts::default();
    for s in samples {
        let Target::Class(label) = s.target else { continue };
        let scores = model.scores(&s.features);
        let pred = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        match (label, pred) {
            (1, 1) => counts.true_positives += 1,
            (0, 1) => counts.false_positives += 1,
            (0, 0) => counts.true_negatives += 1,
            (1, 0) => counts.false_negatives += 1,
            _ => {} // metrics are defined for binary labels only
        }
    }
    counts
}

/// The probability assigned to the positive class (softmax of a two-class score vector,
/// or the raw score for single-output models).
fn positive_probability(model: &dyn Model, features: &[f64]) -> f64 {
    let scores = model.scores(features);
    if scores.len() >= 2 {
        softmax(&scores)[1]
    } else {
        scores[0]
    }
}

/// Area under the ROC curve for the positive class, computed by the rank-sum
/// (Mann–Whitney U) formulation; ties count half. Returns 0.5 when one class is absent.
pub fn roc_auc(model: &dyn Model, samples: &[Sample]) -> f64 {
    let mut positives = Vec::new();
    let mut negatives = Vec::new();
    for s in samples {
        if let Target::Class(label) = s.target {
            let score = positive_probability(model, &s.features);
            if label == 1 {
                positives.push(score);
            } else if label == 0 {
                negatives.push(score);
            }
        }
    }
    if positives.is_empty() || negatives.is_empty() {
        return 0.5;
    }
    let mut favourable = 0.0f64;
    for &p in &positives {
        for &n in &negatives {
            if p > n {
                favourable += 1.0;
            } else if (p - n).abs() < 1e-15 {
                favourable += 0.5;
            }
        }
    }
    favourable / (positives.len() as f64 * negatives.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearClassifier;
    use crate::model::Model;

    fn positive_scorer() -> LinearClassifier {
        // class-1 logit grows with the single feature
        let mut m = LinearClassifier::new(1, 2);
        m.set_parameters(&[-1.0, 1.0, 0.0, 0.0]);
        m
    }

    #[test]
    fn confusion_counts_and_derived_metrics() {
        let m = positive_scorer();
        let samples = vec![
            Sample::classification(vec![2.0], 1),  // tp
            Sample::classification(vec![1.5], 1),  // tp
            Sample::classification(vec![-1.0], 1), // fn
            Sample::classification(vec![-2.0], 0), // tn
            Sample::classification(vec![3.0], 0),  // fp
        ];
        let c = confusion_counts(&m, &samples);
        assert_eq!(
            c,
            ConfusionCounts {
                true_positives: 2,
                false_positives: 1,
                true_negatives: 1,
                false_negatives: 1
            }
        );
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_counts_have_zero_scores() {
        let c = ConfusionCounts::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn auc_perfect_and_reversed() {
        let m = positive_scorer();
        let good = vec![
            Sample::classification(vec![2.0], 1),
            Sample::classification(vec![1.0], 1),
            Sample::classification(vec![-1.0], 0),
            Sample::classification(vec![-2.0], 0),
        ];
        assert!((roc_auc(&m, &good) - 1.0).abs() < 1e-12);
        let reversed =
            vec![Sample::classification(vec![-2.0], 1), Sample::classification(vec![2.0], 0)];
        assert!(roc_auc(&m, &reversed) < 1e-12);
    }

    #[test]
    fn auc_single_class_is_half() {
        let m = positive_scorer();
        let samples = vec![Sample::classification(vec![1.0], 1)];
        assert_eq!(roc_auc(&m, &samples), 0.5);
    }
}
