//! One-hidden-layer perceptron classifier.
//!
//! This covers the ≈20k-parameter MNIST-scale model of the paper (a small CNN in the
//! original; here a dense network of equivalent capacity, which exercises exactly the same
//! federated-learning and privacy machinery — what matters to Uldp-FL is the flat
//! parameter vector and its per-user clipped deltas, not the layer topology).

use crate::model::{Model, ModelKind};
use crate::sample::{Sample, Target};
use crate::tensor::softmax;
use rand::Rng;

/// A dense network `input → hidden (ReLU) → classes (softmax)`.
///
/// Parameter layout: `[W1 (hidden × input) | b1 (hidden) | W2 (classes × hidden) | b2 (classes)]`.
#[derive(Clone, Debug)]
pub struct MlpClassifier {
    input: usize,
    hidden: usize,
    classes: usize,
    params: Vec<f64>,
}

impl MlpClassifier {
    /// Creates an MLP with Xavier-style random initial weights.
    pub fn new<R: Rng + ?Sized>(input: usize, hidden: usize, classes: usize, rng: &mut R) -> Self {
        assert!(input >= 1 && hidden >= 1 && classes >= 2);
        let num_params = hidden * input + hidden + classes * hidden + classes;
        let mut params = vec![0.0; num_params];
        let w1_scale = (2.0 / (input + hidden) as f64).sqrt();
        let w2_scale = (2.0 / (hidden + classes) as f64).sqrt();
        for p in params[..hidden * input].iter_mut() {
            *p = crate::rng::gaussian(rng) * w1_scale;
        }
        let w2_start = hidden * input + hidden;
        for p in params[w2_start..w2_start + classes * hidden].iter_mut() {
            *p = crate::rng::gaussian(rng) * w2_scale;
        }
        MlpClassifier { input, hidden, classes, params }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    fn slices(&self) -> (&[f64], &[f64], &[f64], &[f64]) {
        let w1_len = self.hidden * self.input;
        let b1_len = self.hidden;
        let w2_len = self.classes * self.hidden;
        let (w1, rest) = self.params.split_at(w1_len);
        let (b1, rest) = rest.split_at(b1_len);
        let (w2, b2) = rest.split_at(w2_len);
        (w1, b1, w2, b2)
    }

    /// Forward pass returning (hidden pre-activations, hidden activations, logits).
    fn forward(&self, features: &[f64]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        assert_eq!(features.len(), self.input, "feature dimensionality mismatch");
        let (w1, b1, w2, b2) = self.slices();
        let mut pre = vec![0.0; self.hidden];
        for h in 0..self.hidden {
            let row = &w1[h * self.input..(h + 1) * self.input];
            pre[h] = row.iter().zip(features.iter()).map(|(w, x)| w * x).sum::<f64>() + b1[h];
        }
        let act: Vec<f64> = pre.iter().map(|&v| v.max(0.0)).collect();
        let mut logits = vec![0.0; self.classes];
        for c in 0..self.classes {
            let row = &w2[c * self.hidden..(c + 1) * self.hidden];
            logits[c] = row.iter().zip(act.iter()).map(|(w, a)| w * a).sum::<f64>() + b2[c];
        }
        (pre, act, logits)
    }

    /// Predicted class (argmax of the logits).
    pub fn predict(&self, features: &[f64]) -> usize {
        let (_, _, logits) = self.forward(features);
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

impl Model for MlpClassifier {
    fn parameters(&self) -> &[f64] {
        &self.params
    }

    fn parameters_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    fn loss_and_gradient(&self, batch: &[&Sample]) -> (f64, Vec<f64>) {
        assert!(!batch.is_empty(), "mini-batch must be non-empty");
        let w1_len = self.hidden * self.input;
        let b1_len = self.hidden;
        let w2_len = self.classes * self.hidden;
        let w2_start = w1_len + b1_len;
        let b2_start = w2_start + w2_len;
        let (_, _, w2, _) = self.slices();
        let w2 = w2.to_vec();

        let mut grad = vec![0.0; self.params.len()];
        let mut total_loss = 0.0;
        for sample in batch {
            let label = match sample.target {
                Target::Class(c) => c,
                _ => panic!("MlpClassifier requires classification targets"),
            };
            assert!(label < self.classes, "label {label} out of range");
            let (pre, act, logits) = self.forward(&sample.features);
            let probs = softmax(&logits);
            total_loss += -(probs[label].max(1e-300)).ln();

            // dL/dlogits
            let mut dlogits = probs;
            dlogits[label] -= 1.0;

            // Gradients for W2 and b2.
            for c in 0..self.classes {
                let row = &mut grad[w2_start + c * self.hidden..w2_start + (c + 1) * self.hidden];
                for (g, &a) in row.iter_mut().zip(act.iter()) {
                    *g += dlogits[c] * a;
                }
                grad[b2_start + c] += dlogits[c];
            }

            // Back-propagate into the hidden layer.
            let mut dact = vec![0.0; self.hidden];
            for c in 0..self.classes {
                let row = &w2[c * self.hidden..(c + 1) * self.hidden];
                for (da, &w) in dact.iter_mut().zip(row.iter()) {
                    *da += dlogits[c] * w;
                }
            }
            // ReLU derivative.
            for (da, &p) in dact.iter_mut().zip(pre.iter()) {
                if p <= 0.0 {
                    *da = 0.0;
                }
            }
            // Gradients for W1 and b1.
            for h in 0..self.hidden {
                if dact[h] == 0.0 {
                    continue;
                }
                let row = &mut grad[h * self.input..(h + 1) * self.input];
                for (g, &x) in row.iter_mut().zip(sample.features.iter()) {
                    *g += dact[h] * x;
                }
                grad[w1_len + h] += dact[h];
            }
        }
        let scale = 1.0 / batch.len() as f64;
        for g in grad.iter_mut() {
            *g *= scale;
        }
        (total_loss * scale, grad)
    }

    fn scores(&self, features: &[f64]) -> Vec<f64> {
        self.forward(features).2
    }

    fn kind(&self) -> ModelKind {
        ModelKind::Mlp
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::finite_difference_gradient;
    use crate::optimizer::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parameter_count_matches_layout() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = MlpClassifier::new(784, 24, 10, &mut rng);
        assert_eq!(m.num_parameters(), 784 * 24 + 24 + 24 * 10 + 10);
        // roughly the 20k-parameter MNIST model of the paper
        assert!(m.num_parameters() > 18_000 && m.num_parameters() < 22_000);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = MlpClassifier::new(4, 5, 3, &mut rng);
        let samples = [
            Sample::classification(vec![0.5, -1.0, 2.0, 0.1], 0),
            Sample::classification(vec![1.5, 0.3, -0.7, -1.2], 2),
            Sample::classification(vec![-0.5, 0.9, 0.2, 0.8], 1),
        ];
        let batch: Vec<&Sample> = samples.iter().collect();
        let (_, analytic) = m.loss_and_gradient(&batch);
        let numeric = finite_difference_gradient(&mut m, &batch, 1e-6);
        for (i, (a, n)) in analytic.iter().zip(numeric.iter()).enumerate() {
            assert!((a - n).abs() < 1e-5, "param {i}: analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn learns_nonlinear_decision_boundary() {
        // XOR-style data that a linear model cannot fit.
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = MlpClassifier::new(2, 16, 2, &mut rng);
        let data = vec![
            Sample::classification(vec![1.0, 1.0], 0),
            Sample::classification(vec![-1.0, -1.0], 0),
            Sample::classification(vec![1.0, -1.0], 1),
            Sample::classification(vec![-1.0, 1.0], 1),
        ];
        let batch: Vec<&Sample> = data.iter().collect();
        let sgd = Sgd::new(0.3);
        for _ in 0..800 {
            let (_, grad) = m.loss_and_gradient(&batch);
            sgd.step(m.parameters_mut(), &grad);
        }
        for s in &data {
            assert_eq!(m.predict(&s.features), s.target.class().unwrap());
        }
    }

    #[test]
    fn scores_have_class_dimension() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = MlpClassifier::new(3, 4, 5, &mut rng);
        assert_eq!(m.scores(&[0.1, 0.2, 0.3]).len(), 5);
    }
}
