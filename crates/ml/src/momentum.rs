//! SGD with (classical) momentum.
//!
//! The paper's algorithms use plain SGD, but its convergence discussion (Remark 2, based
//! on Yang et al.'s two-sided-learning-rate analysis) also applies to momentum-based local
//! optimisers. This optimiser is provided for the ablation benchmarks that check whether
//! the qualitative method ranking is robust to the local optimiser choice.

/// SGD with momentum: `v ← μ·v + g`, `θ ← θ − lr·v`.
#[derive(Clone, Debug)]
pub struct MomentumSgd {
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient `μ ∈ [0, 1)`.
    pub momentum: f64,
    velocity: Vec<f64>,
}

impl MomentumSgd {
    /// Creates an optimiser for a parameter vector of length `dim`.
    pub fn new(learning_rate: f64, momentum: f64, dim: usize) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        MomentumSgd { learning_rate, momentum, velocity: vec![0.0; dim] }
    }

    /// Applies one update step in place.
    pub fn step(&mut self, params: &mut [f64], gradient: &[f64]) {
        assert_eq!(params.len(), self.velocity.len(), "parameter length mismatch");
        assert_eq!(params.len(), gradient.len(), "gradient length mismatch");
        for ((v, p), g) in self.velocity.iter_mut().zip(params.iter_mut()).zip(gradient.iter()) {
            *v = self.momentum * *v + g;
            *p -= self.learning_rate * *v;
        }
    }

    /// Resets the accumulated velocity (used when the global model is replaced between
    /// federated rounds).
    pub fn reset(&mut self) {
        self.velocity.iter_mut().for_each(|v| *v = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_momentum_matches_plain_sgd() {
        let mut opt = MomentumSgd::new(0.1, 0.0, 2);
        let mut params = vec![1.0, -1.0];
        opt.step(&mut params, &[10.0, -10.0]);
        assert_eq!(params, vec![0.0, 0.0]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = MomentumSgd::new(0.1, 0.9, 1);
        let mut params = vec![0.0];
        opt.step(&mut params, &[1.0]);
        let after_first = params[0];
        opt.step(&mut params, &[1.0]);
        let second_step = params[0] - after_first;
        // second step is larger in magnitude because velocity accumulated
        assert!(second_step.abs() > after_first.abs());
    }

    #[test]
    fn converges_on_quadratic_faster_than_without() {
        let run = |mu: f64| {
            let mut opt = MomentumSgd::new(0.05, mu, 1);
            let mut x = vec![10.0];
            for _ in 0..50 {
                let g = vec![2.0 * (x[0] - 3.0)];
                opt.step(&mut x, &g);
            }
            (x[0] - 3.0).abs()
        };
        assert!(run(0.8) < run(0.0));
    }

    #[test]
    fn reset_clears_velocity() {
        let mut opt = MomentumSgd::new(0.1, 0.9, 1);
        let mut params = vec![0.0];
        opt.step(&mut params, &[5.0]);
        opt.reset();
        let before = params[0];
        opt.step(&mut params, &[0.0]);
        // with zero gradient and zero velocity nothing moves
        assert_eq!(params[0], before);
    }

    #[test]
    #[should_panic(expected = "momentum must be in [0, 1)")]
    fn rejects_invalid_momentum() {
        let _ = MomentumSgd::new(0.1, 1.0, 1);
    }
}
