//! Cox proportional-hazards regression with the partial-likelihood (Cox) loss.
//!
//! TcgaBrca in the paper is a survival-analysis task evaluated with the concordance index
//! and trained with the Cox loss, which needs at least two records per batch to form a
//! risk set — the reason the paper requires ≥ 2 records per (silo, user) pair for
//! per-user clipping on that dataset.

use crate::model::{Model, ModelKind};
use crate::sample::{Sample, Target};
use crate::tensor::dot;
use rand::Rng;

/// Linear Cox model: risk score `η_i = x_i · β` (no intercept; the baseline hazard is
/// unspecified in the partial likelihood).
#[derive(Clone, Debug)]
pub struct CoxRegression {
    dim: usize,
    params: Vec<f64>,
}

impl CoxRegression {
    /// Creates a zero-initialised Cox model for `dim`-dimensional covariates.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1);
        CoxRegression { dim, params: vec![0.0; dim] }
    }

    /// Creates a Cox model with small random initial weights.
    pub fn new_random<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Self {
        let mut model = Self::new(dim);
        for p in model.params.iter_mut() {
            *p = crate::rng::gaussian(rng) * 0.01;
        }
        model
    }

    /// Covariate dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The scalar risk score `x · β` for one record.
    pub fn risk_score(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.dim, "feature dimensionality mismatch");
        dot(features, &self.params)
    }
}

impl Model for CoxRegression {
    fn parameters(&self) -> &[f64] {
        &self.params
    }

    fn parameters_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    fn loss_and_gradient(&self, batch: &[&Sample]) -> (f64, Vec<f64>) {
        assert!(!batch.is_empty(), "mini-batch must be non-empty");
        // Negative partial log-likelihood using Breslow's handling of ties:
        //   L(β) = − Σ_{i: event} [ η_i − log Σ_{j: t_j ≥ t_i} exp(η_j) ] / #events
        let n = batch.len();
        let mut times = Vec::with_capacity(n);
        let mut events = Vec::with_capacity(n);
        for s in batch {
            match s.target {
                Target::Survival { time, event } => {
                    times.push(time);
                    events.push(event);
                }
                _ => panic!("CoxRegression requires survival targets"),
            }
        }
        let etas: Vec<f64> = batch.iter().map(|s| self.risk_score(&s.features)).collect();
        let max_eta = etas.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exp_etas: Vec<f64> = etas.iter().map(|&e| (e - max_eta).exp()).collect();

        let num_events = events.iter().filter(|&&e| e).count();
        if num_events == 0 {
            // Fully censored batch: the partial likelihood is constant, gradient is zero.
            return (0.0, vec![0.0; self.dim]);
        }

        let mut loss = 0.0;
        let mut grad = vec![0.0; self.dim];
        for i in 0..n {
            if !events[i] {
                continue;
            }
            // Risk set: records still "at risk" at time t_i.
            let risk: Vec<usize> = (0..n).filter(|&j| times[j] >= times[i]).collect();
            let denom: f64 = risk.iter().map(|&j| exp_etas[j]).sum();
            loss += -(etas[i] - max_eta - denom.ln());
            // Gradient: −x_i + Σ_{j∈risk} w_j x_j with w_j = exp(η_j)/denom.
            for (g, &x) in grad.iter_mut().zip(batch[i].features.iter()) {
                *g -= x;
            }
            for &j in &risk {
                let w = exp_etas[j] / denom;
                for (g, &x) in grad.iter_mut().zip(batch[j].features.iter()) {
                    *g += w * x;
                }
            }
        }
        let scale = 1.0 / num_events as f64;
        for g in grad.iter_mut() {
            *g *= scale;
        }
        (loss * scale, grad)
    }

    fn scores(&self, features: &[f64]) -> Vec<f64> {
        vec![self.risk_score(features)]
    }

    fn kind(&self) -> ModelKind {
        ModelKind::Cox
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::concordance_index;
    use crate::model::finite_difference_gradient;
    use crate::optimizer::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn synthetic_survival(n: usize, seed: u64) -> Vec<Sample> {
        // Higher x[0] means higher risk (shorter survival time).
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x0 = crate::rng::gaussian(&mut rng);
                let x1 = crate::rng::gaussian(&mut rng);
                let hazard = (1.2 * x0).exp();
                let time =
                    -(-rand::Rng::gen_range(&mut rng, 0.0001f64..1.0)).ln_1p() / hazard + 0.01;
                let event = rand::Rng::gen_bool(&mut rng, 0.8);
                Sample::survival(vec![x0, x1], time, event)
            })
            .collect()
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let data = synthetic_survival(12, 1);
        let batch: Vec<&Sample> = data.iter().collect();
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = CoxRegression::new_random(2, &mut rng);
        let (_, analytic) = m.loss_and_gradient(&batch);
        let numeric = finite_difference_gradient(&mut m, &batch, 1e-6);
        for (a, n) in analytic.iter().zip(numeric.iter()) {
            assert!((a - n).abs() < 1e-5, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn fully_censored_batch_has_zero_gradient() {
        let data = [
            Sample::survival(vec![1.0, 0.0], 3.0, false),
            Sample::survival(vec![0.0, 1.0], 5.0, false),
        ];
        let batch: Vec<&Sample> = data.iter().collect();
        let m = CoxRegression::new(2);
        let (loss, grad) = m.loss_and_gradient(&batch);
        assert_eq!(loss, 0.0);
        assert!(grad.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn training_improves_concordance() {
        let data = synthetic_survival(120, 3);
        let batch: Vec<&Sample> = data.iter().collect();
        let mut m = CoxRegression::new(2);
        let initial_ci = concordance_index(&m, &data);
        let sgd = Sgd::new(0.1);
        for _ in 0..300 {
            let (_, grad) = m.loss_and_gradient(&batch);
            sgd.step(m.parameters_mut(), &grad);
        }
        let final_ci = concordance_index(&m, &data);
        assert!(final_ci > initial_ci.max(0.6), "{initial_ci} -> {final_ci}");
    }

    #[test]
    #[should_panic(expected = "survival targets")]
    fn rejects_classification_targets() {
        let m = CoxRegression::new(2);
        let s = Sample::classification(vec![1.0, 2.0], 0);
        let _ = m.loss(&[&s]);
    }
}
