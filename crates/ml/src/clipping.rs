//! L2-norm clipping of gradients and model deltas.
//!
//! Clipping is the sensitivity-bounding primitive behind every algorithm in the paper:
//! DP-SGD clips per-record gradients, ULDP-NAIVE clips the per-silo model delta, and
//! ULDP-AVG clips the per-(user, silo) model delta before applying the clipping weight
//! `w_{s,u}` (Algorithm 3, line 16).

/// Euclidean (L2) norm of a vector.
pub fn l2_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Scales `v` in place so that its L2 norm is at most `clip_bound`:
/// `v ← v · min(1, C / ‖v‖₂)`.
///
/// Vectors already inside the ball are left untouched; the zero vector stays zero.
pub fn clip_to_norm(v: &mut [f64], clip_bound: f64) {
    assert!(clip_bound > 0.0, "clipping bound must be positive");
    let norm = l2_norm(v);
    if norm > clip_bound {
        let scale = clip_bound / norm;
        for x in v.iter_mut() {
            *x *= scale;
        }
    }
}

/// Returns a clipped copy of `v` (see [`clip_to_norm`]).
pub fn clipped(v: &[f64], clip_bound: f64) -> Vec<f64> {
    let mut out = v.to_vec();
    clip_to_norm(&mut out, clip_bound);
    out
}

/// The clipping factor `min(1, C / ‖v‖₂)` without modifying the vector.
pub fn clip_factor(v: &[f64], clip_bound: f64) -> f64 {
    assert!(clip_bound > 0.0, "clipping bound must be positive");
    let norm = l2_norm(v);
    if norm > clip_bound {
        clip_bound / norm
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_basic() {
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    fn clipping_preserves_direction() {
        let v = vec![3.0, 4.0];
        let c = clipped(&v, 1.0);
        assert!((l2_norm(&c) - 1.0).abs() < 1e-12);
        // direction preserved: c is parallel to v
        assert!((c[0] * v[1] - c[1] * v[0]).abs() < 1e-12);
    }

    #[test]
    fn vectors_inside_ball_unchanged() {
        let v = vec![0.1, 0.2];
        assert_eq!(clipped(&v, 1.0), v);
        assert_eq!(clip_factor(&v, 1.0), 1.0);
    }

    #[test]
    fn zero_vector_stays_zero() {
        let v = vec![0.0; 5];
        assert_eq!(clipped(&v, 0.5), v);
    }

    #[test]
    fn clip_factor_matches_clip() {
        let v = vec![6.0, 8.0];
        let f = clip_factor(&v, 5.0);
        assert!((f - 0.5).abs() < 1e-12);
        let c = clipped(&v, 5.0);
        assert!((c[0] - 3.0).abs() < 1e-12 && (c[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "clipping bound must be positive")]
    fn rejects_non_positive_bound() {
        clipped(&[1.0], 0.0);
    }
}
