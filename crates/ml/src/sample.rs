//! The record schema shared between the ML substrate and the federated datasets.

use serde::{Deserialize, Serialize};

/// The supervised target of a record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Target {
    /// A class label for classification tasks (Creditcard, MNIST, HeartDisease).
    Class(usize),
    /// A survival target for the Cox model (TcgaBrca): observed time and event indicator.
    Survival {
        /// Time to event or censoring.
        time: f64,
        /// `true` if the event was observed, `false` if the record is censored.
        event: bool,
    },
}

impl Target {
    /// The class label, if this is a classification target.
    pub fn class(&self) -> Option<usize> {
        match self {
            Target::Class(c) => Some(*c),
            _ => None,
        }
    }

    /// The survival pair, if this is a survival target.
    pub fn survival(&self) -> Option<(f64, bool)> {
        match self {
            Target::Survival { time, event } => Some((*time, *event)),
            _ => None,
        }
    }
}

/// One training or evaluation record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Dense feature vector.
    pub features: Vec<f64>,
    /// Supervised target.
    pub target: Target,
}

impl Sample {
    /// Creates a classification record.
    pub fn classification(features: Vec<f64>, label: usize) -> Self {
        Sample { features, target: Target::Class(label) }
    }

    /// Creates a survival record.
    pub fn survival(features: Vec<f64>, time: f64, event: bool) -> Self {
        Sample { features, target: Target::Survival { time, event } }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let c = Sample::classification(vec![1.0, 2.0], 3);
        assert_eq!(c.dim(), 2);
        assert_eq!(c.target.class(), Some(3));
        assert_eq!(c.target.survival(), None);

        let s = Sample::survival(vec![0.5], 12.0, true);
        assert_eq!(s.target.survival(), Some((12.0, true)));
        assert_eq!(s.target.class(), None);
    }
}
