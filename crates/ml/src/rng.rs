//! Gaussian sampling (Box–Muller) used for DP noise and synthetic data generation.
//!
//! `rand` only ships uniform primitives in the dependency set allowed for this workspace,
//! so the normal distribution is implemented here with the Box–Muller transform.

use rand::Rng;

/// One standard normal sample (mean 0, standard deviation 1).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller: u1 in (0, 1], u2 in [0, 1).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A vector of `len` i.i.d. normal samples with the given standard deviation.
pub fn gaussian_vector<R: Rng + ?Sized>(rng: &mut R, std_dev: f64, len: usize) -> Vec<f64> {
    assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    (0..len).map(|_| gaussian(rng) * std_dev).collect()
}

/// A sample from a zipf-like distribution over `{1, ..., n}` with exponent `alpha`.
///
/// Used by the dataset allocation schemes: the paper assigns the number of records per
/// user (and the silo chosen for each record) with Zipf distributions of exponent 0.5 and
/// 2.0 respectively.
pub fn zipf<R: Rng + ?Sized>(rng: &mut R, n: usize, alpha: f64) -> usize {
    assert!(n >= 1);
    // Inverse-CDF sampling over the normalised finite Zipf pmf.
    let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-alpha)).collect();
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return i + 1;
        }
        u -= w;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn gaussian_vector_scales_std() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = gaussian_vector(&mut rng, 5.0, 100_000);
        let var = v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64;
        assert!((var - 25.0).abs() < 1.0, "var = {var}");
        assert!(gaussian_vector(&mut rng, 0.0, 10).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn zipf_prefers_small_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[zipf(&mut rng, 10, 2.0) - 1] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[4]);
        // every value stays in range (implicitly checked by indexing)
    }

    #[test]
    fn zipf_alpha_zero_is_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0usize; 5];
        for _ in 0..50_000 {
            counts[zipf(&mut rng, 5, 0.0) - 1] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.1, "counts = {counts:?}");
    }
}
