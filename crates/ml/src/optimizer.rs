//! Stochastic gradient descent.
//!
//! The paper's client subroutines use plain SGD with a local learning rate `η_l`; the
//! server applies a separate global learning rate `η_g` to the aggregated deltas (the
//! "two-sided learning rates" of the DEFAULT baseline).

/// Plain SGD: `θ ← θ − lr · g`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f64,
}

impl Sgd {
    /// Creates an optimiser with the given learning rate.
    pub fn new(learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Sgd { learning_rate }
    }

    /// Applies one descent step in place.
    pub fn step(&self, params: &mut [f64], gradient: &[f64]) {
        assert_eq!(params.len(), gradient.len(), "gradient length mismatch");
        for (p, g) in params.iter_mut().zip(gradient.iter()) {
            *p -= self.learning_rate * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_moves_against_gradient() {
        let sgd = Sgd::new(0.1);
        let mut params = vec![1.0, -2.0];
        sgd.step(&mut params, &[10.0, -10.0]);
        assert_eq!(params, vec![0.0, -1.0]);
    }

    #[test]
    fn converges_on_quadratic() {
        // minimise f(x) = (x - 3)^2, gradient 2(x - 3)
        let sgd = Sgd::new(0.1);
        let mut params = vec![0.0];
        for _ in 0..200 {
            let grad = vec![2.0 * (params[0] - 3.0)];
            sgd.step(&mut params, &grad);
        }
        assert!((params[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_non_positive_learning_rate() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "gradient length mismatch")]
    fn rejects_mismatched_lengths() {
        let sgd = Sgd::new(0.1);
        let mut params = vec![1.0];
        sgd.step(&mut params, &[1.0, 2.0]);
    }
}
