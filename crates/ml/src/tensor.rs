//! Small dense linear-algebra helpers on `f64` slices.
//!
//! The models in this workspace are tiny (at most a few tens of thousands of parameters),
//! so a handful of straightforward slice operations is all that is needed; no external
//! BLAS, no generic tensor type.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` (the BLAS "axpy" primitive).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Element-wise in-place scaling `x *= alpha`.
pub fn scale(x: &mut [f64], alpha: f64) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Element-wise sum of two vectors into a new vector.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `a - b` into a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Matrix–vector product where the matrix is stored row-major as `rows × cols`.
pub fn matvec(matrix: &[f64], rows: usize, cols: usize, x: &[f64]) -> Vec<f64> {
    debug_assert_eq!(matrix.len(), rows * cols);
    debug_assert_eq!(x.len(), cols);
    let mut out = vec![0.0; rows];
    for r in 0..rows {
        out[r] = dot(&matrix[r * cols..(r + 1) * cols], x);
    }
    out
}

/// Transposed matrix–vector product `Mᵀ·x` for a row-major `rows × cols` matrix.
pub fn matvec_transposed(matrix: &[f64], rows: usize, cols: usize, x: &[f64]) -> Vec<f64> {
    debug_assert_eq!(matrix.len(), rows * cols);
    debug_assert_eq!(x.len(), rows);
    let mut out = vec![0.0; cols];
    for r in 0..rows {
        let row = &matrix[r * cols..(r + 1) * cols];
        axpy(x[r], row, &mut out);
    }
    out
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Numerically stable `log(Σ exp(x))`.
pub fn log_sum_exp(values: &[f64]) -> f64 {
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if max.is_infinite() {
        return max;
    }
    max + values.iter().map(|v| (v - max).exp()).sum::<f64>().ln()
}

/// Mean of a slice (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_axpy() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn add_sub_scale() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[3.0, 4.0], &[1.0, 2.0]), vec![2.0, 2.0]);
        let mut x = vec![1.0, -2.0];
        scale(&mut x, -3.0);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn matvec_roundtrip() {
        // M = [[1, 2], [3, 4], [5, 6]] (3x2)
        let m = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(matvec(&m, 3, 2, &[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(matvec_transposed(&m, 3, 2, &[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    fn softmax_properties() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // stability with huge logits
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_matches_naive() {
        let v = [0.1f64, 0.5, -2.0];
        let naive = v.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&v) - naive).abs() < 1e-12);
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
