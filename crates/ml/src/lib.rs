//! # uldp-ml
//!
//! A minimal, dependency-free machine-learning substrate for the Uldp-FL reproduction.
//!
//! The paper trains small models (≈100–20 000 parameters) with SGD inside each silo and
//! exchanges *flat parameter vectors* between silos and the server. This crate provides
//! exactly that surface:
//!
//! * [`tensor`] — small dense linear-algebra helpers (dot products, matrix–vector
//!   products, axpy) on `f64` slices.
//! * [`sample`] — the record schema shared with `uldp-datasets`: feature vector plus a
//!   classification or survival target.
//! * [`model`] — the [`Model`] trait (flat parameters, loss & gradient on a
//!   mini-batch) and its implementations:
//!   [`LinearClassifier`] (softmax regression, the Creditcard /
//!   HeartDisease model scale), [`MlpClassifier`] (one-hidden-layer
//!   network, the ≈20k-parameter MNIST model scale) and
//!   [`CoxRegression`] (the TcgaBrca survival model with Cox
//!   partial-likelihood loss).
//! * [`optimizer`] — plain SGD with a local learning rate, as used by the paper's client
//!   subroutines.
//! * [`clipping`] — L2 clipping of gradients and model deltas (the core primitive behind
//!   per-user weighted clipping).
//! * [`rng`] — Box–Muller Gaussian sampling used for DP noise and synthetic data.
//! * [`metrics`] — accuracy, average loss, and the concordance index (C-index) reported
//!   for TcgaBrca.

pub mod binary_metrics;
pub mod clipping;
pub mod cox;
pub mod linear;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod momentum;
pub mod optimizer;
pub mod rng;
pub mod sample;
pub mod tensor;

pub use binary_metrics::{confusion_counts, roc_auc, ConfusionCounts};
pub use clipping::{clip_to_norm, clipped, l2_norm};
pub use cox::CoxRegression;
pub use linear::LinearClassifier;
pub use metrics::{accuracy, average_loss, concordance_index};
pub use mlp::MlpClassifier;
pub use model::{Model, ModelKind};
pub use momentum::MomentumSgd;
pub use optimizer::Sgd;
pub use rng::{gaussian, gaussian_vector};
pub use sample::{Sample, Target};
