//! Evaluation metrics: accuracy, average loss, and concordance index.
//!
//! These are the utility metrics plotted in Figures 4–7 of the paper: test accuracy for
//! Creditcard / MNIST / HeartDisease, test loss for MNIST and the weighting-strategy
//! comparison (Figure 8), and the C-index for TcgaBrca.

use crate::model::Model;
use crate::sample::{Sample, Target};

/// Classification accuracy of `model` on `samples` (fraction of correct argmax labels).
///
/// Returns 0 for an empty evaluation set.
pub fn accuracy(model: &dyn Model, samples: &[Sample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    let mut total = 0usize;
    for s in samples {
        if let Target::Class(label) = s.target {
            let scores = model.scores(&s.features);
            let pred = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap_or(0);
            if pred == label {
                correct += 1;
            }
            total += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// Average loss of `model` on `samples` (batched to keep the Cox risk sets meaningful).
pub fn average_loss(model: &dyn Model, samples: &[Sample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let batch: Vec<&Sample> = samples.iter().collect();
    model.loss(&batch)
}

/// Harrell's concordance index for survival models.
///
/// The C-index is the fraction of comparable pairs `(i, j)` (where `i` experienced the
/// event and `t_i < t_j`) for which the model assigns a higher risk score to `i`. Ties in
/// the risk score count as half. Returns 0.5 when no pair is comparable.
pub fn concordance_index(model: &dyn Model, samples: &[Sample]) -> f64 {
    let mut records: Vec<(f64, bool, f64)> = Vec::new(); // (time, event, risk)
    for s in samples {
        if let Target::Survival { time, event } = s.target {
            let risk = model.scores(&s.features)[0];
            records.push((time, event, risk));
        }
    }
    let mut concordant = 0.0f64;
    let mut comparable = 0.0f64;
    for i in 0..records.len() {
        let (ti, ei, ri) = records[i];
        if !ei {
            continue;
        }
        for (j, &(tj, _ej, rj)) in records.iter().enumerate() {
            if i == j || tj <= ti {
                continue;
            }
            comparable += 1.0;
            if ri > rj {
                concordant += 1.0;
            } else if (ri - rj).abs() < 1e-12 {
                concordant += 0.5;
            }
        }
    }
    if comparable == 0.0 {
        0.5
    } else {
        concordant / comparable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cox::CoxRegression;
    use crate::linear::LinearClassifier;
    use crate::model::Model;

    #[test]
    fn accuracy_on_perfectly_separable_model() {
        let mut m = LinearClassifier::new(1, 2);
        // weight matrix [[-1], [1]], bias [0, 0]: positive features -> class 1
        m.set_parameters(&[-1.0, 1.0, 0.0, 0.0]);
        let samples = vec![
            Sample::classification(vec![2.0], 1),
            Sample::classification(vec![-2.0], 0),
            Sample::classification(vec![3.0], 0), // wrong on purpose
        ];
        let acc = accuracy(&m, &samples);
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_empty_is_zero() {
        let m = LinearClassifier::new(1, 2);
        assert_eq!(accuracy(&m, &[]), 0.0);
    }

    #[test]
    fn average_loss_at_uniform_prediction() {
        let m = LinearClassifier::new(2, 4);
        let samples = vec![Sample::classification(vec![1.0, 1.0], 2)];
        assert!((average_loss(&m, &samples) - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn concordance_index_perfect_and_reversed() {
        let mut m = CoxRegression::new(1);
        m.set_parameters(&[1.0]); // risk increases with feature
                                  // higher feature -> higher risk -> should die earlier
        let good = vec![
            Sample::survival(vec![2.0], 1.0, true),
            Sample::survival(vec![1.0], 2.0, true),
            Sample::survival(vec![0.0], 3.0, true),
        ];
        assert!((concordance_index(&m, &good) - 1.0).abs() < 1e-12);
        // reversed ordering gives 0
        let bad = vec![
            Sample::survival(vec![0.0], 1.0, true),
            Sample::survival(vec![1.0], 2.0, true),
            Sample::survival(vec![2.0], 3.0, true),
        ];
        assert!(concordance_index(&m, &bad) < 1e-12);
    }

    #[test]
    fn concordance_index_handles_censoring() {
        let mut m = CoxRegression::new(1);
        m.set_parameters(&[1.0]);
        // censored records never start a comparable pair
        let samples =
            vec![Sample::survival(vec![2.0], 1.0, false), Sample::survival(vec![1.0], 2.0, true)];
        // only pair starting from the event at t=2 with no later record -> no comparable pairs
        assert_eq!(concordance_index(&m, &samples), 0.5);
    }

    #[test]
    fn concordance_index_no_survival_records() {
        let m = CoxRegression::new(1);
        assert_eq!(concordance_index(&m, &[]), 0.5);
    }
}
