//! # uldp-accounting
//!
//! Rényi differential privacy (RDP) accounting for the Uldp-FL framework.
//!
//! The crate implements every privacy-analysis primitive the paper relies on:
//!
//! * [`rdp`] — RDP of the Gaussian mechanism (Lemma 3) and of the sub-sampled Gaussian
//!   mechanism (Lemma 4, the closed-form upper bound of Wang et al.), plus linear
//!   composition over rounds (Lemma 1).
//! * [`conversion`] — RDP → (ε, δ)-DP conversion (Lemma 2), the group-privacy property of
//!   RDP (Lemma 6), the normal-DP group-privacy conversion (Lemma 5) and the paper's
//!   binary-search procedure for reporting a group-DP ε at a fixed δ.
//! * [`accountant`] — a per-training-run accountant with one constructor per algorithm
//!   (ULDP-NAIVE, ULDP-AVG/SGD with optional user-level sub-sampling, ULDP-GROUP-k), used
//!   by the trainer to report the accumulated ε after every round (the right-hand plots of
//!   Figures 4–7).
//! * [`calibration`] — binary-search calibration of the noise multiplier σ for a target
//!   (ε, δ) budget.
//!
//! All bounds are computed over a grid of integer Rényi orders and minimised numerically,
//! mirroring the procedure used in the paper's reference implementation.

pub mod accountant;
pub mod calibration;
pub mod conversion;
pub mod rdp;

pub use accountant::{membership_advantage_bound, Accountant, AlgorithmPrivacy};
pub use calibration::{calibrate_sigma, calibrate_sigma_subsampled};
pub use conversion::{dp_to_group_dp, group_epsilon_via_normal_dp, group_rdp, rdp_to_dp};
pub use rdp::{
    compose, default_orders, gaussian_rdp, subsampled_gaussian_rdp,
    subsampled_gaussian_rdp_upper_bound, RdpCurve,
};

/// The default δ used throughout the paper's experiments.
pub const DEFAULT_DELTA: f64 = 1e-5;

/// The default noise multiplier used throughout the paper's experiments.
pub const DEFAULT_SIGMA: f64 = 5.0;
