//! Conversions between RDP, (ε, δ)-DP and group DP (GDP).
//!
//! * [`rdp_to_dp`] — Lemma 2 (Balle et al.): an `(α, ρ)`-RDP mechanism satisfies
//!   `(ρ + log((α−1)/α) − (log δ + log α)/(α−1), δ)`-DP; the reported ε minimises over the
//!   available orders.
//! * [`group_rdp`] — Lemma 6 (Mironov): for group size `k = 2^c`, an `(α, ρ(α))`-RDP
//!   mechanism composed with a `k`-stable transformation satisfies
//!   `(α / 2^c, 3^c · ρ(α))`-RDP.
//! * [`dp_to_group_dp`] — Lemma 5: `(ε, δ)`-DP implies `(k, kε, k e^{(k−1)ε} δ)`-GDP.
//! * [`group_epsilon_via_normal_dp`] — the paper's binary-search procedure (Section 2.2)
//!   that picks the intermediate δ of Lemma 2 such that the final δ of Lemma 5 matches the
//!   target, and reports the corresponding GDP ε.

use crate::rdp::RdpCurve;

/// Converts an RDP curve to `(ε, δ)`-DP via Lemma 2, minimising over the orders.
///
/// Returns `(ε, best_order)`.
pub fn rdp_to_dp(curve: &RdpCurve, delta: f64) -> (f64, u64) {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    let mut best = (f64::INFINITY, 0u64);
    for (&alpha, &rho) in curve.orders.iter().zip(curve.rho.iter()) {
        let eps = epsilon_from_rdp(alpha as f64, rho, delta);
        if eps < best.0 {
            best = (eps, alpha);
        }
    }
    best
}

/// The Lemma 2 conversion for a single order.
pub fn epsilon_from_rdp(alpha: f64, rho: f64, delta: f64) -> f64 {
    assert!(alpha > 1.0);
    rho + ((alpha - 1.0) / alpha).ln() - (delta.ln() + alpha.ln()) / (alpha - 1.0)
}

/// The group-privacy property of RDP (Lemma 6).
///
/// Given the *per-mechanism* RDP curve, produces the RDP curve that holds when neighbouring
/// databases differ in up to `k = 2^c` records. The output curve is defined on the orders
/// `α` for which `α · 2^c` exists in the input grid; its value is `3^c · ρ(α · 2^c)`.
///
/// # Panics
/// Panics if `k` is not a power of two.
pub fn group_rdp(curve: &RdpCurve, k: u64) -> RdpCurve {
    assert!(k.is_power_of_two(), "group size must be a power of two (Lemma 6)");
    let c = k.trailing_zeros();
    let factor = 3f64.powi(c as i32);
    let mut orders = Vec::new();
    let mut rho = Vec::new();
    for (&alpha, &_r) in curve.orders.iter().zip(curve.rho.iter()) {
        // We need rho at alpha * 2^c; only keep orders where that value is tabulated.
        let target = alpha.checked_mul(k);
        if let Some(target) = target {
            if let Some(base_rho) = curve.rho_at(target) {
                orders.push(alpha);
                rho.push(factor * base_rho);
            }
        }
    }
    RdpCurve { orders, rho }
}

/// Group DP ε for a fixed δ via the RDP route: Lemma 6 followed by Lemma 2.
///
/// Returns `(ε, best_order)`; the order refers to the *group* RDP curve.
pub fn group_epsilon_via_rdp(curve: &RdpCurve, delta: f64, k: u64) -> (f64, u64) {
    if k == 1 {
        return rdp_to_dp(curve, delta);
    }
    let grouped = group_rdp(curve, k);
    assert!(
        !grouped.orders.is_empty(),
        "order grid is too small for group size {k}; extend the grid"
    );
    rdp_to_dp(&grouped, delta)
}

/// Lemma 5: `(ε, δ)`-DP implies `(k, kε, k e^{(k−1)ε} δ)`-GDP.
///
/// Returns `(group_epsilon, group_delta)`.
pub fn dp_to_group_dp(epsilon: f64, delta: f64, k: u64) -> (f64, f64) {
    let kf = k as f64;
    let group_eps = kf * epsilon;
    let group_delta = kf * ((kf - 1.0) * epsilon).exp() * delta;
    (group_eps, group_delta)
}

/// Group DP ε at a fixed target δ via the *normal DP* route (Lemma 2 then Lemma 5),
/// following the binary-search procedure described in Section 2.2 of the paper.
///
/// The intermediate δ fed into Lemma 2 is searched so that the final δ produced by
/// Lemma 5 matches `target_delta` within `tolerance` (relative).
pub fn group_epsilon_via_normal_dp(
    curve: &RdpCurve,
    target_delta: f64,
    k: u64,
    tolerance: f64,
) -> f64 {
    if k == 1 {
        return rdp_to_dp(curve, target_delta).0;
    }
    let kf = k as f64;
    // final_delta(d) = k * exp((k-1) * eps(d)) * d is increasing in d, so binary search.
    let final_delta = |d: f64| -> f64 {
        let (eps, _) = rdp_to_dp(curve, d);
        kf * ((kf - 1.0) * eps).exp() * d
    };
    let mut lo = f64::MIN_POSITIVE.max(1e-300);
    let mut hi = target_delta / kf; // final delta >= k * d, so d <= target/k
    if final_delta(hi) < target_delta {
        // Should not happen, but fall back gracefully.
        let (eps, _) = rdp_to_dp(curve, hi);
        return kf * eps;
    }
    for _ in 0..200 {
        let mid = (lo.ln() + hi.ln()) / 2.0; // geometric bisection for tiny deltas
        let mid = mid.exp();
        let fd = final_delta(mid);
        if fd > target_delta {
            hi = mid;
        } else {
            lo = mid;
        }
        if (fd - target_delta).abs() / target_delta < tolerance {
            break;
        }
    }
    let d = lo;
    let (eps, _) = rdp_to_dp(curve, d);
    kf * eps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdp::{default_orders, gaussian_rdp, RdpCurve};

    fn gaussian_curve(sigma: f64, steps: f64) -> RdpCurve {
        RdpCurve::from_fn(default_orders(), |a| gaussian_rdp(a as f64, sigma) * steps)
    }

    #[test]
    fn rdp_to_dp_single_gaussian_matches_known_value() {
        // For sigma=1, one step, delta=1e-5 the optimal epsilon is around 3.5-4.7
        // (analytic Gaussian DP gives ~3.5; the RDP conversion is slightly looser).
        let curve = gaussian_curve(1.0, 1.0);
        let (eps, _) = rdp_to_dp(&curve, 1e-5);
        assert!(eps > 3.0 && eps < 5.5, "eps = {eps}");
    }

    #[test]
    fn epsilon_decreases_with_delta() {
        let curve = gaussian_curve(2.0, 10.0);
        let strict = rdp_to_dp(&curve, 1e-9).0;
        let loose = rdp_to_dp(&curve, 1e-3).0;
        assert!(strict > loose);
    }

    #[test]
    fn epsilon_increases_with_steps() {
        let one = rdp_to_dp(&gaussian_curve(5.0, 1.0), 1e-5).0;
        let many = rdp_to_dp(&gaussian_curve(5.0, 100.0), 1e-5).0;
        assert!(many > one);
    }

    #[test]
    fn group_rdp_identity_for_k1() {
        let curve = gaussian_curve(5.0, 10.0);
        let (e1, _) = group_epsilon_via_rdp(&curve, 1e-5, 1);
        let (e2, _) = rdp_to_dp(&curve, 1e-5);
        assert_eq!(e1, e2);
    }

    #[test]
    fn group_rdp_grows_with_k() {
        let curve = gaussian_curve(5.0, 100.0);
        let e1 = group_epsilon_via_rdp(&curve, 1e-5, 1).0;
        let e2 = group_epsilon_via_rdp(&curve, 1e-5, 2).0;
        let e4 = group_epsilon_via_rdp(&curve, 1e-5, 4).0;
        let e8 = group_epsilon_via_rdp(&curve, 1e-5, 8).0;
        assert!(e1 < e2 && e2 < e4 && e4 < e8, "{e1} {e2} {e4} {e8}");
        // Super-linear degradation: epsilon for k=8 is much more than 8x the base.
        assert!(e8 > 3.0 * e1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn group_rdp_rejects_non_power_of_two() {
        let curve = gaussian_curve(5.0, 1.0);
        let _ = group_rdp(&curve, 3);
    }

    #[test]
    fn lemma5_formula() {
        let (ge, gd) = dp_to_group_dp(1.0, 1e-5, 4);
        assert!((ge - 4.0).abs() < 1e-12);
        assert!((gd - 4.0 * (3.0f64).exp() * 1e-5).abs() < 1e-12);
        // k = 1 is the identity
        let (ge1, gd1) = dp_to_group_dp(1.0, 1e-5, 1);
        assert_eq!(ge1, 1.0);
        assert_eq!(gd1, 1e-5);
    }

    #[test]
    fn normal_dp_route_grows_with_k() {
        let curve = gaussian_curve(5.0, 100.0);
        let e1 = group_epsilon_via_normal_dp(&curve, 1e-5, 1, 1e-6);
        let e2 = group_epsilon_via_normal_dp(&curve, 1e-5, 2, 1e-6);
        let e8 = group_epsilon_via_normal_dp(&curve, 1e-5, 8, 1e-6);
        assert!(e1 < e2 && e2 < e8);
    }

    #[test]
    fn both_routes_are_same_order_of_magnitude_for_small_k() {
        // The paper reports the two conversions differ by roughly 3x at most for small k.
        let curve = gaussian_curve(5.0, 1000.0);
        let rdp_route = group_epsilon_via_rdp(&curve, 1e-5, 4).0;
        let dp_route = group_epsilon_via_normal_dp(&curve, 1e-5, 4, 1e-6);
        let ratio = rdp_route.max(dp_route) / rdp_route.min(dp_route);
        assert!(ratio < 10.0, "ratio = {ratio} (rdp {rdp_route}, dp {dp_route})");
    }
}
