//! Per-training-run privacy accountant.
//!
//! The accountant tracks the accumulated RDP curve of a training run and converts it to
//! `(ε, δ)`-ULDP on demand. One constructor exists per algorithm family in the paper:
//!
//! * **ULDP-NAIVE / ULDP-AVG / ULDP-SGD** (Theorems 1 and 3): every round is one Gaussian
//!   mechanism invocation with user-level sensitivity `C`, so the per-round RDP is
//!   `α / 2σ²` and the total after `T` rounds is `T·α / 2σ²`.
//! * **ULDP-AVG with user-level sub-sampling** (Remark 1): every round is one Poisson
//!   sub-sampled Gaussian mechanism with sampling probability `q`, analysed with Lemma 4.
//! * **ULDP-GROUP-k** (Theorem 2): every silo runs DP-SGD with record-level Poisson
//!   sampling rate `γ` for `Q` epochs per round. Record-level RDP composes over `Q·T`
//!   steps, parallel composition takes the maximum over silos, and the group-privacy
//!   property of RDP (Lemma 6) lifts the bound to group size `k`; Lemma 2 then yields
//!   `(ε, δ)`-GDP, which by Proposition 1 is `(ε, δ)`-ULDP once contributions are bounded.

use crate::conversion::{group_epsilon_via_rdp, rdp_to_dp};
use crate::rdp::{default_orders, gaussian_rdp, subsampled_gaussian_rdp, RdpCurve};
use serde::{Deserialize, Serialize};

/// Which privacy analysis applies to a training run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AlgorithmPrivacy {
    /// ULDP-NAIVE / ULDP-AVG / ULDP-SGD: one Gaussian mechanism per round at user level
    /// (Theorems 1 and 3). `q` is the user-level sub-sampling probability (1.0 = none).
    UserLevelGaussian {
        /// Noise multiplier σ.
        sigma: f64,
        /// User-level Poisson sub-sampling probability per round.
        q: f64,
    },
    /// ULDP-GROUP-k: record-level DP-SGD inside each silo, lifted by group privacy
    /// (Theorem 2).
    GroupDpSgd {
        /// Noise multiplier σ of the local DP-SGD.
        sigma: f64,
        /// Record-level Poisson sampling rate γ of the local DP-SGD.
        sampling_rate: f64,
        /// Local steps per round (the paper composes over `Q·T` DP-SGD iterations).
        steps_per_round: u64,
        /// Group size `k` (must be a power of two for the Lemma 6 route).
        group_size: u64,
    },
    /// The non-private baseline (DEFAULT / FedAVG): ε is reported as infinity.
    NonPrivate,
}

/// Tracks accumulated RDP over training rounds and reports `(ε, δ)`-ULDP.
///
/// ```
/// use uldp_accounting::{Accountant, AlgorithmPrivacy};
///
/// // ULDP-AVG with sigma = 5 and no user-level sub-sampling (Theorem 3).
/// let mut accountant =
///     Accountant::new(AlgorithmPrivacy::UserLevelGaussian { sigma: 5.0, q: 1.0 });
/// accountant.step_rounds(100);
/// let epsilon = accountant.epsilon(1e-5);
/// assert!(epsilon > 0.0 && epsilon < 15.0);
/// ```
#[derive(Clone, Debug)]
pub struct Accountant {
    privacy: AlgorithmPrivacy,
    per_round: RdpCurve,
    accumulated: RdpCurve,
    rounds: u64,
}

impl Accountant {
    /// Creates an accountant for the given algorithm with the default order grid.
    pub fn new(privacy: AlgorithmPrivacy) -> Self {
        Self::with_orders(privacy, default_orders())
    }

    /// Creates an accountant using a custom grid of Rényi orders.
    pub fn with_orders(privacy: AlgorithmPrivacy, orders: Vec<u64>) -> Self {
        let per_round = match privacy {
            // A zero noise multiplier gives no differential privacy at all: represent it
            // as an infinite per-round RDP cost so the reported epsilon is infinite,
            // matching how noiseless ablation runs are treated in the figures.
            AlgorithmPrivacy::UserLevelGaussian { sigma, .. }
            | AlgorithmPrivacy::GroupDpSgd { sigma, .. }
                if sigma <= 0.0 =>
            {
                RdpCurve::from_fn(orders.clone(), |_| f64::INFINITY)
            }
            AlgorithmPrivacy::UserLevelGaussian { sigma, q } => {
                RdpCurve::from_fn(orders.clone(), |a| {
                    if (q - 1.0).abs() < f64::EPSILON {
                        gaussian_rdp(a as f64, sigma)
                    } else {
                        subsampled_gaussian_rdp(a, q, sigma)
                    }
                })
            }
            AlgorithmPrivacy::GroupDpSgd { sigma, sampling_rate, steps_per_round, .. } => {
                RdpCurve::from_fn(orders.clone(), |a| {
                    subsampled_gaussian_rdp(a, sampling_rate, sigma) * steps_per_round as f64
                })
            }
            AlgorithmPrivacy::NonPrivate => RdpCurve::zero(orders.clone()),
        };
        Accountant { privacy, per_round, accumulated: RdpCurve::zero(orders), rounds: 0 }
    }

    /// Records one completed training round (Lemma 1 composition).
    pub fn step_round(&mut self) {
        self.accumulated.compose_with(&self.per_round);
        self.rounds += 1;
    }

    /// Records `n` completed training rounds at once.
    pub fn step_rounds(&mut self, n: u64) {
        let add = self.per_round.scaled(n as f64);
        self.accumulated.compose_with(&add);
        self.rounds += n;
    }

    /// Number of rounds accounted so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The algorithm privacy description this accountant was built for.
    pub fn privacy(&self) -> AlgorithmPrivacy {
        self.privacy
    }

    /// The accumulated RDP curve.
    pub fn rdp_curve(&self) -> &RdpCurve {
        &self.accumulated
    }

    /// Reports the `(ε, δ)`-ULDP guarantee accumulated so far.
    ///
    /// Returns `f64::INFINITY` for the non-private baseline.
    pub fn epsilon(&self, delta: f64) -> f64 {
        match self.privacy {
            AlgorithmPrivacy::NonPrivate => f64::INFINITY,
            AlgorithmPrivacy::UserLevelGaussian { .. } => {
                if self.rounds == 0 {
                    0.0
                } else {
                    rdp_to_dp(&self.accumulated, delta).0
                }
            }
            AlgorithmPrivacy::GroupDpSgd { group_size, .. } => {
                if self.rounds == 0 {
                    0.0
                } else {
                    group_epsilon_via_rdp(&self.accumulated, delta, group_size).0
                }
            }
        }
    }

    /// The membership-inference advantage ceiling implied by the accumulated ε at
    /// `delta` — the scenario harness's ε-scoring hook
    /// (see [`membership_advantage_bound`]).
    pub fn advantage_bound(&self, delta: f64) -> f64 {
        membership_advantage_bound(self.epsilon(delta), delta)
    }

    /// Convenience: the ε after exactly `t` rounds without mutating the accountant.
    pub fn epsilon_after(&self, t: u64, delta: f64) -> f64 {
        match self.privacy {
            AlgorithmPrivacy::NonPrivate => f64::INFINITY,
            _ if t == 0 => 0.0,
            AlgorithmPrivacy::UserLevelGaussian { .. } => {
                rdp_to_dp(&self.per_round.scaled(t as f64), delta).0
            }
            AlgorithmPrivacy::GroupDpSgd { group_size, .. } => {
                group_epsilon_via_rdp(&self.per_round.scaled(t as f64), delta, group_size).0
            }
        }
    }
}

/// Closed-form ε of Theorems 1 and 3 for a single order α (before minimisation).
///
/// `ε = T·α/(2σ²) + log((α−1)/α) − (log δ + log α)/(α−1)`.
pub fn theorem_1_3_epsilon(sigma: f64, rounds: u64, delta: f64, alpha: f64) -> f64 {
    let rho = rounds as f64 * alpha / (2.0 * sigma * sigma);
    rho + ((alpha - 1.0) / alpha).ln() - (delta.ln() + alpha.ln()) / (alpha - 1.0)
}

/// The tight `(ε, δ)`-DP ceiling on membership-inference advantage.
///
/// By the hypothesis-testing characterisation of differential privacy (Kairouz et al.,
/// "The Composition Theorem for Differential Privacy"), any membership test against an
/// `(ε, δ)`-DP mechanism has `TPR ≤ e^ε·FPR + δ`, which bounds the advantage
/// (`TPR − FPR`, equivalently `2·AUC − 1` for the optimally thresholded attack) by
/// `(e^ε − 1 + 2δ) / (e^ε + 1)`, capped at 1. At `ε = 0` the bound degenerates to `δ`;
/// for a non-private mechanism (`ε = ∞`) it is 1 — any advantage is consistent.
///
/// The scenario harness scores the empirical attack advantage of every scenario against
/// this ceiling evaluated at the accountant's accumulated ε.
pub fn membership_advantage_bound(epsilon: f64, delta: f64) -> f64 {
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    assert!((0.0..1.0).contains(&delta), "delta must be in [0, 1)");
    let e = epsilon.exp();
    if !e.is_finite() {
        return 1.0;
    }
    (((e - 1.0) + 2.0 * delta) / (e + 1.0)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_and_avg_share_the_same_bound() {
        // Theorems 1 and 3 give the same formula; the accountant treats them identically.
        let mut a = Accountant::new(AlgorithmPrivacy::UserLevelGaussian { sigma: 5.0, q: 1.0 });
        a.step_rounds(100);
        let eps = a.epsilon(1e-5);
        // Minimised over orders, must be at most the value at any fixed order.
        let at_alpha_20 = theorem_1_3_epsilon(5.0, 100, 1e-5, 20.0);
        assert!(eps <= at_alpha_20 + 1e-9);
        assert!(eps > 0.0);
    }

    #[test]
    fn advantage_bound_tracks_epsilon() {
        // ε = 0 degenerates to δ; the bound is monotone in ε and saturates at 1.
        assert!((membership_advantage_bound(0.0, 1e-5) - 1e-5).abs() < 1e-12);
        let low = membership_advantage_bound(0.5, 1e-5);
        let high = membership_advantage_bound(5.0, 1e-5);
        assert!(0.0 < low && low < high && high < 1.0);
        assert_eq!(membership_advantage_bound(f64::INFINITY, 1e-5), 1.0);
        assert_eq!(membership_advantage_bound(1000.0, 1e-5), 1.0);

        let mut a = Accountant::new(AlgorithmPrivacy::UserLevelGaussian { sigma: 5.0, q: 1.0 });
        a.step_rounds(10);
        let bound = a.advantage_bound(1e-5);
        assert!((bound - membership_advantage_bound(a.epsilon(1e-5), 1e-5)).abs() < 1e-15);
        let non_private = Accountant::new(AlgorithmPrivacy::NonPrivate);
        assert_eq!(non_private.advantage_bound(1e-5), 1.0);
    }

    #[test]
    fn epsilon_grows_with_rounds() {
        let mut a = Accountant::new(AlgorithmPrivacy::UserLevelGaussian { sigma: 5.0, q: 1.0 });
        a.step_round();
        let e1 = a.epsilon(1e-5);
        a.step_rounds(99);
        let e100 = a.epsilon(1e-5);
        assert!(e100 > e1);
        assert_eq!(a.rounds(), 100);
    }

    #[test]
    fn subsampling_reduces_epsilon() {
        let mut full = Accountant::new(AlgorithmPrivacy::UserLevelGaussian { sigma: 5.0, q: 1.0 });
        let mut sub = Accountant::new(AlgorithmPrivacy::UserLevelGaussian { sigma: 5.0, q: 0.3 });
        full.step_rounds(50);
        sub.step_rounds(50);
        assert!(sub.epsilon(1e-5) < full.epsilon(1e-5));
    }

    #[test]
    fn group_dp_sgd_much_larger_than_user_level() {
        // The core claim of the paper: the GROUP-k route pays a super-linear price.
        let mut avg = Accountant::new(AlgorithmPrivacy::UserLevelGaussian { sigma: 5.0, q: 1.0 });
        let mut group = Accountant::new(AlgorithmPrivacy::GroupDpSgd {
            sigma: 5.0,
            sampling_rate: 0.05,
            steps_per_round: 10,
            group_size: 8,
        });
        avg.step_rounds(30);
        group.step_rounds(30);
        assert!(group.epsilon(1e-5) > avg.epsilon(1e-5));
    }

    #[test]
    fn group_epsilon_grows_with_group_size() {
        let make = |k: u64| {
            let mut a = Accountant::new(AlgorithmPrivacy::GroupDpSgd {
                sigma: 5.0,
                sampling_rate: 0.01,
                steps_per_round: 10,
                group_size: k,
            });
            a.step_rounds(20);
            a.epsilon(1e-5)
        };
        let e2 = make(2);
        let e8 = make(8);
        let e32 = make(32);
        assert!(e2 < e8 && e8 < e32, "{e2} {e8} {e32}");
    }

    #[test]
    fn zero_sigma_reports_infinite_epsilon() {
        let mut a = Accountant::new(AlgorithmPrivacy::UserLevelGaussian { sigma: 0.0, q: 1.0 });
        a.step_rounds(5);
        assert!(a.epsilon(1e-5).is_infinite());
        let mut g = Accountant::new(AlgorithmPrivacy::GroupDpSgd {
            sigma: 0.0,
            sampling_rate: 0.1,
            steps_per_round: 2,
            group_size: 4,
        });
        g.step_rounds(5);
        assert!(g.epsilon(1e-5).is_infinite());
    }

    #[test]
    fn non_private_reports_infinity() {
        let mut a = Accountant::new(AlgorithmPrivacy::NonPrivate);
        a.step_rounds(10);
        assert!(a.epsilon(1e-5).is_infinite());
    }

    #[test]
    fn zero_rounds_zero_epsilon() {
        let a = Accountant::new(AlgorithmPrivacy::UserLevelGaussian { sigma: 5.0, q: 1.0 });
        assert_eq!(a.epsilon(1e-5), 0.0);
        assert_eq!(a.epsilon_after(0, 1e-5), 0.0);
    }

    #[test]
    fn epsilon_after_matches_stepping() {
        let mut a = Accountant::new(AlgorithmPrivacy::UserLevelGaussian { sigma: 5.0, q: 0.5 });
        let predicted = a.epsilon_after(25, 1e-5);
        a.step_rounds(25);
        let actual = a.epsilon(1e-5);
        assert!((predicted - actual).abs() < 1e-9);
    }

    #[test]
    fn more_noise_less_epsilon() {
        let mut lo = Accountant::new(AlgorithmPrivacy::UserLevelGaussian { sigma: 2.0, q: 1.0 });
        let mut hi = Accountant::new(AlgorithmPrivacy::UserLevelGaussian { sigma: 10.0, q: 1.0 });
        lo.step_rounds(10);
        hi.step_rounds(10);
        assert!(hi.epsilon(1e-5) < lo.epsilon(1e-5));
    }
}
