//! Rényi differential privacy of the (sub-sampled) Gaussian mechanism.
//!
//! * Lemma 3: the Gaussian mechanism with noise multiplier σ (noise standard deviation
//!   σ·Δ) satisfies `(α, α / 2σ²)`-RDP for every `α > 1`.
//! * Lemma 4 (Wang, Balle, Kasiviswanathan): the Poisson-sub-sampled Gaussian mechanism
//!   with sampling probability `q` satisfies `(α, ρ'(α, σ))`-RDP for integer `α ≥ 2`, with
//!   the closed-form upper bound reproduced below.
//! * Lemma 1: RDP composes additively over rounds at a fixed order.
//!
//! All computations are carried out in log-space so that very large orders (needed for
//! the group-privacy conversion of Lemma 6) do not overflow.

/// An RDP curve: the privacy parameter ρ(α) tabulated on a grid of integer orders.
#[derive(Clone, Debug, PartialEq)]
pub struct RdpCurve {
    /// Rényi orders α (strictly increasing, all ≥ 2).
    pub orders: Vec<u64>,
    /// ρ(α) for each order.
    pub rho: Vec<f64>,
}

impl RdpCurve {
    /// Creates a curve that is identically zero on the given orders.
    pub fn zero(orders: Vec<u64>) -> Self {
        let rho = vec![0.0; orders.len()];
        RdpCurve { orders, rho }
    }

    /// Creates a curve by evaluating `f(α)` on each order.
    pub fn from_fn(orders: Vec<u64>, f: impl Fn(u64) -> f64) -> Self {
        let rho = orders.iter().map(|&a| f(a)).collect();
        RdpCurve { orders, rho }
    }

    /// Point-wise addition of another curve (Lemma 1, adaptive composition).
    ///
    /// # Panics
    /// Panics if the order grids differ.
    pub fn compose_with(&mut self, other: &RdpCurve) {
        assert_eq!(self.orders, other.orders, "RDP curves must share the same order grid");
        for (a, b) in self.rho.iter_mut().zip(other.rho.iter()) {
            *a += b;
        }
    }

    /// Returns a curve scaled by `steps` compositions of the same mechanism.
    pub fn scaled(&self, steps: f64) -> RdpCurve {
        RdpCurve { orders: self.orders.clone(), rho: self.rho.iter().map(|r| r * steps).collect() }
    }

    /// Looks up ρ at an exact order, if present.
    pub fn rho_at(&self, order: u64) -> Option<f64> {
        self.orders.iter().position(|&a| a == order).map(|i| self.rho[i])
    }
}

/// The default grid of Rényi orders: all integers in `[2, 256]` plus a coarser tail up to
/// 4096 so the group-privacy conversion (which needs ρ at `2^c · α`) has headroom.
pub fn default_orders() -> Vec<u64> {
    let mut orders: Vec<u64> = (2..=256).collect();
    let mut a = 272u64;
    while a <= 4096 {
        orders.push(a);
        a += 16;
    }
    orders
}

/// RDP of the Gaussian mechanism: `ρ(α) = α / (2σ²)` (Lemma 3).
pub fn gaussian_rdp(alpha: f64, sigma: f64) -> f64 {
    assert!(sigma > 0.0, "noise multiplier must be positive");
    assert!(alpha > 1.0, "Renyi order must exceed 1");
    alpha / (2.0 * sigma * sigma)
}

/// Numerically stable `log(sum(exp(x)))`.
fn log_sum_exp(values: &[f64]) -> f64 {
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if max.is_infinite() {
        return max;
    }
    let sum: f64 = values.iter().map(|v| (v - max).exp()).sum();
    max + sum.ln()
}

/// RDP of the Poisson-sub-sampled Gaussian mechanism for integer order `α ≥ 2`.
///
/// This is the tight integer-order expression used by numerical RDP accountants
/// (Mironov, Talwar & Zhang 2019; the method the paper's reference implementation relies
/// on through Opacus):
///
/// `ρ'(α, σ) = 1/(α−1) · log( Σ_{k=0}^{α} C(α,k) (1−q)^{α−k} q^k e^{k(k−1)/(2σ²)} )`.
///
/// Degenerate cases: `q = 0` gives 0 (no data is touched); `q = 1` recovers the plain
/// Gaussian bound of Lemma 3 exactly. The looser closed-form upper bound printed as
/// Lemma 4 in the paper is available as [`subsampled_gaussian_rdp_upper_bound`].
pub fn subsampled_gaussian_rdp(alpha: u64, q: f64, sigma: f64) -> f64 {
    assert!(alpha >= 2, "the integer-order formula needs an order >= 2");
    assert!((0.0..=1.0).contains(&q), "sampling probability must be in [0, 1]");
    assert!(sigma > 0.0, "noise multiplier must be positive");
    if q == 0.0 {
        return 0.0;
    }
    if (q - 1.0).abs() < f64::EPSILON {
        return gaussian_rdp(alpha as f64, sigma);
    }
    let alpha_f = alpha as f64;
    let inv_sigma_sq = 1.0 / (sigma * sigma);
    let ln_q = q.ln();
    let ln_1mq = (1.0 - q).ln();
    let mut log_terms = Vec::with_capacity(alpha as usize + 1);
    // k = 0 term: (1-q)^alpha
    log_terms.push(alpha_f * ln_1mq);
    // ln C(alpha, k) maintained incrementally.
    let mut ln_binom = 0.0f64;
    for k in 1..=alpha {
        let kf = k as f64;
        ln_binom += (alpha_f - kf + 1.0).ln() - kf.ln();
        let term =
            ln_binom + (alpha_f - kf) * ln_1mq + kf * ln_q + kf * (kf - 1.0) / 2.0 * inv_sigma_sq;
        log_terms.push(term);
    }
    let log_total = log_sum_exp(&log_terms);
    (log_total / (alpha_f - 1.0)).max(0.0)
}

/// The closed-form *upper bound* on the sub-sampled Gaussian RDP printed as Lemma 4 in the
/// paper (Wang, Balle & Kasiviswanathan):
///
/// `ρ'(α, σ) ≤ 1/(α−1) · log( 1 + 2 q² C(α,2) min{2(e^{1/σ²} − 1), e^{1/σ²}}
///                              + Σ_{j=3}^{α} 2 q^j C(α,j) e^{j(j−1)/2σ²} )`.
///
/// It is loose for moderate-to-large `q`; [`subsampled_gaussian_rdp`] should be preferred
/// for accounting. It is retained to document the theorem statement and for comparison
/// tests.
pub fn subsampled_gaussian_rdp_upper_bound(alpha: u64, q: f64, sigma: f64) -> f64 {
    assert!(alpha >= 2, "the closed-form bound needs an integer order >= 2");
    assert!((0.0..=1.0).contains(&q), "sampling probability must be in [0, 1]");
    assert!(sigma > 0.0, "noise multiplier must be positive");
    if q == 0.0 {
        return 0.0;
    }
    if (q - 1.0).abs() < f64::EPSILON {
        return gaussian_rdp(alpha as f64, sigma);
    }
    let alpha_f = alpha as f64;
    let inv_sigma_sq = 1.0 / (sigma * sigma);
    let ln_q = q.ln();
    let ln2 = std::f64::consts::LN_2;

    // Log-terms of the sum inside the logarithm, starting with the constant 1 (log = 0).
    let mut log_terms = Vec::with_capacity(alpha as usize);
    log_terms.push(0.0);

    // j = 2 term: 2 q^2 C(α,2) min{2(e^{1/σ²} − 1), e^{1/σ²}}
    let ln_binom_2 = (alpha_f.ln() + (alpha_f - 1.0).ln()) - ln2;
    let min_term = {
        let a = 2.0 * (inv_sigma_sq.exp() - 1.0);
        let b = inv_sigma_sq.exp();
        a.min(b).max(f64::MIN_POSITIVE)
    };
    log_terms.push(ln2 + 2.0 * ln_q + ln_binom_2 + min_term.ln());

    // j >= 3 terms: 2 q^j C(α,j) e^{j(j−1)/(2σ²)}
    // ln C(α, j) is maintained incrementally from ln C(α, 2).
    let mut ln_binom = ln_binom_2;
    for j in 3..=alpha {
        let jf = j as f64;
        ln_binom += (alpha_f - jf + 1.0).ln() - jf.ln();
        let exponent = jf * (jf - 1.0) / 2.0 * inv_sigma_sq;
        log_terms.push(ln2 + jf * ln_q + ln_binom + exponent);
    }

    let log_total = log_sum_exp(&log_terms);
    (log_total / (alpha_f - 1.0)).max(0.0)
}

/// Composes `steps` identical mechanisms described by a per-step RDP evaluation function.
pub fn compose(orders: &[u64], per_step_rho: impl Fn(u64) -> f64, steps: f64) -> RdpCurve {
    RdpCurve::from_fn(orders.to_vec(), |a| per_step_rho(a) * steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_rdp_matches_formula() {
        assert!((gaussian_rdp(2.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((gaussian_rdp(10.0, 5.0) - 10.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_rdp_monotone_in_alpha_and_sigma() {
        assert!(gaussian_rdp(3.0, 2.0) > gaussian_rdp(2.0, 2.0));
        assert!(gaussian_rdp(3.0, 2.0) > gaussian_rdp(3.0, 4.0));
    }

    #[test]
    fn subsampled_degenerate_cases() {
        assert_eq!(subsampled_gaussian_rdp(8, 0.0, 5.0), 0.0);
        let full = subsampled_gaussian_rdp(8, 1.0, 5.0);
        assert!((full - gaussian_rdp(8.0, 5.0)).abs() < 1e-12);
    }

    #[test]
    fn subsampling_amplifies_privacy() {
        // For small q the sub-sampled bound must be far below the non-sub-sampled one.
        for &alpha in &[2u64, 4, 16, 64] {
            let sub = subsampled_gaussian_rdp(alpha, 0.01, 5.0);
            let full = gaussian_rdp(alpha as f64, 5.0);
            assert!(sub < full, "alpha={alpha}: {sub} !< {full}");
        }
    }

    #[test]
    fn subsampled_rdp_monotone_in_q() {
        let lo = subsampled_gaussian_rdp(16, 0.01, 5.0);
        let mid = subsampled_gaussian_rdp(16, 0.1, 5.0);
        let hi = subsampled_gaussian_rdp(16, 0.5, 5.0);
        assert!(lo < mid && mid < hi);
    }

    #[test]
    fn subsampled_rdp_monotone_in_sigma() {
        let noisy = subsampled_gaussian_rdp(16, 0.1, 10.0);
        let less_noisy = subsampled_gaussian_rdp(16, 0.1, 2.0);
        assert!(noisy < less_noisy);
    }

    #[test]
    fn subsampled_rdp_roughly_quadratic_in_q_for_small_q() {
        // The leading term is O(q² α / σ²); halving q should reduce rho by roughly 4x.
        let a = subsampled_gaussian_rdp(8, 0.02, 5.0);
        let b = subsampled_gaussian_rdp(8, 0.01, 5.0);
        let ratio = a / b;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio = {ratio}");
    }

    #[test]
    fn large_order_does_not_overflow() {
        let rho = subsampled_gaussian_rdp(4096, 0.01, 5.0);
        assert!(rho.is_finite());
        assert!(rho >= 0.0);
    }

    #[test]
    fn curve_composition() {
        let orders = vec![2u64, 4, 8];
        let mut a = RdpCurve::from_fn(orders.clone(), |o| o as f64);
        let b = RdpCurve::from_fn(orders.clone(), |o| 2.0 * o as f64);
        a.compose_with(&b);
        assert_eq!(a.rho, vec![6.0, 12.0, 24.0]);
        let scaled = a.scaled(10.0);
        assert_eq!(scaled.rho, vec![60.0, 120.0, 240.0]);
        assert_eq!(scaled.rho_at(4), Some(120.0));
        assert_eq!(scaled.rho_at(5), None);
    }

    #[test]
    fn default_orders_cover_group_conversion_range() {
        let orders = default_orders();
        assert_eq!(orders[0], 2);
        assert!(orders.contains(&256));
        assert!(*orders.last().unwrap() >= 4096);
        // strictly increasing
        assert!(orders.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn log_sum_exp_stability() {
        let v = vec![1000.0, 1000.0];
        let r = log_sum_exp(&v);
        assert!((r - (1000.0 + std::f64::consts::LN_2)).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }
}
