//! Noise-multiplier calibration.
//!
//! Given a target `(ε, δ)` budget and a number of training rounds, find the smallest noise
//! multiplier σ that satisfies it. The ε reported by the accountant is monotone decreasing
//! in σ, so a simple bisection converges quickly. This mirrors how practitioners configure
//! DP-FL runs: the budget is fixed by policy and σ is derived from it.

use crate::accountant::{Accountant, AlgorithmPrivacy};

/// Smallest σ such that `T` rounds of the user-level Gaussian mechanism (ULDP-NAIVE /
/// ULDP-AVG / ULDP-SGD, Theorems 1 and 3) stay within `(target_epsilon, delta)`.
pub fn calibrate_sigma(target_epsilon: f64, delta: f64, rounds: u64) -> f64 {
    calibrate_sigma_subsampled(target_epsilon, delta, rounds, 1.0)
}

/// Smallest σ for ULDP-AVG with user-level Poisson sub-sampling probability `q`.
pub fn calibrate_sigma_subsampled(target_epsilon: f64, delta: f64, rounds: u64, q: f64) -> f64 {
    assert!(target_epsilon > 0.0, "target epsilon must be positive");
    assert!(rounds > 0, "must train for at least one round");
    let epsilon_for = |sigma: f64| -> f64 {
        let acc = Accountant::new(AlgorithmPrivacy::UserLevelGaussian { sigma, q });
        acc.epsilon_after(rounds, delta)
    };
    let mut lo = 0.3f64;
    let mut hi = 0.5f64;
    // Grow the upper bound until it satisfies the budget.
    while epsilon_for(hi) > target_epsilon {
        hi *= 2.0;
        if hi > 1e6 {
            return hi; // pathological budget; return the (enormous) bound
        }
    }
    // Shrink lo if it already satisfies the budget (very loose targets).
    if epsilon_for(lo) <= target_epsilon {
        return lo;
    }
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if epsilon_for(mid) > target_epsilon {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accountant::{Accountant, AlgorithmPrivacy};

    #[test]
    fn calibrated_sigma_meets_budget() {
        for &(eps, rounds) in &[(1.0f64, 10u64), (5.0, 100), (0.5, 20)] {
            let sigma = calibrate_sigma(eps, 1e-5, rounds);
            let acc = Accountant::new(AlgorithmPrivacy::UserLevelGaussian { sigma, q: 1.0 });
            let achieved = acc.epsilon_after(rounds, 1e-5);
            assert!(achieved <= eps * 1.001, "sigma {sigma} gives eps {achieved} > {eps}");
        }
    }

    #[test]
    fn calibrated_sigma_is_not_wasteful() {
        // Slightly less noise must violate the budget (within bisection tolerance),
        // otherwise the calibration returned an unnecessarily large sigma.
        let eps = 2.0;
        let rounds = 50;
        let sigma = calibrate_sigma(eps, 1e-5, rounds);
        if sigma > 0.31 {
            let acc = Accountant::new(AlgorithmPrivacy::UserLevelGaussian {
                sigma: sigma * 0.95,
                q: 1.0,
            });
            assert!(acc.epsilon_after(rounds, 1e-5) > eps);
        }
    }

    #[test]
    fn tighter_budget_needs_more_noise() {
        let loose = calibrate_sigma(10.0, 1e-5, 100);
        let tight = calibrate_sigma(1.0, 1e-5, 100);
        assert!(tight > loose);
    }

    #[test]
    fn more_rounds_need_more_noise() {
        let short = calibrate_sigma(2.0, 1e-5, 10);
        let long = calibrate_sigma(2.0, 1e-5, 1000);
        assert!(long > short);
    }

    #[test]
    fn subsampling_needs_less_noise() {
        let full = calibrate_sigma_subsampled(2.0, 1e-5, 100, 1.0);
        let sub = calibrate_sigma_subsampled(2.0, 1e-5, 100, 0.1);
        assert!(sub < full);
    }
}
