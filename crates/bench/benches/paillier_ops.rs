//! Criterion micro-benchmarks of the Paillier cryptosystem and the big-integer modular
//! arithmetic underlying the private weighting protocol (supporting Figures 10 and 11:
//! the per-coordinate cost of the protocol is one Paillier scalar multiplication plus one
//! homomorphic addition).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use uldp_bigint::modular::mod_pow;
use uldp_bigint::montgomery::{FixedBaseCtx, ModulusCtx};
use uldp_bigint::BigUint;
use uldp_crypto::paillier::{Ciphertext, PaillierKeyPair};
use uldp_runtime::Runtime;

fn bench_paillier(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier");
    group.sample_size(10);
    for &bits in &[512usize, 1024] {
        let mut rng = StdRng::seed_from_u64(1);
        let kp = PaillierKeyPair::generate(&mut rng, bits);
        let m = BigUint::from_u64(123_456_789);
        let ciphertext = kp.public.encrypt(&mut rng, &m);
        let scalar = BigUint::from_u64(987_654_321);

        group.bench_with_input(BenchmarkId::new("encrypt", bits), &bits, |b, _| {
            b.iter(|| kp.public.encrypt(&mut rng, &m))
        });
        group.bench_with_input(BenchmarkId::new("decrypt", bits), &bits, |b, _| {
            b.iter(|| kp.secret.decrypt(&ciphertext))
        });
        group.bench_with_input(BenchmarkId::new("scalar_mul", bits), &bits, |b, _| {
            b.iter(|| kp.public.scalar_mul(&ciphertext, &scalar))
        });
        group.bench_with_input(BenchmarkId::new("homomorphic_add", bits), &bits, |b, _| {
            b.iter(|| kp.public.add(&ciphertext, &ciphertext))
        });
        // The multi-round cache's refresh paths: the one-shot r^n form vs the
        // table-driven RerandCtx form (context construction amortised outside the
        // iteration, matching the per-federation cache which builds it once).
        group.bench_with_input(BenchmarkId::new("rerandomise", bits), &bits, |b, _| {
            b.iter(|| kp.public.rerandomise(&mut rng, &ciphertext))
        });
        let rerand_ctx = kp.public.rerand_ctx(&mut rng);
        group.bench_with_input(BenchmarkId::new("rerandomise_ctx", bits), &bits, |b, _| {
            b.iter(|| rerand_ctx.rerandomise(&mut rng, &ciphertext))
        });
    }
    group.finish();
}

/// The Paillier batch APIs on a 1-thread and on the global runtime. `encrypt_batch` is
/// Protocol 1's step 2.(a) path; `scalar_mul_batch`/`sum_par` are the standalone batch
/// forms of the primitives the protocol fuses into its 2.(b)/2.(c) loops — this measures
/// the primitives' per-item cost and pooled scaling, not the protocol's fused loops (the
/// figure binaries time those).
fn bench_paillier_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier_batch");
    group.sample_size(10);
    let bits = 512usize;
    let mut rng = StdRng::seed_from_u64(5);
    let kp = PaillierKeyPair::generate(&mut rng, bits);
    let plaintexts: Vec<BigUint> = (0..64u64).map(BigUint::from_u64).collect();
    let ciphertexts: Vec<Ciphertext> =
        plaintexts.iter().map(|m| kp.public.encrypt(&mut rng, m)).collect();
    let pairs: Vec<(&Ciphertext, BigUint)> = ciphertexts
        .iter()
        .enumerate()
        .map(|(i, ct)| (ct, BigUint::from_u64(1000 + i as u64)))
        .collect();
    for (name, rt) in [("seq", Runtime::handle(1)), ("pooled", Runtime::global())] {
        group.bench_with_input(BenchmarkId::new("encrypt_batch_64", name), &name, |b, _| {
            b.iter(|| kp.public.encrypt_batch(&rt, [7, 8, 9, 10], &plaintexts))
        });
        group.bench_with_input(BenchmarkId::new("scalar_mul_batch_64", name), &name, |b, _| {
            b.iter(|| kp.public.scalar_mul_batch(&rt, &pairs))
        });
        group.bench_with_input(BenchmarkId::new("sum_par_64", name), &name, |b, _| {
            b.iter(|| kp.public.sum_par(&rt, &ciphertexts))
        });
    }
    group.finish();
}

/// The three exponentiation paths on a `scalar_mul`-shaped batch: one odd modulus (the
/// `n²` role), one fixed base (the ciphertext), many half-width exponents (scalars
/// reduced mod `n`). Generic pays a division per multiply; Montgomery shares one
/// `ModulusCtx` across the batch; fixed-base additionally precomputes a radix-2ʷ table
/// for the base (table construction is included in the measured iteration, mirroring
/// how Protocol 1 amortises it within one round).
fn bench_modpow(c: &mut Criterion) {
    let mut group = c.benchmark_group("modpow");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(2);
    const BATCH: usize = 16;
    for &bits in &[512usize, 1024, 2048] {
        let mut modulus = BigUint::random_with_bits(&mut rng, bits);
        if modulus.is_even() {
            modulus = modulus.add(&BigUint::one());
        }
        let base = BigUint::random_below(&mut rng, &modulus);
        let exps: Vec<BigUint> =
            (0..BATCH).map(|_| BigUint::random_with_bits(&mut rng, bits / 2)).collect();
        group.bench_with_input(BenchmarkId::new("generic_batch16", bits), &bits, |b, _| {
            b.iter(|| exps.iter().map(|e| mod_pow(&base, e, &modulus)).collect::<Vec<_>>())
        });
        group.bench_with_input(BenchmarkId::new("montgomery_batch16", bits), &bits, |b, _| {
            b.iter(|| {
                let ctx = ModulusCtx::new(&modulus);
                exps.iter().map(|e| ctx.pow(&base, e)).collect::<Vec<_>>()
            })
        });
        group.bench_with_input(BenchmarkId::new("fixed_base_batch16", bits), &bits, |b, _| {
            b.iter(|| {
                let ctx = Arc::new(ModulusCtx::new(&modulus));
                let fixed = FixedBaseCtx::new(ctx, &base, bits / 2);
                exps.iter().map(|e| fixed.pow(e)).collect::<Vec<_>>()
            })
        });
        // The fused cell shape of step 2.(b): Π baseᵢ^expᵢ for a 4-term product, as one
        // interleaved ladder vs four independent pows multiplied together.
        let fused_pairs: Vec<(BigUint, BigUint)> = (0..4)
            .map(|i| {
                (mod_pow(&base, &BigUint::from_u64(i + 2), &modulus), exps[i as usize].clone())
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("multi_exp_unfused4", bits), &bits, |b, _| {
            b.iter(|| {
                let ctx = ModulusCtx::new(&modulus);
                fused_pairs.iter().fold(BigUint::one().rem(&modulus), |acc, (bs, e)| {
                    uldp_bigint::modular::mod_mul(&acc, &ctx.pow(bs, e), &modulus)
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("multi_exp_fused4", bits), &bits, |b, _| {
            b.iter(|| {
                let ctx = ModulusCtx::new(&modulus);
                ctx.multi_exp(&fused_pairs)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_paillier, bench_paillier_batch, bench_modpow);
criterion_main!(benches);
