//! Criterion micro-benchmarks of the Paillier cryptosystem and the big-integer modular
//! arithmetic underlying the private weighting protocol (supporting Figures 10 and 11:
//! the per-coordinate cost of the protocol is one Paillier scalar multiplication plus one
//! homomorphic addition).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_bigint::modular::mod_pow;
use uldp_bigint::BigUint;
use uldp_crypto::paillier::{Ciphertext, PaillierKeyPair};
use uldp_runtime::Runtime;

fn bench_paillier(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier");
    group.sample_size(10);
    for &bits in &[512usize, 1024] {
        let mut rng = StdRng::seed_from_u64(1);
        let kp = PaillierKeyPair::generate(&mut rng, bits);
        let m = BigUint::from_u64(123_456_789);
        let ciphertext = kp.public.encrypt(&mut rng, &m);
        let scalar = BigUint::from_u64(987_654_321);

        group.bench_with_input(BenchmarkId::new("encrypt", bits), &bits, |b, _| {
            b.iter(|| kp.public.encrypt(&mut rng, &m))
        });
        group.bench_with_input(BenchmarkId::new("decrypt", bits), &bits, |b, _| {
            b.iter(|| kp.secret.decrypt(&ciphertext))
        });
        group.bench_with_input(BenchmarkId::new("scalar_mul", bits), &bits, |b, _| {
            b.iter(|| kp.public.scalar_mul(&ciphertext, &scalar))
        });
        group.bench_with_input(BenchmarkId::new("homomorphic_add", bits), &bits, |b, _| {
            b.iter(|| kp.public.add(&ciphertext, &ciphertext))
        });
    }
    group.finish();
}

/// The Paillier batch APIs on a 1-thread and on the global runtime. `encrypt_batch` is
/// Protocol 1's step 2.(a) path; `scalar_mul_batch`/`sum_par` are the standalone batch
/// forms of the primitives the protocol fuses into its 2.(b)/2.(c) loops — this measures
/// the primitives' per-item cost and pooled scaling, not the protocol's fused loops (the
/// figure binaries time those).
fn bench_paillier_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier_batch");
    group.sample_size(10);
    let bits = 512usize;
    let mut rng = StdRng::seed_from_u64(5);
    let kp = PaillierKeyPair::generate(&mut rng, bits);
    let plaintexts: Vec<BigUint> = (0..64u64).map(BigUint::from_u64).collect();
    let ciphertexts: Vec<Ciphertext> =
        plaintexts.iter().map(|m| kp.public.encrypt(&mut rng, m)).collect();
    let pairs: Vec<(&Ciphertext, BigUint)> = ciphertexts
        .iter()
        .enumerate()
        .map(|(i, ct)| (ct, BigUint::from_u64(1000 + i as u64)))
        .collect();
    for (name, rt) in [("seq", Runtime::handle(1)), ("pooled", Runtime::global())] {
        group.bench_with_input(BenchmarkId::new("encrypt_batch_64", name), &name, |b, _| {
            b.iter(|| kp.public.encrypt_batch(&rt, [7, 8, 9, 10], &plaintexts))
        });
        group.bench_with_input(BenchmarkId::new("scalar_mul_batch_64", name), &name, |b, _| {
            b.iter(|| kp.public.scalar_mul_batch(&rt, &pairs))
        });
        group.bench_with_input(BenchmarkId::new("sum_par_64", name), &name, |b, _| {
            b.iter(|| kp.public.sum_par(&rt, &ciphertexts))
        });
    }
    group.finish();
}

fn bench_modpow(c: &mut Criterion) {
    let mut group = c.benchmark_group("modpow");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(2);
    for &bits in &[256usize, 512, 1024] {
        let modulus = BigUint::random_with_bits(&mut rng, bits);
        let base = BigUint::random_below(&mut rng, &modulus);
        let exp = BigUint::random_with_bits(&mut rng, bits);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| mod_pow(&base, &exp, &modulus))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_paillier, bench_paillier_batch, bench_modpow);
criterion_main!(benches);
