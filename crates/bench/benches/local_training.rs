//! Criterion benchmarks of the silo-local training primitives, contrasting the cost of
//! per-silo training (DEFAULT / ULDP-NAIVE), record-level DP-SGD (ULDP-GROUP) and the
//! per-user training loop of ULDP-AVG — the computational-overhead trade-off discussed in
//! Section 3.4 of the paper (ULDP-AVG costs more compute for the same communication).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_core::silo;
use uldp_core::weighting::WeightMatrix;
use uldp_core::{algorithms, FlConfig, Method, WeightingStrategy};
use uldp_datasets::creditcard::{self, CreditcardConfig};
use uldp_ml::{LinearClassifier, Model};

fn dataset() -> uldp_datasets::FederatedDataset {
    let mut rng = StdRng::seed_from_u64(1);
    creditcard::generate(
        &mut rng,
        &CreditcardConfig {
            train_records: 1000,
            test_records: 100,
            num_users: 50,
            ..Default::default()
        },
    )
}

fn bench_local_primitives(c: &mut Criterion) {
    let data = dataset();
    let silo_records: Vec<&uldp_ml::Sample> =
        data.silo_records(0).into_iter().map(|r| &r.sample).collect();
    let model = LinearClassifier::new(data.feature_dim(), 2);
    let params = model.parameters().to_vec();
    let mut group = c.benchmark_group("local_training");
    group.sample_size(10);

    group.bench_function("silo_sgd_2_epochs", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut scratch = model.clone();
            silo::local_train(&mut scratch, &params, &silo_records, 2, 0.1, 32, &mut rng)
        })
    });

    group.bench_function("dp_sgd_2_steps", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut scratch = model.clone();
            silo::dp_sgd(&mut scratch, &params, &silo_records, 2, 0.1, 1.0, 5.0, 0.1, &mut rng)
        })
    });

    group.finish();
}

fn bench_full_rounds(c: &mut Criterion) {
    let data = dataset();
    let mut group = c.benchmark_group("federated_round");
    group.sample_size(10);

    for (name, method) in [
        ("default", Method::Default),
        ("uldp_avg", Method::UldpAvg { weighting: WeightingStrategy::Uniform }),
    ] {
        let config = FlConfig {
            method,
            rounds: 1,
            local_epochs: 2,
            local_lr: 0.1,
            sigma: 5.0,
            ..Default::default()
        };
        let weights = WeightMatrix::uniform(data.num_silos, data.num_users);
        let rt = uldp_runtime::Runtime::global();
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut model: Box<dyn Model> =
                    Box::new(LinearClassifier::new(data.feature_dim(), 2));
                match method {
                    Method::Default => {
                        algorithms::default::run_round(&rt, &mut model, &data, &config, 1)
                    }
                    Method::UldpAvg { .. } => algorithms::uldp_avg::run_round(
                        &rt, &mut model, &data, &config, &weights, None, 1.0, 1,
                    ),
                    _ => unreachable!(),
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_local_primitives, bench_full_rounds);
criterion_main!(benches);
