//! Criterion benchmarks of the private weighting protocol phases (Figures 10 and 11):
//! setup (key exchange + blinded histogram + inversion) and a full weighting round, as a
//! function of the number of users and model parameters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uldp_core::{PrivateWeightingProtocol, ProtocolConfig};

fn config() -> ProtocolConfig {
    ProtocolConfig { paillier_bits: 384, dh_bits: 128, n_max: 32, ..Default::default() }
}

fn histogram(rng: &mut StdRng, silos: usize, users: usize) -> Vec<Vec<usize>> {
    (0..silos).map(|_| (0..users).map(|_| rng.gen_range(1..6usize)).collect()).collect()
}

fn bench_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_setup");
    group.sample_size(10);
    for &users in &[10usize, 20, 40] {
        group.bench_with_input(BenchmarkId::from_parameter(users), &users, |b, &users| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                let h = histogram(&mut rng, 3, users);
                PrivateWeightingProtocol::setup(&h, &config(), &mut rng)
            })
        });
    }
    group.finish();
}

fn bench_weighting_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_round");
    group.sample_size(10);
    for &params in &[16usize, 64] {
        let mut rng = StdRng::seed_from_u64(4);
        let h = histogram(&mut rng, 3, 10);
        let protocol = PrivateWeightingProtocol::setup(&h, &config(), &mut rng);
        let deltas: Vec<Vec<Vec<f64>>> = h
            .iter()
            .map(|row| {
                row.iter()
                    .map(|_| (0..params).map(|_| rng.gen_range(-0.1..0.1)).collect())
                    .collect()
            })
            .collect();
        let noises: Vec<Vec<f64>> =
            (0..3).map(|_| (0..params).map(|_| rng.gen_range(-0.01..0.01)).collect()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(params), &params, |b, _| {
            b.iter(|| protocol.weighting_round(&deltas, &noises, None, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_setup, bench_weighting_round);
criterion_main!(benches);
