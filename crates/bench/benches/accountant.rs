//! Criterion benchmarks of the privacy accounting (supporting Figure 2 and the per-round ε
//! tracking of Figures 4–9): sub-sampled Gaussian RDP evaluation, RDP→DP conversion, and
//! the group-privacy conversions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uldp_accounting::{
    default_orders, group_epsilon_via_normal_dp, group_rdp, rdp_to_dp, subsampled_gaussian_rdp,
    Accountant, AlgorithmPrivacy, RdpCurve,
};

fn bench_rdp_curve(c: &mut Criterion) {
    let mut group = c.benchmark_group("rdp_curve");
    for &q in &[0.01f64, 0.3, 1.0] {
        group.bench_with_input(BenchmarkId::new("subsampled_gaussian", q), &q, |b, &q| {
            b.iter(|| RdpCurve::from_fn(default_orders(), |a| subsampled_gaussian_rdp(a, q, 5.0)))
        });
    }
    group.finish();
}

fn bench_conversions(c: &mut Criterion) {
    let curve =
        RdpCurve::from_fn(default_orders(), |a| subsampled_gaussian_rdp(a, 0.01, 5.0) * 1e5);
    let mut group = c.benchmark_group("conversions");
    group.bench_function("rdp_to_dp", |b| b.iter(|| rdp_to_dp(&curve, 1e-5)));
    group.bench_function("group_rdp_k32", |b| b.iter(|| rdp_to_dp(&group_rdp(&curve, 32), 1e-5)));
    group.bench_function("group_normal_dp_k8", |b| {
        b.iter(|| group_epsilon_via_normal_dp(&curve, 1e-5, 8, 1e-6))
    });
    group.finish();
}

fn bench_accountant_round_tracking(c: &mut Criterion) {
    c.bench_function("accountant_100_rounds_with_epsilon", |b| {
        b.iter(|| {
            let mut acc =
                Accountant::new(AlgorithmPrivacy::UserLevelGaussian { sigma: 5.0, q: 0.5 });
            for _ in 0..100 {
                acc.step_round();
            }
            acc.epsilon(1e-5)
        })
    });
}

criterion_group!(benches, bench_rdp_curve, bench_conversions, bench_accountant_round_tracking);
criterion_main!(benches);
