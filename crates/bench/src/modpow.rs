//! Generic vs. Montgomery vs. fixed-base modular exponentiation comparison.
//!
//! Measures the `scalar_mul`-shaped workload of Protocol 1 step 2.(b) — one fixed base
//! raised to many half-width exponents over one odd modulus — on the three available
//! paths and appends the result as the `modpow` section of `BENCH_protocol.json`
//! (CI fails the smoke job if the section is missing). The three paths must agree
//! bit for bit; [`modpow_comparison`] asserts it while measuring.

use crate::millis;
use crate::report::{BenchEntry, BenchSection};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use uldp_bigint::modular::mod_pow;
use uldp_bigint::montgomery::{FixedBaseCtx, ModulusCtx};
use uldp_bigint::BigUint;

/// Wall-clock of one batch of exponentiations on each path, plus the derived speedups.
#[derive(Clone, Debug)]
pub struct ModpowComparison {
    /// Modulus bit length (the ciphertext-modulus size of the shaped workload).
    pub modulus_bits: usize,
    /// Exponent bit length (half the modulus: a `scalar mod n` over `n²`).
    pub exp_bits: usize,
    /// Number of exponentiations in the batch.
    pub num_exps: usize,
    /// Schoolbook square-and-multiply (`uldp_bigint::modular::mod_pow`).
    pub generic_ms: f64,
    /// Montgomery sliding window over one shared `ModulusCtx` (`mod_pow_batch`).
    pub montgomery_ms: f64,
    /// `FixedBaseCtx` table, construction included (the amortised protocol shape).
    pub fixed_base_ms: f64,
}

impl ModpowComparison {
    /// Speedup of the shared-context Montgomery path over the generic path.
    pub fn montgomery_speedup(&self) -> f64 {
        self.generic_ms / self.montgomery_ms.max(1e-9)
    }

    /// Speedup of the fixed-base path (table construction included) over generic.
    pub fn fixed_base_speedup(&self) -> f64 {
        self.generic_ms / self.fixed_base_ms.max(1e-9)
    }
}

/// Runs the three paths over an identical `(modulus, base, exponents)` workload and
/// asserts their outputs are bitwise-identical.
///
/// The workload mirrors Paillier `scalar_mul`: an odd `modulus_bits`-bit modulus (the
/// `n²` role), one fixed base below it (the ciphertext), and `num_exps` exponents of
/// `modulus_bits / 2` bits (scalars reduced mod `n`).
pub fn modpow_comparison(modulus_bits: usize, num_exps: usize, seed: u64) -> ModpowComparison {
    assert!(modulus_bits >= 16, "modulus too small to be representative");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut modulus = BigUint::random_with_bits(&mut rng, modulus_bits);
    if modulus.is_even() {
        modulus = modulus.add(&BigUint::one());
    }
    let exp_bits = modulus_bits / 2;
    let base = BigUint::random_below(&mut rng, &modulus);
    let exps: Vec<BigUint> =
        (0..num_exps).map(|_| BigUint::random_with_bits(&mut rng, exp_bits)).collect();

    let start = Instant::now();
    let generic: Vec<BigUint> = exps.iter().map(|e| mod_pow(&base, e, &modulus)).collect();
    let generic_ms = millis(start.elapsed());

    // Shared per-modulus context (construction included, amortised over the batch).
    let start = Instant::now();
    let ctx = Arc::new(ModulusCtx::new(&modulus));
    let pairs: Vec<(BigUint, BigUint)> = exps.iter().map(|e| (base.clone(), e.clone())).collect();
    let montgomery = ctx.mod_pow_batch(&pairs);
    let montgomery_ms = millis(start.elapsed());

    // Per-base table on top of the shared context (construction included).
    let start = Instant::now();
    let fixed = FixedBaseCtx::new(Arc::clone(&ctx), &base, exp_bits);
    let fixed_base: Vec<BigUint> = exps.iter().map(|e| fixed.pow(e)).collect();
    let fixed_base_ms = millis(start.elapsed());

    assert_eq!(generic, montgomery, "Montgomery path diverged from the generic path");
    assert_eq!(generic, fixed_base, "fixed-base path diverged from the generic path");

    ModpowComparison { modulus_bits, exp_bits, num_exps, generic_ms, montgomery_ms, fixed_base_ms }
}

/// Writes the comparison as the `modpow` section of `BENCH_protocol.json` and returns
/// the report path. Single-core by construction (the batch runs on the calling thread).
pub fn write_modpow_section(cmp: &ModpowComparison) -> std::io::Result<PathBuf> {
    let mut section = BenchSection::new("modpow", 1, cmp.modulus_bits);
    let label_suffix =
        format!("bits={} exp_bits={} exps={}", cmp.modulus_bits, cmp.exp_bits, cmp.num_exps);
    let mut generic = BenchEntry::new(format!("generic {label_suffix}"));
    generic.phase("total", cmp.generic_ms);
    section.entries.push(generic);
    let mut montgomery = BenchEntry::new(format!("montgomery {label_suffix}"));
    montgomery.phase("total", cmp.montgomery_ms);
    montgomery.speedup_vs_sequential = Some(cmp.montgomery_speedup());
    section.entries.push(montgomery);
    let mut fixed = BenchEntry::new(format!("fixed_base {label_suffix}"));
    fixed.phase("total", cmp.fixed_base_ms);
    fixed.speedup_vs_sequential = Some(cmp.fixed_base_speedup());
    section.entries.push(fixed);
    section.write()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_runs_and_agrees_at_small_sizes() {
        // The agreement asserts live inside modpow_comparison; this exercises them.
        let cmp = modpow_comparison(256, 4, 7);
        assert_eq!(cmp.modulus_bits, 256);
        assert_eq!(cmp.exp_bits, 128);
        assert_eq!(cmp.num_exps, 4);
        assert!(cmp.generic_ms >= 0.0 && cmp.montgomery_ms >= 0.0 && cmp.fixed_base_ms >= 0.0);
    }
}
