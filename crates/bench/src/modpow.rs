//! Generic vs. Montgomery vs. fixed-base modular exponentiation comparison.
//!
//! Measures the `scalar_mul`-shaped workload of Protocol 1 step 2.(b) — one fixed base
//! raised to many half-width exponents over one odd modulus — on the three available
//! paths and appends the result as the `modpow` section of `BENCH_protocol.json`
//! (CI fails the smoke job if the section is missing). The three paths must agree
//! bit for bit; [`modpow_comparison`] asserts it while measuring. Two companion
//! comparisons cover the other Paillier hot paths: [`rerand_comparison`] (fresh
//! encryption vs one-shot vs context re-randomisation, the multi-round cache shape)
//! and [`multi_exp_comparison`] (unfused pow-then-multiply chains vs the interleaved
//! `ModulusCtx::multi_exp`, the fused step 2.(b) cell shape).

use crate::millis;
use crate::report::{BenchEntry, BenchSection};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use uldp_bigint::modular::{mod_mul, mod_pow};
use uldp_bigint::montgomery::{FixedBaseCtx, ModulusCtx};
use uldp_bigint::BigUint;
use uldp_crypto::paillier::PaillierPublicKey;

/// Wall-clock of one batch of exponentiations on each path, plus the derived speedups.
#[derive(Clone, Debug)]
pub struct ModpowComparison {
    /// Modulus bit length (the ciphertext-modulus size of the shaped workload).
    pub modulus_bits: usize,
    /// Exponent bit length (half the modulus: a `scalar mod n` over `n²`).
    pub exp_bits: usize,
    /// Number of exponentiations in the batch.
    pub num_exps: usize,
    /// Schoolbook square-and-multiply (`uldp_bigint::modular::mod_pow`).
    pub generic_ms: f64,
    /// Montgomery sliding window over one shared `ModulusCtx` (`mod_pow_batch`).
    pub montgomery_ms: f64,
    /// `FixedBaseCtx` table, construction included (the amortised protocol shape).
    pub fixed_base_ms: f64,
}

impl ModpowComparison {
    /// Speedup of the shared-context Montgomery path over the generic path.
    pub fn montgomery_speedup(&self) -> f64 {
        self.generic_ms / self.montgomery_ms.max(1e-9)
    }

    /// Speedup of the fixed-base path (table construction included) over generic.
    pub fn fixed_base_speedup(&self) -> f64 {
        self.generic_ms / self.fixed_base_ms.max(1e-9)
    }
}

/// Runs the three paths over an identical `(modulus, base, exponents)` workload and
/// asserts their outputs are bitwise-identical.
///
/// The workload mirrors Paillier `scalar_mul`: an odd `modulus_bits`-bit modulus (the
/// `n²` role), one fixed base below it (the ciphertext), and `num_exps` exponents of
/// `modulus_bits / 2` bits (scalars reduced mod `n`).
pub fn modpow_comparison(modulus_bits: usize, num_exps: usize, seed: u64) -> ModpowComparison {
    assert!(modulus_bits >= 16, "modulus too small to be representative");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut modulus = BigUint::random_with_bits(&mut rng, modulus_bits);
    if modulus.is_even() {
        modulus = modulus.add(&BigUint::one());
    }
    let exp_bits = modulus_bits / 2;
    let base = BigUint::random_below(&mut rng, &modulus);
    let exps: Vec<BigUint> =
        (0..num_exps).map(|_| BigUint::random_with_bits(&mut rng, exp_bits)).collect();

    let start = Instant::now();
    let generic: Vec<BigUint> = exps.iter().map(|e| mod_pow(&base, e, &modulus)).collect();
    let generic_ms = millis(start.elapsed());

    // Shared per-modulus context (construction included, amortised over the batch).
    let start = Instant::now();
    let ctx = Arc::new(ModulusCtx::new(&modulus));
    let pairs: Vec<(BigUint, BigUint)> = exps.iter().map(|e| (base.clone(), e.clone())).collect();
    let montgomery = ctx.mod_pow_batch(&pairs);
    let montgomery_ms = millis(start.elapsed());

    // Per-base table on top of the shared context (construction included).
    let start = Instant::now();
    let fixed = FixedBaseCtx::new(Arc::clone(&ctx), &base, exp_bits);
    let fixed_base: Vec<BigUint> = exps.iter().map(|e| fixed.pow(e)).collect();
    let fixed_base_ms = millis(start.elapsed());

    assert_eq!(generic, montgomery, "Montgomery path diverged from the generic path");
    assert_eq!(generic, fixed_base, "fixed-base path diverged from the generic path");

    ModpowComparison { modulus_bits, exp_bits, num_exps, generic_ms, montgomery_ms, fixed_base_ms }
}

/// Wall-clock of refreshing one ciphertext `num_ops` times on each available path.
///
/// This is the multi-round shape of Protocol 1 step 2.(a): the cross-round cache
/// replaces a fresh `Enc(m)` per round with a re-randomisation `c · h^t`, so the gap
/// between `encrypt_ms` and `ctx_rerandomise_ms` is the per-user per-round saving.
#[derive(Clone, Debug)]
pub struct RerandComparison {
    /// Bit length of the Paillier plaintext modulus `n` (ciphertexts live mod `n²`).
    pub modulus_bits: usize,
    /// Number of refresh operations measured per path.
    pub num_ops: usize,
    /// Fresh `Enc(m)` per operation (the uncached baseline).
    pub encrypt_ms: f64,
    /// One-shot [`PaillierPublicKey::rerandomise`] (`c · r^n`, full-width `r^n`).
    pub rerandomise_ms: f64,
    /// [`uldp_crypto::paillier::RerandCtx`] path (`c · h^t`, squaring-free table
    /// lookups), context construction included.
    pub ctx_rerandomise_ms: f64,
}

impl RerandComparison {
    /// Speedup of the context re-randomisation path over fresh encryption.
    pub fn ctx_speedup(&self) -> f64 {
        self.encrypt_ms / self.ctx_rerandomise_ms.max(1e-9)
    }
}

/// Measures fresh encryption vs one-shot vs context re-randomisation over one key.
///
/// The key is a bare `n` of `modulus_bits` random odd bits — encryption and
/// re-randomisation only need the public-key arithmetic, so no slow prime generation is
/// paid. The documented `rerandomise(c; r) = add(c, Enc(0; r))` equivalence is asserted
/// on the way.
pub fn rerand_comparison(modulus_bits: usize, num_ops: usize, seed: u64) -> RerandComparison {
    assert!(modulus_bits >= 16, "modulus too small to be representative");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut n = BigUint::random_with_bits(&mut rng, modulus_bits);
    if n.is_even() {
        n = n.add(&BigUint::one());
    }
    let pk = PaillierPublicKey::new(n.clone());
    let m = BigUint::random_below(&mut rng, &n);
    let c = pk.encrypt(&mut rng, &m);
    // Pin the equivalence the one-shot path relies on: Enc(0; r) = r^n, so
    // re-randomising is exactly adding an encryption of zero.
    let r = loop {
        let r = BigUint::random_below(&mut rng, &n);
        if uldp_bigint::gcd(&r, &n).is_one() {
            break r;
        }
    };
    assert_eq!(
        pk.rerandomise_with_randomness(&c, &r),
        pk.add(&c, &pk.encrypt_with_randomness(&BigUint::zero(), &r)),
        "rerandomise must equal homomorphic addition of Enc(0)"
    );

    let start = Instant::now();
    for _ in 0..num_ops {
        let _ = pk.encrypt(&mut rng, &m);
    }
    let encrypt_ms = millis(start.elapsed());

    let start = Instant::now();
    for _ in 0..num_ops {
        let _ = pk.rerandomise(&mut rng, &c);
    }
    let rerandomise_ms = millis(start.elapsed());

    // Context construction included: this is the amortised multi-round shape.
    let start = Instant::now();
    let ctx = pk.rerand_ctx(&mut rng);
    for _ in 0..num_ops {
        let _ = ctx.rerandomise(&mut rng, &c);
    }
    let ctx_rerandomise_ms = millis(start.elapsed());

    RerandComparison { modulus_bits, num_ops, encrypt_ms, rerandomise_ms, ctx_rerandomise_ms }
}

/// Wall-clock of evaluating `num_products` products `Π base_i^exp_i` (k terms each)
/// unfused (one sliding-window pow per term, multiplied together) vs fused through the
/// interleaved [`ModulusCtx::multi_exp`] ladder, which shares one squaring chain across
/// the k terms — the step 2.(b) cell shape for bases too lightly used to earn a
/// fixed-base table.
#[derive(Clone, Debug)]
pub struct MultiExpComparison {
    /// Modulus bit length.
    pub modulus_bits: usize,
    /// Terms per product.
    pub k: usize,
    /// Products evaluated per path.
    pub num_products: usize,
    /// Unfused pow-then-`mod_mul` chain.
    pub unfused_ms: f64,
    /// Interleaved shared-ladder evaluation.
    pub fused_ms: f64,
}

impl MultiExpComparison {
    /// Speedup of the fused ladder over the unfused chain.
    pub fn fused_speedup(&self) -> f64 {
        self.unfused_ms / self.fused_ms.max(1e-9)
    }
}

/// Runs both evaluation orders over identical `(modulus, pairs)` workloads and asserts
/// the products agree bit for bit.
pub fn multi_exp_comparison(
    modulus_bits: usize,
    k: usize,
    num_products: usize,
    seed: u64,
) -> MultiExpComparison {
    assert!(modulus_bits >= 16, "modulus too small to be representative");
    assert!(k >= 1, "a product needs at least one term");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut modulus = BigUint::random_with_bits(&mut rng, modulus_bits);
    if modulus.is_even() {
        modulus = modulus.add(&BigUint::one());
    }
    let exp_bits = modulus_bits / 2;
    let products: Vec<Vec<(BigUint, BigUint)>> = (0..num_products)
        .map(|_| {
            (0..k)
                .map(|_| {
                    (
                        BigUint::random_below(&mut rng, &modulus),
                        BigUint::random_with_bits(&mut rng, exp_bits),
                    )
                })
                .collect()
        })
        .collect();
    let ctx = ModulusCtx::new(&modulus);

    let start = Instant::now();
    let unfused: Vec<BigUint> = products
        .iter()
        .map(|pairs| {
            let mut acc = BigUint::one().rem(&modulus);
            for (base, exp) in pairs {
                acc = mod_mul(&acc, &ctx.pow(base, exp), &modulus);
            }
            acc
        })
        .collect();
    let unfused_ms = millis(start.elapsed());

    let start = Instant::now();
    let fused: Vec<BigUint> = products.iter().map(|pairs| ctx.multi_exp(pairs)).collect();
    let fused_ms = millis(start.elapsed());

    assert_eq!(unfused, fused, "fused multi_exp diverged from the unfused chain");
    MultiExpComparison { modulus_bits, k, num_products, unfused_ms, fused_ms }
}

/// Wall-clock of a chain of `num_muls` modular multiplications at a modulus wide
/// enough (≥ 2048 bits) that [`ModulusCtx`] takes its separated Karatsuba-product
/// tier, vs the generic `div_rem`-reducing [`mod_mul`]. The chain shape (each product
/// feeds the next) mirrors the exponentiation ladders that dominate Protocol 1.
#[derive(Clone, Debug)]
pub struct KaratsubaComparison {
    /// Modulus bit length (must put the context at or above the Karatsuba threshold).
    pub modulus_bits: usize,
    /// Multiplications per chain.
    pub num_muls: usize,
    /// Generic schoolbook product + `div_rem` reduction per step.
    pub generic_ms: f64,
    /// Montgomery chain through the Karatsuba tier (conversions included once).
    pub karatsuba_ms: f64,
}

impl KaratsubaComparison {
    /// Speedup of the Karatsuba-tier Montgomery chain over the generic chain.
    pub fn karatsuba_speedup(&self) -> f64 {
        self.generic_ms / self.karatsuba_ms.max(1e-9)
    }
}

/// Runs both multiplication chains over an identical `(modulus, start, factor)`
/// workload and asserts the final values are bitwise-identical.
pub fn karatsuba_comparison(
    modulus_bits: usize,
    num_muls: usize,
    seed: u64,
) -> KaratsubaComparison {
    assert!(modulus_bits >= 2048, "below the Montgomery engine's Karatsuba tier");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut modulus = BigUint::random_with_bits(&mut rng, modulus_bits);
    if modulus.is_even() {
        modulus = modulus.add(&BigUint::one());
    }
    let start_value = BigUint::random_below(&mut rng, &modulus);
    let factor = BigUint::random_below(&mut rng, &modulus);

    let start = Instant::now();
    let mut generic = start_value.clone();
    for _ in 0..num_muls {
        generic = mod_mul(&generic, &factor, &modulus);
    }
    let generic_ms = millis(start.elapsed());

    // Context construction and domain conversions included once, amortised over the
    // chain — the same shape the exponentiation ladders pay.
    let start = Instant::now();
    let ctx = ModulusCtx::new(&modulus);
    let factor_m = ctx.to_mont(&factor);
    let mut acc = ctx.to_mont(&start_value);
    for _ in 0..num_muls {
        acc = ctx.mont_mul(&acc, &factor_m);
    }
    let karatsuba = ctx.from_mont(&acc);
    let karatsuba_ms = millis(start.elapsed());

    assert_eq!(generic, karatsuba, "Karatsuba-tier chain diverged from the generic chain");
    KaratsubaComparison { modulus_bits, num_muls, generic_ms, karatsuba_ms }
}

/// Writes the comparisons as the `modpow` section of `BENCH_protocol.json` and returns
/// the report path. Single-core by construction (every batch runs on the calling
/// thread).
pub fn write_modpow_section(
    cmp: &ModpowComparison,
    rerand: &RerandComparison,
    fused: &MultiExpComparison,
    karatsuba: &KaratsubaComparison,
) -> std::io::Result<PathBuf> {
    let mut section = BenchSection::new("modpow", 1, cmp.modulus_bits);
    let label_suffix =
        format!("bits={} exp_bits={} exps={}", cmp.modulus_bits, cmp.exp_bits, cmp.num_exps);
    let mut generic = BenchEntry::new(format!("generic {label_suffix}"));
    generic.phase("total", cmp.generic_ms);
    section.entries.push(generic);
    let mut montgomery = BenchEntry::new(format!("montgomery {label_suffix}"));
    montgomery.phase("total", cmp.montgomery_ms);
    montgomery.speedup_vs_sequential = Some(cmp.montgomery_speedup());
    section.entries.push(montgomery);
    let mut fixed = BenchEntry::new(format!("fixed_base {label_suffix}"));
    fixed.phase("total", cmp.fixed_base_ms);
    fixed.speedup_vs_sequential = Some(cmp.fixed_base_speedup());
    section.entries.push(fixed);

    let rerand_suffix = format!("bits={} ops={}", rerand.modulus_bits, rerand.num_ops);
    let mut encrypt = BenchEntry::new(format!("encrypt {rerand_suffix}"));
    encrypt.phase("total", rerand.encrypt_ms);
    section.entries.push(encrypt);
    let mut oneshot = BenchEntry::new(format!("rerandomise {rerand_suffix}"));
    oneshot.phase("total", rerand.rerandomise_ms);
    oneshot.speedup_vs_sequential = Some(rerand.encrypt_ms / rerand.rerandomise_ms.max(1e-9));
    section.entries.push(oneshot);
    let mut ctx_rerand = BenchEntry::new(format!("rerandomise_ctx {rerand_suffix}"));
    ctx_rerand.phase("total", rerand.ctx_rerandomise_ms);
    ctx_rerand.speedup_vs_sequential = Some(rerand.ctx_speedup());
    section.entries.push(ctx_rerand);

    let fused_suffix =
        format!("bits={} k={} products={}", fused.modulus_bits, fused.k, fused.num_products);
    let mut unfused_entry = BenchEntry::new(format!("multi_exp_unfused {fused_suffix}"));
    unfused_entry.phase("total", fused.unfused_ms);
    section.entries.push(unfused_entry);
    let mut fused_entry = BenchEntry::new(format!("multi_exp_fused {fused_suffix}"));
    fused_entry.phase("total", fused.fused_ms);
    fused_entry.speedup_vs_sequential = Some(fused.fused_speedup());
    section.entries.push(fused_entry);

    let kara_suffix = format!("bits={} muls={}", karatsuba.modulus_bits, karatsuba.num_muls);
    let mut kara_generic = BenchEntry::new(format!("mod_mul_generic {kara_suffix}"));
    kara_generic.phase("total", karatsuba.generic_ms);
    section.entries.push(kara_generic);
    let mut kara_entry = BenchEntry::new(format!("karatsuba {kara_suffix}"));
    kara_entry.phase("total", karatsuba.karatsuba_ms);
    kara_entry.speedup_vs_sequential = Some(karatsuba.karatsuba_speedup());
    section.entries.push(kara_entry);
    section.write()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_runs_and_agrees_at_small_sizes() {
        // The agreement asserts live inside modpow_comparison; this exercises them.
        let cmp = modpow_comparison(256, 4, 7);
        assert_eq!(cmp.modulus_bits, 256);
        assert_eq!(cmp.exp_bits, 128);
        assert_eq!(cmp.num_exps, 4);
        assert!(cmp.generic_ms >= 0.0 && cmp.montgomery_ms >= 0.0 && cmp.fixed_base_ms >= 0.0);
    }

    #[test]
    fn rerand_comparison_runs_and_pins_equivalence() {
        // The Enc(0)-addition equivalence assert lives inside rerand_comparison.
        let cmp = rerand_comparison(256, 3, 11);
        assert_eq!(cmp.modulus_bits, 256);
        assert_eq!(cmp.num_ops, 3);
        assert!(cmp.encrypt_ms >= 0.0 && cmp.rerandomise_ms >= 0.0);
        assert!(cmp.ctx_rerandomise_ms >= 0.0);
    }

    #[test]
    fn karatsuba_comparison_runs_and_agrees() {
        // Bitwise agreement of the tiers lives inside karatsuba_comparison; 2048 bits
        // is the smallest modulus that engages the separated-product tier.
        let cmp = karatsuba_comparison(2048, 8, 17);
        assert_eq!(cmp.modulus_bits, 2048);
        assert_eq!(cmp.num_muls, 8);
        assert!(cmp.generic_ms >= 0.0 && cmp.karatsuba_ms >= 0.0);
    }

    #[test]
    fn multi_exp_comparison_runs_and_agrees() {
        // Bitwise agreement of fused vs unfused lives inside multi_exp_comparison;
        // k = 1 degenerates to a plain pow and must also agree.
        for k in [1usize, 4] {
            let cmp = multi_exp_comparison(256, k, 3, 13);
            assert_eq!(cmp.k, k);
            assert!(cmp.unfused_ms >= 0.0 && cmp.fused_ms >= 0.0);
        }
    }
}
