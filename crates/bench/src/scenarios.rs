//! Per-scenario membership-inference scoring: the `scenarios` report section.
//!
//! Every [`Scenario`] of the catalogue — baseline, dropouts, stragglers, byzantine
//! strategies, Zipf skew and the mixed worst case — is trained on the memorisation-prone
//! Creditcard federation with the scenario's fault plan and allocation, attacked with the
//! user-level loss-threshold attack of `uldp_core::attack`, and scored against the
//! accountant's `(ε, δ)` ceiling on any attack's advantage
//! ([`uldp_accounting::membership_advantage_bound`]). The outcomes feed a table on
//! stdout and the `scenarios` section of `BENCH_protocol.json`, shared by
//! `ext_membership_inference` and the CI `scenario_smoke` binary.

use crate::{print_table, BenchEntry, BenchSection, ResultRow};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use uldp_core::attack::{member_user_records, score_scenario, ScenarioAttackScore};
use uldp_core::{FlConfig, Method, Scenario, Trainer, WeightingStrategy};
use uldp_datasets::creditcard::{self, CreditcardConfig};
use uldp_ml::{LinearClassifier, Model};
use uldp_runtime::Runtime;

/// One scenario's training + attack outcome.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The attack result paired with the accountant's `(ε, δ)` ceiling.
    pub score: ScenarioAttackScore,
    /// Final test accuracy of the scenario's model (`NaN` when never evaluated).
    pub test_accuracy: f64,
}

/// Trains ULDP-AVG under every catalogue scenario and scores the released model with
/// the user-level membership-inference attack against the accountant's ε.
///
/// Each scenario re-generates its federation from the same seed (only the allocation
/// and fault plan differ), plus a shadow federation from the same generative process
/// for the non-member population.
pub fn evaluate_scenarios(rounds: u64, train_records: usize, sigma: f64) -> Vec<ScenarioOutcome> {
    Scenario::catalogue()
        .iter()
        .map(|scenario| {
            let mut rng = StdRng::seed_from_u64(0x005c_e017);
            let cfg = CreditcardConfig {
                train_records,
                test_records: 200,
                num_users: 40,
                class_separation: 0.6, // hard task: low separation forces memorisation
                allocation: scenario.allocation(),
                ..Default::default()
            };
            let dataset = creditcard::generate(&mut rng, &cfg);
            let shadow = creditcard::generate(&mut rng, &cfg);
            let members = member_user_records(&dataset);
            let mut non_members = member_user_records(&shadow);
            non_members.truncate(members.len());

            let method = Method::UldpAvg { weighting: WeightingStrategy::RecordProportional };
            let mut config = FlConfig::recommended(method, dataset.num_silos);
            config.rounds = rounds;
            config.local_epochs = 4;
            config.local_lr = 0.5;
            config.sigma = sigma;
            config.clip_bound = 1.0;
            config.eval_every = rounds;
            config.global_lr = dataset.num_silos as f64 * 20.0;
            config.fault_plan = scenario.plan;
            let delta = config.delta;
            let model: Box<dyn Model> = Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
            let mut trainer = Trainer::new(config, dataset, model);
            let history = trainer.run();
            let score = score_scenario(
                scenario.name,
                trainer.model(),
                &members,
                &non_members,
                history.final_epsilon(),
                delta,
            );
            ScenarioOutcome { score, test_accuracy: history.final_accuracy().unwrap_or(f64::NAN) }
        })
        .collect()
}

/// The `scenarios` report section: one entry per scenario with the attack AUC /
/// advantage next to the accountant's ε and the `(ε, δ)` advantage ceiling.
///
/// `paillier_bits` is 0 — no cryptography runs here; the field is part of the shared
/// section schema.
pub fn scenarios_section(outcomes: &[ScenarioOutcome]) -> BenchSection {
    let mut section = BenchSection::new("scenarios", Runtime::global().threads(), 0);
    for outcome in outcomes {
        let mut entry = BenchEntry::new(outcome.score.scenario.clone());
        entry
            .phase("attack_auc", outcome.score.result.auc)
            .phase("advantage", outcome.score.result.advantage)
            .phase("epsilon", outcome.score.epsilon)
            .phase("advantage_bound", outcome.score.advantage_bound)
            .phase("test_accuracy", outcome.test_accuracy);
        section.entries.push(entry);
    }
    section
}

/// Writes (or merges) the `scenarios` section into `BENCH_protocol.json`
/// (honouring `ULDP_BENCH_JSON`) and returns the path.
pub fn write_scenarios_section(outcomes: &[ScenarioOutcome]) -> std::io::Result<PathBuf> {
    scenarios_section(outcomes).write()
}

/// Prints the per-scenario attack-vs-ε table.
pub fn print_scenario_table(outcomes: &[ScenarioOutcome]) {
    let rows: Vec<ResultRow> = outcomes
        .iter()
        .map(|outcome| {
            let mut row = ResultRow::new(outcome.score.scenario.clone());
            row.push_f64("attack AUC", outcome.score.result.auc);
            row.push_f64("advantage", outcome.score.result.advantage);
            row.push_f64("epsilon", outcome.score.epsilon);
            row.push_f64("adv bound", outcome.score.advantage_bound);
            row.push_f64("test acc", outcome.test_accuracy);
            row.push_str(
                "within bound",
                if outcome.score.within_bound(0.15) { "yes" } else { "NO" },
            );
            row
        })
        .collect();
    print_table("Per-scenario membership inference vs (ε, δ)-DP ceiling", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::parse_report_phases;

    #[test]
    fn outcomes_cover_the_catalogue_and_serialise() {
        let outcomes = evaluate_scenarios(2, 160, 1.0);
        let names: Vec<&str> = Scenario::catalogue().iter().map(|s| s.name).collect();
        assert_eq!(
            outcomes.iter().map(|o| o.score.scenario.as_str()).collect::<Vec<_>>(),
            names,
            "one outcome per catalogue scenario, in order"
        );
        for o in &outcomes {
            assert!((0.0..=1.0).contains(&o.score.result.auc), "{}: AUC", o.score.scenario);
            assert!(o.score.epsilon > 0.0, "{}: ε", o.score.scenario);
            assert!(
                (0.0..=1.0).contains(&o.score.advantage_bound),
                "{}: advantage bound",
                o.score.scenario
            );
        }

        let dir = std::env::temp_dir().join(format!("uldp-scenarios-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_scenarios.json");
        let _ = std::fs::remove_file(&path);
        scenarios_section(&outcomes).write_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        let samples = parse_report_phases(&text);
        assert!(samples.iter().all(|s| s.section == "scenarios"));
        // 5 phases per scenario (finite ε at σ = 1, so nothing serialises to null)
        assert_eq!(samples.len(), outcomes.len() * 5);
        assert!(samples.iter().any(|s| s.phase == "advantage_bound"));
    }
}
