//! Machine-readable benchmark output: `BENCH_protocol.json`.
//!
//! The figure binaries and the protocol smoke test all append their results to one JSON
//! file so the perf trajectory of the protocol can be tracked across commits and CI runs.
//! The file is a single top-level object keyed by section (one section per binary):
//!
//! ```json
//! {
//!   "fig11_protocol_scaling": {
//!     "threads": 8,
//!     "paillier_bits": 512,
//!     "entries": [
//!       {"label": "params=16", "phases_ms": {"srv_enc": 1.2, ...},
//!        "speedup_vs_sequential": 3.4}
//!     ]
//!   }
//! }
//! ```
//!
//! Writers replace only their own section and preserve the others, so the binaries can
//! run in any order (or individually) and still produce one coherent file; the file is
//! replaced via an atomic rename, so interrupted writes never corrupt it (concurrent
//! writers are last-writer-wins for the merge as a whole). No JSON
//! dependency exists in this offline workspace, so serialisation is hand-rolled and the
//! merge step performs structural (depth-aware) splitting of the file the writers
//! themselves produced.

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Environment variable overriding the report path (default `BENCH_protocol.json` in the
/// current directory).
pub const REPORT_PATH_ENV: &str = "ULDP_BENCH_JSON";

/// One benchmark measurement: a label, per-phase wall-clock timings, and optional
/// derived metrics.
#[derive(Clone, Debug, Default)]
pub struct BenchEntry {
    /// Scenario label (e.g. `"HeartDisease |U|=10"` or `"params=1024"`).
    pub label: String,
    /// Named phase timings in milliseconds, serialised in insertion order.
    pub phases_ms: Vec<(String, f64)>,
    /// Wall-clock speedup of the pooled run over the same round on a 1-thread runtime.
    pub speedup_vs_sequential: Option<f64>,
    /// Maximum absolute error of the secure aggregate vs. the plaintext reference.
    pub max_err: Option<f64>,
}

impl BenchEntry {
    /// Creates an entry with a label and no measurements yet.
    pub fn new(label: impl Into<String>) -> Self {
        BenchEntry { label: label.into(), ..Default::default() }
    }

    /// Records one phase timing in milliseconds.
    pub fn phase(&mut self, name: &str, ms: f64) -> &mut Self {
        self.phases_ms.push((name.to_string(), ms));
        self
    }
}

/// A report section: everything one binary measured in one run.
#[derive(Clone, Debug)]
pub struct BenchSection {
    /// Section key — the producing binary's name.
    pub name: String,
    /// Worker threads the parallel runs used.
    pub threads: usize,
    /// Paillier modulus size the protocol ran with.
    pub paillier_bits: usize,
    /// The measurements.
    pub entries: Vec<BenchEntry>,
}

impl BenchSection {
    /// Creates an empty section.
    pub fn new(name: impl Into<String>, threads: usize, paillier_bits: usize) -> Self {
        BenchSection { name: name.into(), threads, paillier_bits, entries: Vec::new() }
    }

    /// Serialises the section body (the value stored under the section key).
    fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("    \"threads\": {},\n", self.threads));
        out.push_str(&format!("    \"paillier_bits\": {},\n", self.paillier_bits));
        out.push_str("    \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n      {");
            out.push_str(&format!("\"label\": {}", json_string(&e.label)));
            out.push_str(", \"phases_ms\": {");
            for (j, (name, ms)) in e.phases_ms.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_string(name), json_number(*ms)));
            }
            out.push('}');
            if let Some(s) = e.speedup_vs_sequential {
                out.push_str(&format!(", \"speedup_vs_sequential\": {}", json_number(s)));
            }
            if let Some(err) = e.max_err {
                out.push_str(&format!(", \"max_err\": {}", json_number(err)));
            }
            out.push('}');
        }
        if !self.entries.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("]\n  }");
        out
    }

    /// Writes (or merges) this section into the report file at [`report_path`] and
    /// returns that path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = report_path();
        self.write_to(&path)?;
        Ok(path)
    }

    /// Writes (or merges) this section into the report file at `path`.
    ///
    /// The file is replaced atomically (write to a sibling temp file, then rename), so a
    /// reader or later writer never observes a partially-written object — an interrupted
    /// write can therefore not reset previously accumulated sections. Concurrent writers
    /// remain last-writer-wins for the read-modify-write as a whole.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut sections = match std::fs::read_to_string(path) {
            Ok(existing) => split_top_level_sections(&existing),
            Err(_) => Vec::new(),
        };
        let body = self.to_json();
        match sections.iter_mut().find(|(name, _)| name == &self.name) {
            Some((_, old)) => *old = body,
            None => sections.push((self.name.clone(), body)),
        }
        let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("BENCH_protocol");
        let tmp = path.with_file_name(format!("{file_name}.tmp"));
        {
            let mut file = std::fs::File::create(&tmp)?;
            writeln!(file, "{{")?;
            for (i, (name, body)) in sections.iter().enumerate() {
                let comma = if i + 1 < sections.len() { "," } else { "" };
                writeln!(file, "  {}: {}{}", json_string(name), body, comma)?;
            }
            writeln!(file, "}}")?;
        }
        std::fs::rename(&tmp, path)
    }
}

/// One `(section, label, phase) → value` measurement extracted from a report file.
///
/// The flat view the trend checker (`bench_trend`) diffs across commits: two reports
/// are comparable exactly on the keys they share.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSample {
    /// Section key (the producing binary's name, e.g. `protocol_smoke_t4`).
    pub section: String,
    /// Entry label within the section (the workload description).
    pub label: String,
    /// Phase name within the entry (e.g. `silo_enc`).
    pub phase: String,
    /// The recorded value (milliseconds for timing phases, bytes for memory phases).
    pub value: f64,
}

impl PhaseSample {
    /// The `(section, label, phase)` key two reports are joined on.
    pub fn key(&self) -> (String, String, String) {
        (self.section.clone(), self.label.clone(), self.phase.clone())
    }
}

/// Extracts every `phases_ms` measurement of a report file into a flat list.
///
/// Like [`split_top_level_sections`], this parses exactly the structure this module
/// writes (it scans for the `"label"` / `"phases_ms"` markers the serialiser emits);
/// unparsable content yields an empty list. `null` values (non-finite measurements)
/// are skipped.
pub fn parse_report_phases(text: &str) -> Vec<PhaseSample> {
    let mut out = Vec::new();
    for (section, body) in split_top_level_sections(text) {
        let mut rest = body.as_str();
        while let Some(pos) = rest.find("\"label\": ") {
            rest = &rest[pos + "\"label\": ".len()..];
            let chars: Vec<char> = rest.chars().collect();
            let Some((label, after)) = read_json_string(&chars, 0) else { break };
            rest = &rest[chars[..after].iter().map(|c| c.len_utf8()).sum::<usize>()..];
            let Some(ppos) = rest.find("\"phases_ms\": {") else { break };
            let pairs_start = ppos + "\"phases_ms\": {".len();
            let Some(pend) = rest[pairs_start..].find('}') else { break };
            for pair in rest[pairs_start..pairs_start + pend].split(',') {
                let Some((name, value)) = pair.split_once(':') else { continue };
                let name = name.trim().trim_matches('"').to_string();
                if let Ok(value) = value.trim().parse::<f64>() {
                    out.push(PhaseSample {
                        section: section.clone(),
                        label: label.clone(),
                        phase: name,
                        value,
                    });
                }
            }
            rest = &rest[pairs_start + pend..];
        }
    }
    out
}

/// The report path, honouring `ULDP_BENCH_JSON`.
pub fn report_path() -> PathBuf {
    match std::env::var(REPORT_PATH_ENV) {
        Ok(p) if !p.trim().is_empty() => Path::new(&p).to_path_buf(),
        _ => PathBuf::from("BENCH_protocol.json"),
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a finite float as a JSON number (non-finite values become `null`).
///
/// Values below the fixed-point resolution switch to exponent notation so small
/// magnitudes (e.g. a `max_err` of `3e-9`) are not flattened to `0.000000`.
fn json_number(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v != 0.0 && v.abs() < 1e-3 {
        format!("{v:e}")
    } else {
        format!("{v:.6}")
    }
}

/// Splits the top-level object of a report file into `(key, raw_value)` pairs.
///
/// This is not a general JSON parser: it handles exactly the structure this module
/// writes (an object of objects, with strings that use standard escapes), tracking
/// depth and string state to find the top-level key/value boundaries. Unparseable
/// content yields an empty list, which simply resets the file.
fn split_top_level_sections(text: &str) -> Vec<(String, String)> {
    let trimmed = text.trim();
    let Some(body) = trimmed.strip_prefix('{').and_then(|t| t.strip_suffix('}')) else {
        return Vec::new();
    };
    let mut sections = Vec::new();
    let chars: Vec<char> = body.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // find opening quote of the key
        while i < chars.len() && chars[i] != '"' {
            i += 1;
        }
        if i >= chars.len() {
            break;
        }
        let (key, after_key) = match read_json_string(&chars, i) {
            Some(parsed) => parsed,
            None => return Vec::new(),
        };
        i = after_key;
        while i < chars.len() && chars[i] != ':' {
            i += 1;
        }
        i += 1; // past ':'
        while i < chars.len() && chars[i].is_whitespace() {
            i += 1;
        }
        if i >= chars.len() || chars[i] != '{' {
            return Vec::new();
        }
        let start = i;
        let mut depth = 0usize;
        let mut in_string = false;
        while i < chars.len() {
            let c = chars[i];
            if in_string {
                if c == '\\' {
                    i += 1; // skip the escaped character
                } else if c == '"' {
                    in_string = false;
                }
            } else {
                match c {
                    '"' => in_string = true,
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        if i >= chars.len() {
            return Vec::new(); // unbalanced
        }
        let value: String = chars[start..=i].iter().collect();
        sections.push((key, value));
        i += 1;
    }
    sections
}

/// Reads a JSON string literal starting at the opening quote; returns the unescaped
/// content and the index just past the closing quote.
fn read_json_string(chars: &[char], start: usize) -> Option<(String, usize)> {
    debug_assert_eq!(chars[start], '"');
    let mut out = String::new();
    let mut i = start + 1;
    while i < chars.len() {
        match chars[i] {
            '"' => return Some((out, i + 1)),
            '\\' => {
                i += 1;
                match chars.get(i)? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    other => out.push(*other),
                }
            }
            c => out.push(c),
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_section(name: &str, threads: usize) -> BenchSection {
        let mut section = BenchSection::new(name, threads, 512);
        let mut entry = BenchEntry::new("users=10 \"quoted\"");
        entry.phase("srv_enc", 1.25).phase("silo_enc", 10.5);
        entry.speedup_vs_sequential = Some(3.2);
        entry.max_err = Some(1e-9);
        section.entries.push(entry);
        section
    }

    #[test]
    fn section_serialises_and_splits_back() {
        let body = sample_section("fig_test", 4).to_json();
        let file = format!("{{\n  \"fig_test\": {body}\n}}\n");
        let sections = split_top_level_sections(&file);
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].0, "fig_test");
        assert!(sections[0].1.contains("\"threads\": 4"));
        assert!(sections[0].1.contains("speedup_vs_sequential"));
    }

    #[test]
    fn merge_preserves_other_sections() {
        // write_to with an explicit path: tests must not mutate process env (racy with
        // concurrently running tests that call getenv).
        let dir = std::env::temp_dir().join(format!("uldp-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_protocol.json");
        let _ = std::fs::remove_file(&path);

        sample_section("alpha", 1).write_to(&path).unwrap();
        sample_section("beta", 4).write_to(&path).unwrap();
        // overwrite alpha; beta must survive
        sample_section("alpha", 8).write_to(&path).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let sections = split_top_level_sections(&text);
        let _ = std::fs::remove_dir_all(&dir);

        assert_eq!(sections.len(), 2);
        let alpha = sections.iter().find(|(n, _)| n == "alpha").unwrap();
        assert!(alpha.1.contains("\"threads\": 8"));
        let beta = sections.iter().find(|(n, _)| n == "beta").unwrap();
        assert!(beta.1.contains("\"threads\": 4"));
    }

    #[test]
    fn write_is_atomic_rename_with_no_stray_tmp() {
        // The merge path writes a sibling `.tmp` and renames it over the target; after
        // a successful write the temp file must be gone and the merged file must parse
        // both structurally and through the flat phase parser.
        let dir = std::env::temp_dir().join(format!("uldp-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_protocol.json");
        let _ = std::fs::remove_file(&path);

        sample_section("alpha", 1).write_to(&path).unwrap();
        sample_section("beta", 2).write_to(&path).unwrap();
        let tmp_left = dir.join("BENCH_protocol.json.tmp").exists();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        assert!(!tmp_left, "atomic-rename temp file left behind");
        assert_eq!(split_top_level_sections(&text).len(), 2);
        let samples = parse_report_phases(&text);
        assert_eq!(samples.len(), 4, "2 sections x 2 phases survive the merge");
        assert!(samples.iter().any(|s| s.section == "alpha"));
        assert!(samples.iter().any(|s| s.section == "beta"));
    }

    #[test]
    fn garbage_files_are_reset_not_crashed() {
        assert!(split_top_level_sections("not json at all").is_empty());
        assert!(split_top_level_sections("{\"a\": [1, 2]}").is_empty());
        assert!(split_top_level_sections("{\"a\": {unbalanced").is_empty());
    }

    #[test]
    fn json_strings_escape_controls() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_number(f64::INFINITY), "null");
        assert_eq!(json_number(1.5), "1.500000");
    }

    #[test]
    fn parse_report_phases_roundtrips_written_sections() {
        let dir = std::env::temp_dir().join(format!("uldp-parse-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_parse.json");
        let _ = std::fs::remove_file(&path);
        sample_section("alpha", 1).write_to(&path).unwrap();
        sample_section("beta", 4).write_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        let samples = parse_report_phases(&text);
        assert_eq!(samples.len(), 4); // 2 sections × 2 phases
        let alpha_silo = samples
            .iter()
            .find(|s| s.section == "alpha" && s.phase == "silo_enc")
            .expect("alpha silo_enc present");
        assert_eq!(alpha_silo.label, "users=10 \"quoted\"");
        assert!((alpha_silo.value - 10.5).abs() < 1e-9);
        // exponent-notation values (the sub-1e-3 serialisation) parse back
        let mut tiny = BenchSection::new("tiny", 1, 512);
        let mut entry = BenchEntry::new("t");
        entry.phase("err", 3.2e-9);
        tiny.entries.push(entry);
        let body = format!("{{\n  \"tiny\": {}\n}}\n", tiny.to_json());
        let parsed = parse_report_phases(&body);
        assert_eq!(parsed.len(), 1);
        assert!((parsed[0].value - 3.2e-9).abs() < 1e-15);
        // garbage yields an empty list, mirroring split_top_level_sections
        assert!(parse_report_phases("not json").is_empty());
    }

    #[test]
    fn json_numbers_keep_small_magnitudes() {
        assert_eq!(json_number(3.2e-9), "3.2e-9");
        assert_eq!(json_number(-4.5e-7), "-4.5e-7");
        assert_eq!(json_number(0.0), "0.000000");
        assert_eq!(json_number(0.002), "0.002000");
    }
}
