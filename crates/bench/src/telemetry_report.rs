//! The `telemetry` section of `BENCH_protocol.json`.
//!
//! `uldp-telemetry` is a leaf crate (it sits below the whole workspace so every layer
//! can emit into it), so it cannot depend on the bench report writer. The bridge lives
//! here instead: snapshot the process-wide registry — per-`(cat, name)` span totals,
//! counter values, gauge peaks and histogram aggregates — into one [`BenchSection`]
//! that merges into the shared report file next to the timing sections. All values ride
//! in the schema's `phases_ms` map (counters and counts are dimensionless; the key
//! names say which is which), so `parse_report_phases` and `bench_trend` see them with
//! no schema change.

use crate::{BenchEntry, BenchSection};
use std::path::PathBuf;
use uldp_telemetry::{export, metrics};

/// Builds the `telemetry` section from the current process's telemetry registry.
///
/// Four entries: `span_totals` (total milliseconds per `cat.name`), `span_counts`
/// (spans recorded per `cat.name`), `counters` (every registered counter, including
/// zeros so the schema is stable across runs) and `gauges_and_histograms` (gauge peaks
/// plus histogram count/sum aggregates).
pub fn telemetry_section(threads: usize, paillier_bits: usize) -> BenchSection {
    let mut section = BenchSection::new("telemetry", threads, paillier_bits);

    let stats = export::span_stats();
    let mut span_totals = BenchEntry::new("span_totals");
    let mut span_counts = BenchEntry::new("span_counts");
    for stat in &stats {
        let key = format!("{}.{}", stat.cat, stat.name);
        span_totals.phase(&key, stat.total_us as f64 / 1e3);
        span_counts.phase(&key, stat.count as f64);
    }

    let mut counters = BenchEntry::new("counters");
    for counter in metrics::all_counters() {
        counters.phase(counter.name(), counter.get() as f64);
    }

    let mut other = BenchEntry::new("gauges_and_histograms");
    for gauge in metrics::all_gauges() {
        other.phase(&format!("{}.peak", gauge.name()), gauge.peak() as f64);
    }
    for hist in metrics::all_histograms() {
        other.phase(&format!("{}.count", hist.name()), hist.count() as f64);
        other.phase(&format!("{}.sum_ms", hist.name()), hist.sum_us() as f64 / 1e3);
    }

    section.entries.push(span_totals);
    section.entries.push(span_counts);
    section.entries.push(counters);
    section.entries.push(other);
    section
}

/// Writes (or merges) the `telemetry` section into `BENCH_protocol.json` (honouring
/// `ULDP_BENCH_JSON`) and returns the path.
pub fn write_telemetry_section(threads: usize, paillier_bits: usize) -> std::io::Result<PathBuf> {
    telemetry_section(threads, paillier_bits).write()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::parse_report_phases;

    #[test]
    fn section_carries_all_registered_metrics() {
        // Counters are included even at zero, so the section's schema does not depend
        // on what happened to run first in this test process.
        let section = telemetry_section(4, 512);
        assert_eq!(section.name, "telemetry");
        let counters =
            section.entries.iter().find(|e| e.label == "counters").expect("counters entry");
        let names: Vec<&str> = counters.phases_ms.iter().map(|(n, _)| n.as_str()).collect();
        for expected in ["bigint.mont_mul", "crypto.paillier_encrypt", "privacy.ledger_entries"] {
            assert!(names.contains(&expected), "missing counter {expected}");
        }

        let dir = std::env::temp_dir().join(format!("uldp-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_telemetry.json");
        let _ = std::fs::remove_file(&path);
        section.write_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        let samples = parse_report_phases(&text);
        assert!(samples.iter().all(|s| s.section == "telemetry"));
        assert!(samples.iter().any(|s| s.label == "counters" && s.phase == "bigint.mont_mul"));
        assert!(samples
            .iter()
            .any(|s| s.label == "gauges_and_histograms" && s.phase == "runtime.fold_bytes.peak"));
    }
}
