//! Figure 11: scaling of the private weighting protocol with model size and user count.
//!
//! Mirrors the paper's artificial benchmark: 3 silos, 20 users, a model of 16 parameters
//! as the default, then (top row) parameter counts swept from 16 upwards and (bottom row)
//! user counts swept from 10 to 40. Reports the per-phase wall-clock time of one weighting
//! round; the dominant silo-side encryption must grow linearly in both sweeps.
//!
//! Every round also runs on a 1-thread runtime to verify bitwise-identical aggregates and
//! measure the pooled speedup; all timings land in `BENCH_protocol.json`
//! ([`uldp_bench::report`]).
//!
//! ```bash
//! cargo run --release -p uldp-bench --bin fig11_protocol_scaling
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uldp_bench::{
    millis, pooled_vs_sequential_round, print_table, BenchEntry, BenchSection, ResultRow, Scale,
};
use uldp_core::{PrivateWeightingProtocol, ProtocolConfig};
use uldp_runtime::Runtime;

fn random_histogram(rng: &mut StdRng, num_silos: usize, num_users: usize) -> Vec<Vec<usize>> {
    (0..num_silos).map(|_| (0..num_users).map(|_| rng.gen_range(1..8usize)).collect()).collect()
}

fn one_round(
    label: &str,
    num_silos: usize,
    num_users: usize,
    params: usize,
    paillier_bits: usize,
    rng: &mut StdRng,
) -> (ResultRow, BenchEntry) {
    let histogram = random_histogram(rng, num_silos, num_users);
    let config = ProtocolConfig {
        paillier_bits,
        dh_bits: 512,
        use_rfc_group: true,
        n_max: 64,
        ..Default::default()
    };
    let protocol = PrivateWeightingProtocol::setup(&histogram, &config, rng);
    let deltas: Vec<Vec<Vec<f64>>> = histogram
        .iter()
        .map(|row| {
            row.iter().map(|_| (0..params).map(|_| rng.gen_range(-0.1..0.1)).collect()).collect()
        })
        .collect();
    let noises: Vec<Vec<f64>> =
        (0..num_silos).map(|_| (0..params).map(|_| rng.gen_range(-0.01..0.01)).collect()).collect();

    let (protocol, cmp) = pooled_vs_sequential_round(protocol, &deltas, &noises, rng);
    let (timings, seq_timings) = (&cmp.timings, &cmp.seq_timings);

    let setup = protocol.setup_timings();
    let mut row = ResultRow::new(label);
    row.push_str("key bits", protocol.modulus_bits().to_string());
    row.push_f64("key exch ms", millis(setup.key_exchange));
    row.push_f64("srv enc ms", millis(timings.server_encryption));
    row.push_f64("silo enc ms", millis(timings.silo_weighting));
    row.push_f64("agg ms", millis(timings.aggregation));
    row.push_f64("round ms", millis(timings.total()));
    row.push_f64("speedup", cmp.speedup);

    let mut entry = BenchEntry::new(label);
    entry
        .phase("key_exch", millis(setup.key_exchange))
        .phase("srv_enc", millis(timings.server_encryption))
        .phase("silo_enc", millis(timings.silo_weighting))
        .phase("agg", millis(timings.aggregation))
        .phase("round", millis(timings.total()))
        .phase("round_seq", millis(seq_timings.total()));
    entry.speedup_vs_sequential = Some(cmp.speedup);
    (row, entry)
}

fn main() {
    let scale = Scale::from_env();
    let paillier_bits = scale.pick(512, 3072);
    let mut rng = StdRng::seed_from_u64(11);
    let threads = Runtime::global().threads();

    println!(
        "Figure 11 — private weighting protocol scaling \
         (3 silos, {paillier_bits}–bit Paillier, {threads} threads)"
    );

    let mut section = BenchSection::new("fig11_protocol_scaling", threads, paillier_bits);

    // Top row: parameter-count sweep at 20 users.
    let param_sweep = scale.pick(vec![16usize, 64, 256, 1024], vec![16usize, 100, 1000, 10_000]);
    let mut rows = Vec::new();
    for &params in &param_sweep {
        let (row, entry) =
            one_round(&format!("params={params}"), 3, 20, params, paillier_bits, &mut rng);
        rows.push(row);
        section.entries.push(entry);
    }
    print_table("Figure 11 (top): scaling with parameter count (|U|=20)", &rows);

    // Bottom row: user-count sweep at 16 parameters.
    let user_sweep = [10usize, 20, 30, 40];
    let mut rows = Vec::new();
    for &users in &user_sweep {
        let (row, entry) =
            one_round(&format!("users={users}"), 3, users, 16, paillier_bits, &mut rng);
        rows.push(row);
        section.entries.push(entry);
    }
    print_table("Figure 11 (bottom): scaling with user count (16 parameters)", &rows);

    match section.write() {
        Ok(path) => println!("\nWrote machine-readable timings to {}", path.display()),
        Err(e) => eprintln!("\nFailed to write benchmark JSON: {e}"),
    }
    println!(
        "\nExpected shape (paper): the silo-side encrypted weighting dominates and grows linearly\n\
         with the parameter count and with the number of users; server aggregation grows with the\n\
         parameter count as well; key exchange is flat."
    );
}
