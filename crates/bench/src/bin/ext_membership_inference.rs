//! Extension experiment: user-level membership inference against trained models.
//!
//! The paper's conclusion suggests empirically comparing the privacy protection of the
//! different methods with membership-inference attacks. This harness trains the
//! non-private baseline (DEFAULT) and the private methods on a memorisation-prone
//! Creditcard federation and runs the user-level loss-threshold attack of
//! `uldp_core::attack`, reporting the attack AUC and membership advantage per method.
//! User-level DP should push the advantage towards zero.
//!
//! A second pass scores the attack per [`uldp_core::Scenario`] — dropouts, stragglers,
//! byzantine silos, Zipf skew — against the accountant's ε and the `(ε, δ)`-DP ceiling
//! on any attack's advantage, and writes the result as the `scenarios` section of
//! `BENCH_protocol.json`.
//!
//! ```bash
//! cargo run --release -p uldp-bench --bin ext_membership_inference
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_bench::scenarios::{evaluate_scenarios, print_scenario_table, write_scenarios_section};
use uldp_bench::{print_table, ResultRow, Scale};
use uldp_core::attack::{member_user_records, user_level_membership_inference};
use uldp_core::{FlConfig, Method, Trainer, WeightingStrategy};
use uldp_datasets::creditcard::{self, CreditcardConfig};
use uldp_datasets::Allocation;
use uldp_ml::{LinearClassifier, Model, Sample};

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(15, 60);

    // A small, noisy federation encourages memorisation, which is what the attack detects.
    let mut rng = StdRng::seed_from_u64(13);
    let cfg = CreditcardConfig {
        train_records: scale.pick(600, 2500),
        test_records: 400,
        num_users: 40,
        class_separation: 0.6, // hard task: low separation forces memorisation
        allocation: Allocation::Uniform,
        ..Default::default()
    };
    let dataset = creditcard::generate(&mut rng, &cfg);
    // Non-member users: fresh users drawn from the same generative process.
    let shadow = creditcard::generate(&mut rng, &cfg);
    let members = member_user_records(&dataset);
    let non_members = member_user_records(&shadow);
    let non_members: Vec<Vec<Sample>> = non_members.into_iter().take(members.len()).collect();

    println!(
        "Membership inference extension: {} member users vs {} non-member users, T={rounds}",
        members.len(),
        non_members.len()
    );

    let methods = [
        (Method::Default, 0.0),
        (Method::UldpNaive, 5.0),
        (Method::UldpAvg { weighting: WeightingStrategy::Uniform }, 5.0),
        (Method::UldpAvg { weighting: WeightingStrategy::RecordProportional }, 5.0),
    ];

    let mut rows = Vec::new();
    for (method, sigma) in methods {
        let mut config = FlConfig::recommended(method, dataset.num_silos);
        config.rounds = rounds;
        config.local_epochs = 4;
        config.local_lr = 0.5;
        config.sigma = sigma;
        config.clip_bound = 1.0;
        config.eval_every = rounds;
        if matches!(method, Method::UldpAvg { .. }) {
            config.global_lr = dataset.num_silos as f64 * 20.0;
        }
        let model: Box<dyn Model> = Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
        let mut trainer = Trainer::new(config, dataset.clone(), model);
        let history = trainer.run();
        let attack = user_level_membership_inference(trainer.model(), &members, &non_members);
        let mut row = ResultRow::new(history.method.clone());
        row.push_f64("test acc", history.final_accuracy().unwrap_or(f64::NAN));
        row.push_f64("epsilon", history.final_epsilon());
        row.push_f64("attack AUC", attack.auc);
        row.push_f64("advantage", attack.advantage);
        rows.push(row);
    }
    print_table("User-level membership inference (loss-threshold attack)", &rows);
    println!(
        "\nExpected shape: the non-private DEFAULT model leaks the most (largest advantage);\n\
         the ULDP methods keep the user-level attack advantage close to zero at the cost of\n\
         some accuracy."
    );

    // Per-scenario pass: the same attack under each catalogue scenario's fault plan and
    // allocation, scored against the accountant's ε. Every empirical advantage must sit
    // under the (ε, δ) ceiling — adversarial conditions degrade utility, not privacy.
    let outcomes = evaluate_scenarios(scale.pick(5, 20), scale.pick(400, 1200), 5.0);
    print_scenario_table(&outcomes);
    match write_scenarios_section(&outcomes) {
        Ok(path) => println!("Wrote scenarios section to {}", path.display()),
        Err(e) => eprintln!("Failed to write scenarios section: {e}"),
    }
}
