//! Figure 4: privacy-utility trade-offs on the Creditcard dataset.
//!
//! Four panels: |U| ∈ {100, 1000} × {uniform, zipf} allocation, |S| = 5, σ = 5, δ = 1e-5.
//! For every method the final test accuracy and accumulated ULDP ε are reported, plus the
//! per-evaluation-point trajectory as CSV.
//!
//! ```bash
//! cargo run --release -p uldp-bench --bin fig4_creditcard
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_bench::{print_table, run_training, ResultRow, Scale};
use uldp_core::{GroupSize, Method, WeightingStrategy};
use uldp_datasets::creditcard::{self, CreditcardConfig};
use uldp_datasets::Allocation;
use uldp_ml::LinearClassifier;

fn methods() -> Vec<Method> {
    vec![
        Method::Default,
        Method::UldpNaive,
        Method::UldpGroup { group_size: GroupSize::Max, sampling_rate: 0.05 },
        Method::UldpGroup { group_size: GroupSize::Median, sampling_rate: 0.05 },
        Method::UldpGroup { group_size: GroupSize::Fixed(2), sampling_rate: 0.05 },
        Method::UldpGroup { group_size: GroupSize::Fixed(8), sampling_rate: 0.05 },
        Method::UldpSgd { weighting: WeightingStrategy::Uniform },
        Method::UldpAvg { weighting: WeightingStrategy::Uniform },
        Method::UldpAvg { weighting: WeightingStrategy::RecordProportional },
    ]
}

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(10, 50);
    let train_records = scale.pick(3000, 25_000);
    let users = scale.pick(vec![100usize, 1000], vec![100usize, 1000]);
    let sigma = 5.0;

    println!("Figure 4 — Creditcard privacy-utility trade-offs (|S|=5, sigma={sigma}, T={rounds})");

    for &num_users in &users {
        for allocation in [Allocation::Uniform, Allocation::zipf_default()] {
            let mut rng = StdRng::seed_from_u64(4);
            let dataset = creditcard::generate(
                &mut rng,
                &CreditcardConfig {
                    train_records,
                    test_records: train_records / 5,
                    num_users,
                    allocation,
                    ..Default::default()
                },
            );
            let dim = dataset.feature_dim();
            let make_model =
                move || -> Box<dyn uldp_ml::Model> { Box::new(LinearClassifier::new(dim, 2)) };
            let mut rows = Vec::new();
            for method in methods() {
                let history = run_training(&dataset, method, rounds, sigma, 1.0, &make_model);
                let mut row = ResultRow::new(history.method.clone());
                row.push_f64("final acc", history.final_accuracy().unwrap_or(f64::NAN));
                row.push_f64("final loss", history.final_loss().unwrap_or(f64::NAN));
                row.push_f64("epsilon", history.final_epsilon());
                rows.push(row);
            }
            print_table(
                &format!(
                    "Figure 4 panel: n≈{:.0} (|U|={num_users}), {}",
                    dataset.avg_records_per_user(),
                    allocation.label()
                ),
                &rows,
            );
        }
    }
    println!(
        "\nExpected shape (paper): ULDP-AVG/AVG-w approach DEFAULT's accuracy at small epsilon;\n\
         ULDP-GROUP-* reach good accuracy only at epsilon orders of magnitude larger;\n\
         ULDP-NAIVE has small epsilon but poor accuracy; for small n (|U| large) the GROUP\n\
         variants become more competitive in accuracy."
    );
}
