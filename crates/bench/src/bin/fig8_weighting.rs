//! Figure 8: effectiveness of the enhanced weighting strategy.
//!
//! Compares the final test loss of ULDP-AVG (uniform weights) and ULDP-AVG-w
//! (record-proportional weights) on the Creditcard dataset under uniform and zipf record
//! allocations, for |S| ∈ {5, 20, 50} silos. Noise is disabled (σ = 0) so the comparison
//! isolates the clipping-weight bias the strategy is designed to reduce, matching the
//! paper's discussion of Remark 4.
//!
//! ```bash
//! cargo run --release -p uldp-bench --bin fig8_weighting
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_bench::{print_table, run_training, ResultRow, Scale};
use uldp_core::{Method, WeightingStrategy};
use uldp_datasets::creditcard::{self, CreditcardConfig};
use uldp_datasets::Allocation;
use uldp_ml::LinearClassifier;

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(8, 40);
    let train_records = scale.pick(2500, 25_000);
    let silo_counts = scale.pick(vec![5usize, 20], vec![5usize, 20, 50]);

    println!("Figure 8 — enhanced weighting strategy (Creditcard, sigma=0, T={rounds})");

    let mut rows = Vec::new();
    for &num_silos in &silo_counts {
        for allocation in [Allocation::Uniform, Allocation::zipf_default()] {
            let mut rng = StdRng::seed_from_u64(8);
            let dataset = creditcard::generate(
                &mut rng,
                &CreditcardConfig {
                    train_records,
                    test_records: train_records / 5,
                    num_users: 100,
                    num_silos,
                    allocation,
                    ..Default::default()
                },
            );
            let dim = dataset.feature_dim();
            let make_model =
                move || -> Box<dyn uldp_ml::Model> { Box::new(LinearClassifier::new(dim, 2)) };
            let uniform = run_training(
                &dataset,
                Method::UldpAvg { weighting: WeightingStrategy::Uniform },
                rounds,
                0.0,
                1.0,
                &make_model,
            );
            let weighted = run_training(
                &dataset,
                Method::UldpAvg { weighting: WeightingStrategy::RecordProportional },
                rounds,
                0.0,
                1.0,
                &make_model,
            );
            let mut row = ResultRow::new(format!("|S|={num_silos}, {}", allocation.label()));
            row.push_f64("loss ULDP-AVG", uniform.final_loss().unwrap_or(f64::NAN));
            row.push_f64("loss ULDP-AVG-w", weighted.final_loss().unwrap_or(f64::NAN));
            row.push_f64(
                "gap (AVG - AVG-w)",
                uniform.final_loss().unwrap_or(f64::NAN)
                    - weighted.final_loss().unwrap_or(f64::NAN),
            );
            rows.push(row);
        }
    }
    print_table("Figure 8: test loss of ULDP-AVG vs ULDP-AVG-w", &rows);
    println!(
        "\nExpected shape (paper): the gap in favour of ULDP-AVG-w grows with record skew (zipf)\n\
         and with the number of silos (uniform weights shrink as 1/|S| while the enhanced\n\
         weights concentrate on the silos that actually hold the user's records)."
    );
}
