//! Figure 9: effect of user-level sub-sampling.
//!
//! Runs ULDP-AVG on the Creditcard dataset (|U| = 1000) and the MNIST-like dataset
//! (|U| = 10000 at full scale) for user-level Poisson sampling rates
//! q ∈ {0.1, 0.3, 0.5, 0.7, 1.0}, reporting final utility and the accumulated ULDP ε —
//! the privacy amplification of Algorithm 4.
//!
//! ```bash
//! cargo run --release -p uldp-bench --bin fig9_subsampling
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_bench::{print_table, run_training, ResultRow, Scale};
use uldp_core::{Method, WeightingStrategy};
use uldp_datasets::creditcard::{self, CreditcardConfig};
use uldp_datasets::mnist_like::{self, MnistConfig};
use uldp_datasets::Allocation;
use uldp_ml::{LinearClassifier, MlpClassifier};

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(8, 40);
    let sigma = 5.0;
    let method = Method::UldpAvg { weighting: WeightingStrategy::Uniform };
    let rates = [0.1f64, 0.3, 0.5, 0.7, 1.0];

    println!("Figure 9 — user-level sub-sampling (sigma={sigma}, T={rounds})");

    // Panel (a): Creditcard with |U| = 1000.
    {
        let mut rng = StdRng::seed_from_u64(9);
        let dataset = creditcard::generate(
            &mut rng,
            &CreditcardConfig {
                train_records: scale.pick(4000, 25_000),
                test_records: 800,
                num_users: 1000,
                allocation: Allocation::Uniform,
                ..Default::default()
            },
        );
        let dim = dataset.feature_dim();
        let make_model =
            move || -> Box<dyn uldp_ml::Model> { Box::new(LinearClassifier::new(dim, 2)) };
        let mut rows = Vec::new();
        for &q in &rates {
            let history = run_training(&dataset, method, rounds, sigma, q, &make_model);
            let mut row = ResultRow::new(format!("q={q}"));
            row.push_f64("accuracy", history.final_accuracy().unwrap_or(f64::NAN));
            row.push_f64("epsilon", history.final_epsilon());
            rows.push(row);
        }
        print_table("Figure 9a: Creditcard, |U|=1000", &rows);
    }

    // Panel (b): MNIST with a large user base.
    {
        let num_users = scale.pick(2000, 10_000);
        let mut rng = StdRng::seed_from_u64(10);
        let dataset = mnist_like::generate(
            &mut rng,
            &MnistConfig {
                train_records: scale.pick(4000, 60_000),
                test_records: 800,
                dim: scale.pick(64, 784),
                num_users,
                allocation: Allocation::Uniform,
                ..Default::default()
            },
        );
        let dim = dataset.feature_dim();
        let make_model = move || -> Box<dyn uldp_ml::Model> {
            let mut model_rng = StdRng::seed_from_u64(11);
            Box::new(MlpClassifier::new(dim, 16, 10, &mut model_rng))
        };
        let mut rows = Vec::new();
        for &q in &[0.1f64, 0.3, 0.5, 1.0] {
            let history = run_training(&dataset, method, rounds, sigma, q, &make_model);
            let mut row = ResultRow::new(format!("q={q}"));
            row.push_f64("accuracy", history.final_accuracy().unwrap_or(f64::NAN));
            row.push_f64("test loss", history.final_loss().unwrap_or(f64::NAN));
            row.push_f64("epsilon", history.final_epsilon());
            rows.push(row);
        }
        print_table(&format!("Figure 9b: MNIST, |U|={num_users}"), &rows);
    }

    println!(
        "\nExpected shape (paper): smaller q gives markedly smaller epsilon; the utility cost of\n\
         sub-sampling is modest (especially with many users), so intermediate q values (e.g. 0.7)\n\
         dominate the q=1 trade-off."
    );
}
