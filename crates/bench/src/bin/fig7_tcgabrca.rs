//! Figure 7: privacy-utility trade-offs on the TcgaBrca survival benchmark.
//!
//! Four panels: |U| ∈ {50, 200} × {uniform, zipf}, 6 silos, Cox model evaluated with the
//! concordance index (C-index) plus the accumulated ULDP ε.
//!
//! ```bash
//! cargo run --release -p uldp-bench --bin fig7_tcgabrca
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_bench::{print_table, run_training, ResultRow, Scale};
use uldp_core::{GroupSize, Method, WeightingStrategy};
use uldp_datasets::tcga_brca::{self, TcgaBrcaConfig};
use uldp_datasets::Allocation;
use uldp_ml::CoxRegression;

fn methods() -> Vec<Method> {
    vec![
        Method::Default,
        Method::UldpNaive,
        Method::UldpGroup { group_size: GroupSize::Max, sampling_rate: 0.2 },
        Method::UldpSgd { weighting: WeightingStrategy::Uniform },
        Method::UldpAvg { weighting: WeightingStrategy::Uniform },
        Method::UldpAvg { weighting: WeightingStrategy::RecordProportional },
    ]
}

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(10, 50);
    let sigma = 5.0;

    println!("Figure 7 — TcgaBrca privacy-utility trade-offs (6 silos, sigma={sigma}, T={rounds})");

    for num_users in [50usize, 200] {
        for allocation in [Allocation::Uniform, Allocation::zipf_default()] {
            let mut rng = StdRng::seed_from_u64(7);
            let dataset = tcga_brca::generate(
                &mut rng,
                &TcgaBrcaConfig { num_users, allocation, ..Default::default() },
            );
            let dim = dataset.feature_dim();
            let make_model =
                move || -> Box<dyn uldp_ml::Model> { Box::new(CoxRegression::new(dim)) };
            let mut rows = Vec::new();
            for method in methods() {
                let history = run_training(&dataset, method, rounds, sigma, 1.0, &make_model);
                let mut row = ResultRow::new(history.method.clone());
                row.push_f64("C-index", history.final_c_index().unwrap_or(f64::NAN));
                row.push_f64("test loss", history.final_loss().unwrap_or(f64::NAN));
                row.push_f64("epsilon", history.final_epsilon());
                rows.push(row);
            }
            print_table(
                &format!(
                    "Figure 7 panel: n≈{:.1} (|U|={num_users}), {}",
                    dataset.avg_records_per_user(),
                    allocation.label()
                ),
                &rows,
            );
        }
    }
    println!(
        "\nExpected shape (paper): ULDP-AVG-w converges fastest among private methods in C-index;\n\
         ULDP-SGD slowest; GROUP variants need much larger epsilon for comparable C-index."
    );
}
