//! Figure 6: privacy-utility trade-offs on the HeartDisease benchmark.
//!
//! Four panels: |U| ∈ {50, 200} × {uniform, zipf}, 4 silos with the FLamby-style fixed
//! silo sizes, accuracy and ULDP ε per method.
//!
//! ```bash
//! cargo run --release -p uldp-bench --bin fig6_heartdisease
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_bench::{print_table, run_training, ResultRow, Scale};
use uldp_core::{GroupSize, Method, WeightingStrategy};
use uldp_datasets::heart_disease::{self, HeartDiseaseConfig};
use uldp_datasets::Allocation;
use uldp_ml::LinearClassifier;

fn methods() -> Vec<Method> {
    vec![
        Method::Default,
        Method::UldpNaive,
        Method::UldpGroup { group_size: GroupSize::Max, sampling_rate: 0.1 },
        Method::UldpGroup { group_size: GroupSize::Median, sampling_rate: 0.1 },
        Method::UldpSgd { weighting: WeightingStrategy::Uniform },
        Method::UldpAvg { weighting: WeightingStrategy::Uniform },
        Method::UldpAvg { weighting: WeightingStrategy::RecordProportional },
    ]
}

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(10, 50);
    let sigma = 5.0;

    println!(
        "Figure 6 — HeartDisease privacy-utility trade-offs (4 silos, sigma={sigma}, T={rounds})"
    );

    for num_users in [50usize, 200] {
        for allocation in [Allocation::Uniform, Allocation::zipf_default()] {
            let mut rng = StdRng::seed_from_u64(6);
            let dataset = heart_disease::generate(
                &mut rng,
                &HeartDiseaseConfig { num_users, allocation, ..Default::default() },
            );
            let dim = dataset.feature_dim();
            let make_model =
                move || -> Box<dyn uldp_ml::Model> { Box::new(LinearClassifier::new(dim, 2)) };
            let mut rows = Vec::new();
            for method in methods() {
                let history = run_training(&dataset, method, rounds, sigma, 1.0, &make_model);
                let mut row = ResultRow::new(history.method.clone());
                row.push_f64("accuracy", history.final_accuracy().unwrap_or(f64::NAN));
                row.push_f64("epsilon", history.final_epsilon());
                rows.push(row);
            }
            print_table(
                &format!(
                    "Figure 6 panel: n≈{:.0} (|U|={num_users}), {}",
                    dataset.avg_records_per_user(),
                    allocation.label()
                ),
                &rows,
            );
        }
    }
    println!(
        "\nExpected shape (paper): ULDP-AVG(-w) competitive with DEFAULT at small epsilon;\n\
         ULDP-GROUP needs large epsilon; ULDP-NAIVE cheap in epsilon but low accuracy."
    );
}
