//! Ablation: sensitivity of ULDP-AVG to the clipping bound `C` and the noise multiplier σ.
//!
//! The paper fixes σ = 5 and tunes `C` per dataset; this ablation sweeps both to show the
//! trade-off the design relies on: too small a clipping bound biases the per-user deltas,
//! too large a bound inflates the added noise (whose standard deviation is σ·C/√|S| per
//! silo), and the privacy budget depends only on σ and T — not on C.
//!
//! ```bash
//! cargo run --release -p uldp-bench --bin ablation_clipping
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_bench::{print_table, ResultRow, Scale};
use uldp_core::{FlConfig, Method, Trainer, WeightingStrategy};
use uldp_datasets::creditcard::{self, CreditcardConfig};
use uldp_ml::LinearClassifier;

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(10, 40);
    let mut rng = StdRng::seed_from_u64(17);
    let dataset = creditcard::generate(
        &mut rng,
        &CreditcardConfig {
            train_records: scale.pick(2000, 25_000),
            test_records: 500,
            num_users: 100,
            ..Default::default()
        },
    );
    let dim = dataset.feature_dim();
    let method = Method::UldpAvg { weighting: WeightingStrategy::Uniform };

    println!("Ablation — clipping bound C and noise multiplier sigma (ULDP-AVG, T={rounds})");

    let mut rows = Vec::new();
    for &sigma in &[1.0f64, 5.0, 10.0] {
        for &clip in &[0.1f64, 1.0, 10.0] {
            let mut config = FlConfig::recommended(method, dataset.num_silos);
            config.rounds = rounds;
            config.local_epochs = 2;
            config.local_lr = 0.3;
            config.global_lr = dataset.num_silos as f64 * 20.0;
            config.sigma = sigma;
            config.clip_bound = clip;
            config.eval_every = rounds;
            let model = Box::new(LinearClassifier::new(dim, 2));
            let history = Trainer::new(config, dataset.clone(), model).run();
            let mut row = ResultRow::new(format!("sigma={sigma}, C={clip}"));
            row.push_f64("accuracy", history.final_accuracy().unwrap_or(f64::NAN));
            row.push_f64("test loss", history.final_loss().unwrap_or(f64::NAN));
            row.push_f64("epsilon", history.final_epsilon());
            rows.push(row);
        }
    }
    print_table("Ablation: accuracy / loss / epsilon vs (sigma, C)", &rows);
    println!(
        "\nExpected shape: epsilon depends only on sigma (and T); for a fixed sigma there is an\n\
         interior sweet spot in C — very small C under-utilises each user's update, very large C\n\
         drowns the aggregate in Gaussian noise."
    );
}
