//! Per-phase perf-trend check: diffs a fresh `BENCH_protocol.json` against a committed
//! baseline and fails loudly on large regressions.
//!
//! CI regenerates the protocol smoke sections on every run; this binary joins the fresh
//! report with `BENCH_baseline.json` on `(section, label, phase)` and flags every phase
//! whose timing grew by more than `ULDP_TREND_FACTOR` (default 2× — deliberately
//! conservative, since baseline and CI hardware differ) over a baseline of at least
//! `ULDP_TREND_MIN_MS` (default 100 ms, so sub-millisecond phases don't trip on noise).
//! Memory phases (`*_bytes`) are analytic and thread-independent, so they are held to
//! the same factor — any growth there is a real footprint regression, not noise.
//!
//! Keys present in only one of the two files are reported but never fail the check
//! (individual binaries may regenerate only their own sections). Whole *sections* that
//! exist only in the fresh report (e.g. a newly added `scenarios` or `telemetry`
//! section the committed baseline predates) are listed as informational — they are new
//! coverage, not regressions, and they don't count towards the "nothing comparable"
//! error. A missing or unparsable *baseline file* is an error: the check would silently
//! pass forever.
//!
//! The join/classification logic lives in [`uldp_bench::trend`] so it is unit-testable
//! with synthetic reports; this binary owns only argument parsing, printing and exit
//! codes.
//!
//! ```bash
//! cargo run --release -p uldp-bench --bin bench_trend -- BENCH_baseline.json BENCH_protocol.json
//! ```

use uldp_bench::report::{parse_report_phases, PhaseSample};
use uldp_bench::trend::{compare, TrendConfig};

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(default)
}

fn load(path: &str) -> Vec<PhaseSample> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_trend: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let samples = parse_report_phases(&text);
    if samples.is_empty() {
        eprintln!("bench_trend: no phase samples found in {path}");
        std::process::exit(2);
    }
    samples
}

fn main() {
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let fresh_path = args.next().unwrap_or_else(|| "BENCH_protocol.json".to_string());
    let factor = env_f64("ULDP_TREND_FACTOR", 2.0);
    let min_ms = env_f64("ULDP_TREND_MIN_MS", 100.0);

    let baseline = load(&baseline_path);
    let fresh = load(&fresh_path);

    println!(
        "bench_trend: {fresh_path} vs {baseline_path} (fail factor {factor}x, \
         baseline floor {min_ms} ms)"
    );
    let report = compare(&baseline, &fresh, TrendConfig { factor, min_ms });
    for c in &report.comparisons {
        let marker = if c.regressed { " REGRESSION" } else { "" };
        println!(
            "  {:<28} {:<40} {:<12} {:>12.1} -> {:>12.1}  ({:>5.2}x){marker}",
            c.sample.section, c.sample.label, c.sample.phase, c.baseline, c.sample.value, c.ratio
        );
    }
    println!(
        "bench_trend: compared {} phases \
         ({} below the {min_ms} ms floor, {} without a baseline key)",
        report.comparisons.len(),
        report.skipped_small,
        report.unmatched
    );
    for (section, count) in &report.new_sections {
        println!(
            "bench_trend: section \"{section}\" is new ({count} phase(s), no baseline yet) \
             — informational only"
        );
    }
    if report.nothing_comparable() {
        eprintln!("bench_trend: nothing comparable — baseline and fresh reports share no keys");
        std::process::exit(2);
    }
    let regressions = report.regressions();
    if !regressions.is_empty() {
        eprintln!("bench_trend: {} phase(s) regressed past {factor}x:", regressions.len());
        for c in &regressions {
            eprintln!(
                "  {} / {} / {}: {:.1} -> {:.1} ({:.2}x > {factor}x)",
                c.sample.section,
                c.sample.label,
                c.sample.phase,
                c.baseline,
                c.sample.value,
                c.ratio
            );
        }
        std::process::exit(1);
    }
    println!("bench_trend: OK — no phase regressed past {factor}x");
}
