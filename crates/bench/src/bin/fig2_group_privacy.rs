//! Figure 2: privacy-bound degradation of the group-privacy conversion.
//!
//! Reproduces the paper's pre-experiment: a sub-sampled Gaussian mechanism with σ = 5 and
//! sampling rate 0.01 composed for 1e5 iterations (a typical DP-SGD run), converted to
//! group DP at δ = 1e-5 for group sizes k ∈ {1, 2, 4, 8, 16, 32, 64} via both routes:
//! the group-privacy property of RDP (Lemma 6) and normal DP (Lemma 2 + Lemma 5 with the
//! binary search on the intermediate δ).
//!
//! ```bash
//! cargo run --release -p uldp-bench --bin fig2_group_privacy
//! ```

use uldp_accounting::{
    default_orders, group_epsilon_via_normal_dp, group_rdp, rdp_to_dp, subsampled_gaussian_rdp,
    RdpCurve,
};
use uldp_bench::{print_table, ResultRow, Scale};

fn main() {
    let scale = Scale::from_env();
    let sigma = 5.0;
    let sampling_rate = 0.01;
    let iterations = scale.pick(1e5, 1e5);
    let delta = 1e-5;

    println!(
        "Figure 2 — group-privacy conversion blow-up (sigma={sigma}, q={sampling_rate}, {iterations} iterations, delta={delta})"
    );

    let curve = RdpCurve::from_fn(default_orders(), |a| {
        subsampled_gaussian_rdp(a, sampling_rate, sigma) * iterations
    });

    let mut rows = Vec::new();
    for k in [1u64, 2, 4, 8, 16, 32, 64] {
        let rdp_route = if k == 1 {
            rdp_to_dp(&curve, delta).0
        } else {
            rdp_to_dp(&group_rdp(&curve, k), delta).0
        };
        let dp_route = group_epsilon_via_normal_dp(&curve, delta, k, 1e-6);
        let mut row = ResultRow::new(format!("k={k}"));
        row.push_f64("eps (RDP route)", rdp_route);
        row.push_f64("eps (DP route)", dp_route);
        row.push_f64("blowup vs k=1", rdp_route / rdp_to_dp(&curve, delta).0);
        rows.push(row);
    }
    print_table("Figure 2: epsilon of GDP at fixed delta vs group size k", &rows);
    println!(
        "\nExpected shape (paper): epsilon grows super-linearly in k — single digits at k=1,\n\
         thousands by k=32-64; the two conversion routes agree within a small factor."
    );
}
