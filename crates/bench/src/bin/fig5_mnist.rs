//! Figure 5: privacy-utility trade-offs on the MNIST-like dataset.
//!
//! Six panels in the paper: |U| ∈ {100, 10000} × {uniform, zipf} × {iid, non-iid}.
//! This harness runs the four distinctive combinations (uniform/iid, zipf/iid, zipf/non-iid
//! for both user counts can be enabled at full scale) and reports test loss, accuracy and
//! the accumulated ULDP ε per method, using an MLP of roughly the paper's parameter count.
//!
//! ```bash
//! cargo run --release -p uldp-bench --bin fig5_mnist
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_bench::{print_table, run_training, ResultRow, Scale};
use uldp_core::{GroupSize, Method, WeightingStrategy};
use uldp_datasets::mnist_like::{self, MnistConfig};
use uldp_datasets::Allocation;
use uldp_ml::MlpClassifier;

fn methods() -> Vec<Method> {
    vec![
        Method::Default,
        Method::UldpNaive,
        Method::UldpGroup { group_size: GroupSize::Fixed(2), sampling_rate: 0.02 },
        Method::UldpGroup { group_size: GroupSize::Max, sampling_rate: 0.02 },
        Method::UldpSgd { weighting: WeightingStrategy::Uniform },
        Method::UldpAvg { weighting: WeightingStrategy::Uniform },
        Method::UldpAvg { weighting: WeightingStrategy::RecordProportional },
    ]
}

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(6, 40);
    let train_records = scale.pick(3000, 60_000);
    let dim = scale.pick(64, 784);
    let hidden = scale.pick(16, 24);
    let user_counts = scale.pick(vec![100usize], vec![100usize, 10_000]);
    let sigma = 5.0;

    println!(
        "Figure 5 — MNIST privacy-utility trade-offs (|S|=5, sigma={sigma}, T={rounds}, dim={dim}, hidden={hidden})"
    );

    for &num_users in &user_counts {
        let panels = [
            (Allocation::Uniform, false, "uniform, iid"),
            (Allocation::zipf_default(), false, "zipf, iid"),
            (Allocation::zipf_default(), true, "zipf, non-iid"),
        ];
        for (allocation, non_iid, label) in panels {
            let mut rng = StdRng::seed_from_u64(5);
            let dataset = mnist_like::generate(
                &mut rng,
                &MnistConfig {
                    train_records,
                    test_records: train_records / 6,
                    dim,
                    num_users,
                    allocation,
                    non_iid,
                    ..Default::default()
                },
            );
            let classes = 10;
            let make_model = move || -> Box<dyn uldp_ml::Model> {
                let mut model_rng = StdRng::seed_from_u64(1234);
                Box::new(MlpClassifier::new(dim, hidden, classes, &mut model_rng))
            };
            let mut rows = Vec::new();
            for method in methods() {
                let history = run_training(&dataset, method, rounds, sigma, 1.0, &make_model);
                let mut row = ResultRow::new(history.method.clone());
                row.push_f64("test loss", history.final_loss().unwrap_or(f64::NAN));
                row.push_f64("accuracy", history.final_accuracy().unwrap_or(f64::NAN));
                row.push_f64("epsilon", history.final_epsilon());
                rows.push(row);
            }
            print_table(
                &format!(
                    "Figure 5 panel: n≈{:.0} (|U|={num_users}), {label}",
                    dataset.avg_records_per_user()
                ),
                &rows,
            );
        }
    }
    println!(
        "\nExpected shape (paper): ULDP-AVG converges fastest among the private methods; the\n\
         user-level non-iid panel hurts ULDP-AVG when |U| is small (per-user gradients overfit\n\
         each user's two labels) but not when |U| is large; ULDP-GROUP-2 becomes competitive\n\
         when records per user are very few and the local dataset is large."
    );
}
