//! Release-mode smoke test of the pooled Protocol 1 runtime.
//!
//! Runs one full private weighting round at the acceptance-criteria workload — 512-bit
//! Paillier, 5 silos × 200 users by default — twice: on the pooled runtime (sized by
//! `ULDP_THREADS` / available parallelism) and on a 1-thread runtime. It then
//!
//! 1. asserts the two decrypted aggregates are **bitwise-identical** (the runtime's
//!    determinism guarantee),
//! 2. prints each aggregate coordinate as an `AGG <index> <f64-bits-hex>` line, so CI can
//!    `diff` the output of independent processes run at different `ULDP_THREADS`,
//! 3. reports the per-phase timings and the parallel speedup, and appends them to
//!    `BENCH_protocol.json`.
//!
//! It also records the round's peak transient fold-accumulator bytes (the streaming
//! engine's measured O(chunks × dim) footprint, next to the seed shape's
//! O(silos × dim) equivalent) as the `memory` section of the JSON, and runs the
//! `modpow` engine comparison (generic vs Montgomery vs fixed-base on a 2048-bit
//! `scalar_mul`-shaped batch, plus the re-randomisation and fused multi-exponentiation
//! rows, agreement asserted bitwise), appended as the `modpow` section; CI fails if
//! either section is missing.
//!
//! A `population_scaling` section (10⁴/10⁵/10⁶ users at q ∈ {0.01, 0.1}, 128-bit
//! Paillier) proves round cost tracks the *sampled* count q·|U|: per-phase times plus
//! the materialised per-user crypto state and peak fold bytes are recorded per row,
//! and the binary asserts the 10⁶-user q=0.01 round stays within 3× of the 10⁵-user
//! q=0.1 round (equal expected sample sizes). Skipped under `ULDP_DENSE_MASK=1`,
//! which deliberately forces the O(|U|) dense-mask path.
//!
//! An 8-round replay over the same federation exercises the cross-round ciphertext
//! cache: round 1 encrypts fresh, rounds 2..8 re-randomise, and each round's decrypted
//! aggregate is printed as an `MRD <round> <fnv-hex>` fingerprint line (diffable against
//! an `ULDP_FRESH_ENCRYPT=1` process, whose aggregates must be bitwise-identical). The
//! per-round `server_encryption` timings land in the `multi_round` report section, and —
//! unless the cache is bypassed or the generic engine forced — the binary asserts every
//! cached round is at least 4x cheaper than round 1.
//!
//! The exit code is non-zero on any mismatch. Workload knobs: `ULDP_SMOKE_SILOS`,
//! `ULDP_SMOKE_USERS`, `ULDP_SMOKE_PARAMS`, `ULDP_SMOKE_BITS`, `ULDP_MODPOW_BITS`,
//! `ULDP_MODPOW_EXPS`. Setting `ULDP_GENERIC_MODPOW=1` forces the schoolbook
//! exponentiation path everywhere; setting `ULDP_FRESH_ENCRYPT=1` disables ciphertext
//! reuse. The AGG and MRD lines must not change under either knob (CI diffs them).
//!
//! ```bash
//! cargo run --release -p uldp-bench --bin protocol_smoke
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use uldp_bench::{
    millis, pipelined_vs_sequential_rounds, pooled_vs_sequential_round, BenchEntry, BenchSection,
};
use uldp_core::{
    ByzantineStrategy, FaultPlan, FlConfig, Method, PrivateWeightingProtocol, ProtocolConfig,
    RoundInput, SampleMask, Trainer, WeightingStrategy,
};
use uldp_datasets::creditcard::{self, CreditcardConfig};
use uldp_ml::LinearClassifier;
use uldp_runtime::Runtime;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// FNV-1a over the f64 bit patterns — the fingerprint CI diffs across processes.
fn fnv64(values: &[f64]) -> u64 {
    let mut fp = 0xcbf2_9ce4_8422_2325u64;
    for v in values {
        for byte in v.to_bits().to_le_bytes() {
            fp ^= byte as u64;
            fp = fp.wrapping_mul(0x1000_0000_01b3);
        }
    }
    fp
}

fn main() {
    let num_silos = env_usize("ULDP_SMOKE_SILOS", 5);
    let num_users = env_usize("ULDP_SMOKE_USERS", 200);
    let params = env_usize("ULDP_SMOKE_PARAMS", 8);
    let paillier_bits = env_usize("ULDP_SMOKE_BITS", 512);
    let threads = Runtime::global().threads();
    println!(
        "protocol_smoke: {num_silos} silos x {num_users} users, {params} params, \
         {paillier_bits}-bit Paillier, {threads} threads"
    );

    // Everything below is seeded, so independent processes (at any ULDP_THREADS) must
    // print identical AGG lines.
    let mut rng = StdRng::seed_from_u64(1_000_003);
    let histogram: Vec<Vec<usize>> = (0..num_silos)
        .map(|_| (0..num_users).map(|_| rng.gen_range(0..6usize)).collect())
        .collect();
    let config = ProtocolConfig {
        paillier_bits,
        dh_bits: 0,
        use_rfc_group: true,
        n_max: (6 * num_silos as u64).next_power_of_two(),
        ..Default::default()
    };
    let protocol = PrivateWeightingProtocol::setup(&histogram, &config, &mut rng);

    let deltas: Vec<Vec<Vec<f64>>> = histogram
        .iter()
        .map(|row| {
            row.iter()
                .map(|&c| {
                    if c == 0 {
                        Vec::new()
                    } else {
                        (0..params).map(|_| rng.gen_range(-0.5..0.5)).collect()
                    }
                })
                .collect()
        })
        .collect();
    let noises: Vec<Vec<f64>> =
        (0..num_silos).map(|_| (0..params).map(|_| rng.gen_range(-0.01..0.01)).collect()).collect();

    let (protocol, cmp) = pooled_vs_sequential_round(protocol, &deltas, &noises, &mut rng);
    let pooled_bits: Vec<u64> = cmp.aggregate.iter().map(|v| v.to_bits()).collect();

    // Sanity: the secure aggregate matches the plaintext reference.
    let reference = protocol.plaintext_reference(&deltas, &noises, None);
    let max_err = cmp
        .aggregate
        .iter()
        .zip(reference.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_err < 1e-6, "secure aggregate diverges from plaintext (max err {max_err:.3e})");

    for (j, bits) in pooled_bits.iter().enumerate() {
        println!("AGG {j} {bits:016x}");
    }

    println!(
        "pooled:     srv_enc {:9.1} ms | silo_enc {:9.1} ms | agg {:9.1} ms | total {:9.1} ms",
        millis(cmp.timings.server_encryption),
        millis(cmp.timings.silo_weighting),
        millis(cmp.timings.aggregation),
        millis(cmp.timings.total()),
    );
    println!(
        "sequential: srv_enc {:9.1} ms | silo_enc {:9.1} ms | agg {:9.1} ms | total {:9.1} ms",
        millis(cmp.seq_timings.server_encryption),
        millis(cmp.seq_timings.silo_weighting),
        millis(cmp.seq_timings.aggregation),
        millis(cmp.seq_timings.total()),
    );
    println!("SPEEDUP {:.2}x at {threads} threads (bitwise-identical aggregates)", cmp.speedup);

    // Transient delta-buffer footprint of the streaming cell fold (the measured
    // O(chunks × dim) claim): the peak accumulator bytes the round kept alive, next to
    // what the seed's materialise-then-reduce shape would have held (one ciphertext per
    // (silo, coordinate) cell). The counts are analytic — identical at any thread
    // count — so the section key carries no thread suffix.
    let ct_bytes = protocol.modulus_bits().div_ceil(32) * 8; // n² limbs of the ciphertext
    let materialised_equiv = num_silos * params * ct_bytes;
    println!(
        "MEMORY peak_fold_bytes={} materialised_equiv_bytes={materialised_equiv}",
        cmp.peak_fold_bytes
    );
    let mut memory = BenchSection::new("memory", threads, paillier_bits);
    let mut mem_entry =
        BenchEntry::new(format!("silos={num_silos} users={num_users} params={params}"));
    mem_entry
        .phase("peak_fold_bytes", cmp.peak_fold_bytes as f64)
        .phase("materialised_equiv_bytes", materialised_equiv as f64);
    memory.entries.push(mem_entry);
    match memory.write() {
        Ok(path) => println!("Wrote memory section to {}", path.display()),
        Err(e) => eprintln!("Failed to write memory section: {e}"),
    }

    // The thread count — and the engine mode — are part of the section key so CI's
    // 1-thread, 4-thread and generic-path runs all survive in the merged report instead
    // of later runs overwriting earlier ones.
    let engine_suffix = if uldp_bigint::montgomery::engine_disabled() { "_generic" } else { "" };
    let mut section = BenchSection::new(
        format!("protocol_smoke_t{threads}{engine_suffix}"),
        threads,
        paillier_bits,
    );
    let mut entry = BenchEntry::new(format!("silos={num_silos} users={num_users} params={params}"));
    entry
        .phase("srv_enc", millis(cmp.timings.server_encryption))
        .phase("silo_enc", millis(cmp.timings.silo_weighting))
        .phase("agg", millis(cmp.timings.aggregation))
        .phase("round", millis(cmp.timings.total()))
        .phase("round_seq", millis(cmp.seq_timings.total()));
    entry.speedup_vs_sequential = Some(cmp.speedup);
    entry.max_err = Some(max_err);
    section.entries.push(entry);
    match section.write() {
        Ok(path) => println!("Wrote machine-readable timings to {}", path.display()),
        Err(e) => eprintln!("Failed to write benchmark JSON: {e}"),
    }

    // Per-section gauge lifecycle: the memory section above already captured its peak,
    // so clear the shared gauge before the next measured sections — otherwise they
    // would inherit the round's high-water mark.
    Runtime::global().fold_gauge().reset();

    // Multi-round replay on the pooled runtime: the same federation runs 8 weighting
    // rounds back to back, so round 1 pays fresh encryption and rounds 2..8 hit the
    // cross-round ciphertext cache (or re-encrypt every round under
    // ULDP_FRESH_ENCRYPT=1 — the MRD fingerprints must not change, CI diffs them).
    let protocol = protocol.with_runtime(Runtime::global());
    protocol.reset_round_cache();
    let num_rounds = 8usize;
    let mut mrd_rng = StdRng::seed_from_u64(0x004d_5244); // "MRD"
    let mut multi_round = BenchSection::new("multi_round", threads, paillier_bits);
    let mut mrd_entry =
        BenchEntry::new(format!("silos={num_silos} users={num_users} params={params}"));
    let mut srv_enc_ms = Vec::with_capacity(num_rounds);
    let mut mrd_fps = Vec::with_capacity(num_rounds);
    for round in 1..=num_rounds {
        let (aggregate, timings) = protocol.weighting_round(&deltas, &noises, None, &mut mrd_rng);
        mrd_fps.push(fnv64(&aggregate));
        let (fresh, rerandomised) = protocol.round_cache_stats();
        let ms = millis(timings.server_encryption);
        println!(
            "mrd round={round} srv_enc {ms:9.1} ms | fresh {fresh} | rerandomised {rerandomised}"
        );
        mrd_entry.phase(&format!("round{round}"), ms);
        srv_enc_ms.push(ms);
    }
    // Acceptance gate: with the cache active every re-randomised round must be at
    // least 4x cheaper than the fresh round 1. Skipped when the cache is bypassed,
    // when the generic engine removes the table-based fast path, or when the fresh
    // round is too small for the ratio to be meaningful.
    let cache_active =
        !uldp_core::protocol::fresh_encrypt_forced() && !uldp_bigint::montgomery::engine_disabled();
    if cache_active && srv_enc_ms[0] >= 5.0 {
        for (i, &ms) in srv_enc_ms.iter().enumerate().skip(1) {
            assert!(
                ms * 4.0 <= srv_enc_ms[0],
                "round {} server_encryption {ms:.1} ms is not 4x cheaper than round 1 \
                 ({:.1} ms)",
                i + 1,
                srv_enc_ms[0]
            );
        }
        println!(
            "MULTI_ROUND ok: cached rounds {:.1}..{:.1} ms vs fresh {:.1} ms (>= 4x)",
            srv_enc_ms[1..].iter().fold(f64::INFINITY, |a, &b| a.min(b)),
            srv_enc_ms[1..].iter().fold(0.0f64, |a, &b| a.max(b)),
            srv_enc_ms[0]
        );
    } else {
        println!("MULTI_ROUND gate skipped (cache bypassed, generic engine, or tiny workload)");
    }
    multi_round.entries.push(mrd_entry);
    match multi_round.write() {
        Ok(path) => println!("Wrote multi_round section to {}", path.display()),
        Err(e) => eprintln!("Failed to write multi_round section: {e}"),
    }

    // Replay B: the same 8 rounds again, this time through `run_rounds` — the round
    // pipeline, at the depth ULDP_PIPELINE / ULDP_PIPELINE_DEPTH resolve to — from an
    // identically-seeded RNG and a reset cache. The MRD fingerprint lines are printed
    // from THIS replay, so CI's diff of an ULDP_PIPELINE=0 process against a pipelined
    // one checks the overlapped rounds bit-for-bit; the in-process assert additionally
    // pins them to the sequential `weighting_round` loop above.
    let depth = uldp_runtime::resolve_pipeline_depth(0);
    protocol.reset_round_cache();
    let mut pipe_rng = StdRng::seed_from_u64(0x004d_5244);
    let inputs: Vec<RoundInput<'_>> =
        (0..num_rounds).map(|_| RoundInput::new(&deltas, &noises)).collect();
    let replay_start = Instant::now();
    let outputs = protocol.run_rounds(&inputs, &mut pipe_rng);
    let replay_ms = millis(replay_start.elapsed());
    for (i, output) in outputs.iter().enumerate() {
        let fp = fnv64(&output.aggregate);
        println!("MRD {} {fp:016x}", i + 1);
        assert_eq!(
            fp,
            mrd_fps[i],
            "pipelined replay (depth {depth}) diverged from the sequential loop at round {}",
            i + 1
        );
    }
    println!("MRD replay: {num_rounds} rounds in {replay_ms:9.1} ms at pipeline depth {depth}");
    Runtime::global().fold_gauge().reset();

    // Pipeline gate workload: a dedicated federation small enough that CRT decryption
    // is a large share of the cached round (few users to fold, many coordinates to
    // decrypt), so the fold/decrypt overlap of the round pipeline is measurable. The
    // acceptance gate asserts the 8-round cached replay is >= 1.2x faster pipelined
    // than sequential — only where the comparison is meaningful: pipeline enabled, a
    // multi-thread pool on real cores, cache active, and a sequential replay that is
    // not noise. The `pipeline` section records the comparison either way.
    let gate_silos = 2usize;
    let gate_users = 6usize;
    let gate_params = 32usize;
    let gate_rounds = 8usize;
    let mut gate_rng = StdRng::seed_from_u64(0x0050_4950); // "PIP"
    let gate_hist: Vec<Vec<usize>> = (0..gate_silos)
        .map(|_| (0..gate_users).map(|_| gate_rng.gen_range(1..4usize)).collect())
        .collect();
    let gate_config = ProtocolConfig {
        paillier_bits: 512,
        dh_bits: 0,
        use_rfc_group: true,
        n_max: 16,
        ..Default::default()
    };
    let gate_protocol = PrivateWeightingProtocol::setup(&gate_hist, &gate_config, &mut gate_rng);
    let gate_deltas: Vec<Vec<Vec<f64>>> = gate_hist
        .iter()
        .map(|row| {
            row.iter()
                .map(|_| (0..gate_params).map(|_| gate_rng.gen_range(-0.5..0.5)).collect())
                .collect()
        })
        .collect();
    let gate_noises: Vec<Vec<f64>> = (0..gate_silos)
        .map(|_| (0..gate_params).map(|_| gate_rng.gen_range(-0.01..0.01)).collect())
        .collect();
    let gate_inputs: Vec<RoundInput<'_>> =
        (0..gate_rounds).map(|_| RoundInput::new(&gate_deltas, &gate_noises)).collect();
    let gate_cmp =
        pipelined_vs_sequential_rounds(&gate_protocol, &gate_inputs, depth, &mut gate_rng);
    println!(
        "PIPELINE {gate_rounds} rounds: sequential {:9.1} ms | pipelined {:9.1} ms | \
         depth {} | {:.2}x (bitwise-identical aggregates)",
        gate_cmp.seq_ms, gate_cmp.pipe_ms, gate_cmp.depth, gate_cmp.speedup
    );
    let mut pipe_section = BenchSection::new("pipeline", threads, paillier_bits);
    let mut gate_entry = BenchEntry::new(format!(
        "silos={gate_silos} users={gate_users} params={gate_params} rounds={gate_rounds}"
    ));
    gate_entry
        .phase("seq_ms", gate_cmp.seq_ms)
        .phase("pipe_ms", gate_cmp.pipe_ms)
        .phase("depth", gate_cmp.depth as f64);
    gate_entry.speedup_vs_sequential = Some(gate_cmp.speedup);
    pipe_section.entries.push(gate_entry);
    // Informational row: wall-clock of the default-workload MRD replay above.
    let mut replay_entry = BenchEntry::new(format!(
        "silos={num_silos} users={num_users} params={params} rounds={num_rounds}"
    ));
    replay_entry.phase("pipe_ms", replay_ms).phase("depth", depth as f64);
    pipe_section.entries.push(replay_entry);
    match pipe_section.write() {
        Ok(path) => println!("Wrote pipeline section to {}", path.display()),
        Err(e) => eprintln!("Failed to write pipeline section: {e}"),
    }
    let phys = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if depth >= 1 && threads >= 2 && phys >= 2 && cache_active && gate_cmp.seq_ms >= 100.0 {
        assert!(
            gate_cmp.speedup >= 1.2,
            "pipelined replay speedup {:.2}x at depth {depth}, {threads} threads is below \
             the 1.2x gate (seq {:.1} ms, pipelined {:.1} ms)",
            gate_cmp.speedup,
            gate_cmp.seq_ms,
            gate_cmp.pipe_ms
        );
        println!(
            "PIPELINE ok: {:.2}x >= 1.2x at depth {depth}, {threads} threads",
            gate_cmp.speedup
        );
    } else {
        println!(
            "PIPELINE gate skipped (pipeline disabled, single-threaded, cache bypassed, \
             or tiny workload)"
        );
    }
    Runtime::global().fold_gauge().reset();

    // Single-core engine comparison on the acceptance workload: a 2048-bit
    // scalar_mul-shaped batch (fixed base, 64 half-width exponents), plus the
    // re-randomisation and fused multi-exponentiation rows. Every path pair is
    // asserted bitwise-identical inside its comparison.
    let modpow_bits = env_usize("ULDP_MODPOW_BITS", 2048);
    let modpow_exps = env_usize("ULDP_MODPOW_EXPS", 64);
    let cmp = uldp_bench::modpow::modpow_comparison(modpow_bits, modpow_exps, 1_000_033);
    println!(
        "MODPOW bits={} exps={}: generic {:9.1} ms | montgomery {:9.1} ms ({:.2}x) | \
         fixed_base {:9.1} ms ({:.2}x)",
        cmp.modulus_bits,
        cmp.num_exps,
        cmp.generic_ms,
        cmp.montgomery_ms,
        cmp.montgomery_speedup(),
        cmp.fixed_base_ms,
        cmp.fixed_base_speedup(),
    );
    // 64 ops so the one-off RerandCtx table build is amortised the way the per-
    // federation cache amortises it over users x rounds.
    let rerand = uldp_bench::modpow::rerand_comparison(modpow_bits / 2, 64, 1_000_037);
    println!(
        "RERAND bits={} ops={}: encrypt {:9.1} ms | rerandomise {:9.1} ms | \
         rerandomise_ctx {:9.1} ms ({:.2}x)",
        rerand.modulus_bits,
        rerand.num_ops,
        rerand.encrypt_ms,
        rerand.rerandomise_ms,
        rerand.ctx_rerandomise_ms,
        rerand.ctx_speedup(),
    );
    let fused = uldp_bench::modpow::multi_exp_comparison(modpow_bits, 4, 8, 1_000_039);
    println!(
        "MULTIEXP bits={} k={} products={}: unfused {:9.1} ms | fused {:9.1} ms ({:.2}x)",
        fused.modulus_bits,
        fused.k,
        fused.num_products,
        fused.unfused_ms,
        fused.fused_ms,
        fused.fused_speedup(),
    );
    // The chain length matches the squaring ladder of one half-width exponentiation,
    // so the row reads as "what the Karatsuba tier saves per scalar_mul".
    let karatsuba = uldp_bench::modpow::karatsuba_comparison(modpow_bits.max(2048), 256, 1_000_099);
    println!(
        "KARATSUBA bits={} muls={}: generic {:9.1} ms | karatsuba {:9.1} ms ({:.2}x)",
        karatsuba.modulus_bits,
        karatsuba.num_muls,
        karatsuba.generic_ms,
        karatsuba.karatsuba_ms,
        karatsuba.karatsuba_speedup(),
    );
    match uldp_bench::modpow::write_modpow_section(&cmp, &rerand, &fused, &karatsuba) {
        Ok(path) => println!("Wrote modpow section to {}", path.display()),
        Err(e) => eprintln!("Failed to write modpow section: {e}"),
    }

    // Population scaling: round cost must track the sampled count q·|U|, not the
    // population |U|. Three populations × two sampling rates at a small Paillier
    // modulus — the per-sampled-user crypto is constant across rows, so any
    // superlinear growth of the per-phase times or of the materialised per-user
    // state against q·|U| is a scaling regression. Setup (key generation, blinding,
    // inversion — inherently O(|U|)) is paid once per population and reported as its
    // own phase. The acceptance gate: the 10⁶-user q=0.01 round (10⁴ expected
    // sampled) must stay within 3× of the 10⁵-user q=0.1 round (same expected
    // sample size) on time, state bytes and peak fold bytes.
    if uldp_core::sampling::dense_mask_forced() {
        println!("POPULATION section skipped (ULDP_DENSE_MASK forces the O(|U|) path)");
    } else {
        Runtime::global().fold_gauge().reset();
        let pop_bits = 128usize;
        let pop_silos = 2usize;
        let pop_dim = 2usize;
        let mut pop_section = BenchSection::new("population_scaling", threads, pop_bits);
        // (population, q) → (round_ms, state_bytes, peak_fold_bytes) for the gate.
        let mut pop_rows: Vec<(usize, f64, f64, usize, usize)> = Vec::new();
        for &population in &[10_000usize, 100_000, 1_000_000] {
            let mut pop_rng = StdRng::seed_from_u64(0x0050_4f50 + population as u64); // "POP"
            let pop_hist: Vec<Vec<usize>> = (0..pop_silos)
                .map(|_| (0..population).map(|_| pop_rng.gen_range(0..4usize)).collect())
                .collect();
            let pop_config = ProtocolConfig {
                paillier_bits: pop_bits,
                dh_bits: 0,
                use_rfc_group: true,
                n_max: 8,
                ..Default::default()
            };
            let setup_start = Instant::now();
            let pop_protocol =
                PrivateWeightingProtocol::setup(&pop_hist, &pop_config, &mut pop_rng);
            let setup_ms = millis(setup_start.elapsed());
            for &q in &[0.01f64, 0.1] {
                let mask = SampleMask::poisson(&mut pop_rng, population, q);
                let mut pop_deltas: Vec<Vec<Vec<f64>>> =
                    vec![vec![Vec::new(); population]; pop_silos];
                for u in mask.iter() {
                    for (silo_row, hist_row) in pop_deltas.iter_mut().zip(pop_hist.iter()) {
                        if hist_row[u] > 0 {
                            silo_row[u] =
                                (0..pop_dim).map(|_| pop_rng.gen_range(-0.5..0.5)).collect();
                        }
                    }
                }
                let pop_noises: Vec<Vec<f64>> = (0..pop_silos)
                    .map(|_| (0..pop_dim).map(|_| pop_rng.gen_range(-0.01..0.01)).collect())
                    .collect();
                pop_protocol.reset_round_cache();
                Runtime::global().fold_gauge().reset();
                let (pop_agg, pop_timings) = pop_protocol.weighting_round(
                    &pop_deltas,
                    &pop_noises,
                    Some(&mask),
                    &mut pop_rng,
                );
                assert!(pop_agg.iter().all(|v| v.is_finite()));
                let state_bytes = pop_protocol.cached_state_bytes();
                let state_entries = pop_protocol.cached_entry_count();
                let peak_fold = Runtime::global().fold_gauge().peak();
                let round_ms = millis(pop_timings.total());
                println!(
                    "POP users={population} q={q}: sampled {} | srv_enc {:9.1} ms | \
                     silo_enc {:9.1} ms | agg {:9.1} ms | state {} B in {} entries | \
                     peak_fold {} B | setup {setup_ms:9.1} ms",
                    mask.sampled_count(),
                    millis(pop_timings.server_encryption),
                    millis(pop_timings.silo_weighting),
                    millis(pop_timings.aggregation),
                    state_bytes,
                    state_entries,
                    peak_fold,
                );
                let mut entry = BenchEntry::new(format!("users={population} q={q}"));
                entry
                    .phase("setup", setup_ms)
                    .phase("srv_enc", millis(pop_timings.server_encryption))
                    .phase("silo_enc", millis(pop_timings.silo_weighting))
                    .phase("agg", millis(pop_timings.aggregation))
                    .phase("round", round_ms)
                    .phase("sampled_users", mask.sampled_count() as f64)
                    .phase("state_bytes", state_bytes as f64)
                    .phase("state_entries", state_entries as f64)
                    .phase("peak_fold_bytes", peak_fold as f64);
                pop_section.entries.push(entry);
                pop_rows.push((population, q, round_ms, state_bytes, peak_fold));
            }
        }
        match pop_section.write() {
            Ok(path) => println!("Wrote population_scaling section to {}", path.display()),
            Err(e) => eprintln!("Failed to write population_scaling section: {e}"),
        }
        // The sub-linear-cost gate: equal expected sample sizes must cost alike even
        // though the populations differ 10×. Timing is gated only when large enough
        // to be meaningful; the byte gauges are analytic, so they are gated always.
        let small =
            pop_rows.iter().find(|r| r.0 == 100_000 && r.1 == 0.1).expect("10^5 q=0.1 row present");
        let large = pop_rows
            .iter()
            .find(|r| r.0 == 1_000_000 && r.1 == 0.01)
            .expect("10^6 q=0.01 row present");
        assert!(
            large.3 as f64 <= 3.0 * small.3 as f64,
            "10^6-user q=0.01 state {} B exceeds 3x the 10^5-user q=0.1 state {} B",
            large.3,
            small.3
        );
        assert!(
            large.4 as f64 <= 3.0 * small.4 as f64,
            "10^6-user q=0.01 peak fold {} B exceeds 3x the 10^5-user q=0.1 peak {} B",
            large.4,
            small.4
        );
        if small.2 >= 5.0 {
            assert!(
                large.2 <= 3.0 * small.2,
                "10^6-user q=0.01 round {:.1} ms exceeds 3x the 10^5-user q=0.1 round {:.1} ms",
                large.2,
                small.2
            );
        }
        println!(
            "POPULATION ok: 10^6 q=0.01 round {:.1} ms / {} B vs 10^5 q=0.1 round \
             {:.1} ms / {} B (within 3x)",
            large.2, large.3, small.2, small.3
        );
        Runtime::global().fold_gauge().reset();
    }

    // A tiny faulted training run (2 rounds, dropouts + stragglers + byzantine
    // corruption) so a single traced smoke also exercises the training-side spans, the
    // scenario fault events and the privacy ledger. It runs untraced too — the history
    // fingerprint below must be bitwise-identical with and without ULDP_TRACE, which CI
    // diffs the same way as the AGG lines.
    Runtime::global().fold_gauge().reset();
    let mut train_rng = StdRng::seed_from_u64(0x00fa_0175);
    let train_dataset = creditcard::generate(
        &mut train_rng,
        &CreditcardConfig {
            train_records: 150,
            test_records: 30,
            num_silos: 4,
            num_users: 20,
            ..Default::default()
        },
    );
    let method = Method::UldpAvg { weighting: WeightingStrategy::Uniform };
    let mut train_config = FlConfig::recommended(method, train_dataset.num_silos);
    train_config.rounds = 2;
    train_config.local_epochs = 1;
    train_config.sigma = 1.0;
    train_config.clip_bound = 1.0;
    train_config.fault_plan = FaultPlan {
        dropout_fraction: 0.5,
        delay_fraction: 0.25,
        delay_ms: 50,
        byzantine_fraction: 0.5,
        byzantine: ByzantineStrategy::SignFlip,
        seed: 7,
    };
    let model = Box::new(LinearClassifier::new(train_dataset.feature_dim(), 2));
    let history = Trainer::new(train_config, train_dataset, model).run();
    let train_fp = fnv64(&history.final_parameters);
    println!("TRN faulted_avg {train_fp:016x} (eps {:.3})", history.final_epsilon());

    // Traced runs additionally export everything the process recorded: the `telemetry`
    // report section, the chrome-trace JSON (ULDP_TRACE_OUT) and a flat summary.
    if uldp_telemetry::enabled() {
        match uldp_bench::telemetry_report::write_telemetry_section(threads, paillier_bits) {
            Ok(path) => println!("Wrote telemetry section to {}", path.display()),
            Err(e) => eprintln!("Failed to write telemetry section: {e}"),
        }
        match uldp_telemetry::export::write_chrome_trace_default() {
            Ok(Some(path)) => println!("Wrote chrome trace to {}", path.display()),
            Ok(None) => {}
            Err(e) => eprintln!("Failed to write chrome trace: {e}"),
        }
        print!("{}", uldp_telemetry::export::summary());
    }
}
