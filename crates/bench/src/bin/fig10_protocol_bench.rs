//! Figure 10: execution time of the private weighting protocol on the cross-silo FL
//! benchmark scenarios.
//!
//! Mirrors the paper's setup: the HeartDisease (4 silos) and TcgaBrca (6 silos) benchmark
//! scenarios with small models, |U| ∈ {10, 100} users and a skewed (zipf) record
//! distribution. Reports, per scenario, the wall-clock time of key exchange + blinded
//! histogram preparation (setup) and of the per-round phases (server encryption, silo-side
//! weighted encryption — the paper's "local training" overhead — and aggregation).
//!
//! Every round is executed twice — on the pooled runtime (`ULDP_THREADS` / available
//! parallelism) and on a 1-thread runtime — and the aggregates are asserted
//! bitwise-identical; the speedup and the per-phase timings are appended to
//! `BENCH_protocol.json` ([`uldp_bench::report`]).
//!
//! The Paillier key size defaults to 768 bits at quick scale and 3072 bits (the paper's
//! security level) at full scale; the table reports the size actually used.
//!
//! ```bash
//! cargo run --release -p uldp-bench --bin fig10_protocol_bench
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uldp_bench::{
    millis, pooled_vs_sequential_round, print_table, BenchEntry, BenchSection, ResultRow, Scale,
};
use uldp_core::{PrivateWeightingProtocol, ProtocolConfig};
use uldp_datasets::heart_disease::{self, HeartDiseaseConfig};
use uldp_datasets::tcga_brca::{self, TcgaBrcaConfig};
use uldp_datasets::{Allocation, FederatedDataset};
use uldp_runtime::Runtime;

fn bench_scenario(
    name: &str,
    dataset: &FederatedDataset,
    model_params: usize,
    paillier_bits: usize,
    rng: &mut StdRng,
) -> (ResultRow, BenchEntry) {
    let histogram = dataset.histogram();
    let n_max = dataset.max_records_per_user().next_power_of_two().max(64) as u64;
    let config = ProtocolConfig {
        paillier_bits,
        dh_bits: 512,
        use_rfc_group: true,
        n_max,
        ..Default::default()
    };
    let protocol = PrivateWeightingProtocol::setup(&histogram, &config, rng);

    // One round of clipped per-(silo, user) deltas and per-silo noise of the model size.
    let deltas: Vec<Vec<Vec<f64>>> = histogram
        .iter()
        .map(|row| {
            row.iter()
                .map(|&c| {
                    if c == 0 {
                        Vec::new()
                    } else {
                        (0..model_params).map(|_| rng.gen_range(-0.1..0.1)).collect()
                    }
                })
                .collect()
        })
        .collect();
    let noises: Vec<Vec<f64>> = (0..dataset.num_silos)
        .map(|_| (0..model_params).map(|_| rng.gen_range(-0.01..0.01)).collect())
        .collect();

    // Pooled round and a 1-thread round from an identically-seeded RNG clone: the
    // aggregates must match bit for bit (the runtime's determinism guarantee).
    let (protocol, cmp) = pooled_vs_sequential_round(protocol, &deltas, &noises, rng);
    let (aggregate, round, seq_round) = (&cmp.aggregate, &cmp.timings, &cmp.seq_timings);

    let reference = protocol.plaintext_reference(&deltas, &noises, None);
    let max_err =
        aggregate.iter().zip(reference.iter()).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);

    let setup = protocol.setup_timings();
    let mut row = ResultRow::new(name);
    row.push_str("users", dataset.num_users.to_string());
    row.push_str("silos", dataset.num_silos.to_string());
    row.push_str("params", model_params.to_string());
    row.push_str("key bits", protocol.modulus_bits().to_string());
    row.push_f64("setup ms", millis(setup.total()));
    row.push_f64("srv enc ms", millis(round.server_encryption));
    row.push_f64("silo enc ms", millis(round.silo_weighting));
    row.push_f64("agg ms", millis(round.aggregation));
    row.push_f64("speedup", cmp.speedup);
    row.push_str("max err", format!("{max_err:.1e}"));

    let mut entry = BenchEntry::new(name);
    entry
        .phase("setup", millis(setup.total()))
        .phase("srv_enc", millis(round.server_encryption))
        .phase("silo_enc", millis(round.silo_weighting))
        .phase("agg", millis(round.aggregation))
        .phase("round_seq", millis(seq_round.total()));
    entry.speedup_vs_sequential = Some(cmp.speedup);
    entry.max_err = Some(max_err);
    (row, entry)
}

fn main() {
    let scale = Scale::from_env();
    let paillier_bits = scale.pick(768, 3072);
    let user_counts = [10usize, scale.pick(40, 100)];
    let mut rng = StdRng::seed_from_u64(10);
    let threads = Runtime::global().threads();

    println!(
        "Figure 10 — private weighting protocol on FL benchmark scenarios \
         ({paillier_bits}–bit Paillier, {threads} threads)"
    );

    let mut rows = Vec::new();
    let mut section = BenchSection::new("fig10_protocol_bench", threads, paillier_bits);
    for &num_users in &user_counts {
        let heart = heart_disease::generate(
            &mut rng,
            &HeartDiseaseConfig {
                num_users,
                allocation: Allocation::zipf_default(),
                ..Default::default()
            },
        );
        let (row, entry) = bench_scenario(
            &format!("HeartDisease |U|={num_users}"),
            &heart,
            scale.pick(30, 60),
            paillier_bits,
            &mut rng,
        );
        rows.push(row);
        section.entries.push(entry);

        let tcga = tcga_brca::generate(
            &mut rng,
            &TcgaBrcaConfig {
                num_users,
                allocation: Allocation::zipf_default(),
                ..Default::default()
            },
        );
        let (row, entry) = bench_scenario(
            &format!("TcgaBrca |U|={num_users}"),
            &tcga,
            scale.pick(39, 39),
            paillier_bits,
            &mut rng,
        );
        rows.push(row);
        section.entries.push(entry);
    }
    print_table("Figure 10: protocol execution time per phase", &rows);
    match section.write() {
        Ok(path) => println!("\nWrote machine-readable timings to {}", path.display()),
        Err(e) => eprintln!("\nFailed to write benchmark JSON: {e}"),
    }
    println!(
        "\nExpected shape (paper): the silo-side weighted encryption (the paper's 'local\n\
         training' bar) dominates and grows with the number of users; key exchange and\n\
         aggregation are comparatively small; everything remains in a practical range for\n\
         these small-model benchmark scenarios."
    );
}
