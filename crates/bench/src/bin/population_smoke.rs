//! Sparse-sampling determinism smoke: a multi-round sparse-mask weighting run at a
//! large population whose output must be bitwise-identical to a dense-mask re-run.
//!
//! Each round draws a Poisson sample (rate `ULDP_POP_Q`, default 0.01) over
//! `ULDP_POP_USERS` (default 100 000) users and runs the private weighting round with
//! the resulting [`SampleMask`], printing an `MRD <round> <fnv-hex>` fingerprint per
//! round and `AGG <index> <f64-bits-hex>` lines for the final round's aggregate.
//!
//! Setting `ULDP_DENSE_MASK=1` forces every mask into the dense representation — the
//! legacy all-users path that encrypts an `Enc(0)` slot for every unsampled user.
//! Selection, the caller RNG stream and the decrypted aggregates are all
//! representation-independent, so CI runs this binary twice (sparse, then dense) and
//! diffs the output; any divergence is a determinism bug in the sparse path. In sparse
//! mode the binary additionally asserts the cross-round cache materialises per-user
//! crypto state for at most the sampled users — the lazy-state guarantee that makes
//! million-user rounds affordable.
//!
//! Every round is also checked against the masked plaintext reference, so the smoke
//! catches correctness drift as well as nondeterminism. The exit code is non-zero on
//! any mismatch.
//!
//! ```bash
//! cargo run --release -p uldp-bench --bin population_smoke
//! ULDP_DENSE_MASK=1 cargo run --release -p uldp-bench --bin population_smoke
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use uldp_bench::millis;
use uldp_core::{PrivateWeightingProtocol, ProtocolConfig, SampleMask};
use uldp_runtime::Runtime;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&v| v > 0.0 && v <= 1.0)
        .unwrap_or(default)
}

fn main() {
    let population = env_usize("ULDP_POP_USERS", 100_000);
    let q = env_f64("ULDP_POP_Q", 0.01);
    let rounds = env_usize("ULDP_POP_ROUNDS", 3);
    let paillier_bits = env_usize("ULDP_SMOKE_BITS", 128);
    let num_silos = 2usize;
    let dim = 2usize;
    let dense = uldp_core::sampling::dense_mask_forced();
    let threads = Runtime::global().threads();
    println!(
        "population_smoke: {population} users x {num_silos} silos, q={q}, {rounds} rounds, \
         {paillier_bits}-bit Paillier, {threads} threads, dense_mask={dense}"
    );

    // Everything below is seeded, so the sparse and dense processes must print
    // identical MRD/AGG lines: the mask representation changes which users get
    // materialised crypto state, never which users are sampled or what they sum to.
    let mut rng = StdRng::seed_from_u64(0x504f_5055); // "POPU"
    let histogram: Vec<Vec<usize>> = (0..num_silos)
        .map(|_| (0..population).map(|_| rng.gen_range(0..4usize)).collect())
        .collect();
    let config = ProtocolConfig {
        paillier_bits,
        dh_bits: 0,
        use_rfc_group: true,
        n_max: 8,
        ..Default::default()
    };
    let setup_start = Instant::now();
    let protocol = PrivateWeightingProtocol::setup(&histogram, &config, &mut rng);
    println!("setup {:9.1} ms", millis(setup_start.elapsed()));

    for round in 1..=rounds {
        let mask = SampleMask::poisson(&mut rng, population, q);
        // Deltas are drawn by ascending sampled index, so the draw order — and hence
        // the whole RNG stream — is identical under both mask representations.
        let mut deltas: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); population]; num_silos];
        for u in mask.iter() {
            for (silo_row, hist_row) in deltas.iter_mut().zip(histogram.iter()) {
                if hist_row[u] > 0 {
                    silo_row[u] = (0..dim).map(|_| rng.gen_range(-0.5..0.5)).collect();
                }
            }
        }
        let noises: Vec<Vec<f64>> = (0..num_silos)
            .map(|_| (0..dim).map(|_| rng.gen_range(-0.01..0.01)).collect())
            .collect();
        let (aggregate, timings) =
            protocol.weighting_round(&deltas, &noises, Some(&mask), &mut rng);

        let reference = protocol.plaintext_reference(&deltas, &noises, Some(&mask));
        let max_err = aggregate
            .iter()
            .zip(reference.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_err < 1e-6,
            "round {round}: secure aggregate diverges from plaintext (max err {max_err:.3e})"
        );

        let mut fp = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the decrypted aggregate bits
        for v in &aggregate {
            for byte in v.to_bits().to_le_bytes() {
                fp ^= byte as u64;
                fp = fp.wrapping_mul(0x1000_0000_01b3);
            }
        }
        println!("MRD {round} {fp:016x}");
        let (fresh, rerandomised) = protocol.round_cache_stats();
        println!(
            "pop round={round} sampled={} srv_enc {:9.1} ms | silo_enc {:9.1} ms | \
             agg {:9.1} ms | fresh {fresh} | rerandomised {rerandomised} | \
             state {} B in {} entries",
            mask.sampled_count(),
            millis(timings.server_encryption),
            millis(timings.silo_weighting),
            millis(timings.aggregation),
            protocol.cached_state_bytes(),
            protocol.cached_entry_count(),
        );
        if !dense {
            // The lazy-state guarantee: sparse rounds must never materialise crypto
            // state for unsampled users. Entries accumulate across rounds (departed
            // users keep theirs for cheap re-entry), so the bound is the union of all
            // sampled sets so far — ≤ rounds × peak sample, far below the population.
            assert!(
                protocol.cached_entry_count() <= round * mask.num_users().min(population),
                "sparse cache grew past the sampled union"
            );
            assert!(
                protocol.cached_entry_count() <= 2 * rounds * (q * population as f64) as usize + 64,
                "sparse cache holds {} entries for ~{} sampled per round",
                protocol.cached_entry_count(),
                (q * population as f64) as usize
            );
        }
        if round == rounds {
            for (j, v) in aggregate.iter().enumerate() {
                println!("AGG {j} {:016x}", v.to_bits());
            }
        }
    }
    println!("POPULATION_SMOKE ok ({} mask)", if dense { "dense" } else { "sparse" });
}
