//! CI smoke test of the scenario engine and its determinism oracle.
//!
//! Samples a bounded number of (scenario × threads × shards × chunk) cases from the
//! fixed-seed catalogue grid and asserts every case reproduces the scenario's
//! sequential single-shard single-chunk reference **bit for bit** — the same oracle as
//! `tests/scenario_fuzz.rs`, but in release mode and cheap enough for every CI run.
//! Each scenario's reference fingerprint is printed as an `SCN <name> <hex>` line, so
//! CI can `diff` the output of independent processes (e.g. at different
//! `ULDP_THREADS`). It then runs the per-scenario membership-inference scoring and
//! writes the `scenarios` section of `BENCH_protocol.json`.
//!
//! Knobs: `ULDP_SCENARIO_CASES` bounds the sampled grid cases (default 12),
//! `ULDP_SCENARIO_ROUNDS` the training rounds per case (default 2).
//!
//! ```bash
//! cargo run --release -p uldp-bench --bin scenario_smoke
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_bench::scenarios::{evaluate_scenarios, print_scenario_table, write_scenarios_section};
use uldp_core::{FlConfig, Method, Scenario, Trainer, TrainingHistory, WeightingStrategy};
use uldp_datasets::creditcard::{self, CreditcardConfig};
use uldp_ml::LinearClassifier;
use uldp_runtime::Runtime;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Collapses a history into one u64 fingerprint over its bit-exact content.
fn fingerprint(h: &TrainingHistory) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    let mut mix = |bits: u64| {
        for byte in bits.to_le_bytes() {
            acc ^= byte as u64;
            acc = acc.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for p in &h.final_parameters {
        mix(p.to_bits());
    }
    for r in &h.rounds {
        mix(r.round);
        mix(r.epsilon.to_bits());
        mix(r.test_accuracy.map(|v| v.to_bits()).unwrap_or(u64::MAX));
        mix(r.test_loss.map(|v| v.to_bits()).unwrap_or(u64::MAX));
        mix(r.c_index.map(|v| v.to_bits()).unwrap_or(u64::MAX));
    }
    acc
}

fn train(scenario: &Scenario, threads: usize, shards: usize, chunk: usize, rounds: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(7);
    let dataset = creditcard::generate(
        &mut rng,
        &CreditcardConfig {
            train_records: 240,
            test_records: 40,
            allocation: scenario.allocation(),
            ..Default::default()
        },
    );
    let method = Method::UldpAvg { weighting: WeightingStrategy::RecordProportional };
    let mut config = FlConfig::recommended(method, dataset.num_silos);
    config.rounds = rounds;
    config.local_epochs = 2;
    config.sigma = 1.0;
    config.user_sampling = 0.7;
    config.threads = threads;
    config.shards = shards;
    config.chunk_size = chunk;
    config.fault_plan = scenario.plan;
    let model = Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
    fingerprint(&Trainer::new(config, dataset, model).run())
}

fn main() {
    let cases = env_u64("ULDP_SCENARIO_CASES", 12) as usize;
    let rounds = env_u64("ULDP_SCENARIO_ROUNDS", 2);
    let structures = [(2usize, 2usize, 1usize), (4, 1, 7), (2, 3, usize::MAX), (4, 2, 16)];
    let scenarios = Scenario::catalogue();
    println!(
        "scenario_smoke: {} scenarios, sampling {cases} grid cases at T={rounds}",
        scenarios.len()
    );

    // Fixed-seed references (structure-independent — these are the lines CI diffs).
    let references: Vec<u64> =
        scenarios.iter().map(|s| train(s, 1, 1, usize::MAX, rounds)).collect();
    for (scenario, reference) in scenarios.iter().zip(&references) {
        println!("SCN {} {reference:016x}", scenario.name);
    }

    // Walk the (scenario × structure) grid round-robin up to the case budget; every
    // sampled case must land on its scenario's reference fingerprint.
    let mut checked = 0usize;
    'grid: for (si, structure) in (0..structures.len()).flat_map(|si| {
        let structures = &structures;
        (0..scenarios.len()).map(move |sc| (sc, structures[si]))
    }) {
        if checked >= cases {
            break 'grid;
        }
        let (threads, shards, chunk) = structure;
        let scenario = &scenarios[si];
        let run = train(scenario, threads, shards, chunk, rounds);
        assert_eq!(
            run, references[si],
            "scenario {} diverged at threads={threads} shards={shards} chunk={chunk}",
            scenario.name
        );
        checked += 1;
    }
    println!(
        "scenario_smoke: {checked} grid cases bitwise-identical to their sequential references"
    );

    // Per-scenario membership inference vs the accountant's ε, into the `scenarios`
    // report section. The determinism grid above folded on the shared runtime, so clear
    // its gauge first — otherwise this section inherits the grid's high-water mark.
    Runtime::global().fold_gauge().reset();
    let outcomes = evaluate_scenarios(rounds.max(3), 240, 1.0);
    print_scenario_table(&outcomes);
    match write_scenarios_section(&outcomes) {
        Ok(path) => println!("Wrote scenarios section to {}", path.display()),
        Err(e) => {
            eprintln!("Failed to write scenarios section: {e}");
            std::process::exit(1);
        }
    }
}
