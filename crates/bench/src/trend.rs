//! The perf-trend comparison behind the `bench_trend` binary.
//!
//! Joins a fresh report's phase samples against a baseline's on `(section, label,
//! phase)` and classifies every fresh sample: compared (with a regression verdict),
//! skipped (baseline below the noise floor), unmatched (key missing from a section the
//! baseline *does* have) or part of a new section the baseline predates (informational
//! only — new coverage must never fail the gate). The binary owns only argument
//! parsing, printing and exit codes, so this logic is testable with synthetic reports.

use crate::report::PhaseSample;
use std::collections::{BTreeMap, BTreeSet};

/// Thresholds of the trend check.
#[derive(Clone, Copy, Debug)]
pub struct TrendConfig {
    /// A compared phase regresses when `fresh / baseline` exceeds this factor.
    pub factor: f64,
    /// Baseline values below this floor are skipped (sub-floor phases are noise).
    pub min_ms: f64,
}

impl Default for TrendConfig {
    fn default() -> Self {
        TrendConfig { factor: 2.0, min_ms: 100.0 }
    }
}

/// One fresh sample joined with its baseline value.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// The fresh sample.
    pub sample: PhaseSample,
    /// The baseline value it was joined with.
    pub baseline: f64,
    /// `sample.value / baseline`.
    pub ratio: f64,
    /// Whether the ratio exceeds the configured factor.
    pub regressed: bool,
}

/// The full outcome of one trend comparison.
#[derive(Clone, Debug, Default)]
pub struct TrendReport {
    /// Every fresh sample whose key the baseline also has, above the floor.
    pub comparisons: Vec<Comparison>,
    /// Fresh samples skipped because their baseline value sat below the floor.
    pub skipped_small: usize,
    /// Fresh samples whose key is missing from a section the baseline *does* contain.
    pub unmatched: usize,
    /// Sections present only in the fresh report — `section → sample count`. These are
    /// new coverage (the committed baseline predates them) and never regressions.
    pub new_sections: BTreeMap<String, usize>,
    /// Fresh samples outside the new sections — the population that *could* have been
    /// compared. Zero comparisons with a non-zero comparable population means the two
    /// reports share no keys, which the binary treats as an error.
    pub comparable_fresh: usize,
}

impl TrendReport {
    /// The regressed comparisons, in fresh-report order.
    pub fn regressions(&self) -> Vec<&Comparison> {
        self.comparisons.iter().filter(|c| c.regressed).collect()
    }

    /// True when the shared sections produced nothing to compare (the gate would
    /// silently pass forever, so the binary exits non-zero).
    pub fn nothing_comparable(&self) -> bool {
        self.comparisons.is_empty() && self.comparable_fresh > 0
    }
}

/// Joins `fresh` against `baseline` and classifies every fresh sample.
pub fn compare(baseline: &[PhaseSample], fresh: &[PhaseSample], cfg: TrendConfig) -> TrendReport {
    let baseline_sections: BTreeSet<&str> = baseline.iter().map(|s| s.section.as_str()).collect();
    let baseline_values: BTreeMap<_, _> = baseline.iter().map(|s| (s.key(), s.value)).collect();

    let mut report = TrendReport::default();
    for sample in fresh {
        let Some(&base) = baseline_values.get(&sample.key()) else {
            if baseline_sections.contains(sample.section.as_str()) {
                report.unmatched += 1;
            } else {
                *report.new_sections.entry(sample.section.clone()).or_insert(0) += 1;
            }
            continue;
        };
        if base < cfg.min_ms {
            report.skipped_small += 1;
            continue;
        }
        let ratio = sample.value / base;
        report.comparisons.push(Comparison {
            sample: sample.clone(),
            baseline: base,
            ratio,
            regressed: ratio > cfg.factor,
        });
    }
    report.comparable_fresh = fresh.len() - report.new_sections.values().sum::<usize>();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(section: &str, label: &str, phase: &str, value: f64) -> PhaseSample {
        PhaseSample {
            section: section.to_string(),
            label: label.to_string(),
            phase: phase.to_string(),
            value,
        }
    }

    #[test]
    fn flags_only_regressions_past_the_factor() {
        let baseline =
            vec![sample("smoke", "w", "round", 200.0), sample("smoke", "w", "agg", 150.0)];
        let fresh = vec![
            sample("smoke", "w", "round", 500.0), // 2.5x — regression
            sample("smoke", "w", "agg", 290.0),   // ~1.93x — fine
        ];
        let report = compare(&baseline, &fresh, TrendConfig::default());
        assert_eq!(report.comparisons.len(), 2);
        let regressions = report.regressions();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].sample.phase, "round");
        assert!((regressions[0].ratio - 2.5).abs() < 1e-9);
        assert!(!report.nothing_comparable());
    }

    #[test]
    fn baseline_floor_skips_noisy_small_phases() {
        // A 50 ms phase exploding 10x stays below the 100 ms floor and never fails.
        let baseline = vec![sample("smoke", "w", "tiny", 50.0)];
        let fresh = vec![sample("smoke", "w", "tiny", 500.0)];
        let report = compare(&baseline, &fresh, TrendConfig::default());
        assert!(report.comparisons.is_empty());
        assert_eq!(report.skipped_small, 1);
        // ...but it still counted as comparable, so the nothing-comparable error holds
        // only when shared sections truly produced no joinable keys above the floor.
        assert!(report.nothing_comparable());
    }

    #[test]
    fn new_sections_are_informational_never_failures() {
        let baseline = vec![sample("smoke", "w", "round", 200.0)];
        let fresh = vec![
            sample("smoke", "w", "round", 210.0),
            // a whole section the committed baseline predates, with a huge value
            sample("telemetry", "counters", "bigint.mont_mul", 1e9),
            sample("telemetry", "span_totals", "protocol.aggregation", 1e9),
        ];
        let report = compare(&baseline, &fresh, TrendConfig::default());
        assert!(report.regressions().is_empty());
        assert_eq!(report.new_sections.get("telemetry"), Some(&2));
        assert_eq!(report.comparable_fresh, 1);
        assert!(!report.nothing_comparable());
    }

    #[test]
    fn fresh_report_of_only_new_sections_is_not_an_error() {
        let baseline = vec![sample("smoke", "w", "round", 200.0)];
        let fresh = vec![sample("telemetry", "counters", "bigint.mont_mul", 42.0)];
        let report = compare(&baseline, &fresh, TrendConfig::default());
        assert_eq!(report.comparable_fresh, 0);
        assert!(!report.nothing_comparable(), "new coverage alone must not fail the gate");
    }

    #[test]
    fn unmatched_keys_in_shared_sections_are_counted_not_failed() {
        let baseline = vec![sample("smoke", "w", "round", 200.0)];
        let fresh = vec![
            sample("smoke", "w", "round", 220.0),
            sample("smoke", "w", "brand_new_phase", 9999.0),
        ];
        let report = compare(&baseline, &fresh, TrendConfig::default());
        assert_eq!(report.unmatched, 1);
        assert!(report.regressions().is_empty());
    }

    #[test]
    fn disjoint_reports_trip_the_nothing_comparable_error() {
        let baseline = vec![sample("smoke", "old_label", "round", 200.0)];
        let fresh = vec![sample("smoke", "new_label", "round", 220.0)];
        let report = compare(&baseline, &fresh, TrendConfig::default());
        assert_eq!(report.unmatched, 1);
        assert!(report.nothing_comparable());
    }
}
