//! # uldp-bench
//!
//! Benchmark and figure-regeneration harness for the Uldp-FL reproduction.
//!
//! Every figure of the paper's evaluation section has a dedicated binary in `src/bin/`
//! that regenerates the corresponding series and prints them as aligned tables / CSV:
//!
//! | binary | paper figure | content |
//! |--------|--------------|---------|
//! | `fig2_group_privacy` | Fig. 2 | ε of the group-privacy conversion vs. group size k |
//! | `fig4_creditcard` | Fig. 4 | Creditcard privacy-utility trade-offs, all methods |
//! | `fig5_mnist` | Fig. 5 | MNIST trade-offs incl. the non-i.i.d. variants |
//! | `fig6_heartdisease` | Fig. 6 | HeartDisease trade-offs |
//! | `fig7_tcgabrca` | Fig. 7 | TcgaBrca trade-offs (C-index) |
//! | `fig8_weighting` | Fig. 8 | ULDP-AVG vs ULDP-AVG-w test loss under skew, |S| ∈ {5,20,50} |
//! | `fig9_subsampling` | Fig. 9 | effect of user-level sub-sampling rates |
//! | `fig10_protocol_bench` | Fig. 10 | private weighting protocol wall-clock, benchmark scenarios |
//! | `fig11_protocol_scaling` | Fig. 11 | protocol scaling with parameter count and user count |
//!
//! Scale is controlled by the `ULDP_BENCH_SCALE` environment variable: `quick` (default,
//! minutes) or `full` (closer to the paper's scale, much slower). Criterion micro-benches
//! (`cargo bench`) cover the crypto primitives, the per-phase protocol cost, the RDP
//! accountant and silo-local training.

pub mod modpow;
pub mod report;
pub mod scenarios;
pub mod telemetry_report;
pub mod trend;

use rand::rngs::StdRng;
use uldp_core::{
    FlConfig, Method, PrivateWeightingProtocol, RoundInput, RoundTimings, Trainer, TrainingHistory,
};
use uldp_datasets::FederatedDataset;
use uldp_ml::Model;
use uldp_runtime::Runtime;

pub use report::{BenchEntry, BenchSection};

/// Experiment scale selected via the `ULDP_BENCH_SCALE` environment variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small workloads that finish in seconds to minutes (default).
    Quick,
    /// Workloads close to the paper's scale.
    Full,
}

impl Scale {
    /// Reads the scale from the environment (`quick` unless `ULDP_BENCH_SCALE=full`).
    pub fn from_env() -> Self {
        match std::env::var("ULDP_BENCH_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Picks `quick` or `full` value.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// One row of a figure's result table.
#[derive(Clone, Debug)]
pub struct ResultRow {
    /// Series / method label.
    pub label: String,
    /// Named values of the row, printed in insertion order.
    pub values: Vec<(String, String)>,
}

impl ResultRow {
    /// Creates an empty row with a label.
    pub fn new(label: impl Into<String>) -> Self {
        ResultRow { label: label.into(), values: Vec::new() }
    }

    /// Appends a formatted numeric value.
    pub fn push_f64(&mut self, name: &str, value: f64) {
        let rendered = if value.is_infinite() {
            "inf".to_string()
        } else if value.abs() >= 1000.0 {
            format!("{value:.1}")
        } else {
            format!("{value:.4}")
        };
        self.values.push((name.to_string(), rendered));
    }

    /// Appends a pre-formatted value.
    pub fn push_str(&mut self, name: &str, value: impl Into<String>) {
        self.values.push((name.to_string(), value.into()));
    }
}

/// Prints a titled table of rows in an aligned, grep-friendly format.
pub fn print_table(title: &str, rows: &[ResultRow]) {
    println!("\n== {title} ==");
    if rows.is_empty() {
        println!("(no rows)");
        return;
    }
    // header from the first row
    let mut header = format!("{:<24}", "series");
    for (name, _) in &rows[0].values {
        header.push_str(&format!(" {name:>14}"));
    }
    println!("{header}");
    for row in rows {
        let mut line = format!("{:<24}", row.label);
        for (_, value) in &row.values {
            line.push_str(&format!(" {value:>14}"));
        }
        println!("{line}");
    }
}

/// Trains `method` on a clone of `dataset` with a model produced by `make_model`, using
/// the supplied configuration tweaks, and returns the history. Shared by the figure
/// binaries so all of them configure runs consistently.
pub fn run_training(
    dataset: &FederatedDataset,
    method: Method,
    rounds: u64,
    sigma: f64,
    user_sampling: f64,
    make_model: &dyn Fn() -> Box<dyn Model>,
) -> TrainingHistory {
    let mut config = FlConfig::recommended(method, dataset.num_silos);
    config.rounds = rounds;
    config.local_epochs = 2;
    config.local_lr = 0.3;
    config.clip_bound = 1.0;
    config.sigma = sigma;
    config.user_sampling = user_sampling;
    config.eval_every = (rounds / 5).max(1);
    if matches!(method, Method::UldpAvg { .. } | Method::UldpSgd { .. }) {
        config.global_lr = dataset.num_silos as f64 * 20.0;
    }
    Trainer::new(config, dataset.clone(), make_model()).run()
}

/// Formats a `Duration` in milliseconds with three decimals.
pub fn millis(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Outcome of running one weighting round on the pooled runtime and again on a 1-thread
/// runtime from an identically-seeded RNG.
#[derive(Clone, Debug)]
pub struct RoundComparison {
    /// Decrypted aggregate of the pooled round (bitwise-equal to the sequential one).
    pub aggregate: Vec<f64>,
    /// Per-phase timings of the pooled round.
    pub timings: RoundTimings,
    /// Per-phase timings of the 1-thread round.
    pub seq_timings: RoundTimings,
    /// Wall-clock speedup of the pooled round over the sequential one.
    pub speedup: f64,
    /// Peak transient fold-accumulator bytes of the pooled round (the round's streaming
    /// cell fold, read from the runtime's [`uldp_runtime::MemoryGauge`]). This is the
    /// measured O(chunks × dim) footprint the `memory` report section records.
    pub peak_fold_bytes: usize,
}

/// Runs `protocol`'s weighting round twice — on its configured (pooled) runtime with
/// `rng`, then on a 1-thread runtime from a pre-round clone of `rng` — and asserts the
/// decrypted aggregates are bitwise-identical (the runtime's determinism guarantee).
///
/// Shared by `fig10_protocol_bench`, `fig11_protocol_scaling` and `protocol_smoke` so
/// the comparison harness cannot drift between them. `rng` advances exactly as one round
/// would; the protocol is returned with the 1-thread runtime installed.
pub fn pooled_vs_sequential_round(
    protocol: PrivateWeightingProtocol,
    deltas: &[Vec<Vec<f64>>],
    noises: &[Vec<f64>],
    rng: &mut StdRng,
) -> (PrivateWeightingProtocol, RoundComparison) {
    // Warm-up round on a cloned RNG, output and cache discarded: the first round over
    // a fresh protocol pays one-time lazy initialisation (CRT decryption contexts,
    // re-randomisation tables, allocator growth) that belongs to neither side of the
    // threads comparison — without this the pooled round, which runs first, absorbed
    // that cost and a 1-thread "pooled" run read as slower than sequential.
    let mut warm_rng = rng.clone();
    let _ = protocol.weighting_round(deltas, noises, None, &mut warm_rng);
    protocol.reset_round_cache();
    let mut seq_rng = rng.clone();
    protocol.runtime().fold_gauge().reset();
    let (aggregate, timings) = protocol.weighting_round(deltas, noises, None, rng);
    let peak_fold_bytes = protocol.runtime().fold_gauge().peak();
    let protocol = protocol.with_runtime(Runtime::handle(1));
    // The pooled round populated the cross-round ciphertext cache; drop it so the
    // sequential replay pays the same full encryption cost and the speedup stays a
    // pure threads comparison.
    protocol.reset_round_cache();
    let (seq_aggregate, seq_timings) = protocol.weighting_round(deltas, noises, None, &mut seq_rng);
    assert_eq!(
        aggregate.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        seq_aggregate.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "pooled and sequential aggregates must be bitwise-identical"
    );
    let speedup = seq_timings.total().as_secs_f64() / timings.total().as_secs_f64().max(1e-12);
    (protocol, RoundComparison { aggregate, timings, seq_timings, speedup, peak_fold_bytes })
}

/// Outcome of replaying the same multi-round inputs twice — once sequentially
/// (depth 0) and once through the round pipeline — from identically-seeded RNGs.
#[derive(Clone, Debug)]
pub struct PipelineComparison {
    /// Rounds in the replay.
    pub rounds: usize,
    /// Pipeline depth of the overlapped replay (0 means the pipeline was disabled and
    /// both replays took the sequential path).
    pub depth: usize,
    /// Wall-clock of the sequential replay, milliseconds.
    pub seq_ms: f64,
    /// Wall-clock of the pipelined replay, milliseconds.
    pub pipe_ms: f64,
    /// `seq_ms / pipe_ms` — how much decrypt/fold overlap buys over the loop.
    pub speedup: f64,
    /// Aggregates of the pipelined replay (bitwise-equal to the sequential ones).
    pub aggregates: Vec<Vec<f64>>,
}

/// Replays `rounds` through [`PrivateWeightingProtocol::run_rounds_with_depth`] twice —
/// pipelined at `depth` with `rng`, then sequentially (depth 0) from a pre-replay clone
/// of `rng` — and asserts the decrypted aggregates are bitwise-identical.
///
/// A full warm-up replay runs first (cloned RNG, output discarded) so both timed
/// replays execute against a warm cross-round ciphertext cache: the cached replay is
/// where decryption is a large enough share of the round for overlap to pay, and it is
/// the regime the `pipeline` bench section gates on. `rng` advances exactly as one
/// replay would. Shared by `protocol_smoke` and ad-hoc benches so the comparison
/// harness cannot drift.
pub fn pipelined_vs_sequential_rounds(
    protocol: &PrivateWeightingProtocol,
    rounds: &[RoundInput<'_>],
    depth: usize,
    rng: &mut StdRng,
) -> PipelineComparison {
    let mut warm_rng = rng.clone();
    protocol.reset_round_cache();
    let _ = protocol.run_rounds_with_depth(rounds, 0, &mut warm_rng);
    let mut seq_rng = rng.clone();
    let start = std::time::Instant::now();
    let outputs = protocol.run_rounds_with_depth(rounds, depth, rng);
    let pipe_ms = millis(start.elapsed());
    let start = std::time::Instant::now();
    let seq_outputs = protocol.run_rounds_with_depth(rounds, 0, &mut seq_rng);
    let seq_ms = millis(start.elapsed());
    let bits = |outs: &[uldp_core::RoundOutput]| {
        outs.iter()
            .map(|o| o.aggregate.iter().map(|v| v.to_bits()).collect::<Vec<u64>>())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        bits(&outputs),
        bits(&seq_outputs),
        "pipelined and sequential replays must be bitwise-identical"
    );
    PipelineComparison {
        rounds: rounds.len(),
        depth,
        seq_ms,
        pipe_ms,
        speedup: seq_ms / pipe_ms.max(1e-9),
        aggregates: outputs.into_iter().map(|o| o.aggregate).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_quick() {
        // The environment variable is not set in the test harness.
        assert_eq!(Scale::from_env(), Scale::Quick);
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn result_rows_format_values() {
        let mut row = ResultRow::new("test");
        row.push_f64("eps", f64::INFINITY);
        row.push_f64("acc", 0.91234);
        row.push_f64("big", 12345.6);
        row.push_str("note", "ok");
        assert_eq!(row.values[0].1, "inf");
        assert_eq!(row.values[1].1, "0.9123");
        assert_eq!(row.values[2].1, "12345.6");
        assert_eq!(row.values[3].1, "ok");
        // print_table must not panic
        print_table("unit", &[row]);
        print_table("empty", &[]);
    }

    #[test]
    fn millis_converts() {
        assert!((millis(std::time::Duration::from_millis(250)) - 250.0).abs() < 1e-9);
    }
}
