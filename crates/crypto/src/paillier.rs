//! The Paillier additively homomorphic cryptosystem.
//!
//! Protocol 1 uses Paillier encryption so that the server can hand the silos the
//! encrypted blinded inverse histograms `Enc_p(B_inv(N_u))` and the silos can compute
//! weighted, clipped model deltas *under encryption* (scalar multiplication by public
//! per-silo factors and homomorphic summation), without ever learning the inverses and
//! without the server learning the per-silo histograms.
//!
//! The implementation uses the standard simplified variant with generator `g = n + 1`:
//!
//! * `Enc(m; r) = (1 + m·n) · r^n  mod n²`
//! * `Dec(c) = L(c^λ mod n²) · μ  mod n`, where `L(x) = (x − 1)/n`, `λ = lcm(p−1, q−1)`
//!   and `μ = λ^{-1} mod n` (valid for `g = n + 1`).
//!
//! Homomorphic operations: ciphertext addition is multiplication mod `n²`, and
//! multiplication by a plaintext scalar is modular exponentiation.
//!
//! ## The Montgomery engine
//!
//! Every exponentiation here runs over a handful of fixed moduli (`n²` for
//! encryption/scalar multiplication, `p²`/`q²` for CRT decryption), so both keys carry
//! lazily-built, shared [`ModulusCtx`] caches and route through the Montgomery engine of
//! `uldp-bigint` by default; the `(1 + m·n) mod n²` encryption step and the `L(x)`
//! decryption step stay in normal form at the boundaries. [`PaillierPublicKey::scalar_mul_ctx`]
//! additionally amortises a *base*: Protocol 1 raises each encrypted inverse to one
//! scalar per model coordinate, which a [`FixedBaseCtx`] turns into squaring-free
//! table lookups. Results are bitwise-identical to the schoolbook square-and-multiply
//! path (`ULDP_GENERIC_MODPOW=1` forces that path; CI diffs the two).

use rand::Rng;
use std::sync::{Arc, OnceLock};
use uldp_bigint::modular::{mod_inv, mod_mul, mod_pow, mod_sub};
use uldp_bigint::montgomery::{engine_disabled, FixedBaseCtx, ModulusCtx};
use uldp_bigint::{lcm, prime, BigUint};
use uldp_runtime::seeding::WideSeed;
use uldp_runtime::Runtime;

/// Below this many expected exponentiations of one base, building a fixed-base table
/// costs more than it saves and [`PaillierPublicKey::scalar_mul_ctx`] uses the plain
/// sliding-window path instead.
const FIXED_BASE_MIN_MULS: usize = 8;

/// Ciphertexts per pooled chunk in [`PaillierSecretKey::decrypt_batch`]. Fixed (not
/// thread-derived) so the chunk grid — and with it any telemetry — is identical at
/// every pool size; small enough that a model-sized batch still fans out well.
const DECRYPT_BATCH_CHUNK: usize = 2;

/// Paillier public key.
#[derive(Clone, Debug)]
pub struct PaillierPublicKey {
    /// Modulus `n = p·q`; also the plaintext space `F_n` used by Protocol 1.
    pub n: BigUint,
    /// Cached `n²`, the ciphertext modulus.
    pub n_squared: BigUint,
    /// Lazily-built Montgomery context for `n` (shared by clones made after the build).
    ctx_n: OnceLock<Arc<ModulusCtx>>,
    /// Lazily-built Montgomery context for `n²`, the exponentiation hot path.
    ctx_n2: OnceLock<Arc<ModulusCtx>>,
}

impl PartialEq for PaillierPublicKey {
    fn eq(&self, other: &Self) -> bool {
        // `n_squared` and the contexts are derived from `n`.
        self.n == other.n
    }
}

impl Eq for PaillierPublicKey {}

/// Paillier secret key.
#[derive(Clone, Debug)]
pub struct PaillierSecretKey {
    /// `λ = lcm(p − 1, q − 1)`.
    lambda: BigUint,
    /// `μ = λ^{-1} mod n`.
    mu: BigUint,
    /// The matching public key.
    public: PaillierPublicKey,
    /// The prime factors of `n`, kept for CRT decryption.
    p: BigUint,
    q: BigUint,
    /// Cached `p²` / `q²` and the CRT exponents `λ mod φ(p²)` / `λ mod φ(q²)`.
    p_squared: BigUint,
    q_squared: BigUint,
    exp_p: BigUint,
    exp_q: BigUint,
    /// `(p²)^{-1} mod q²` for the CRT recombination.
    p2_inv_mod_q2: BigUint,
    /// Lazily-built Montgomery contexts for `p²` / `q²`.
    ctx_p2: OnceLock<Arc<ModulusCtx>>,
    ctx_q2: OnceLock<Arc<ModulusCtx>>,
}

/// A Paillier key pair held by the aggregation server.
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use uldp_bigint::BigUint;
/// use uldp_crypto::paillier::PaillierKeyPair;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let keys = PaillierKeyPair::generate(&mut rng, 256);
/// let a = keys.public.encrypt(&mut rng, &BigUint::from_u64(20));
/// let b = keys.public.encrypt(&mut rng, &BigUint::from_u64(22));
/// let sum = keys.public.add(&a, &b);
/// assert_eq!(keys.secret.decrypt(&sum), BigUint::from_u64(42));
/// ```
#[derive(Clone, Debug)]
pub struct PaillierKeyPair {
    /// Public part, distributed to all silos in setup step 1.(a).
    pub public: PaillierPublicKey,
    /// Secret part, kept by the server.
    pub secret: PaillierSecretKey,
}

/// A Paillier ciphertext (an element of the multiplicative group mod `n²`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ciphertext(pub BigUint);

impl PaillierKeyPair {
    /// Generates a key pair whose modulus `n` has (approximately) `modulus_bits` bits.
    ///
    /// The paper's default security parameter is a 3072-bit modulus; tests use much
    /// smaller sizes.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, modulus_bits: usize) -> Self {
        assert!(modulus_bits >= 16, "modulus must be at least 16 bits");
        let half = modulus_bits / 2;
        loop {
            let (p, q) = prime::generate_prime_pair(rng, half);
            let n = p.mul(&q);
            // Require gcd(n, (p-1)(q-1)) == 1, guaranteed for same-size primes, and the
            // requested bit length for predictable field sizes.
            if n.bit_length() < modulus_bits - 1 {
                continue;
            }
            let p1 = p.sub(&BigUint::one());
            let q1 = q.sub(&BigUint::one());
            let lambda = lcm(&p1, &q1);
            let mu = match mod_inv(&lambda, &n) {
                Some(mu) => mu,
                None => continue,
            };
            let public = PaillierPublicKey::new(n);
            // CRT precomputation: c^λ mod p²/q² only needs λ modulo the group orders
            // φ(p²) = p(p−1) and φ(q²) = q(q−1), and recombination needs (p²)^{-1} mod q²
            // (p ≠ q primes, so the inverse always exists).
            let p_squared = p.mul(&p);
            let q_squared = q.mul(&q);
            let exp_p = lambda.rem(&p.mul(&p1));
            let exp_q = lambda.rem(&q.mul(&q1));
            let p2_inv_mod_q2 = mod_inv(&p_squared, &q_squared).expect("p² is a unit modulo q²");
            let secret = PaillierSecretKey {
                lambda,
                mu,
                public: public.clone(),
                p,
                q,
                p_squared,
                q_squared,
                exp_p,
                exp_q,
                p2_inv_mod_q2,
                ctx_p2: OnceLock::new(),
                ctx_q2: OnceLock::new(),
            };
            return PaillierKeyPair { public, secret };
        }
    }
}

/// A reusable exponentiation context for one ciphertext base, produced by
/// [`PaillierPublicKey::scalar_mul_ctx`].
///
/// Protocol 1 step 2.(b) raises each user's encrypted inverse to one scalar per
/// `(silo, coordinate)` cell; hoisting this context out of the cell loop amortises the
/// per-base fixed-base table (or, for rarely-used bases, at least shares the per-modulus
/// Montgomery state). All methods take `&self`, so one context serves a whole parallel
/// region.
#[derive(Debug)]
pub struct ScalarMulCtx {
    /// Plaintext modulus, for the `k mod n` scalar reduction `scalar_mul` performs.
    n: BigUint,
    inner: ScalarMulCtxInner,
}

#[derive(Debug)]
enum ScalarMulCtxInner {
    /// Schoolbook square-and-multiply over `n²` (the `ULDP_GENERIC_MODPOW=1` path).
    Generic { base: BigUint, n_squared: BigUint },
    /// Montgomery sliding window (few expected uses; no per-base table).
    Window { ctx: Arc<ModulusCtx>, base: BigUint },
    /// Fixed-base radix-2ʷ table (many expected uses of the same base).
    FixedBase(FixedBaseCtx),
}

impl ScalarMulCtx {
    /// `Dec(pow(k)) = k · Dec(base) mod n` — the hoisted form of
    /// [`PaillierPublicKey::scalar_mul`], bitwise-identical to it.
    pub fn pow(&self, k: &BigUint) -> Ciphertext {
        uldp_telemetry::metrics::PAILLIER_SCALAR_MUL.inc();
        let k = k.rem(&self.n);
        Ciphertext(match &self.inner {
            ScalarMulCtxInner::Generic { base, n_squared } => mod_pow(base, &k, n_squared),
            ScalarMulCtxInner::Window { ctx, base } => ctx.pow(base, &k),
            ScalarMulCtxInner::FixedBase(fixed) => fixed.pow(&k),
        })
    }
}

/// Digit width of the [`RerandCtx`] table. One table serves every re-randomisation of
/// a whole federation across all rounds, so it affords a wider digit (fewer
/// multiplications per exponentiation) than the per-base [`FixedBaseCtx::new`] default.
const RERAND_WINDOW: usize = 7;

/// A reusable re-randomisation context produced by [`PaillierPublicKey::rerand_ctx`].
///
/// Samples one secret unit `ρ` at construction and holds `h = ρ^n mod n²` behind a
/// wide fixed-base table. Each re-randomisation then multiplies by `h^t` for a fresh
/// exponent `t ∈ [1, n)` — squaring-free table lookups instead of the full
/// sliding-window `r^n` a fresh encryption (or [`PaillierPublicKey::rerandomise`])
/// pays. `h^t = (ρ^t)^n` is an n-th power, i.e. an encryption of zero with randomiser
/// `ρ^t mod n`, so decryption is unchanged exactly.
///
/// The obliviousness trade-off: randomisers are drawn from the subgroup `⟨ρ⟩` instead
/// of all units mod `n`. Under the decisional composite residuosity assumption the
/// re-randomised ciphertext remains indistinguishable from a fresh encryption (the
/// standard fixed-generator re-randomisation argument); callers needing full-group
/// randomisers use [`PaillierPublicKey::rerandomise`] instead.
#[derive(Debug)]
pub struct RerandCtx {
    /// Plaintext modulus; exponents are drawn from `[1, n)`.
    n: BigUint,
    /// Ciphertext modulus `n²`.
    n_squared: BigUint,
    /// `h = ρ^n mod n²` in normal form (the generic-path base).
    h: BigUint,
    /// Fixed-base table for `h` (absent on the `ULDP_GENERIC_MODPOW=1` path).
    table: Option<FixedBaseCtx>,
}

impl RerandCtx {
    /// `h^t mod n²` — the n-th power a re-randomisation by exponent `t` multiplies in.
    ///
    /// The table covers exponents up to `2·|n| + 64` bits: enough for an accumulated
    /// per-round exponent `Σ t` times a scalar `< n` across 2⁶⁴ rounds, which is what
    /// lets Protocol 1's cross-round cache re-derive `c·h^(Σt)` powers from the
    /// round-1 base without leaving the squaring-free path.
    pub fn pow_h(&self, t: &BigUint) -> BigUint {
        match &self.table {
            Some(fixed) => fixed.pow(t),
            None => mod_pow(&self.h, t, &self.n_squared),
        }
    }

    /// Re-randomises `c` with a fresh exponent `t ∈ [1, n)`, returning `(c·h^t, t)`.
    ///
    /// The exponent is returned so callers can accumulate it: two successive
    /// re-randomisations by `t₁`, `t₂` satisfy `c·h^(t₁+t₂)` exactly, which Protocol
    /// 1's `RoundCryptoCache` uses to relate every round's ciphertext to its round-1
    /// base.
    pub fn rerandomise<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        c: &Ciphertext,
    ) -> (Ciphertext, BigUint) {
        uldp_telemetry::metrics::PAILLIER_RERANDOMISE.inc();
        let t = loop {
            let t = BigUint::random_below(rng, &self.n);
            if !t.is_zero() {
                break t;
            }
        };
        (Ciphertext(mod_mul(&c.0, &self.pow_h(&t), &self.n_squared)), t)
    }

    /// Re-randomises a batch on the runtime's worker pool with the same deterministic
    /// per-index seeding as [`PaillierPublicKey::encrypt_batch`], so the outputs are
    /// bitwise-identical at any thread count.
    pub fn rerandomise_batch(
        &self,
        rt: &Runtime,
        seed: WideSeed,
        cts: &[Ciphertext],
    ) -> Vec<(Ciphertext, BigUint)> {
        rt.par_map_wide_seeded(cts.len(), seed, |i, rng| self.rerandomise(rng, &cts[i]))
    }
}

impl PaillierPublicKey {
    /// Builds a public key from the modulus `n` (caching `n²`; the Montgomery contexts
    /// are built lazily on first exponentiation and shared from then on).
    pub fn new(n: BigUint) -> Self {
        let n_squared = n.mul(&n);
        PaillierPublicKey { n, n_squared, ctx_n: OnceLock::new(), ctx_n2: OnceLock::new() }
    }

    /// The shared Montgomery context for the plaintext modulus `n`.
    pub fn ctx_n(&self) -> &Arc<ModulusCtx> {
        self.ctx_n.get_or_init(|| Arc::new(ModulusCtx::new(&self.n)))
    }

    /// The shared Montgomery context for the ciphertext modulus `n²` (the hot path of
    /// every encryption and scalar multiplication).
    pub fn ctx_n2(&self) -> &Arc<ModulusCtx> {
        self.ctx_n2.get_or_init(|| Arc::new(ModulusCtx::new(&self.n_squared)))
    }

    /// Encrypts a plaintext `m ∈ F_n` with fresh randomness.
    pub fn encrypt<R: Rng + ?Sized>(&self, rng: &mut R, m: &BigUint) -> Ciphertext {
        let m = m.rem(&self.n);
        let r = self.sample_unit(rng);
        self.encrypt_with_randomness(&m, &r)
    }

    /// Encrypts with explicit randomness `r` (must be a unit mod `n`); used in tests.
    pub fn encrypt_with_randomness(&self, m: &BigUint, r: &BigUint) -> Ciphertext {
        uldp_telemetry::metrics::PAILLIER_ENCRYPT.inc();
        // (1 + m*n) mod n^2 — stays in normal form; only r^n runs in Montgomery form.
        let gm = BigUint::one().add(&m.mul(&self.n)).rem(&self.n_squared);
        let rn = if engine_disabled() {
            mod_pow(r, &self.n, &self.n_squared)
        } else {
            self.ctx_n2().pow(r, &self.n)
        };
        Ciphertext(mod_mul(&gm, &rn, &self.n_squared))
    }

    /// Re-randomises a ciphertext: `Dec(rerandomise(c)) = Dec(c)`, but the ciphertext
    /// bits are refreshed by a uniformly random n-th power `r^n`.
    ///
    /// Since `Enc(0; r) = (1 + 0·n)·r^n = r^n`, this is exactly
    /// `add(c, encrypt(rng, 0))` — the same obliviousness argument — minus the
    /// `(1 + m·n) mod n²` blinding step and one `mod_mul`: one exponentiation and one
    /// multiplication total.
    pub fn rerandomise<R: Rng + ?Sized>(&self, rng: &mut R, c: &Ciphertext) -> Ciphertext {
        let r = self.sample_unit(rng);
        self.rerandomise_with_randomness(c, &r)
    }

    /// Re-randomises with explicit randomness `r` (must be a unit mod `n`); used in
    /// tests pinning the `add(c, Enc(0; r)) = c·r^n` equivalence.
    pub fn rerandomise_with_randomness(&self, c: &Ciphertext, r: &BigUint) -> Ciphertext {
        uldp_telemetry::metrics::PAILLIER_RERANDOMISE.inc();
        let rn = if engine_disabled() {
            mod_pow(r, &self.n, &self.n_squared)
        } else {
            self.ctx_n2().pow(r, &self.n)
        };
        Ciphertext(mod_mul(&c.0, &rn, &self.n_squared))
    }

    /// Re-randomises a batch of ciphertexts on the runtime's worker pool with the same
    /// deterministic per-index seeding as [`PaillierPublicKey::encrypt_batch`]: the
    /// refreshed ciphertexts are bitwise-identical at any thread count.
    pub fn rerandomise_batch(
        &self,
        rt: &Runtime,
        seed: WideSeed,
        cts: &[Ciphertext],
    ) -> Vec<Ciphertext> {
        rt.par_map_wide_seeded(cts.len(), seed, |i, rng| self.rerandomise(rng, &cts[i]))
    }

    /// Builds a [`RerandCtx`]: samples a secret unit `ρ`, computes `h = ρ^n mod n²`
    /// and precomputes its wide fixed-base table, after which each re-randomisation is
    /// squaring-free (see the [`RerandCtx`] docs for the subgroup caveat).
    pub fn rerand_ctx<R: Rng + ?Sized>(&self, rng: &mut R) -> RerandCtx {
        let rho = self.sample_unit(rng);
        let h = if engine_disabled() {
            mod_pow(&rho, &self.n, &self.n_squared)
        } else {
            self.ctx_n2().pow(&rho, &self.n)
        };
        // Covers Σt (64 rounds-bits of headroom) times a scalar < n; see RerandCtx::pow_h.
        let max_bits = 2 * self.n.bit_length() + 64;
        let table = (!engine_disabled()).then(|| {
            FixedBaseCtx::with_window(Arc::clone(self.ctx_n2()), &h, max_bits, RERAND_WINDOW)
        });
        RerandCtx { n: self.n.clone(), n_squared: self.n_squared.clone(), h, table }
    }

    /// The encryption of zero with randomness one (useful as an additive identity).
    pub fn trivial_zero(&self) -> Ciphertext {
        Ciphertext(BigUint::one())
    }

    /// Homomorphic addition of two ciphertexts: `Dec(add(a, b)) = Dec(a) + Dec(b) mod n`.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        Ciphertext(mod_mul(&a.0, &b.0, &self.n_squared))
    }

    /// Homomorphic addition of a plaintext constant: `Dec(add_plain(a, k)) = Dec(a) + k`.
    pub fn add_plain(&self, a: &Ciphertext, k: &BigUint) -> Ciphertext {
        let k = k.rem(&self.n);
        let gk = BigUint::one().add(&k.mul(&self.n)).rem(&self.n_squared);
        Ciphertext(mod_mul(&a.0, &gk, &self.n_squared))
    }

    /// Homomorphic scalar multiplication: `Dec(scalar_mul(a, k)) = k · Dec(a) mod n`.
    pub fn scalar_mul(&self, a: &Ciphertext, k: &BigUint) -> Ciphertext {
        uldp_telemetry::metrics::PAILLIER_SCALAR_MUL.inc();
        let k = k.rem(&self.n);
        Ciphertext(if engine_disabled() {
            mod_pow(&a.0, &k, &self.n_squared)
        } else {
            self.ctx_n2().pow(&a.0, &k)
        })
    }

    /// Builds a reusable [`ScalarMulCtx`] for repeated scalar multiplications of one
    /// ciphertext. `expected_muls` is the number of [`ScalarMulCtx::pow`] calls the
    /// caller anticipates: above a small threshold the context precomputes a fixed-base
    /// table (no squarings per exponentiation), below it the sliding-window path is used
    /// so a rarely-used base never pays for a table.
    pub fn scalar_mul_ctx(&self, a: &Ciphertext, expected_muls: usize) -> ScalarMulCtx {
        let inner = if engine_disabled() {
            ScalarMulCtxInner::Generic { base: a.0.clone(), n_squared: self.n_squared.clone() }
        } else if expected_muls >= FIXED_BASE_MIN_MULS {
            // Scalars are reduced mod n before exponentiation, so the table only needs
            // to cover n-sized exponents.
            ScalarMulCtxInner::FixedBase(FixedBaseCtx::new(
                Arc::clone(self.ctx_n2()),
                &a.0,
                self.n.bit_length(),
            ))
        } else {
            ScalarMulCtxInner::Window { ctx: Arc::clone(self.ctx_n2()), base: a.0.clone() }
        };
        ScalarMulCtx { n: self.n.clone(), inner }
    }

    /// Sums an iterator of ciphertexts homomorphically.
    pub fn sum<'a, I: IntoIterator<Item = &'a Ciphertext>>(&self, items: I) -> Ciphertext {
        let mut acc = self.trivial_zero();
        for c in items {
            acc = self.add(&acc, c);
        }
        acc
    }

    /// Encrypts a batch of plaintexts on the runtime's worker pool.
    ///
    /// Plaintext `i` is encrypted with randomness drawn from an RNG derived from
    /// `(seed, i)` ([`uldp_runtime::seeding::index_seed_wide`]), so the produced
    /// ciphertexts — not just their decryptions — are bitwise-identical at any thread
    /// count. The 256-bit batch seed (draw it with
    /// [`uldp_runtime::seeding::wide_seed_from_rng`]) preserves the source RNG's full
    /// entropy, so batching does not weaken the encryption randomness. This is the server
    /// hot path of Protocol 1 step 2.(a).
    pub fn encrypt_batch(
        &self,
        rt: &Runtime,
        seed: WideSeed,
        plaintexts: &[BigUint],
    ) -> Vec<Ciphertext> {
        rt.par_map_wide_seeded(plaintexts.len(), seed, |i, rng| self.encrypt(rng, &plaintexts[i]))
    }

    /// Homomorphically multiplies each `(ciphertext, scalar)` pair on the worker pool.
    /// Scalar multiplication is deterministic, so no seeding is involved.
    ///
    /// This is the standalone batch form of the `scalar_mul` loop that dominates Protocol
    /// 1 step 2.(b); the protocol itself fuses that loop with scalar preparation and
    /// accumulation per `(silo, coordinate)` cell (`uldp-core`'s `weighting_round`), so
    /// this API is for callers batching scalar multiplications outside the protocol.
    pub fn scalar_mul_batch(
        &self,
        rt: &Runtime,
        pairs: &[(&Ciphertext, BigUint)],
    ) -> Vec<Ciphertext> {
        rt.par_map(pairs, |_, (c, k)| self.scalar_mul(c, k))
    }

    /// Sums a slice of ciphertexts with a fixed-shape parallel tree reduction.
    /// Ciphertext addition is exact modular arithmetic, so the result is
    /// bitwise-identical to [`PaillierPublicKey::sum`] at any thread count.
    ///
    /// The standalone form of the tree aggregation in Protocol 1 step 2.(c); the protocol
    /// reduces whole per-silo ciphertext *vectors* in one tree instead, so this API is for
    /// callers summing a flat ciphertext list.
    pub fn sum_par(&self, rt: &Runtime, items: &[Ciphertext]) -> Ciphertext {
        match items {
            [] => return self.trivial_zero(),
            [only] => return only.clone(),
            _ => {}
        }
        // First tree level reads the borrowed ciphertexts directly (no up-front deep copy
        // of the whole slice); it pairs adjacent elements with the odd leftover appended,
        // exactly the shape `par_reduce` uses, so the overall tree is unchanged.
        let mut level: Vec<Ciphertext> =
            rt.par_map_range(items.len() / 2, |i| self.add(&items[2 * i], &items[2 * i + 1]));
        if items.len() % 2 == 1 {
            level.push(items[items.len() - 1].clone());
        }
        rt.par_reduce(level, |a, b| self.add(&a, &b)).expect("level is non-empty")
    }

    /// Sums a slice of ciphertexts with a streaming chunked fold
    /// ([`Runtime::par_fold_reduce`]): the items are split into fixed-size chunks whose
    /// shape depends only on `(len, chunk_size)`, each chunk folds its ciphertexts into
    /// one running product in place, and chunk partials combine in fixed order — no
    /// intermediate tree level is ever materialised. Ciphertext addition is exact
    /// modular arithmetic, so the result is bitwise-identical to
    /// [`PaillierPublicKey::sum`] and [`PaillierPublicKey::sum_par`] at any thread count
    /// and any chunk size. `chunk_size = 0` means one chunk (sequential accumulation).
    pub fn sum_par_chunked(
        &self,
        rt: &Runtime,
        items: &[Ciphertext],
        chunk_size: usize,
    ) -> Ciphertext {
        rt.par_fold_reduce(
            items.len(),
            chunk_size,
            || self.trivial_zero(),
            |acc, i| *acc = self.add(acc, &items[i]),
            |a, b| self.add(&a, &b),
        )
        .unwrap_or_else(|| self.trivial_zero())
    }

    /// Samples a uniformly random unit modulo `n`.
    ///
    /// The gcd test alone rejects zero (`gcd(0, n) = n ≠ 1`), so no separate zero
    /// pre-check is needed; the rejection loop draws again either way, consuming the RNG
    /// identically to the historical two-check version.
    fn sample_unit<R: Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        loop {
            let r = BigUint::random_below(rng, &self.n);
            if uldp_bigint::gcd(&r, &self.n).is_one() {
                return r;
            }
        }
    }

    /// Bit length of the modulus (the "security parameter" reported by benches).
    pub fn modulus_bits(&self) -> usize {
        self.n.bit_length()
    }
}

impl PaillierSecretKey {
    /// Decrypts a ciphertext back to `F_n`.
    ///
    /// The dominant `c^λ mod n²` is computed by CRT over the prime-square factors: two
    /// half-width exponentiations with half-width exponents (`λ mod φ(p²)`, `λ mod
    /// φ(q²)`) over their own cached Montgomery contexts, recombined to the unique value
    /// mod `n²` — identical, bit for bit, to the direct exponentiation (debug builds
    /// cross-check against [`PaillierSecretKey::decrypt_generic`] on every call).
    pub fn decrypt(&self, c: &Ciphertext) -> BigUint {
        uldp_telemetry::metrics::PAILLIER_DECRYPT.inc();
        if engine_disabled() {
            return self.decrypt_generic(c);
        }
        let pk = &self.public;
        let x = self.pow_lambda_crt(&c.0);
        let l = self.l_function(&x);
        let m = mod_mul(&l, &self.mu, &pk.n);
        debug_assert_eq!(
            m,
            self.decrypt_generic(c),
            "CRT decryption must match the direct λ/μ path"
        );
        m
    }

    /// Decrypts a batch of ciphertexts on the worker pool, bitwise-identical to
    /// per-item [`PaillierSecretKey::decrypt`] at any thread count.
    ///
    /// The CRT contexts for `p²`/`q²` are hoisted once for the whole batch and each
    /// pooled chunk routes its half-width exponentiations through
    /// [`ModulusCtx::mod_pow_batch`] over the shared contexts, so a multi-round caller
    /// (the round pipeline's overlapped decrypt stage) never re-derives per-round
    /// state. The chunk grid depends only on the batch length, never the pool size.
    pub fn decrypt_batch(&self, rt: &Runtime, items: &[Ciphertext]) -> Vec<BigUint> {
        uldp_telemetry::metrics::PAILLIER_DECRYPT.add(items.len() as u64);
        if engine_disabled() {
            return rt.par_map(items, |_, c| self.decrypt_generic(c));
        }
        let ctx_p2 = Arc::clone(self.ctx_p2());
        let ctx_q2 = Arc::clone(self.ctx_q2());
        let chunks = uldp_runtime::fold_chunk_ranges(items.len(), DECRYPT_BATCH_CHUNK);
        let decrypted: Vec<Vec<BigUint>> = rt.par_map(&chunks, |_, range| {
            let pairs = |sq: &BigUint, exp: &BigUint| -> Vec<(BigUint, BigUint)> {
                range.clone().map(|i| (items[i].0.rem(sq), exp.clone())).collect()
            };
            let xs_p = ctx_p2.mod_pow_batch(&pairs(&self.p_squared, &self.exp_p));
            let xs_q = ctx_q2.mod_pow_batch(&pairs(&self.q_squared, &self.exp_q));
            xs_p.into_iter()
                .zip(xs_q)
                .map(|(x_p, x_q)| {
                    let diff = mod_sub(&x_q, &x_p.rem(&self.q_squared), &self.q_squared);
                    let h = mod_mul(&diff, &self.p2_inv_mod_q2, &self.q_squared);
                    let x = x_p.add(&self.p_squared.mul(&h));
                    mod_mul(&self.l_function(&x), &self.mu, &self.public.n)
                })
                .collect()
        });
        let out = decrypted.concat();
        debug_assert!(
            out.iter().zip(items).all(|(m, c)| *m == self.decrypt_generic(c)),
            "batched CRT decryption must match the direct λ/μ path"
        );
        out
    }

    /// Decrypts via the direct `c^λ mod n²` exponentiation with the schoolbook
    /// square-and-multiply (the seed implementation). Kept as the reference the CRT path
    /// is cross-checked against, and as the `ULDP_GENERIC_MODPOW=1` fallback.
    pub fn decrypt_generic(&self, c: &Ciphertext) -> BigUint {
        let pk = &self.public;
        let x = mod_pow(&c.0, &self.lambda, &pk.n_squared);
        let l = self.l_function(&x);
        mod_mul(&l, &self.mu, &pk.n)
    }

    /// `c^λ mod n²` by CRT over `p²` and `q²`.
    ///
    /// Valid ciphertexts are units mod `n²`, so the exponent reduces modulo the group
    /// orders `φ(p²)` / `φ(q²)` (precomputed at key generation); Garner recombination
    /// lifts the two residues to the unique representative mod `n² = p²·q²`.
    fn pow_lambda_crt(&self, c: &BigUint) -> BigUint {
        let x_p = self.ctx_p2().pow(&c.rem(&self.p_squared), &self.exp_p);
        let x_q = self.ctx_q2().pow(&c.rem(&self.q_squared), &self.exp_q);
        let diff = mod_sub(&x_q, &x_p.rem(&self.q_squared), &self.q_squared);
        let h = mod_mul(&diff, &self.p2_inv_mod_q2, &self.q_squared);
        x_p.add(&self.p_squared.mul(&h))
    }

    /// The shared Montgomery context for `p²`.
    fn ctx_p2(&self) -> &Arc<ModulusCtx> {
        self.ctx_p2.get_or_init(|| Arc::new(ModulusCtx::new(&self.p_squared)))
    }

    /// The shared Montgomery context for `q²`.
    fn ctx_q2(&self) -> &Arc<ModulusCtx> {
        self.ctx_q2.get_or_init(|| Arc::new(ModulusCtx::new(&self.q_squared)))
    }

    /// The prime factors `(p, q)` of the modulus (needed by callers implementing
    /// factorisation-based extensions; handle with the same care as the key itself).
    pub fn primes(&self) -> (&BigUint, &BigUint) {
        (&self.p, &self.q)
    }

    /// The matching public key.
    pub fn public_key(&self) -> &PaillierPublicKey {
        &self.public
    }

    /// `L(x) = (x − 1) / n` (exact division for valid ciphertexts).
    fn l_function(&self, x: &BigUint) -> BigUint {
        x.sub(&BigUint::one()).div(&self.public.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(bits: usize, seed: u64) -> PaillierKeyPair {
        let mut rng = StdRng::seed_from_u64(seed);
        PaillierKeyPair::generate(&mut rng, bits)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let kp = keypair(256, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for v in [0u64, 1, 42, 1_000_000, u64::MAX] {
            let m = BigUint::from_u64(v);
            let c = kp.public.encrypt(&mut rng, &m);
            assert_eq!(kp.secret.decrypt(&c), m);
        }
    }

    #[test]
    fn decrypt_batch_matches_per_item_decrypt_at_any_pool_size() {
        let kp = keypair(256, 31);
        let mut rng = StdRng::seed_from_u64(32);
        // An odd batch length exercises the trailing partial chunk of the fixed grid.
        let cts: Vec<Ciphertext> =
            (0..7u64).map(|v| kp.public.encrypt(&mut rng, &BigUint::from_u64(v * v + 1))).collect();
        let expect: Vec<BigUint> = cts.iter().map(|c| kp.secret.decrypt(c)).collect();
        for threads in [1, 4] {
            let rt = Runtime::new(threads);
            assert_eq!(kp.secret.decrypt_batch(&rt, &cts), expect);
        }
        assert!(kp.secret.decrypt_batch(&Runtime::new(2), &[]).is_empty());
    }

    #[test]
    fn ciphertexts_are_randomised() {
        let kp = keypair(256, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let m = BigUint::from_u64(7);
        let c1 = kp.public.encrypt(&mut rng, &m);
        let c2 = kp.public.encrypt(&mut rng, &m);
        assert_ne!(c1, c2);
        assert_eq!(kp.secret.decrypt(&c1), kp.secret.decrypt(&c2));
    }

    #[test]
    fn homomorphic_addition() {
        let kp = keypair(256, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let a = BigUint::from_u64(123);
        let b = BigUint::from_u64(456);
        let ca = kp.public.encrypt(&mut rng, &a);
        let cb = kp.public.encrypt(&mut rng, &b);
        let sum = kp.public.add(&ca, &cb);
        assert_eq!(kp.secret.decrypt(&sum), BigUint::from_u64(579));
    }

    #[test]
    fn homomorphic_addition_wraps_mod_n() {
        let kp = keypair(128, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let n = kp.public.n.clone();
        let a = n.sub(&BigUint::one());
        let b = BigUint::from_u64(5);
        let ca = kp.public.encrypt(&mut rng, &a);
        let cb = kp.public.encrypt(&mut rng, &b);
        let sum = kp.public.add(&ca, &cb);
        assert_eq!(kp.secret.decrypt(&sum), BigUint::from_u64(4));
    }

    #[test]
    fn homomorphic_scalar_multiplication() {
        let kp = keypair(256, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let m = BigUint::from_u64(321);
        let k = BigUint::from_u64(1000);
        let c = kp.public.encrypt(&mut rng, &m);
        let scaled = kp.public.scalar_mul(&c, &k);
        assert_eq!(kp.secret.decrypt(&scaled), BigUint::from_u64(321_000));
    }

    #[test]
    fn homomorphic_plaintext_addition() {
        let kp = keypair(256, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let m = BigUint::from_u64(10);
        let c = kp.public.encrypt(&mut rng, &m);
        let shifted = kp.public.add_plain(&c, &BigUint::from_u64(90));
        assert_eq!(kp.secret.decrypt(&shifted), BigUint::from_u64(100));
    }

    #[test]
    fn sum_of_many_ciphertexts() {
        let kp = keypair(256, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let values: Vec<u64> = (1..=20).collect();
        let ciphertexts: Vec<Ciphertext> =
            values.iter().map(|&v| kp.public.encrypt(&mut rng, &BigUint::from_u64(v))).collect();
        let total = kp.public.sum(ciphertexts.iter());
        assert_eq!(kp.secret.decrypt(&total), BigUint::from_u64(values.iter().sum()));
    }

    #[test]
    fn trivial_zero_decrypts_to_zero() {
        let kp = keypair(128, 15);
        assert_eq!(kp.secret.decrypt(&kp.public.trivial_zero()), BigUint::zero());
    }

    #[test]
    fn modulus_has_requested_size() {
        let kp = keypair(256, 16);
        assert!(kp.public.modulus_bits() >= 255);
    }

    #[test]
    fn encrypt_batch_is_bitwise_identical_across_thread_counts() {
        let kp = keypair(256, 17);
        let plaintexts: Vec<BigUint> = (0..12).map(BigUint::from_u64).collect();
        let seed: WideSeed = [5, 6, 7, 8];
        let seq = kp.public.encrypt_batch(&Runtime::new(1), seed, &plaintexts);
        let par = kp.public.encrypt_batch(&Runtime::new(4), seed, &plaintexts);
        assert_eq!(seq, par);
        for (c, m) in seq.iter().zip(plaintexts.iter()) {
            assert_eq!(&kp.secret.decrypt(c), m);
        }
        // a different seed (in any lane) produces different randomness
        let other = kp.public.encrypt_batch(&Runtime::new(1), [5, 6, 7, 9], &plaintexts);
        assert_ne!(seq, other);
    }

    #[test]
    fn scalar_mul_batch_matches_pointwise() {
        let kp = keypair(256, 18);
        let mut rng = StdRng::seed_from_u64(19);
        let ciphertexts: Vec<Ciphertext> =
            (1..=8u64).map(|v| kp.public.encrypt(&mut rng, &BigUint::from_u64(v))).collect();
        let pairs: Vec<(&Ciphertext, BigUint)> = ciphertexts
            .iter()
            .enumerate()
            .map(|(i, c)| (c, BigUint::from_u64(10 + i as u64)))
            .collect();
        let batch = kp.public.scalar_mul_batch(&Runtime::new(4), &pairs);
        for (i, (out, (c, k))) in batch.iter().zip(pairs.iter()).enumerate() {
            assert_eq!(out, &kp.public.scalar_mul(c, k), "pair {i}");
        }
    }

    #[test]
    fn crt_decrypt_matches_generic_decrypt() {
        let kp = keypair(256, 22);
        let mut rng = StdRng::seed_from_u64(23);
        for v in [0u64, 1, 42, u64::MAX] {
            let c = kp.public.encrypt(&mut rng, &BigUint::from_u64(v));
            assert_eq!(kp.secret.decrypt(&c), kp.secret.decrypt_generic(&c));
        }
        // including non-trivially random plaintexts near the modulus
        for _ in 0..5 {
            let m = BigUint::random_below(&mut rng, &kp.public.n);
            let c = kp.public.encrypt(&mut rng, &m);
            assert_eq!(kp.secret.decrypt(&c), m);
            assert_eq!(kp.secret.decrypt_generic(&c), m);
        }
    }

    #[test]
    fn montgomery_ciphertexts_match_schoolbook_path() {
        // The engine must be a pure drop-in: same randomness, same ciphertext bits as
        // computing (1 + m·n)·r^n mod n² with the schoolbook mod_pow.
        let kp = keypair(256, 24);
        let mut rng = StdRng::seed_from_u64(25);
        for v in [0u64, 7, 123_456_789] {
            let m = BigUint::from_u64(v).rem(&kp.public.n);
            let r = BigUint::random_below(&mut rng, &kp.public.n);
            if !uldp_bigint::gcd(&r, &kp.public.n).is_one() {
                continue;
            }
            let engine = kp.public.encrypt_with_randomness(&m, &r);
            let gm = BigUint::one().add(&m.mul(&kp.public.n)).rem(&kp.public.n_squared);
            let rn = mod_pow(&r, &kp.public.n, &kp.public.n_squared);
            let schoolbook = mod_mul(&gm, &rn, &kp.public.n_squared);
            assert_eq!(engine.0, schoolbook);
        }
    }

    #[test]
    fn scalar_mul_ctx_matches_scalar_mul() {
        let kp = keypair(256, 26);
        let mut rng = StdRng::seed_from_u64(27);
        let c = kp.public.encrypt(&mut rng, &BigUint::from_u64(9));
        // Both the fixed-base (many expected muls) and the sliding-window (few) variants
        // must agree with the one-shot scalar_mul — and with the schoolbook mod_pow.
        for expected in [1usize, FIXED_BASE_MIN_MULS] {
            let ctx = kp.public.scalar_mul_ctx(&c, expected);
            for k in [0u64, 1, 5, 1 << 40] {
                let k = BigUint::from_u64(k);
                let hoisted = ctx.pow(&k);
                assert_eq!(hoisted, kp.public.scalar_mul(&c, &k));
                assert_eq!(hoisted.0, mod_pow(&c.0, &k.rem(&kp.public.n), &kp.public.n_squared));
            }
        }
    }

    #[test]
    fn rerandomise_preserves_plaintext_and_matches_add_of_zero() {
        let kp = keypair(256, 30);
        let mut rng = StdRng::seed_from_u64(31);
        let m = BigUint::from_u64(12345);
        let c = kp.public.encrypt(&mut rng, &m);
        let fresh = kp.public.rerandomise(&mut rng, &c);
        assert_eq!(kp.secret.decrypt(&fresh), m);
        assert_ne!(fresh, c, "re-randomisation must refresh the ciphertext bits");
        // The documented equivalence: rerandomise(c; r) = add(c, Enc(0; r)), because
        // Enc(0; r) = (1 + 0·n)·r^n = r^n.
        let r = BigUint::from_u64(0xdead_beef).rem(&kp.public.n);
        assert!(uldp_bigint::gcd(&r, &kp.public.n).is_one());
        assert_eq!(
            kp.public.rerandomise_with_randomness(&c, &r),
            kp.public.add(&c, &kp.public.encrypt_with_randomness(&BigUint::zero(), &r)),
        );
    }

    #[test]
    fn rerandomise_batch_is_bitwise_identical_across_thread_counts() {
        let kp = keypair(256, 32);
        let mut rng = StdRng::seed_from_u64(33);
        let cts: Vec<Ciphertext> =
            (0..9u64).map(|v| kp.public.encrypt(&mut rng, &BigUint::from_u64(v))).collect();
        let seed: WideSeed = [9, 8, 7, 6];
        let seq = kp.public.rerandomise_batch(&Runtime::new(1), seed, &cts);
        let par = kp.public.rerandomise_batch(&Runtime::new(4), seed, &cts);
        assert_eq!(seq, par);
        for (i, (fresh, orig)) in seq.iter().zip(cts.iter()).enumerate() {
            assert_eq!(kp.secret.decrypt(fresh), BigUint::from_u64(i as u64));
            assert_ne!(fresh, orig, "index {i}");
        }
    }

    #[test]
    fn rerand_ctx_accumulates_exponents_exactly() {
        let kp = keypair(256, 34);
        let mut rng = StdRng::seed_from_u64(35);
        let ctx = kp.public.rerand_ctx(&mut rng);
        let m = BigUint::from_u64(777);
        let c1 = kp.public.encrypt(&mut rng, &m);
        let (c2, t1) = ctx.rerandomise(&mut rng, &c1);
        let (c3, t2) = ctx.rerandomise(&mut rng, &c2);
        for c in [&c2, &c3] {
            assert_eq!(kp.secret.decrypt(c), m);
            assert_ne!(c, &c1);
        }
        // The cache identity: successive re-randomisations compose additively in the
        // exponent, c3 = c1·h^(t1+t2) — exact group arithmetic, so bitwise.
        let total = t1.add(&t2);
        assert_eq!(c3.0, mod_mul(&c1.0, &ctx.pow_h(&total), &kp.public.n_squared));
        // pow_h is the schoolbook h^t (h = pow_h(1)), even past the table's digits.
        let h = ctx.pow_h(&BigUint::one());
        assert_eq!(ctx.pow_h(&total), mod_pow(&h, &total, &kp.public.n_squared));
        // Batch form: deterministic in the seed, identical across thread counts.
        let cts = vec![c1.clone(), c2.clone()];
        let seq = ctx.rerandomise_batch(&Runtime::new(1), [1, 2, 3, 4], &cts);
        let par = ctx.rerandomise_batch(&Runtime::new(4), [1, 2, 3, 4], &cts);
        assert_eq!(seq, par);
        for (fresh, _) in &seq {
            assert_eq!(kp.secret.decrypt(fresh), m);
        }
    }

    #[test]
    fn sum_par_matches_sequential_sum() {
        let kp = keypair(256, 20);
        let mut rng = StdRng::seed_from_u64(21);
        let ciphertexts: Vec<Ciphertext> =
            (1..=13u64).map(|v| kp.public.encrypt(&mut rng, &BigUint::from_u64(v))).collect();
        let tree = kp.public.sum_par(&Runtime::new(4), &ciphertexts);
        assert_eq!(tree, kp.public.sum(ciphertexts.iter()));
        assert_eq!(kp.secret.decrypt(&tree), BigUint::from_u64((1..=13).sum()));
        // empty input is the additive identity
        assert_eq!(kp.public.sum_par(&Runtime::new(2), &[]), kp.public.trivial_zero());
    }

    #[test]
    fn sum_par_chunked_matches_sequential_sum_at_any_chunk_size() {
        let kp = keypair(256, 28);
        let mut rng = StdRng::seed_from_u64(29);
        let ciphertexts: Vec<Ciphertext> =
            (1..=17u64).map(|v| kp.public.encrypt(&mut rng, &BigUint::from_u64(v))).collect();
        let expected = kp.public.sum(ciphertexts.iter());
        for threads in [1usize, 4] {
            let rt = Runtime::new(threads);
            for chunk in [0usize, 1, 3, 16, usize::MAX] {
                assert_eq!(
                    kp.public.sum_par_chunked(&rt, &ciphertexts, chunk),
                    expected,
                    "threads={threads} chunk={chunk}"
                );
            }
        }
        // empty input is the additive identity
        assert_eq!(kp.public.sum_par_chunked(&Runtime::new(2), &[], 4), kp.public.trivial_zero());
    }
}
