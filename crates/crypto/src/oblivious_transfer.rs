//! Simulated 1-out-of-P oblivious transfer (OT).
//!
//! Section 4.1 of the paper sketches how the *result* of user-level sub-sampling can be
//! hidden from both the server and the silos: for every user the server prepares `P`
//! Paillier ciphertexts — some encrypting the real blinded inverse `B_inv(N_u)`, the rest
//! encrypting zero — and the receiving party obtains exactly one of them through a
//! 1-out-of-P OT. The server does not learn which item was transferred (so it does not
//! learn whether the user was sampled), and the receiver cannot distinguish the real
//! ciphertext from a dummy (both are fresh Paillier encryptions), so neither party learns
//! the sampling outcome.
//!
//! This module provides a *simulated* OT: the sender's view is modelled explicitly and
//! contains only the number of items offered, never the chosen index. Replacing the
//! simulation with a cryptographic OT (e.g. Naor–Pinkas) would not change any calling
//! code; the simulation keeps the repository self-contained while still exercising the
//! message flow and the cost model (the server must prepare `P` ciphertexts per user).

use rand::Rng;

/// What the sender observes from one transfer: only the number of items it offered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SenderView {
    /// Number of items offered in the transfer (`P`).
    pub items_offered: usize,
}

/// The receiver's output of one transfer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReceiverOutput<T> {
    /// The single item obtained.
    pub item: T,
    /// The index the receiver chose. Known only to the receiver; it must never be sent
    /// back to the sender.
    pub chosen_index: usize,
}

/// A 1-out-of-P oblivious transfer offer.
#[derive(Clone, Debug)]
pub struct OneOutOfP<T> {
    items: Vec<T>,
}

impl<T: Clone> OneOutOfP<T> {
    /// Creates an offer over `items` (`P = items.len()`, which must be at least 1).
    pub fn new(items: Vec<T>) -> Self {
        assert!(!items.is_empty(), "an OT offer needs at least one item");
        OneOutOfP { items }
    }

    /// The number of items `P`.
    pub fn p(&self) -> usize {
        self.items.len()
    }

    /// Executes the transfer with the receiver choosing uniformly at random.
    ///
    /// Returns the receiver's output and the sender's view. The sender's view contains no
    /// information about the choice — this is the guarantee a cryptographic OT would
    /// enforce and that the simulation preserves by construction.
    pub fn transfer_uniform<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> (ReceiverOutput<T>, SenderView) {
        let chosen_index = rng.gen_range(0..self.items.len());
        self.transfer_at(chosen_index)
    }

    /// Executes the transfer with an explicit receiver choice (used by tests).
    pub fn transfer_at(&self, chosen_index: usize) -> (ReceiverOutput<T>, SenderView) {
        assert!(chosen_index < self.items.len(), "choice out of range");
        (
            ReceiverOutput { item: self.items[chosen_index].clone(), chosen_index },
            SenderView { items_offered: self.items.len() },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn receiver_gets_exactly_the_chosen_item() {
        let ot = OneOutOfP::new(vec!["a", "b", "c", "d"]);
        for i in 0..4 {
            let (out, view) = ot.transfer_at(i);
            assert_eq!(out.item, ["a", "b", "c", "d"][i]);
            assert_eq!(out.chosen_index, i);
            assert_eq!(view.items_offered, 4);
        }
    }

    #[test]
    fn sender_view_is_independent_of_the_choice() {
        let ot = OneOutOfP::new(vec![1, 2, 3]);
        let (_, v0) = ot.transfer_at(0);
        let (_, v2) = ot.transfer_at(2);
        assert_eq!(v0, v2);
    }

    #[test]
    fn uniform_choice_covers_all_items() {
        let ot = OneOutOfP::new((0..5).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let (out, _) = ot.transfer_uniform(&mut rng);
            seen[out.item] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_offer_rejected() {
        let _ = OneOutOfP::<u8>::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "choice out of range")]
    fn out_of_range_choice_rejected() {
        let ot = OneOutOfP::new(vec![1]);
        let _ = ot.transfer_at(3);
    }
}
