//! Finite-field Diffie–Hellman key agreement.
//!
//! In the setup phase of Protocol 1 every silo generates a DH key pair and publishes the
//! public key through the aggregation server. Each pair of silos then derives a shared
//! secret from which per-pair, per-user additive masks and the shared random seed `R`
//! (used for multiplicative blinding) are expanded.

use crate::sha256::hash_parts;
use rand::Rng;
use std::sync::{Arc, OnceLock};
use uldp_bigint::modular::mod_pow;
use uldp_bigint::montgomery::{engine_disabled, ModulusCtx};
use uldp_bigint::{prime, BigUint};

/// A multiplicative group `(Z_p)^*` with generator `g` used for Diffie–Hellman.
#[derive(Clone, Debug)]
pub struct DhGroup {
    /// Group modulus (a safe prime for the standard groups).
    pub p: BigUint,
    /// Generator.
    pub g: BigUint,
    /// Lazily-built Montgomery context for `p`, shared by every key pair in the group
    /// (all the setup-phase exponentiations of Protocol 1 step 1.(b)-(c) reuse it).
    ctx: OnceLock<Arc<ModulusCtx>>,
}

impl PartialEq for DhGroup {
    fn eq(&self, other: &Self) -> bool {
        // The context is derived state.
        self.p == other.p && self.g == other.g
    }
}

impl Eq for DhGroup {}

/// The 2048-bit MODP group from RFC 3526 (group 14), generator 2.
const RFC3526_2048_HEX: &str = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3BE39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF6955817183995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

/// The 3072-bit MODP group from RFC 3526 (group 15), generator 2.
///
/// This is the group matching the paper's default "3072-bit security" parameter.
const RFC3526_3072_HEX: &str = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3BE39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF6955817183995497CEA956AE515D2261898FA051015728E5A8AAAC42DAD33170D04507A33A85521ABDF1CBA64ECFB850458DBEF0A8AEA71575D060C7DB3970F85A6E1E4C7ABF5AE8CDB0933D71E8C94E04A25619DCEE3D2261AD2EE6BF12FFA06D98A0864D87602733EC86A64521F2B18177B200CBBE117577A615D6C770988C0BAD946E208E24FA074E5AB3143DB5BFCE0FD108E4B82D120A93AD2CAFFFFFFFFFFFFFFFF";

impl DhGroup {
    /// Builds a group from a modulus and generator.
    pub fn new(p: BigUint, g: BigUint) -> Self {
        DhGroup { p, g, ctx: OnceLock::new() }
    }

    /// The RFC 3526 2048-bit MODP group (generator 2).
    pub fn rfc3526_2048() -> Self {
        DhGroup::new(BigUint::from_hex(RFC3526_2048_HEX).expect("valid constant"), BigUint::two())
    }

    /// The RFC 3526 3072-bit MODP group (generator 2); the paper's security level.
    pub fn rfc3526_3072() -> Self {
        DhGroup::new(BigUint::from_hex(RFC3526_3072_HEX).expect("valid constant"), BigUint::two())
    }

    /// Generates a custom safe-prime group of the given bit size (for fast tests).
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        DhGroup::new(prime::generate_safe_prime(rng, bits), BigUint::two())
    }

    /// Bit length of the group modulus.
    pub fn bits(&self) -> usize {
        self.p.bit_length()
    }

    /// The shared Montgomery context for the group modulus (built on first use; clones
    /// made afterwards share the same context through the `Arc`).
    pub fn ctx(&self) -> &Arc<ModulusCtx> {
        self.ctx.get_or_init(|| Arc::new(ModulusCtx::new(&self.p)))
    }

    /// `base^exp mod p` through the group's cached engine context (or the schoolbook
    /// path under `ULDP_GENERIC_MODPOW=1`) — identical results either way.
    fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if engine_disabled() {
            mod_pow(base, exp, &self.p)
        } else {
            self.ctx().pow(base, exp)
        }
    }
}

/// A Diffie–Hellman key pair for a single silo.
#[derive(Clone, Debug)]
pub struct DhKeyPair {
    group: DhGroup,
    secret: BigUint,
    public: BigUint,
}

impl DhKeyPair {
    /// Generates a fresh key pair in `group`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, group: &DhGroup) -> Self {
        // Secret exponent in [2, p-2].
        let upper = group.p.sub(&BigUint::from_u64(3));
        let secret = BigUint::random_below(rng, &upper).add(&BigUint::two());
        let public = group.pow(&group.g, &secret);
        DhKeyPair { group: group.clone(), secret, public }
    }

    /// The public key to be published via the aggregation server.
    pub fn public_key(&self) -> &BigUint {
        &self.public
    }

    /// The group this key pair belongs to.
    pub fn group(&self) -> &DhGroup {
        &self.group
    }

    /// Computes the raw shared group element `their_public^secret mod p`.
    pub fn shared_secret(&self, their_public: &BigUint) -> BigUint {
        self.group.pow(their_public, &self.secret)
    }

    /// Derives a 32-byte symmetric seed from the shared secret via SHA-256.
    ///
    /// Both parties obtain the same seed regardless of which side calls this, because the
    /// underlying shared group element is identical.
    pub fn shared_seed(&self, their_public: &BigUint) -> [u8; 32] {
        let shared = self.shared_secret(their_public);
        hash_parts("uldp-fl/dh-shared-seed", &[&shared.to_bytes_be()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rfc_groups_have_expected_sizes() {
        assert_eq!(DhGroup::rfc3526_2048().bits(), 2048);
        assert_eq!(DhGroup::rfc3526_3072().bits(), 3072);
    }

    #[test]
    fn key_agreement_matches_small_group() {
        let mut rng = StdRng::seed_from_u64(1);
        let group = DhGroup::generate(&mut rng, 64);
        let alice = DhKeyPair::generate(&mut rng, &group);
        let bob = DhKeyPair::generate(&mut rng, &group);
        assert_eq!(alice.shared_secret(bob.public_key()), bob.shared_secret(alice.public_key()));
        assert_eq!(alice.shared_seed(bob.public_key()), bob.shared_seed(alice.public_key()));
    }

    #[test]
    fn key_agreement_matches_rfc_group() {
        let mut rng = StdRng::seed_from_u64(2);
        let group = DhGroup::rfc3526_2048();
        let alice = DhKeyPair::generate(&mut rng, &group);
        let bob = DhKeyPair::generate(&mut rng, &group);
        assert_eq!(alice.shared_secret(bob.public_key()), bob.shared_secret(alice.public_key()));
    }

    #[test]
    fn different_pairs_get_different_seeds() {
        let mut rng = StdRng::seed_from_u64(3);
        let group = DhGroup::generate(&mut rng, 64);
        let a = DhKeyPair::generate(&mut rng, &group);
        let b = DhKeyPair::generate(&mut rng, &group);
        let c = DhKeyPair::generate(&mut rng, &group);
        assert_ne!(a.shared_seed(b.public_key()), a.shared_seed(c.public_key()));
    }

    #[test]
    fn public_key_is_in_group() {
        let mut rng = StdRng::seed_from_u64(4);
        let group = DhGroup::generate(&mut rng, 48);
        let kp = DhKeyPair::generate(&mut rng, &group);
        assert!(kp.public_key() < &group.p);
        assert!(!kp.public_key().is_zero());
    }
}
