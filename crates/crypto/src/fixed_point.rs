//! Fixed-point encoding of real values onto the finite field `F_n` (Algorithm 5).
//!
//! Model deltas and Gaussian noise are real-valued, but the Paillier plaintext space and
//! the secure-aggregation masks live in `F_n`. `Encode` divides by the precision parameter
//! `P` (e.g. `1e-10`), rounds to an integer, and maps negative values to the upper half of
//! the field. `Decode` reverses the mapping, removes the `C_LCM` factor introduced by the
//! private weighting protocol, and rescales by `P`.
//!
//! Correctness (Theorem 4) holds as long as the encoded magnitudes stay below `n / 2`,
//! which the codec checks with debug assertions.

use uldp_bigint::modular::to_centered;
use uldp_bigint::signed::Sign;
use uldp_bigint::BigUint;

/// Encoder/decoder between `f64` values and elements of `F_n`.
///
/// ```
/// use uldp_bigint::BigUint;
/// use uldp_crypto::FixedPointCodec;
///
/// let codec = FixedPointCodec::new(1e-10, BigUint::one().shl_bits(256));
/// let encoded = codec.encode(-3.25);
/// assert!((codec.decode_plain(&encoded) - (-3.25)).abs() <= 1e-10);
/// ```
#[derive(Clone, Debug)]
pub struct FixedPointCodec {
    /// Precision parameter `P` of Algorithm 5 (the value of one least-significant unit).
    precision: f64,
    /// Field modulus `n` (the Paillier modulus in Protocol 1).
    modulus: BigUint,
}

impl FixedPointCodec {
    /// Creates a codec with precision `P` over `F_modulus`.
    ///
    /// # Panics
    /// Panics if `precision` is not strictly positive and finite, or the modulus is zero.
    pub fn new(precision: f64, modulus: BigUint) -> Self {
        assert!(precision.is_finite() && precision > 0.0, "precision must be positive");
        assert!(!modulus.is_zero(), "modulus must be positive");
        FixedPointCodec { precision, modulus }
    }

    /// The precision parameter `P`.
    pub fn precision(&self) -> f64 {
        self.precision
    }

    /// The field modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// `Encode(x, P, n)`: fixed-point quantisation of `x` into `F_n`.
    ///
    /// Negative values map to the upper half of the field (two's-complement-style), so
    /// that field addition corresponds to integer addition of the centred representatives.
    pub fn encode(&self, x: f64) -> BigUint {
        assert!(x.is_finite(), "cannot encode non-finite value {x}");
        let scaled = (x / self.precision).round();
        assert!(
            scaled.abs() < 1.7e38,
            "value {x} exceeds the fixed-point range at precision {}",
            self.precision
        );
        let magnitude = BigUint::from_u128(scaled.abs() as u128);
        debug_assert!(
            magnitude < self.modulus.div(&BigUint::two()),
            "encoded magnitude must stay below n/2 for unambiguous decoding"
        );
        if scaled < 0.0 {
            if magnitude.is_zero() {
                BigUint::zero()
            } else {
                self.modulus.sub(&magnitude.rem(&self.modulus))
            }
        } else {
            magnitude.rem(&self.modulus)
        }
    }

    /// `Decode(x, P, C_LCM, n)`: recovers a real value from a field element, removing the
    /// `C_LCM` factor used by the private weighting protocol.
    ///
    /// Pass `C_LCM = 1` (see [`FixedPointCodec::decode_plain`]) when no factor was applied.
    pub fn decode(&self, x: &BigUint, c_lcm: &BigUint) -> f64 {
        assert!(!c_lcm.is_zero(), "C_LCM must be positive");
        let centered = to_centered(&x.rem(&self.modulus), &self.modulus);
        let sign = match centered.sign() {
            Sign::Negative => -1.0,
            _ => 1.0,
        };
        let magnitude = centered.magnitude();
        // Split the division by C_LCM into an exact integer quotient plus a fractional
        // correction so that very large C_LCM values (which overflow f64) still decode
        // correctly: the quotient carries the signal, the remainder is < 1 unit.
        let (q, r) = magnitude.div_rem(c_lcm);
        let c_lcm_f = c_lcm.to_f64();
        let frac = if c_lcm_f.is_finite() && c_lcm_f > 0.0 { r.to_f64() / c_lcm_f } else { 0.0 };
        sign * (q.to_f64() + frac) * self.precision
    }

    /// Decodes a field element that carries no `C_LCM` factor.
    pub fn decode_plain(&self, x: &BigUint) -> f64 {
        self.decode(x, &BigUint::one())
    }

    /// Encodes a whole slice of values.
    pub fn encode_vec(&self, values: &[f64]) -> Vec<BigUint> {
        values.iter().map(|&v| self.encode(v)).collect()
    }

    /// Decodes a whole slice of field elements carrying a `C_LCM` factor.
    pub fn decode_vec(&self, values: &[BigUint], c_lcm: &BigUint) -> Vec<f64> {
        values.iter().map(|v| self.decode(v, c_lcm)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> FixedPointCodec {
        // modulus comfortably larger than the encoded range
        let modulus = BigUint::from_hex("ffffffffffffffffffffffffffffffffffffffff").unwrap();
        FixedPointCodec::new(1e-10, modulus)
    }

    #[test]
    fn roundtrip_positive_and_negative() {
        let c = codec();
        for v in [0.0, 1.0, -1.0, 0.5, -0.25, 123.456, -9876.54321, 1e-9, -1e-9] {
            let decoded = c.decode_plain(&c.encode(v));
            assert!((decoded - v).abs() <= c.precision(), "{v} -> {decoded}");
        }
    }

    #[test]
    fn zero_encodes_to_zero() {
        let c = codec();
        assert!(c.encode(0.0).is_zero());
        assert!(c.encode(-0.0).is_zero());
        assert_eq!(c.decode_plain(&BigUint::zero()), 0.0);
    }

    #[test]
    fn addition_in_field_matches_real_addition() {
        let c = codec();
        let m = c.modulus().clone();
        let pairs = [(1.5, 2.25), (-1.5, 2.25), (1.5, -2.25), (-1.5, -0.75)];
        for (a, b) in pairs {
            let sum_field = uldp_bigint::modular::mod_add(&c.encode(a), &c.encode(b), &m);
            let decoded = c.decode_plain(&sum_field);
            assert!((decoded - (a + b)).abs() <= 2.0 * c.precision(), "{a}+{b} -> {decoded}");
        }
    }

    #[test]
    fn decode_removes_c_lcm_factor() {
        let c = codec();
        let c_lcm = BigUint::from_u64(2520); // lcm(1..=10)
        let value = 3.75f64;
        // encode then scale by C_LCM in the field, as the protocol does for noise terms
        let scaled = uldp_bigint::modular::mod_mul(&c.encode(value), &c_lcm, c.modulus());
        let decoded = c.decode(&scaled, &c_lcm);
        assert!((decoded - value).abs() <= c.precision());
    }

    #[test]
    fn decode_handles_huge_c_lcm() {
        // C_LCM for large N_max has hundreds of digits and overflows f64; the decoder
        // must still recover values carried as multiples of C_LCM. Use a wide modulus so
        // the product stays below n/2.
        let c = FixedPointCodec::new(1e-10, BigUint::one().shl_bits(800));
        let c_lcm = uldp_bigint::lcm_up_to(200);
        let value = -42.5f64;
        let scaled = uldp_bigint::modular::mod_mul(&c.encode(value), &c_lcm, c.modulus());
        let decoded = c.decode(&scaled, &c_lcm);
        assert!((decoded - value).abs() <= c.precision(), "decoded {decoded}");
    }

    #[test]
    fn vector_helpers_roundtrip() {
        let c = codec();
        let values = vec![0.1, -0.2, 3.5, -7.75, 0.0];
        let encoded = c.encode_vec(&values);
        let decoded = c.decode_vec(&encoded, &BigUint::one());
        for (v, d) in values.iter().zip(decoded.iter()) {
            assert!((v - d).abs() <= c.precision());
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn encode_rejects_nan() {
        codec().encode(f64::NAN);
    }
}
