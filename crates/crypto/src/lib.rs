//! # uldp-crypto
//!
//! Cryptographic substrate for the Uldp-FL private weighting protocol (Protocol 1 of the
//! paper). Everything here is implemented from first principles on top of
//! [`uldp_bigint`]:
//!
//! * [`sha256`](mod@sha256) — FIPS 180-4 SHA-256, used as the key-derivation function for
//!   Diffie–Hellman shared secrets and as the PRG backbone for mask expansion.
//! * [`dh`] — finite-field Diffie–Hellman key agreement (RFC 3526 MODP groups and custom
//!   test groups) used in the setup phase of Protocol 1 to establish pairwise shared seeds
//!   between silos.
//! * [`paillier`] — the Paillier additively homomorphic cryptosystem used by the server to
//!   conceal the blinded inverse histograms (`Enc_p(B_inv(N_u))`) while still letting silos
//!   compute weighted model deltas under encryption.
//! * [`masking`] — pairwise additive masks in the finite field `F_n` (Bonawitz-style secure
//!   aggregation) that cancel when all silos' contributions are summed by the server.
//! * [`blinding`] — multiplicative blinding/unblinding in `F_n` used to hide the user
//!   histograms from the server while letting it compute modular inverses.
//! * [`fixed_point`] — the `Encode`/`Decode` pair of Algorithm 5 mapping real-valued model
//!   deltas to the finite field and back, including the `C_LCM` factor handling.
//!
//! The security parameter (Paillier modulus size, DH group size) is configurable. The
//! paper uses 3072-bit security; unit tests use smaller parameters to stay fast, while the
//! benchmark harness reports the key size it ran with.

pub mod blinding;
pub mod dh;
pub mod fixed_point;
pub mod masking;
pub mod oblivious_transfer;
pub mod paillier;
pub mod sha256;

pub use blinding::MultiplicativeBlinder;
pub use dh::{DhGroup, DhKeyPair};
pub use fixed_point::FixedPointCodec;
pub use masking::{MaskGenerator, MaskSeed};
pub use oblivious_transfer::{OneOutOfP, ReceiverOutput, SenderView};
pub use paillier::{Ciphertext, PaillierKeyPair, PaillierPublicKey, PaillierSecretKey};
pub use sha256::{sha256, Sha256};
