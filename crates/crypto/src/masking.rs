//! Pairwise additive masking for secure aggregation.
//!
//! Following Bonawitz et al. (secure aggregation), every ordered pair of silos `(s, s')`
//! shares a symmetric seed (derived via Diffie–Hellman in the setup phase of Protocol 1).
//! Before sending a value `x_s ∈ F_n` to the server, silo `s` adds
//! `Σ_{s < s'} r_{s,s'} − Σ_{s > s'} r_{s,s'}` where `r_{s,s'} = r_{s',s}` is expanded
//! deterministically from the shared seed, the user index and the round number.
//! When the server sums the masked contributions of **exactly the silo set the masks were
//! generated for**, the masks cancel exactly and the server only learns the aggregate.
//!
//! That cancellation precondition is load-bearing, not a formality: if any silo's masked
//! contribution is missing from the sum (a dropout *after* masking), every surviving
//! silo's mask towards the missing silo dangles and the sum decodes to garbage — there is
//! no recovery machinery here (no Shamir shares of the pair seeds as in full
//! Bonawitz-style secure aggregation). The scenario engine's fault plan therefore injects
//! dropouts *before* masking takes effect: Protocol 1's streaming fold excludes a dropped
//! silo's cells entirely, so the masks of the surviving set still cancel pairwise.
//! Concretely the precondition is:
//!
//! 1. the pair-seed matrix is symmetric (`seed[i][j] == seed[j][i]`, guaranteed by the
//!    Diffie–Hellman agreement and debug-asserted where the matrix is consumed), and
//! 2. the server's sum ranges over every silo that applied masks — no more, no fewer —
//!    with each silo masking towards every *other* participant exactly once
//!    (debug-asserted per call by [`apply_pairwise_masks`]).

use crate::sha256::hash_parts;
use uldp_bigint::modular::{mod_add, mod_sub};
use uldp_bigint::BigUint;

/// A 32-byte symmetric seed shared by a pair of silos.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MaskSeed(pub [u8; 32]);

impl MaskSeed {
    /// Wraps raw seed bytes (typically the output of [`crate::dh::DhKeyPair::shared_seed`]).
    pub fn new(bytes: [u8; 32]) -> Self {
        MaskSeed(bytes)
    }
}

/// Deterministic expander turning a pair seed into per-context field elements.
#[derive(Clone, Debug)]
pub struct MaskGenerator {
    seed: MaskSeed,
    modulus: BigUint,
}

impl MaskGenerator {
    /// Creates a generator for masks in `F_modulus`.
    pub fn new(seed: MaskSeed, modulus: BigUint) -> Self {
        assert!(!modulus.is_zero());
        MaskGenerator { seed, modulus }
    }

    /// Expands the mask for a given `(round, index)` context.
    ///
    /// `index` identifies the masked slot: a user id when masking histograms, or a
    /// parameter coordinate when masking model deltas. Both silos of a pair derive the
    /// identical value because the seed is symmetric.
    pub fn mask(&self, round: u64, index: u64) -> BigUint {
        // Rejection-sample uniformly in [0, modulus) using counter-mode SHA-256.
        let bits = self.modulus.bit_length();
        let bytes_needed = bits.div_ceil(8);
        let mut counter: u64 = 0;
        loop {
            let mut material = Vec::with_capacity(bytes_needed + 32);
            while material.len() < bytes_needed {
                let block = hash_parts(
                    "uldp-fl/pairwise-mask",
                    &[
                        &self.seed.0,
                        &round.to_be_bytes(),
                        &index.to_be_bytes(),
                        &counter.to_be_bytes(),
                        &(material.len() as u64).to_be_bytes(),
                    ],
                );
                material.extend_from_slice(&block);
            }
            material.truncate(bytes_needed);
            // Trim excess bits so the candidate has at most `bits` bits.
            let candidate = BigUint::from_bytes_be(&material).shr_bits(bytes_needed * 8 - bits);
            if candidate < self.modulus {
                return candidate;
            }
            counter += 1;
        }
    }

    /// The field modulus masks live in.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }
}

/// Applies the net pairwise mask for silo `silo_id` to `value`.
///
/// `pair_masks` holds, for every *other* silo `s'`, the tuple
/// `(other_silo_id, mask r_{silo,s'})`. Following Protocol 1 step 1.(e), masks towards
/// higher-indexed silos are added and masks towards lower-indexed silos are subtracted,
/// so that the sum over all silos cancels.
///
/// Cancellation requires each counterparty to appear **exactly once** and never the silo
/// itself (see the module docs for the full precondition); both are debug-asserted. A
/// self-entry is skipped in release builds for robustness, but indicates a caller bug.
pub fn apply_pairwise_masks(
    value: &BigUint,
    silo_id: usize,
    pair_masks: &[(usize, BigUint)],
    modulus: &BigUint,
) -> BigUint {
    debug_assert!(
        pair_masks.iter().all(|(other, _)| *other != silo_id),
        "silo {silo_id} must not mask towards itself"
    );
    debug_assert!(
        {
            let mut ids: Vec<usize> = pair_masks.iter().map(|(other, _)| *other).collect();
            ids.sort_unstable();
            ids.windows(2).all(|w| w[0] != w[1])
        },
        "duplicate counterparty in silo {silo_id}'s pair masks breaks cancellation"
    );
    debug_assert!(
        pair_masks.iter().all(|(_, mask)| mask < modulus),
        "pair masks must already be reduced into the field"
    );
    let mut out = value.rem(modulus);
    for (other, mask) in pair_masks {
        if *other == silo_id {
            continue;
        }
        if silo_id < *other {
            out = mod_add(&out, mask, modulus);
        } else {
            out = mod_sub(&out, mask, modulus);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed(tag: u8) -> MaskSeed {
        let mut bytes = [0u8; 32];
        bytes[0] = tag;
        MaskSeed::new(bytes)
    }

    fn modulus() -> BigUint {
        // a ~120-bit modulus
        BigUint::from_u128(0x0102_0304_0506_0708_090a_0b0c_0d0e_0f11)
    }

    #[test]
    fn masks_are_deterministic_and_context_dependent() {
        let gen = MaskGenerator::new(seed(1), modulus());
        assert_eq!(gen.mask(0, 0), gen.mask(0, 0));
        assert_ne!(gen.mask(0, 0), gen.mask(0, 1));
        assert_ne!(gen.mask(0, 0), gen.mask(1, 0));
        let other = MaskGenerator::new(seed(2), modulus());
        assert_ne!(gen.mask(0, 0), other.mask(0, 0));
    }

    #[test]
    fn masks_are_in_field() {
        let gen = MaskGenerator::new(seed(3), modulus());
        for i in 0..200 {
            assert!(gen.mask(7, i) < modulus());
        }
    }

    #[test]
    fn pairwise_masks_cancel_over_all_silos() {
        let m = modulus();
        let num_silos = 5;
        // symmetric seeds per unordered pair
        let pair_seed = |a: usize, b: usize| {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            seed((lo * 10 + hi) as u8)
        };
        let values: Vec<BigUint> =
            (0..num_silos).map(|i| BigUint::from_u64(100 + i as u64)).collect();
        let mut masked_sum = BigUint::zero();
        for (s, value) in values.iter().enumerate() {
            let pair_masks: Vec<(usize, BigUint)> = (0..num_silos)
                .filter(|&o| o != s)
                .map(|o| {
                    let gen = MaskGenerator::new(pair_seed(s, o), m.clone());
                    (o, gen.mask(3, 42))
                })
                .collect();
            let masked = apply_pairwise_masks(value, s, &pair_masks, &m);
            masked_sum = mod_add(&masked_sum, &masked, &m);
        }
        let expected: BigUint = values.iter().fold(BigUint::zero(), |acc, v| mod_add(&acc, v, &m));
        assert_eq!(masked_sum, expected);
    }

    #[test]
    fn single_masked_value_is_hidden() {
        // With at least one other silo, the masked value differs from the plaintext
        // (overwhelmingly likely for a random mask).
        let m = modulus();
        let gen = MaskGenerator::new(seed(9), m.clone());
        let value = BigUint::from_u64(55);
        let masked = apply_pairwise_masks(&value, 0, &[(1, gen.mask(0, 0))], &m);
        assert_ne!(masked, value);
    }

    #[test]
    fn two_silo_cancellation() {
        let m = modulus();
        let gen = MaskGenerator::new(seed(4), m.clone());
        let mask = gen.mask(1, 2);
        let a = BigUint::from_u64(10);
        let b = BigUint::from_u64(20);
        let ma = apply_pairwise_masks(&a, 0, &[(1, mask.clone())], &m);
        let mb = apply_pairwise_masks(&b, 1, &[(0, mask)], &m);
        assert_eq!(mod_add(&ma, &mb, &m), BigUint::from_u64(30));
    }

    #[test]
    #[should_panic(expected = "must not mask towards itself")]
    #[cfg(debug_assertions)]
    fn self_mask_is_rejected_in_debug() {
        let m = modulus();
        let gen = MaskGenerator::new(seed(5), m.clone());
        let _ = apply_pairwise_masks(&BigUint::from_u64(1), 0, &[(0, gen.mask(0, 0))], &m);
    }

    #[test]
    #[should_panic(expected = "duplicate counterparty")]
    #[cfg(debug_assertions)]
    fn duplicate_counterparty_is_rejected_in_debug() {
        let m = modulus();
        let gen = MaskGenerator::new(seed(6), m.clone());
        let masks = [(1usize, gen.mask(0, 0)), (1usize, gen.mask(0, 1))];
        let _ = apply_pairwise_masks(&BigUint::from_u64(1), 0, &masks, &m);
    }

    // Property test pinning the cancellation precondition the module docs state: the net
    // masks of the full participant set sum to zero; removing one participant *after*
    // masking leaves a dangling mask; re-deriving masks for exactly the surviving subset
    // (dropouts before masking — the scenario engine's approach) cancels again.
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn masks_cancel_iff_summed_over_the_masked_set(
            num_silos in 2usize..7,
            seed_tag in any::<u64>(),
            round in any::<u64>(),
            index in any::<u64>(),
            drop_pick in any::<u64>(),
        ) {
            let m = modulus();
            let pair_seed = |a: usize, b: usize| {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                let mut bytes = [0u8; 32];
                bytes[..8].copy_from_slice(&seed_tag.to_be_bytes());
                bytes[8] = lo as u8;
                bytes[9] = hi as u8;
                MaskSeed::new(bytes)
            };
            // A zero value makes the masked contribution the net mask itself.
            let net_mask = |s: usize, participants: &[usize]| {
                let pair_masks: Vec<(usize, BigUint)> = participants
                    .iter()
                    .filter(|&&o| o != s)
                    .map(|&o| {
                        let gen = MaskGenerator::new(pair_seed(s, o), m.clone());
                        (o, gen.mask(round, index))
                    })
                    .collect();
                apply_pairwise_masks(&BigUint::zero(), s, &pair_masks, &m)
            };
            let all: Vec<usize> = (0..num_silos).collect();
            let sum_over = |silos: &[usize], mask_set: &[usize]| {
                silos.iter().fold(BigUint::zero(), |acc, &s| {
                    mod_add(&acc, &net_mask(s, mask_set), &m)
                })
            };
            // Full participation: Σ_s net_mask(s) ≡ 0 — what Protocol 1 relies on.
            prop_assert_eq!(sum_over(&all, &all), BigUint::zero());

            // Dropout *after* masking: the survivors' masks towards the missing silo
            // dangle (a ~120-bit collision to zero is astronomically unlikely).
            let dropped = (drop_pick % num_silos as u64) as usize;
            let survivors: Vec<usize> =
                all.iter().copied().filter(|&s| s != dropped).collect();
            prop_assert_ne!(sum_over(&survivors, &all), BigUint::zero());

            // Dropout *before* masking: masks derived for exactly the surviving set
            // cancel again.
            prop_assert_eq!(sum_over(&survivors, &survivors), BigUint::zero());
        }
    }
}
