//! Pairwise additive masking for secure aggregation.
//!
//! Following Bonawitz et al. (secure aggregation), every ordered pair of silos `(s, s')`
//! shares a symmetric seed (derived via Diffie–Hellman in the setup phase of Protocol 1).
//! Before sending a value `x_s ∈ F_n` to the server, silo `s` adds
//! `Σ_{s < s'} r_{s,s'} − Σ_{s > s'} r_{s,s'}` where `r_{s,s'} = r_{s',s}` is expanded
//! deterministically from the shared seed, the user index and the round number.
//! When the server sums the masked contributions of *all* silos the masks cancel exactly,
//! so the server only learns the aggregate. Cross-silo FL assumes full participation
//! (paper §2.1), so no dropout-recovery machinery is needed.

use crate::sha256::hash_parts;
use uldp_bigint::modular::{mod_add, mod_sub};
use uldp_bigint::BigUint;

/// A 32-byte symmetric seed shared by a pair of silos.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MaskSeed(pub [u8; 32]);

impl MaskSeed {
    /// Wraps raw seed bytes (typically the output of [`crate::dh::DhKeyPair::shared_seed`]).
    pub fn new(bytes: [u8; 32]) -> Self {
        MaskSeed(bytes)
    }
}

/// Deterministic expander turning a pair seed into per-context field elements.
#[derive(Clone, Debug)]
pub struct MaskGenerator {
    seed: MaskSeed,
    modulus: BigUint,
}

impl MaskGenerator {
    /// Creates a generator for masks in `F_modulus`.
    pub fn new(seed: MaskSeed, modulus: BigUint) -> Self {
        assert!(!modulus.is_zero());
        MaskGenerator { seed, modulus }
    }

    /// Expands the mask for a given `(round, index)` context.
    ///
    /// `index` identifies the masked slot: a user id when masking histograms, or a
    /// parameter coordinate when masking model deltas. Both silos of a pair derive the
    /// identical value because the seed is symmetric.
    pub fn mask(&self, round: u64, index: u64) -> BigUint {
        // Rejection-sample uniformly in [0, modulus) using counter-mode SHA-256.
        let bits = self.modulus.bit_length();
        let bytes_needed = bits.div_ceil(8);
        let mut counter: u64 = 0;
        loop {
            let mut material = Vec::with_capacity(bytes_needed + 32);
            while material.len() < bytes_needed {
                let block = hash_parts(
                    "uldp-fl/pairwise-mask",
                    &[
                        &self.seed.0,
                        &round.to_be_bytes(),
                        &index.to_be_bytes(),
                        &counter.to_be_bytes(),
                        &(material.len() as u64).to_be_bytes(),
                    ],
                );
                material.extend_from_slice(&block);
            }
            material.truncate(bytes_needed);
            // Trim excess bits so the candidate has at most `bits` bits.
            let candidate = BigUint::from_bytes_be(&material).shr_bits(bytes_needed * 8 - bits);
            if candidate < self.modulus {
                return candidate;
            }
            counter += 1;
        }
    }

    /// The field modulus masks live in.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }
}

/// Applies the net pairwise mask for silo `silo_id` to `value`.
///
/// `pair_masks` holds, for every *other* silo `s'`, the tuple
/// `(other_silo_id, mask r_{silo,s'})`. Following Protocol 1 step 1.(e), masks towards
/// higher-indexed silos are added and masks towards lower-indexed silos are subtracted,
/// so that the sum over all silos cancels.
pub fn apply_pairwise_masks(
    value: &BigUint,
    silo_id: usize,
    pair_masks: &[(usize, BigUint)],
    modulus: &BigUint,
) -> BigUint {
    let mut out = value.rem(modulus);
    for (other, mask) in pair_masks {
        if *other == silo_id {
            continue;
        }
        if silo_id < *other {
            out = mod_add(&out, mask, modulus);
        } else {
            out = mod_sub(&out, mask, modulus);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed(tag: u8) -> MaskSeed {
        let mut bytes = [0u8; 32];
        bytes[0] = tag;
        MaskSeed::new(bytes)
    }

    fn modulus() -> BigUint {
        // a ~120-bit modulus
        BigUint::from_u128(0x0102_0304_0506_0708_090a_0b0c_0d0e_0f11)
    }

    #[test]
    fn masks_are_deterministic_and_context_dependent() {
        let gen = MaskGenerator::new(seed(1), modulus());
        assert_eq!(gen.mask(0, 0), gen.mask(0, 0));
        assert_ne!(gen.mask(0, 0), gen.mask(0, 1));
        assert_ne!(gen.mask(0, 0), gen.mask(1, 0));
        let other = MaskGenerator::new(seed(2), modulus());
        assert_ne!(gen.mask(0, 0), other.mask(0, 0));
    }

    #[test]
    fn masks_are_in_field() {
        let gen = MaskGenerator::new(seed(3), modulus());
        for i in 0..200 {
            assert!(gen.mask(7, i) < modulus());
        }
    }

    #[test]
    fn pairwise_masks_cancel_over_all_silos() {
        let m = modulus();
        let num_silos = 5;
        // symmetric seeds per unordered pair
        let pair_seed = |a: usize, b: usize| {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            seed((lo * 10 + hi) as u8)
        };
        let values: Vec<BigUint> =
            (0..num_silos).map(|i| BigUint::from_u64(100 + i as u64)).collect();
        let mut masked_sum = BigUint::zero();
        for (s, value) in values.iter().enumerate() {
            let pair_masks: Vec<(usize, BigUint)> = (0..num_silos)
                .filter(|&o| o != s)
                .map(|o| {
                    let gen = MaskGenerator::new(pair_seed(s, o), m.clone());
                    (o, gen.mask(3, 42))
                })
                .collect();
            let masked = apply_pairwise_masks(value, s, &pair_masks, &m);
            masked_sum = mod_add(&masked_sum, &masked, &m);
        }
        let expected: BigUint = values.iter().fold(BigUint::zero(), |acc, v| mod_add(&acc, v, &m));
        assert_eq!(masked_sum, expected);
    }

    #[test]
    fn single_masked_value_is_hidden() {
        // With at least one other silo, the masked value differs from the plaintext
        // (overwhelmingly likely for a random mask).
        let m = modulus();
        let gen = MaskGenerator::new(seed(9), m.clone());
        let value = BigUint::from_u64(55);
        let masked = apply_pairwise_masks(&value, 0, &[(1, gen.mask(0, 0))], &m);
        assert_ne!(masked, value);
    }

    #[test]
    fn two_silo_cancellation() {
        let m = modulus();
        let gen = MaskGenerator::new(seed(4), m.clone());
        let mask = gen.mask(1, 2);
        let a = BigUint::from_u64(10);
        let b = BigUint::from_u64(20);
        let ma = apply_pairwise_masks(&a, 0, &[(1, mask.clone())], &m);
        let mb = apply_pairwise_masks(&b, 1, &[(0, mask)], &m);
        assert_eq!(mod_add(&ma, &mb, &m), BigUint::from_u64(30));
    }
}
