//! Multiplicative blinding in the finite field `F_n`.
//!
//! In Protocol 1 the silos share a random seed `R` (unknown to the server) from which they
//! expand a blinding factor `r_u ∈ F_n` per user. Each silo sends the server only the
//! blinded histogram value `B(n_{s,u}) = r_u · n_{s,u} mod n`; the server can aggregate and
//! invert the blinded totals (`B_inv(N_u) = (r_u · N_u)^{-1}`) but, because multiplication
//! by a uniformly random unit is a bijection of `F_n`, learns nothing about `N_u` itself
//! (Theorem 5). The silos later cancel `r_u` by multiplying with it once more inside the
//! Paillier ciphertext.

use crate::sha256::hash_parts;
use uldp_bigint::modular::{mod_inv, mod_mul};
use uldp_bigint::BigUint;

/// Expands per-user multiplicative blinding factors from the silo-shared seed `R`.
#[derive(Clone, Debug)]
pub struct MultiplicativeBlinder {
    seed: [u8; 32],
    modulus: BigUint,
}

impl MultiplicativeBlinder {
    /// Creates a blinder over `F_modulus` from the shared random seed `R`.
    pub fn new(seed: [u8; 32], modulus: BigUint) -> Self {
        assert!(!modulus.is_zero());
        MultiplicativeBlinder { seed, modulus }
    }

    /// The blinding factor `r_u` for user index `u`.
    ///
    /// Factors are sampled to be invertible (coprime to the modulus); for a Paillier
    /// modulus `n = p·q` with large primes the rejection probability is negligible
    /// (Eq. (4) of the paper).
    pub fn factor(&self, user_index: u64) -> BigUint {
        let bits = self.modulus.bit_length();
        let bytes_needed = bits.div_ceil(8);
        let mut counter = 0u64;
        loop {
            let mut material = Vec::with_capacity(bytes_needed + 32);
            while material.len() < bytes_needed {
                let block = hash_parts(
                    "uldp-fl/multiplicative-blind",
                    &[
                        &self.seed,
                        &user_index.to_be_bytes(),
                        &counter.to_be_bytes(),
                        &(material.len() as u64).to_be_bytes(),
                    ],
                );
                material.extend_from_slice(&block);
            }
            material.truncate(bytes_needed);
            let candidate = BigUint::from_bytes_be(&material).shr_bits(bytes_needed * 8 - bits);
            if candidate.is_zero() || candidate >= self.modulus {
                counter += 1;
                continue;
            }
            if uldp_bigint::gcd(&candidate, &self.modulus).is_one() {
                return candidate;
            }
            counter += 1;
        }
    }

    /// Blinds `value` for user `user_index`: `r_u · value mod n`.
    pub fn blind(&self, user_index: u64, value: &BigUint) -> BigUint {
        mod_mul(&self.factor(user_index), value, &self.modulus)
    }

    /// Removes the blinding factor from `value`: `r_u^{-1} · value mod n`.
    pub fn unblind(&self, user_index: u64, value: &BigUint) -> BigUint {
        let inv = mod_inv(&self.factor(user_index), &self.modulus)
            .expect("blinding factors are sampled invertible");
        mod_mul(&inv, value, &self.modulus)
    }

    /// The field modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modulus() -> BigUint {
        // product of two primes, mimicking a tiny Paillier modulus
        BigUint::from_u64(1_000_003).mul(&BigUint::from_u64(999_983))
    }

    fn blinder(tag: u8) -> MultiplicativeBlinder {
        let mut seed = [0u8; 32];
        seed[0] = tag;
        MultiplicativeBlinder::new(seed, modulus())
    }

    #[test]
    fn blind_unblind_roundtrip() {
        let b = blinder(1);
        for v in [1u64, 2, 57, 1999, 123_456] {
            let value = BigUint::from_u64(v);
            let blinded = b.blind(7, &value);
            assert_ne!(blinded, value);
            assert_eq!(b.unblind(7, &blinded), value);
        }
    }

    #[test]
    fn factors_are_deterministic_per_user() {
        let b = blinder(2);
        assert_eq!(b.factor(3), b.factor(3));
        assert_ne!(b.factor(3), b.factor(4));
    }

    #[test]
    fn same_seed_gives_same_factors_across_silos() {
        // All silos share the seed R, so they must expand identical factors.
        let a = blinder(5);
        let b = blinder(5);
        for u in 0..20 {
            assert_eq!(a.factor(u), b.factor(u));
        }
    }

    #[test]
    fn factors_are_invertible() {
        let b = blinder(3);
        for u in 0..50 {
            let f = b.factor(u);
            assert!(uldp_bigint::modular::mod_inv(&f, b.modulus()).is_some());
        }
    }

    #[test]
    fn blinding_is_homomorphic_for_sums_of_same_user() {
        // r_u * a + r_u * b = r_u * (a + b) mod n — the property that lets the server
        // aggregate blinded histograms across silos before inverting.
        let b = blinder(4);
        let m = modulus();
        let a_val = BigUint::from_u64(17);
        let b_val = BigUint::from_u64(25);
        let lhs = uldp_bigint::modular::mod_add(&b.blind(9, &a_val), &b.blind(9, &b_val), &m);
        let rhs = b.blind(9, &uldp_bigint::modular::mod_add(&a_val, &b_val, &m));
        assert_eq!(lhs, rhs);
    }
}
