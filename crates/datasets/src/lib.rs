//! # uldp-datasets
//!
//! Synthetic federated datasets and the user/record/silo allocation schemes used by the
//! Uldp-FL evaluation.
//!
//! The paper evaluates on four real datasets (Kaggle Creditcard, MNIST, and the FLamby
//! benchmarks HeartDisease and TcgaBrca). Those datasets cannot be redistributed with this
//! repository, so this crate generates synthetic datasets with the **same structural
//! properties**: feature dimensionality, number of classes, class imbalance, number of
//! silos, number of records, and — crucially for Uldp-FL — the same **user/record/silo
//! allocation process** (`uniform` and `zipf` of Section 5.1.1). The algorithms and the
//! privacy accounting only interact with that structure, so the qualitative shapes of the
//! paper's figures are preserved.
//!
//! * [`schema`] — [`FederatedDataset`]: train records tagged
//!   with `(user, silo)`, a held-out test set, and histogram helpers (`n_{s,u}`, `N_u`).
//! * [`allocation`] — the `uniform` and `zipf` allocation schemes, in both the
//!   "free silo assignment" variant (Creditcard, MNIST) and the "fixed silo sizes"
//!   variant (HeartDisease, TcgaBrca).
//! * [`creditcard`], [`mnist_like`], [`heart_disease`], [`tcga_brca`] — the four dataset
//!   generators.

pub mod allocation;
pub mod creditcard;
pub mod heart_disease;
pub mod mnist_like;
pub mod schema;
pub mod tcga_brca;

pub use allocation::{Allocation, RecordPlacement};
pub use schema::{FederatedDataset, FederatedRecord, SiloId, UserId};
