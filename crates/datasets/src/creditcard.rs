//! Synthetic stand-in for the Kaggle credit-card fraud-detection dataset.
//!
//! The real dataset has 29 anonymised PCA features and a heavily imbalanced binary label;
//! the paper undersamples it to ≈25k training records and trains a ≈4k-parameter network
//! across `|S| = 5` silos with `|U| ∈ {100, 1000}` users. This generator reproduces that
//! structure: two Gaussian class clusters in 29 dimensions with configurable class
//! imbalance and overlap, and the paper's uniform / zipf user-record allocation.

use crate::allocation::{allocate_free, Allocation};
use crate::schema::{FederatedDataset, FederatedRecord};
use rand::Rng;
use uldp_ml::rng::gaussian;
use uldp_ml::Sample;

/// Configuration of the synthetic Creditcard generator.
#[derive(Clone, Debug)]
pub struct CreditcardConfig {
    /// Number of training records (paper: ≈25 000; smaller defaults keep tests fast).
    pub train_records: usize,
    /// Number of held-out evaluation records.
    pub test_records: usize,
    /// Feature dimensionality (the Kaggle dataset has 29 usable features).
    pub dim: usize,
    /// Fraction of records labelled as fraud (class 1).
    pub fraud_rate: f64,
    /// Distance between the two class means (larger = easier task).
    pub class_separation: f64,
    /// Number of silos `|S|` (paper: 5).
    pub num_silos: usize,
    /// Number of users `|U|` (paper: 100 or 1000).
    pub num_users: usize,
    /// User/record/silo allocation scheme.
    pub allocation: Allocation,
}

impl Default for CreditcardConfig {
    fn default() -> Self {
        CreditcardConfig {
            train_records: 4000,
            test_records: 1000,
            dim: 29,
            fraud_rate: 0.15,
            class_separation: 1.6,
            num_silos: 5,
            num_users: 100,
            allocation: Allocation::Uniform,
        }
    }
}

fn class_means(dim: usize, separation: f64) -> (Vec<f64>, Vec<f64>) {
    // Deterministic, well-separated directions: the legit class sits at -d/2 on a sparse
    // set of coordinates, the fraud class at +d/2.
    let mut legit = vec![0.0; dim];
    let mut fraud = vec![0.0; dim];
    for i in 0..dim {
        let direction = if i % 3 == 0 {
            1.0
        } else if i % 3 == 1 {
            -0.5
        } else {
            0.25
        };
        legit[i] = -direction * separation / 2.0;
        fraud[i] = direction * separation / 2.0;
    }
    (legit, fraud)
}

fn sample_record<R: Rng + ?Sized>(
    rng: &mut R,
    cfg: &CreditcardConfig,
    means: &(Vec<f64>, Vec<f64>),
) -> Sample {
    let is_fraud = rng.gen_bool(cfg.fraud_rate);
    let mean = if is_fraud { &means.1 } else { &means.0 };
    let features: Vec<f64> = mean.iter().map(|&m| m + gaussian(rng)).collect();
    Sample::classification(features, usize::from(is_fraud))
}

/// Generates a synthetic Creditcard federated dataset.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, cfg: &CreditcardConfig) -> FederatedDataset {
    assert!(cfg.dim >= 1 && cfg.train_records >= 1);
    let means = class_means(cfg.dim, cfg.class_separation);
    let placement =
        allocate_free(rng, cfg.train_records, cfg.num_users, cfg.num_silos, cfg.allocation);
    let records: Vec<FederatedRecord> = placement
        .placements
        .iter()
        .map(|&(user, silo)| FederatedRecord {
            sample: sample_record(rng, cfg, &means),
            user,
            silo,
        })
        .collect();
    let test: Vec<Sample> =
        (0..cfg.test_records).map(|_| sample_record(rng, cfg, &means)).collect();
    FederatedDataset::new(
        format!("creditcard-{}-U{}", cfg.allocation.label(), cfg.num_users),
        cfg.num_silos,
        cfg.num_users,
        records,
        test,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_shape_matches_paper_structure() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = CreditcardConfig::default();
        let d = generate(&mut rng, &cfg);
        assert_eq!(d.num_silos, 5);
        assert_eq!(d.num_users, 100);
        assert_eq!(d.num_records(), cfg.train_records);
        assert_eq!(d.test.len(), cfg.test_records);
        assert_eq!(d.feature_dim(), 29);
    }

    #[test]
    fn labels_are_imbalanced() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = generate(&mut rng, &CreditcardConfig::default());
        let fraud = d.records.iter().filter(|r| r.sample.target.class() == Some(1)).count() as f64
            / d.num_records() as f64;
        assert!(fraud > 0.05 && fraud < 0.30, "fraud rate {fraud}");
    }

    #[test]
    fn zipf_allocation_is_applied() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = CreditcardConfig {
            allocation: Allocation::zipf_default(),
            num_users: 50,
            train_records: 5000,
            ..CreditcardConfig::default()
        };
        let d = generate(&mut rng, &cfg);
        let mut totals = d.user_totals();
        totals.sort_unstable_by(|a, b| b.cmp(a));
        assert!(totals[0] > 2 * totals[25].max(1));
        assert!(d.name.contains("zipf"));
    }

    #[test]
    fn classes_are_separable_in_feature_space() {
        // The mean feature vectors of the two classes should be far apart relative to the
        // unit noise, otherwise no model could learn anything.
        let mut rng = StdRng::seed_from_u64(3);
        let d = generate(&mut rng, &CreditcardConfig::default());
        let dim = d.feature_dim();
        let mut mean0 = vec![0.0; dim];
        let mut mean1 = vec![0.0; dim];
        let mut n0 = 0.0;
        let mut n1 = 0.0;
        for r in &d.records {
            let target = r.sample.target.class().unwrap();
            let (m, n) = if target == 0 { (&mut mean0, &mut n0) } else { (&mut mean1, &mut n1) };
            for (mi, &x) in m.iter_mut().zip(r.sample.features.iter()) {
                *mi += x;
            }
            *n += 1.0;
        }
        for v in mean0.iter_mut() {
            *v /= n0;
        }
        for v in mean1.iter_mut() {
            *v /= n1;
        }
        let dist: f64 =
            mean0.iter().zip(mean1.iter()).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        assert!(dist > 1.0, "class means too close: {dist}");
    }
}
