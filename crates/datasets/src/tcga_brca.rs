//! Synthetic stand-in for the FLamby Fed-TCGA-BRCA benchmark.
//!
//! The real benchmark predicts survival of breast-cancer patients from 39 clinical
//! features across 6 geographic silos, evaluated with the concordance index and trained
//! with the Cox partial-likelihood loss. Silo sizes are fixed by the benchmark. The paper
//! uses `|U| ∈ {50, 200}` users and notes that the Cox loss needs at least two records per
//! (silo, user) pair for per-user training, which this generator enforces.

use crate::allocation::{allocate_fixed_silos, enforce_min_records_per_pair, Allocation};
use crate::schema::{FederatedDataset, FederatedRecord};
use rand::Rng;
use uldp_ml::rng::gaussian;
use uldp_ml::Sample;

/// Configuration of the synthetic TcgaBrca generator.
#[derive(Clone, Debug)]
pub struct TcgaBrcaConfig {
    /// Records held by each of the six silos (FLamby-like sizes by default).
    pub silo_sizes: Vec<usize>,
    /// Number of held-out evaluation records.
    pub test_records: usize,
    /// Feature dimensionality (Fed-TCGA-BRCA: 39).
    pub dim: usize,
    /// Number of users `|U|` (paper: 50 or 200).
    pub num_users: usize,
    /// Probability that an event is observed (not censored).
    pub event_rate: f64,
    /// User allocation scheme.
    pub allocation: Allocation,
    /// Minimum records per (silo, user) pair (the Cox loss needs ≥ 2).
    pub min_records_per_pair: usize,
}

impl Default for TcgaBrcaConfig {
    fn default() -> Self {
        TcgaBrcaConfig {
            silo_sizes: vec![248, 156, 164, 129, 129, 40],
            test_records: 200,
            dim: 39,
            num_users: 50,
            event_rate: 0.7,
            allocation: Allocation::Uniform,
            min_records_per_pair: 2,
        }
    }
}

/// The "true" risk coefficients used to generate survival times: a sparse signal so that
/// a linear Cox model can recover it.
fn true_beta(dim: usize) -> Vec<f64> {
    (0..dim)
        .map(|i| match i % 5 {
            0 => 0.8,
            1 => -0.5,
            _ => 0.0,
        })
        .collect()
}

fn make_sample<R: Rng + ?Sized>(rng: &mut R, cfg: &TcgaBrcaConfig, beta: &[f64]) -> Sample {
    let features: Vec<f64> = (0..cfg.dim).map(|_| gaussian(rng)).collect();
    let risk: f64 = features.iter().zip(beta.iter()).map(|(x, b)| x * b).sum();
    // Exponential survival time with hazard proportional to exp(risk).
    let u: f64 = rng.gen_range(1e-6..1.0);
    let time = -u.ln() / risk.exp().max(1e-6);
    let event = rng.gen_bool(cfg.event_rate);
    Sample::survival(features, time.max(1e-3), event)
}

/// Generates a synthetic TcgaBrca federated dataset.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, cfg: &TcgaBrcaConfig) -> FederatedDataset {
    assert_eq!(cfg.silo_sizes.len(), 6, "Fed-TCGA-BRCA has six silos");
    let beta = true_beta(cfg.dim);
    let users_per_silo = allocate_fixed_silos(rng, &cfg.silo_sizes, cfg.num_users, cfg.allocation);
    // Flatten to (user, silo) placements so we can enforce the per-pair minimum.
    let mut placements: Vec<(usize, usize)> = Vec::new();
    for (silo, users) in users_per_silo.iter().enumerate() {
        for &user in users {
            placements.push((user, silo));
        }
    }
    enforce_min_records_per_pair(&mut placements, cfg.num_users, cfg.min_records_per_pair);
    let records: Vec<FederatedRecord> = placements
        .into_iter()
        .map(|(user, silo)| FederatedRecord { sample: make_sample(rng, cfg, &beta), user, silo })
        .collect();
    let test: Vec<Sample> = (0..cfg.test_records).map(|_| make_sample(rng, cfg, &beta)).collect();
    FederatedDataset::new(
        format!("tcgabrca-{}-U{}", cfg.allocation.label(), cfg.num_users),
        cfg.silo_sizes.len(),
        cfg.num_users,
        records,
        test,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn silo_count_and_features() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TcgaBrcaConfig::default();
        let d = generate(&mut rng, &cfg);
        assert_eq!(d.num_silos, 6);
        assert_eq!(d.feature_dim(), 39);
        assert_eq!(d.num_records(), cfg.silo_sizes.iter().sum::<usize>());
    }

    #[test]
    fn targets_are_survival() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = generate(&mut rng, &TcgaBrcaConfig::default());
        let mut events = 0usize;
        for r in &d.records {
            let (time, event) = r.sample.target.survival().expect("survival target");
            assert!(time > 0.0);
            events += usize::from(event);
        }
        let rate = events as f64 / d.num_records() as f64;
        assert!(rate > 0.5 && rate < 0.9, "event rate {rate}");
    }

    #[test]
    fn per_pair_minimum_is_enforced() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = TcgaBrcaConfig {
            num_users: 200,
            allocation: Allocation::zipf_default(),
            ..Default::default()
        };
        let d = generate(&mut rng, &cfg);
        let hist = d.histogram();
        for (s, row) in hist.iter().enumerate() {
            for (u, &count) in row.iter().enumerate() {
                assert!(
                    count == 0 || count >= cfg.min_records_per_pair,
                    "pair (silo {s}, user {u}) has {count} records"
                );
            }
        }
    }

    #[test]
    fn higher_risk_means_shorter_survival() {
        // Sanity check of the generative process: correlate the true risk score with time.
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = TcgaBrcaConfig::default();
        let d = generate(&mut rng, &cfg);
        let beta = true_beta(cfg.dim);
        let mut risky_times = Vec::new();
        let mut safe_times = Vec::new();
        for r in &d.records {
            let risk: f64 = r.sample.features.iter().zip(beta.iter()).map(|(x, b)| x * b).sum();
            let (time, _) = r.sample.target.survival().unwrap();
            if risk > 0.5 {
                risky_times.push(time);
            } else if risk < -0.5 {
                safe_times.push(time);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&risky_times) < mean(&safe_times));
    }
}
