//! User/record/silo allocation schemes (Section 5.1.1 of the paper).
//!
//! Two schemes are used for Creditcard and MNIST, where records can be placed freely:
//!
//! * **uniform** — every record is assigned to a user uniformly at random and to a silo
//!   uniformly at random.
//! * **zipf** — the number of records per user follows a Zipf distribution (exponent
//!   `user_alpha`, paper value 0.5), and each user's records are spread over silos
//!   according to a second Zipf distribution (exponent `silo_alpha`, paper value 2.0) with
//!   a per-user random silo preference order.
//!
//! For the FLamby-style benchmarks (HeartDisease, TcgaBrca) the per-silo record counts are
//! fixed by the benchmark, so only users are allocated:
//!
//! * **uniform** — each record's user is drawn uniformly.
//! * **zipf** — the number of records per user follows a Zipf distribution and 80% of a
//!   user's records go to one (randomly chosen) primary silo, the rest spread uniformly.

use crate::schema::{SiloId, UserId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The allocation scheme for linking records to users and silos.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Allocation {
    /// Uniformly random user and silo per record.
    Uniform,
    /// Zipf-skewed number of records per user and Zipf-skewed silo choice per user.
    Zipf {
        /// Exponent of the records-per-user Zipf distribution (paper: 0.5).
        user_alpha: f64,
        /// Exponent of the per-user silo-choice Zipf distribution (paper: 2.0).
        silo_alpha: f64,
    },
}

impl Allocation {
    /// The paper's default zipf parameters (`α_user = 0.5`, `α_silo = 2.0`).
    pub fn zipf_default() -> Self {
        Allocation::Zipf { user_alpha: 0.5, silo_alpha: 2.0 }
    }

    /// Short label used in benchmark output ("uniform" / "zipf").
    pub fn label(&self) -> &'static str {
        match self {
            Allocation::Uniform => "uniform",
            Allocation::Zipf { .. } => "zipf",
        }
    }
}

/// The placement of every record: `placements[i] = (user, silo)` for record `i`.
#[derive(Clone, Debug, Default)]
pub struct RecordPlacement {
    /// Per-record `(user, silo)` assignment.
    pub placements: Vec<(UserId, SiloId)>,
}

/// Zipf weights `k^{-alpha}` for ranks `1..=n`, normalised to sum to one.
fn zipf_weights(n: usize, alpha: f64) -> Vec<f64> {
    let raw: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-alpha)).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

/// Samples an index in `0..weights.len()` proportionally to `weights`.
fn sample_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let mut u: f64 = rng.gen();
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

/// Allocates `num_records` records to users and silos with free silo placement
/// (the Creditcard / MNIST variant).
pub fn allocate_free<R: Rng + ?Sized>(
    rng: &mut R,
    num_records: usize,
    num_users: usize,
    num_silos: usize,
    scheme: Allocation,
) -> RecordPlacement {
    assert!(num_users >= 1 && num_silos >= 1);
    let mut placements = Vec::with_capacity(num_records);
    match scheme {
        Allocation::Uniform => {
            for _ in 0..num_records {
                let user = rng.gen_range(0..num_users);
                let silo = rng.gen_range(0..num_silos);
                placements.push((user, silo));
            }
        }
        Allocation::Zipf { user_alpha, silo_alpha } => {
            // Per-user weight over a randomly permuted rank order so that skew is not
            // correlated with the user id.
            let user_weights = zipf_weights(num_users, user_alpha);
            let mut user_rank: Vec<usize> = (0..num_users).collect();
            user_rank.shuffle(rng);
            // Per-user random silo preference order.
            let silo_weights = zipf_weights(num_silos, silo_alpha);
            let silo_prefs: Vec<Vec<SiloId>> = (0..num_users)
                .map(|_| {
                    let mut order: Vec<SiloId> = (0..num_silos).collect();
                    order.shuffle(rng);
                    order
                })
                .collect();
            for _ in 0..num_records {
                let rank = sample_index(rng, &user_weights);
                let user = user_rank[rank];
                let silo_rank = sample_index(rng, &silo_weights);
                let silo = silo_prefs[user][silo_rank];
                placements.push((user, silo));
            }
        }
    }
    RecordPlacement { placements }
}

/// Allocates users to records whose silo placement is fixed by the benchmark
/// (the HeartDisease / TcgaBrca variant). `silo_sizes[s]` is the number of records silo
/// `s` holds; the result lists, for each silo, the user of each of its records.
pub fn allocate_fixed_silos<R: Rng + ?Sized>(
    rng: &mut R,
    silo_sizes: &[usize],
    num_users: usize,
    scheme: Allocation,
) -> Vec<Vec<UserId>> {
    assert!(num_users >= 1 && !silo_sizes.is_empty());
    let num_silos = silo_sizes.len();
    match scheme {
        Allocation::Uniform => silo_sizes
            .iter()
            .map(|&n| (0..n).map(|_| rng.gen_range(0..num_users)).collect())
            .collect(),
        Allocation::Zipf { user_alpha, .. } => {
            // Draw a user for each record with zipf-skewed user frequencies, but route 80%
            // of each user's records to a per-user primary silo.
            let user_weights = zipf_weights(num_users, user_alpha);
            let mut user_rank: Vec<usize> = (0..num_users).collect();
            user_rank.shuffle(rng);
            let primary_silo: Vec<SiloId> =
                (0..num_users).map(|_| rng.gen_range(0..num_silos)).collect();
            // Remaining slots per silo.
            let mut remaining: Vec<usize> = silo_sizes.to_vec();
            let mut out: Vec<Vec<UserId>> =
                silo_sizes.iter().map(|&n| Vec::with_capacity(n)).collect();
            let total: usize = silo_sizes.iter().sum();
            for _ in 0..total {
                let rank = sample_index(rng, &user_weights);
                let user = user_rank[rank];
                let preferred = primary_silo[user];
                // 80% preference for the primary silo when it still has room.
                let silo = if remaining[preferred] > 0 && rng.gen_bool(0.8) {
                    preferred
                } else {
                    // uniformly among silos with remaining capacity
                    let open: Vec<SiloId> = (0..num_silos).filter(|&s| remaining[s] > 0).collect();
                    open[rng.gen_range(0..open.len())]
                };
                remaining[silo] -= 1;
                out[silo].push(user);
            }
            out
        }
    }
}

/// Ensures every `(silo, user)` pair that appears has at least `min_count` records by
/// re-assigning surplus records of over-represented pairs, and every user appears at
/// least once. Used by the TcgaBrca preset, whose Cox loss needs ≥ 2 records per
/// per-user batch (paper §5.1.1).
pub fn enforce_min_records_per_pair(
    placements: &mut [(UserId, SiloId)],
    num_users: usize,
    min_count: usize,
) {
    if placements.is_empty() {
        return;
    }
    // Count per (user, silo).
    use std::collections::HashMap;
    let mut counts: HashMap<(UserId, SiloId), usize> = HashMap::new();
    for &(u, s) in placements.iter() {
        *counts.entry((u, s)).or_default() += 1;
    }
    // Repeatedly move records from the most populous pair to deficient pairs.
    loop {
        let deficient: Vec<(UserId, SiloId)> =
            counts.iter().filter(|&(_, &c)| c < min_count).map(|(&k, _)| k).collect();
        // Users entirely absent are acceptable (they simply do not participate).
        if deficient.is_empty() {
            break;
        }
        let mut progressed = false;
        for pair in deficient {
            // find a donor pair with more than min_count records
            let donor = counts
                .iter()
                .filter(|&(&k, &c)| k != pair && c > min_count)
                .max_by_key(|&(_, &c)| c)
                .map(|(&k, _)| k);
            let Some(donor) = donor else { continue };
            // move one record from donor to pair
            if let Some(slot) = placements.iter_mut().find(|p| **p == (donor.0, donor.1)) {
                *slot = pair;
                *counts.get_mut(&donor).unwrap() -= 1;
                *counts.entry(pair).or_default() += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    let _ = num_users;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_free_allocation_covers_all_silos() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = allocate_free(&mut rng, 10_000, 100, 5, Allocation::Uniform);
        assert_eq!(p.placements.len(), 10_000);
        let mut silo_counts = vec![0usize; 5];
        for &(u, s) in &p.placements {
            assert!(u < 100 && s < 5);
            silo_counts[s] += 1;
        }
        // Roughly balanced silos under the uniform scheme.
        for &c in &silo_counts {
            assert!(c > 1500 && c < 2500, "silo count {c}");
        }
    }

    #[test]
    fn zipf_free_allocation_is_skewed() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = allocate_free(&mut rng, 20_000, 100, 5, Allocation::zipf_default());
        let mut user_counts = vec![0usize; 100];
        for &(u, _) in &p.placements {
            user_counts[u] += 1;
        }
        user_counts.sort_unstable_by(|a, b| b.cmp(a));
        // The most active user holds many times more records than the median user.
        assert!(user_counts[0] as f64 > 3.0 * user_counts[50] as f64);
    }

    #[test]
    fn zipf_concentrates_each_user_on_few_silos() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = allocate_free(&mut rng, 20_000, 50, 5, Allocation::zipf_default());
        // With silo_alpha = 2.0 the top silo of each user should hold the majority of
        // that user's records (on average).
        let mut per_user: Vec<Vec<usize>> = vec![vec![0; 5]; 50];
        for &(u, s) in &p.placements {
            per_user[u][s] += 1;
        }
        let mut top_share = 0.0;
        let mut counted = 0;
        for counts in per_user {
            let total: usize = counts.iter().sum();
            if total == 0 {
                continue;
            }
            top_share += *counts.iter().max().unwrap() as f64 / total as f64;
            counted += 1;
        }
        assert!(top_share / counted as f64 > 0.55);
    }

    #[test]
    fn fixed_silo_allocation_respects_sizes() {
        let mut rng = StdRng::seed_from_u64(3);
        let sizes = vec![300, 260, 50, 130];
        for scheme in [Allocation::Uniform, Allocation::zipf_default()] {
            let out = allocate_fixed_silos(&mut rng, &sizes, 50, scheme);
            assert_eq!(out.len(), 4);
            for (s, users) in out.iter().enumerate() {
                assert_eq!(users.len(), sizes[s]);
                assert!(users.iter().all(|&u| u < 50));
            }
        }
    }

    #[test]
    fn fixed_silo_zipf_concentrates_users() {
        let mut rng = StdRng::seed_from_u64(4);
        let sizes = vec![300, 300, 300, 300];
        let out = allocate_fixed_silos(&mut rng, &sizes, 30, Allocation::zipf_default());
        // For each user, the share in their biggest silo should be large on average (80%).
        let mut per_user = vec![vec![0usize; 4]; 30];
        for (s, users) in out.iter().enumerate() {
            for &u in users {
                per_user[u][s] += 1;
            }
        }
        let mut top_share = 0.0;
        let mut counted = 0;
        for counts in per_user {
            let total: usize = counts.iter().sum();
            if total < 5 {
                continue;
            }
            top_share += *counts.iter().max().unwrap() as f64 / total as f64;
            counted += 1;
        }
        assert!(top_share / counted as f64 > 0.5);
    }

    #[test]
    fn min_records_enforcement() {
        let mut placements = vec![(0, 0), (0, 0), (0, 0), (0, 0), (1, 1)];
        enforce_min_records_per_pair(&mut placements, 2, 2);
        let mut counts = std::collections::HashMap::new();
        for &p in &placements {
            *counts.entry(p).or_insert(0usize) += 1;
        }
        for (_, c) in counts {
            assert!(c >= 2);
        }
    }

    #[test]
    fn allocation_labels() {
        assert_eq!(Allocation::Uniform.label(), "uniform");
        assert_eq!(Allocation::zipf_default().label(), "zipf");
    }
}
