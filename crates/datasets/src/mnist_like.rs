//! Synthetic stand-in for MNIST.
//!
//! The paper uses MNIST (60k training images, 10 classes) with a ≈20k-parameter CNN,
//! `|S| = 5` silos and `|U| ∈ {100, 10000}` users, in i.i.d. and non-i.i.d. (at most two
//! labels per user) variants. This generator creates a 10-class dataset from per-class
//! prototype vectors plus Gaussian noise. The default feature dimension is 64 (an 8×8
//! "image") to keep the experiment harness fast; the benchmark binaries can raise it to
//! 784 to match the original input size.

use crate::allocation::{allocate_free, Allocation};
use crate::schema::{FederatedDataset, FederatedRecord};
use rand::Rng;
use uldp_ml::rng::gaussian;
use uldp_ml::Sample;

/// Configuration of the synthetic MNIST-like generator.
#[derive(Clone, Debug)]
pub struct MnistConfig {
    /// Number of training records (paper: 60 000; defaults are smaller for speed).
    pub train_records: usize,
    /// Number of held-out evaluation records.
    pub test_records: usize,
    /// Feature dimensionality ("pixels"); 784 matches real MNIST.
    pub dim: usize,
    /// Number of classes (10 digits).
    pub classes: usize,
    /// Distance scale between class prototypes.
    pub class_separation: f64,
    /// Noise standard deviation around the prototypes.
    pub noise: f64,
    /// Number of silos `|S|` (paper: 5).
    pub num_silos: usize,
    /// Number of users `|U|` (paper: 100 or 10000).
    pub num_users: usize,
    /// User/record/silo allocation scheme.
    pub allocation: Allocation,
    /// Non-i.i.d. mode: each user only generates records from at most two labels.
    pub non_iid: bool,
}

impl Default for MnistConfig {
    fn default() -> Self {
        MnistConfig {
            train_records: 6000,
            test_records: 1000,
            dim: 64,
            classes: 10,
            class_separation: 2.5,
            noise: 1.0,
            num_silos: 5,
            num_users: 100,
            allocation: Allocation::Uniform,
            non_iid: false,
        }
    }
}

/// Deterministic class prototypes: class `c` activates a distinct block of coordinates.
fn prototypes(cfg: &MnistConfig) -> Vec<Vec<f64>> {
    let mut protos = Vec::with_capacity(cfg.classes);
    for c in 0..cfg.classes {
        let mut p = vec![0.0; cfg.dim];
        for (i, v) in p.iter_mut().enumerate() {
            // Block structure plus a class-specific sinusoidal pattern for separability.
            let block = (i * cfg.classes) / cfg.dim.max(1);
            let phase = (i as f64 * 0.37 + c as f64 * 1.13).sin();
            *v = if block == c { cfg.class_separation } else { 0.3 * phase * cfg.class_separation };
        }
        protos.push(p);
    }
    protos
}

fn sample_with_label<R: Rng + ?Sized>(
    rng: &mut R,
    cfg: &MnistConfig,
    protos: &[Vec<f64>],
    label: usize,
) -> Sample {
    let features: Vec<f64> = protos[label].iter().map(|&m| m + gaussian(rng) * cfg.noise).collect();
    Sample::classification(features, label)
}

/// Generates a synthetic MNIST-like federated dataset.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, cfg: &MnistConfig) -> FederatedDataset {
    assert!(cfg.classes >= 2 && cfg.dim >= cfg.classes);
    let protos = prototypes(cfg);
    let placement =
        allocate_free(rng, cfg.train_records, cfg.num_users, cfg.num_silos, cfg.allocation);
    // In the non-iid variant each user draws labels only from a fixed pair.
    let user_label_pairs: Vec<(usize, usize)> = (0..cfg.num_users)
        .map(|_| {
            let a = rng.gen_range(0..cfg.classes);
            let b = rng.gen_range(0..cfg.classes);
            (a, b)
        })
        .collect();
    let records: Vec<FederatedRecord> = placement
        .placements
        .iter()
        .map(|&(user, silo)| {
            let label = if cfg.non_iid {
                let (a, b) = user_label_pairs[user];
                if rng.gen_bool(0.5) {
                    a
                } else {
                    b
                }
            } else {
                rng.gen_range(0..cfg.classes)
            };
            FederatedRecord { sample: sample_with_label(rng, cfg, &protos, label), user, silo }
        })
        .collect();
    let test: Vec<Sample> = (0..cfg.test_records)
        .map(|_| {
            let label = rng.gen_range(0..cfg.classes);
            sample_with_label(rng, cfg, &protos, label)
        })
        .collect();
    let iid_tag = if cfg.non_iid { "noniid" } else { "iid" };
    FederatedDataset::new(
        format!("mnist-{}-{}-U{}", cfg.allocation.label(), iid_tag, cfg.num_users),
        cfg.num_silos,
        cfg.num_users,
        records,
        test,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_labels() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = MnistConfig::default();
        let d = generate(&mut rng, &cfg);
        assert_eq!(d.num_records(), cfg.train_records);
        assert_eq!(d.feature_dim(), cfg.dim);
        // all ten classes present
        let mut seen = vec![false; cfg.classes];
        for r in &d.records {
            seen[r.sample.target.class().unwrap()] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn non_iid_restricts_labels_per_user() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg =
            MnistConfig { non_iid: true, num_users: 20, train_records: 4000, ..Default::default() };
        let d = generate(&mut rng, &cfg);
        let mut per_user: Vec<std::collections::HashSet<usize>> =
            vec![std::collections::HashSet::new(); cfg.num_users];
        for r in &d.records {
            per_user[r.user].insert(r.sample.target.class().unwrap());
        }
        for labels in per_user {
            assert!(labels.len() <= 2, "user has {} labels", labels.len());
        }
    }

    #[test]
    fn iid_users_see_many_labels() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = MnistConfig { num_users: 10, train_records: 4000, ..Default::default() };
        let d = generate(&mut rng, &cfg);
        let mut per_user: Vec<std::collections::HashSet<usize>> =
            vec![std::collections::HashSet::new(); cfg.num_users];
        for r in &d.records {
            per_user[r.user].insert(r.sample.target.class().unwrap());
        }
        assert!(per_user.iter().all(|l| l.len() >= 5));
    }

    #[test]
    fn prototypes_are_distinct() {
        let cfg = MnistConfig::default();
        let protos = prototypes(&cfg);
        for i in 0..cfg.classes {
            for j in (i + 1)..cfg.classes {
                let dist: f64 = protos[i]
                    .iter()
                    .zip(protos[j].iter())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                assert!(dist > 1.0, "classes {i} and {j} too close ({dist})");
            }
        }
    }
}
