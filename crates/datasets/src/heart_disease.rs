//! Synthetic stand-in for the FLamby Fed-Heart-Disease benchmark.
//!
//! The real benchmark pools the UCI heart-disease cohorts of four hospitals (Cleveland,
//! Hungary, Switzerland, Long Beach) with 13 tabular features and a binary label; silo
//! sizes are fixed by the benchmark (≈303/261/46/130 records). The paper trains a model
//! with fewer than 100 parameters over those 4 silos with `|U| ∈ {50, 200}` users.
//! This generator reproduces that structure with a synthetic binary task whose class
//! distribution drifts slightly per silo (hospital effect).

use crate::allocation::{allocate_fixed_silos, Allocation};
use crate::schema::{FederatedDataset, FederatedRecord};
use rand::Rng;
use uldp_ml::rng::gaussian;
use uldp_ml::Sample;

/// Configuration of the synthetic HeartDisease generator.
#[derive(Clone, Debug)]
pub struct HeartDiseaseConfig {
    /// Records held by each of the four hospitals (FLamby sizes by default).
    pub silo_sizes: Vec<usize>,
    /// Number of held-out evaluation records.
    pub test_records: usize,
    /// Feature dimensionality (UCI heart disease: 13).
    pub dim: usize,
    /// Number of users `|U|` (paper: 50 or 200).
    pub num_users: usize,
    /// Distance between the two class means.
    pub class_separation: f64,
    /// Per-silo mean shift modelling hospital-specific covariate drift.
    pub silo_shift: f64,
    /// User allocation scheme.
    pub allocation: Allocation,
}

impl Default for HeartDiseaseConfig {
    fn default() -> Self {
        HeartDiseaseConfig {
            silo_sizes: vec![303, 261, 46, 130],
            test_records: 200,
            dim: 13,
            num_users: 50,
            class_separation: 1.8,
            silo_shift: 0.3,
            allocation: Allocation::Uniform,
        }
    }
}

fn make_sample<R: Rng + ?Sized>(rng: &mut R, cfg: &HeartDiseaseConfig, silo: usize) -> Sample {
    let label = rng.gen_bool(0.45) as usize;
    let sign = if label == 1 { 1.0 } else { -1.0 };
    let features: Vec<f64> = (0..cfg.dim)
        .map(|i| {
            let direction = if i % 2 == 0 { 1.0 } else { -0.6 };
            sign * direction * cfg.class_separation / 2.0
                + cfg.silo_shift * silo as f64 * ((i as f64 * 0.71).cos())
                + gaussian(rng)
        })
        .collect();
    Sample::classification(features, label)
}

/// Generates a synthetic HeartDisease federated dataset.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, cfg: &HeartDiseaseConfig) -> FederatedDataset {
    assert_eq!(cfg.silo_sizes.len(), 4, "Fed-Heart-Disease has four hospitals");
    let users_per_silo = allocate_fixed_silos(rng, &cfg.silo_sizes, cfg.num_users, cfg.allocation);
    let mut records = Vec::with_capacity(cfg.silo_sizes.iter().sum());
    for (silo, users) in users_per_silo.iter().enumerate() {
        for &user in users {
            records.push(FederatedRecord { sample: make_sample(rng, cfg, silo), user, silo });
        }
    }
    let test: Vec<Sample> = (0..cfg.test_records)
        .map(|_| {
            let silo = rng.gen_range(0..cfg.silo_sizes.len());
            make_sample(rng, cfg, silo)
        })
        .collect();
    FederatedDataset::new(
        format!("heartdisease-{}-U{}", cfg.allocation.label(), cfg.num_users),
        cfg.silo_sizes.len(),
        cfg.num_users,
        records,
        test,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn silo_sizes_are_fixed() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = HeartDiseaseConfig::default();
        let d = generate(&mut rng, &cfg);
        assert_eq!(d.num_silos, 4);
        for (s, &expected) in cfg.silo_sizes.iter().enumerate() {
            assert_eq!(d.silo_records(s).len(), expected);
        }
        assert_eq!(d.feature_dim(), 13);
    }

    #[test]
    fn average_records_per_user_matches_paper_scale() {
        // |U| = 50 gives n ≈ 740 / 50 ≈ 15 (the paper reports n ≈ 10 with its exact sizes).
        let mut rng = StdRng::seed_from_u64(1);
        let d = generate(&mut rng, &HeartDiseaseConfig::default());
        let n = d.avg_records_per_user();
        assert!(n > 5.0 && n < 25.0, "n = {n}");
    }

    #[test]
    fn both_classes_present_in_each_silo() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = generate(&mut rng, &HeartDiseaseConfig::default());
        for s in 0..4 {
            let labels: std::collections::HashSet<usize> =
                d.silo_records(s).iter().map(|r| r.sample.target.class().unwrap()).collect();
            assert_eq!(labels.len(), 2, "silo {s} is single-class");
        }
    }

    #[test]
    fn zipf_allocation_produces_skew() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = HeartDiseaseConfig {
            allocation: Allocation::zipf_default(),
            num_users: 50,
            ..Default::default()
        };
        let d = generate(&mut rng, &cfg);
        let mut totals = d.user_totals();
        totals.sort_unstable_by(|a, b| b.cmp(a));
        assert!(totals[0] > totals[25].max(1));
    }
}
