//! The federated dataset schema: records tagged with the user and silo they belong to.

use serde::{Deserialize, Serialize};
use uldp_ml::Sample;

/// Identifier of a user (shared across silos after record linkage, paper §3.1).
pub type UserId = usize;

/// Identifier of a silo.
pub type SiloId = usize;

/// One training record together with its owner and hosting silo.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FederatedRecord {
    /// The record content.
    pub sample: Sample,
    /// The user this record belongs to.
    pub user: UserId,
    /// The silo holding this record.
    pub silo: SiloId,
}

/// A cross-silo federated dataset: training records spread over silos and users, plus a
/// centralized held-out test set used only for evaluation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FederatedDataset {
    /// Number of silos `|S|`.
    pub num_silos: usize,
    /// Number of users `|U|`.
    pub num_users: usize,
    /// Training records.
    pub records: Vec<FederatedRecord>,
    /// Held-out evaluation records.
    pub test: Vec<Sample>,
    /// Human-readable dataset name (used in logs and benchmark output).
    pub name: String,
}

impl FederatedDataset {
    /// Creates a dataset, verifying that every record points to a valid user and silo.
    pub fn new(
        name: impl Into<String>,
        num_silos: usize,
        num_users: usize,
        records: Vec<FederatedRecord>,
        test: Vec<Sample>,
    ) -> Self {
        assert!(num_silos >= 1 && num_users >= 1);
        for r in &records {
            assert!(r.silo < num_silos, "record references silo {} >= {num_silos}", r.silo);
            assert!(r.user < num_users, "record references user {} >= {num_users}", r.user);
        }
        FederatedDataset { num_silos, num_users, records, test, name: name.into() }
    }

    /// Number of training records.
    pub fn num_records(&self) -> usize {
        self.records.len()
    }

    /// Average number of records per user (the `n` reported in the figures' captions).
    pub fn avg_records_per_user(&self) -> f64 {
        self.records.len() as f64 / self.num_users as f64
    }

    /// All records held by silo `s`.
    pub fn silo_records(&self, silo: SiloId) -> Vec<&FederatedRecord> {
        self.records.iter().filter(|r| r.silo == silo).collect()
    }

    /// All of user `u`'s records held by silo `s` (the per-user dataset `D_{s,u}`).
    pub fn silo_user_records(&self, silo: SiloId, user: UserId) -> Vec<&Sample> {
        self.records
            .iter()
            .filter(|r| r.silo == silo && r.user == user)
            .map(|r| &r.sample)
            .collect()
    }

    /// The per-silo, per-user record-count histogram `n_{s,u}`, indexed `[silo][user]`.
    pub fn histogram(&self) -> Vec<Vec<usize>> {
        let mut h = vec![vec![0usize; self.num_users]; self.num_silos];
        for r in &self.records {
            h[r.silo][r.user] += 1;
        }
        h
    }

    /// Total records per user across all silos (`N_u = Σ_s n_{s,u}`).
    pub fn user_totals(&self) -> Vec<usize> {
        let mut totals = vec![0usize; self.num_users];
        for r in &self.records {
            totals[r.user] += 1;
        }
        totals
    }

    /// The maximum number of records any single user holds across all silos.
    pub fn max_records_per_user(&self) -> usize {
        self.user_totals().into_iter().max().unwrap_or(0)
    }

    /// The median number of records per user across all silos (users with zero records
    /// included). Used by the ULDP-GROUP-median baseline.
    pub fn median_records_per_user(&self) -> usize {
        let mut totals = self.user_totals();
        totals.sort_unstable();
        if totals.is_empty() {
            0
        } else {
            totals[totals.len() / 2]
        }
    }

    /// Users that have at least one record in silo `s`.
    pub fn users_in_silo(&self, silo: SiloId) -> Vec<UserId> {
        let mut present = vec![false; self.num_users];
        for r in &self.records {
            if r.silo == silo {
                present[r.user] = true;
            }
        }
        present
            .into_iter()
            .enumerate()
            .filter_map(|(u, p)| if p { Some(u) } else { None })
            .collect()
    }

    /// Feature dimensionality (taken from the first record; panics on an empty dataset).
    pub fn feature_dim(&self) -> usize {
        self.records
            .first()
            .map(|r| r.sample.dim())
            .or_else(|| self.test.first().map(|s| s.dim()))
            .expect("dataset has no records")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uldp_ml::Sample;

    fn tiny() -> FederatedDataset {
        let records = vec![
            FederatedRecord { sample: Sample::classification(vec![1.0], 0), user: 0, silo: 0 },
            FederatedRecord { sample: Sample::classification(vec![2.0], 1), user: 0, silo: 1 },
            FederatedRecord { sample: Sample::classification(vec![3.0], 0), user: 1, silo: 1 },
            FederatedRecord { sample: Sample::classification(vec![4.0], 1), user: 1, silo: 1 },
            FederatedRecord { sample: Sample::classification(vec![5.0], 0), user: 2, silo: 0 },
        ];
        FederatedDataset::new("tiny", 2, 3, records, vec![Sample::classification(vec![0.0], 0)])
    }

    #[test]
    fn histogram_and_totals() {
        let d = tiny();
        let h = d.histogram();
        assert_eq!(h[0], vec![1, 0, 1]);
        assert_eq!(h[1], vec![1, 2, 0]);
        assert_eq!(d.user_totals(), vec![2, 2, 1]);
        assert_eq!(d.max_records_per_user(), 2);
        assert_eq!(d.median_records_per_user(), 2);
        assert_eq!(d.num_records(), 5);
        assert!((d.avg_records_per_user() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn silo_queries() {
        let d = tiny();
        assert_eq!(d.silo_records(0).len(), 2);
        assert_eq!(d.silo_records(1).len(), 3);
        assert_eq!(d.silo_user_records(1, 1).len(), 2);
        assert_eq!(d.silo_user_records(0, 1).len(), 0);
        assert_eq!(d.users_in_silo(0), vec![0, 2]);
        assert_eq!(d.users_in_silo(1), vec![0, 1]);
        assert_eq!(d.feature_dim(), 1);
    }

    #[test]
    #[should_panic(expected = "references silo")]
    fn rejects_out_of_range_silo() {
        let records = vec![FederatedRecord {
            sample: Sample::classification(vec![1.0], 0),
            user: 0,
            silo: 5,
        }];
        FederatedDataset::new("bad", 2, 1, records, vec![]);
    }
}
