//! Unsigned arbitrary-precision integers.
//!
//! [`BigUint`] stores its magnitude as little-endian `u64` limbs with no trailing zero
//! limbs (the canonical form; zero is the empty limb vector). All arithmetic keeps the
//! representation canonical.

use rand::Rng;
use std::cmp::Ordering;
use std::fmt;

/// Number of bits per limb.
pub const LIMB_BITS: usize = 64;

/// Operand size (in limbs) above which multiplication switches to Karatsuba.
const KARATSUBA_THRESHOLD: usize = 32;

/// An unsigned arbitrary-precision integer.
///
/// The representation is a little-endian vector of `u64` limbs with no trailing zeros.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// The value `2`.
    pub fn two() -> Self {
        BigUint { limbs: vec![2] }
    }

    /// Builds a value from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds a value from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut out = BigUint { limbs: vec![lo, hi] };
        out.normalize();
        out
    }

    /// Builds a value from little-endian limbs (normalizing trailing zeros).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Returns the little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Builds a value from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut chunk_iter = bytes.rchunks(8);
        for chunk in &mut chunk_iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// Serialises to big-endian bytes with no leading zero bytes (zero -> empty vec).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // skip leading zeros of the most significant limb
                let mut skipping = true;
                for &b in bytes.iter() {
                    if skipping && b == 0 {
                        continue;
                    }
                    skipping = false;
                    out.push(b);
                }
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Parses a hexadecimal string (no `0x` prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.is_empty() {
            return None;
        }
        let mut value = Self::zero();
        for ch in s.chars() {
            let digit = ch.to_digit(16)? as u64;
            value = value.shl_bits(4).add(&BigUint::from_u64(digit));
        }
        Some(value)
    }

    /// Formats as lowercase hexadecimal (no prefix).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{:x}", limb));
            } else {
                s.push_str(&format!("{:016x}", limb));
            }
        }
        s
    }

    /// Parses a decimal string.
    pub fn from_decimal(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.is_empty() {
            return None;
        }
        let ten = BigUint::from_u64(10);
        let mut value = Self::zero();
        for ch in s.chars() {
            let digit = ch.to_digit(10)? as u64;
            value = value.mul(&ten).add(&BigUint::from_u64(digit));
        }
        Some(value)
    }

    /// Formats as a decimal string.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        let ten = BigUint::from_u64(10);
        while !cur.is_zero() {
            let (q, r) = cur.div_rem(&ten);
            digits.push(std::char::from_digit(r.to_u64().unwrap_or(0) as u32, 10).unwrap());
            cur = q;
        }
        digits.iter().rev().collect()
    }

    /// Attempts to convert to `u64`; returns `None` if the value does not fit.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Attempts to convert to `u128`; returns `None` if the value does not fit.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | ((self.limbs[1] as u128) << 64)),
            _ => None,
        }
    }

    /// Lossy conversion to `f64` (used only for diagnostics and encoding sanity checks).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            acc = acc * 2f64.powi(64) + limb as f64;
        }
        acc
    }

    /// Returns `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` iff the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` iff the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns the number of significant bits (zero has zero bits).
    pub fn bit_length(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() - 1) * LIMB_BITS + (LIMB_BITS - top.leading_zeros() as usize)
            }
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / LIMB_BITS;
        let off = i % LIMB_BITS;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to one, growing the representation if needed.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / LIMB_BITS;
        let off = i % LIMB_BITS;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << off;
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Addition.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (longer, shorter) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(longer.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in longer.iter().enumerate() {
            let a = limb as u128;
            let b = *shorter.get(i).unwrap_or(&0) as u128;
            let sum = a + b + carry as u128;
            out.push(sum as u64);
            carry = (sum >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// Subtraction; panics if `other > self`. Use [`BigUint::checked_sub`] otherwise.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other).expect("BigUint::sub would underflow (other > self)")
    }

    /// Subtraction returning `None` on underflow.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i128;
            let b = *other.limbs.get(i).unwrap_or(&0) as i128;
            let mut diff = a - b - borrow;
            if diff < 0 {
                diff += 1i128 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(diff as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(out))
    }

    /// Multiplication (schoolbook with Karatsuba fallback for large operands).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        if self.limbs.len() >= KARATSUBA_THRESHOLD && other.limbs.len() >= KARATSUBA_THRESHOLD {
            return self.mul_karatsuba(other);
        }
        self.mul_schoolbook(other)
    }

    fn mul_schoolbook(&self, other: &BigUint) -> BigUint {
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    fn mul_karatsuba(&self, other: &BigUint) -> BigUint {
        let n = self.limbs.len().max(other.limbs.len());
        let half = n / 2;
        let (a_lo, a_hi) = self.split_at(half);
        let (b_lo, b_hi) = other.split_at(half);
        let z0 = a_lo.mul(&b_lo);
        let z2 = a_hi.mul(&b_hi);
        let z1 = a_lo.add(&a_hi).mul(&b_lo.add(&b_hi)).sub(&z0).sub(&z2);
        z2.shl_limbs(2 * half).add(&z1.shl_limbs(half)).add(&z0)
    }

    fn split_at(&self, at: usize) -> (BigUint, BigUint) {
        if at >= self.limbs.len() {
            (self.clone(), BigUint::zero())
        } else {
            (
                BigUint::from_limbs(self.limbs[..at].to_vec()),
                BigUint::from_limbs(self.limbs[at..].to_vec()),
            )
        }
    }

    /// Shift left by whole limbs (multiply by 2^(64*limbs)).
    pub fn shl_limbs(&self, limbs: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; limbs];
        out.extend_from_slice(&self.limbs);
        BigUint::from_limbs(out)
    }

    /// Shift left by an arbitrary number of bits.
    pub fn shl_bits(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / LIMB_BITS;
        let bit_shift = bits % LIMB_BITS;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &limb in &self.limbs {
                out.push((limb << bit_shift) | carry);
                carry = limb >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Shift right by an arbitrary number of bits.
    pub fn shr_bits(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / LIMB_BITS;
        let bit_shift = bits % LIMB_BITS;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            let src = &self.limbs[limb_shift..];
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() { src[i + 1] << (LIMB_BITS - bit_shift) } else { 0 };
                out.push(lo | hi);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Division returning the quotient only.
    pub fn div(&self, divisor: &BigUint) -> BigUint {
        self.div_rem(divisor).0
    }

    /// Division returning the remainder only.
    pub fn rem(&self, divisor: &BigUint) -> BigUint {
        self.div_rem(divisor).1
    }

    /// Long division (Knuth algorithm D). Panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            return self.div_rem_small(divisor.limbs[0]);
        }
        // Knuth algorithm D.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let v = divisor.shl_bits(shift);
        let u = self.shl_bits(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut u_limbs = u.limbs.clone();
        u_limbs.push(0); // u has m+n+1 digits
        let v_limbs = &v.limbs;
        let mut q = vec![0u64; m + 1];
        let b = 1u128 << 64;
        for j in (0..=m).rev() {
            let top = ((u_limbs[j + n] as u128) << 64) | u_limbs[j + n - 1] as u128;
            let mut qhat = top / v_limbs[n - 1] as u128;
            let mut rhat = top % v_limbs[n - 1] as u128;
            while qhat >= b
                || qhat * v_limbs[n - 2] as u128 > (rhat << 64) + u_limbs[j + n - 2] as u128
            {
                qhat -= 1;
                rhat += v_limbs[n - 1] as u128;
                if rhat >= b {
                    break;
                }
            }
            // Multiply and subtract: u[j..j+n+1] -= qhat * v
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * v_limbs[i] as u128 + carry;
                carry = p >> 64;
                let sub = (p as u64) as i128;
                let mut diff = u_limbs[j + i] as i128 - sub - borrow;
                if diff < 0 {
                    diff += 1i128 << 64;
                    borrow = 1;
                } else {
                    borrow = 0;
                }
                u_limbs[j + i] = diff as u64;
            }
            let mut diff = u_limbs[j + n] as i128 - carry as i128 - borrow;
            if diff < 0 {
                diff += 1i128 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            u_limbs[j + n] = diff as u64;
            if borrow != 0 {
                // qhat was one too large: add back.
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let sum = u_limbs[j + i] as u128 + v_limbs[i] as u128 + carry;
                    u_limbs[j + i] = sum as u64;
                    carry = sum >> 64;
                }
                u_limbs[j + n] = (u_limbs[j + n] as u128 + carry) as u64;
            }
            q[j] = qhat as u64;
        }
        let quotient = BigUint::from_limbs(q);
        let remainder = BigUint::from_limbs(u_limbs[..n].to_vec()).shr_bits(shift);
        (quotient, remainder)
    }

    fn div_rem_small(&self, d: u64) -> (BigUint, BigUint) {
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u64;
        for i in (0..self.limbs.len()).rev() {
            let cur = ((rem as u128) << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = (cur % d as u128) as u64;
        }
        (BigUint::from_limbs(q), BigUint::from_u64(rem))
    }

    /// Uniform random value with exactly `bits` significant bits (top bit set).
    pub fn random_with_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        assert!(bits > 0);
        let limbs = bits.div_ceil(LIMB_BITS);
        let mut out = Vec::with_capacity(limbs);
        for _ in 0..limbs {
            out.push(rng.gen::<u64>());
        }
        let mut v = BigUint::from_limbs(out);
        // Mask off excess high bits, then force the top bit.
        let excess = limbs * LIMB_BITS - bits;
        if excess > 0 {
            v = v.shr_bits(excess).shl_bits(0);
            // re-randomize to correct width
            v = v.rem(&BigUint::one().shl_bits(bits));
        }
        v.set_bit(bits - 1);
        v
    }

    /// Uniform random value in `[0, bound)`; panics if `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "random_below requires a positive bound");
        let bits = bound.bit_length();
        loop {
            let limbs = bits.div_ceil(LIMB_BITS);
            let mut out = Vec::with_capacity(limbs);
            for _ in 0..limbs {
                out.push(rng.gen::<u64>());
            }
            let excess = limbs * LIMB_BITS - bits;
            let candidate = BigUint::from_limbs(out).shr_bits(excess);
            if &candidate < bound {
                return candidate;
            }
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal())
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_u128(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basic_construction() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::from_u64(42).to_u64(), Some(42));
        assert_eq!(BigUint::from_u128(1u128 << 100).bit_length(), 101);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = BigUint::from_u128(u128::MAX);
        let b = BigUint::from_u64(12345);
        let c = a.add(&b);
        assert_eq!(c.sub(&b), a);
        assert_eq!(c.sub(&a), b);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::one();
        assert_eq!(a.add(&b), BigUint::from_u128(1u128 << 64));
    }

    #[test]
    fn checked_sub_underflow() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u64(7);
        assert!(a.checked_sub(&b).is_none());
        assert_eq!(b.checked_sub(&a), Some(BigUint::from_u64(2)));
    }

    #[test]
    fn mul_small() {
        let a = BigUint::from_u64(0xFFFF_FFFF_FFFF_FFFF);
        let b = BigUint::from_u64(0xFFFF_FFFF_FFFF_FFFF);
        let c = a.mul(&b);
        assert_eq!(c.to_u128(), Some(0xFFFF_FFFF_FFFF_FFFFu128 * 0xFFFF_FFFF_FFFF_FFFFu128));
    }

    #[test]
    fn mul_zero_and_one() {
        let a = BigUint::from_u64(99999);
        assert!(a.mul(&BigUint::zero()).is_zero());
        assert_eq!(a.mul(&BigUint::one()), a);
    }

    #[test]
    fn div_rem_small_divisor() {
        let a = BigUint::from_u128(123456789012345678901234567890u128);
        let (q, r) = a.div_rem(&BigUint::from_u64(97));
        assert_eq!(q.mul(&BigUint::from_u64(97)).add(&r), a);
        assert!(r < BigUint::from_u64(97));
    }

    #[test]
    fn div_rem_multi_limb() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let a = BigUint::random_with_bits(&mut rng, 512);
            let b = BigUint::random_with_bits(&mut rng, 200);
            let (q, r) = a.div_rem(&b);
            assert_eq!(q.mul(&b).add(&r), a);
            assert!(r < b);
        }
    }

    #[test]
    fn div_by_larger_is_zero() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u128(1u128 << 100);
        let (q, r) = a.div_rem(&b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = BigUint::from_u64(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn shifts() {
        let a = BigUint::from_u64(1);
        assert_eq!(a.shl_bits(64), BigUint::from_u128(1u128 << 64));
        assert_eq!(a.shl_bits(130).shr_bits(130), a);
        assert_eq!(BigUint::from_u64(0b1011).shr_bits(2), BigUint::from_u64(0b10));
    }

    #[test]
    fn bit_access() {
        let mut a = BigUint::zero();
        a.set_bit(100);
        assert!(a.bit(100));
        assert!(!a.bit(99));
        assert_eq!(a.bit_length(), 101);
    }

    #[test]
    fn hex_roundtrip() {
        let a = BigUint::from_hex("deadbeefcafebabe1234567890abcdef").unwrap();
        assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn decimal_roundtrip() {
        let a = BigUint::from_decimal("123456789012345678901234567890123456789").unwrap();
        assert_eq!(BigUint::from_decimal(&a.to_decimal()).unwrap(), a);
        assert_eq!(BigUint::zero().to_decimal(), "0");
    }

    #[test]
    fn bytes_roundtrip() {
        let a = BigUint::from_hex("0102030405060708090a0b0c0d0e0f").unwrap();
        let bytes = a.to_bytes_be();
        assert_eq!(BigUint::from_bytes_be(&bytes), a);
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5 {
            let a = BigUint::random_with_bits(&mut rng, 64 * KARATSUBA_THRESHOLD + 13);
            let b = BigUint::random_with_bits(&mut rng, 64 * KARATSUBA_THRESHOLD + 7);
            assert_eq!(a.mul_karatsuba(&b), a.mul_schoolbook(&b));
        }
    }

    #[test]
    fn ordering() {
        assert!(BigUint::from_u64(5) < BigUint::from_u64(6));
        assert!(BigUint::from_u128(1u128 << 64) > BigUint::from_u64(u64::MAX));
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let bound = BigUint::from_u64(1000);
        for _ in 0..100 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn random_with_bits_has_exact_bits() {
        let mut rng = StdRng::seed_from_u64(3);
        for bits in [1usize, 5, 64, 65, 128, 257] {
            let v = BigUint::random_with_bits(&mut rng, bits);
            assert_eq!(v.bit_length(), bits);
        }
    }
}
