//! Modular arithmetic over [`BigUint`] values.
//!
//! All functions treat the modulus as defining the ring `Z_n`; results are always
//! reduced. Most functions accept unreduced inputs and reduce as a side effect of their
//! computation; [`mod_sub`] is the exception — it **requires** both operands already in
//! `[0, n)` (debug-asserted) so the hot paths that only ever hold reduced field elements
//! do not pay two redundant divisions per subtraction.
//!
//! For repeated exponentiation over one modulus, prefer the Montgomery engine in
//! [`crate::montgomery`]; [`mod_pow`] here is the schoolbook reference path.

use crate::biguint::BigUint;
use crate::signed::{BigInt, Sign};

/// `(a + b) mod n`.
pub fn mod_add(a: &BigUint, b: &BigUint, n: &BigUint) -> BigUint {
    a.add(b).rem(n)
}

/// `(a - b) mod n`, wrapping into `[0, n)`.
///
/// Both operands must already be reduced (`a, b < n`, debug-asserted): every caller
/// holds field elements, so reducing again here would double-reduce on the hot path.
/// With `a, b < n` the wrapped difference `n − b + a` is itself `< n`, so no trailing
/// reduction is needed either.
pub fn mod_sub(a: &BigUint, b: &BigUint, n: &BigUint) -> BigUint {
    debug_assert!(a < n && b < n, "mod_sub requires reduced operands");
    if a >= b {
        a.sub(b)
    } else {
        n.sub(b).add(a)
    }
}

/// `(a * b) mod n`.
pub fn mod_mul(a: &BigUint, b: &BigUint, n: &BigUint) -> BigUint {
    a.mul(b).rem(n)
}

/// `(-a) mod n`.
pub fn mod_neg(a: &BigUint, n: &BigUint) -> BigUint {
    let a = a.rem(n);
    if a.is_zero() {
        a
    } else {
        n.sub(&a)
    }
}

/// Modular exponentiation `base^exp mod n` by square-and-multiply.
///
/// `0^0 mod n` is defined as `1 mod n`.
pub fn mod_pow(base: &BigUint, exp: &BigUint, n: &BigUint) -> BigUint {
    assert!(!n.is_zero(), "modulus must be positive");
    uldp_telemetry::metrics::MODPOW_GENERIC.inc();
    if n.is_one() {
        return BigUint::zero();
    }
    let mut result = BigUint::one();
    let mut base = base.rem(n);
    let bits = exp.bit_length();
    for i in 0..bits {
        if exp.bit(i) {
            result = mod_mul(&result, &base, n);
        }
        if i + 1 < bits {
            base = mod_mul(&base, &base, n);
        }
    }
    result
}

/// Extended Euclidean algorithm.
///
/// Returns `(g, x, y)` such that `a*x + b*y = g = gcd(a, b)`.
pub fn extended_gcd(a: &BigUint, b: &BigUint) -> (BigUint, BigInt, BigInt) {
    let mut old_r = BigInt::from_biguint(a.clone());
    let mut r = BigInt::from_biguint(b.clone());
    let mut old_s = BigInt::one();
    let mut s = BigInt::zero();
    let mut old_t = BigInt::zero();
    let mut t = BigInt::one();
    while !r.is_zero() {
        let (q, rem) = old_r.magnitude().div_rem(r.magnitude());
        // both old_r and r are non-negative throughout
        let q = BigInt::from_biguint(q);
        let new_r = BigInt::from_biguint(rem);
        old_r = std::mem::replace(&mut r, new_r);
        let new_s = old_s.sub(&q.mul(&s));
        old_s = std::mem::replace(&mut s, new_s);
        let new_t = old_t.sub(&q.mul(&t));
        old_t = std::mem::replace(&mut t, new_t);
    }
    (old_r.magnitude().clone(), old_s, old_t)
}

/// Modular multiplicative inverse of `a` modulo `n`.
///
/// Returns `None` when `gcd(a, n) != 1`. Computed with the extended Euclidean algorithm
/// (the method used by the server in Protocol 1 step 1.(f)).
pub fn mod_inv(a: &BigUint, n: &BigUint) -> Option<BigUint> {
    assert!(!n.is_zero(), "modulus must be positive");
    let a = a.rem(n);
    if a.is_zero() {
        return None;
    }
    let (g, x, _) = extended_gcd(&a, n);
    if !g.is_one() {
        return None;
    }
    Some(x.rem_euclid(n))
}

/// Maps a finite-field element in `[0, n)` to the centred integer representation
/// `(-n/2, n/2]` used by the fixed-point `Decode` step of Protocol 1.
pub fn to_centered(x: &BigUint, n: &BigUint) -> BigInt {
    let half = n.div(&BigUint::two());
    if x > &half {
        BigInt::with_sign(Sign::Negative, n.sub(x))
    } else {
        BigInt::from_biguint(x.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn add_sub_mul_small() {
        let m = n(17);
        assert_eq!(mod_add(&n(10), &n(12), &m), n(5));
        assert_eq!(mod_sub(&n(3), &n(10), &m), n(10));
        assert_eq!(mod_mul(&n(5), &n(7), &m), n(1));
        assert_eq!(mod_neg(&n(4), &m), n(13));
        assert_eq!(mod_neg(&n(0), &m), n(0));
    }

    #[test]
    fn pow_small() {
        let m = n(1000);
        assert_eq!(mod_pow(&n(2), &n(10), &m), n(24));
        assert_eq!(mod_pow(&n(7), &n(0), &m), n(1));
        assert_eq!(mod_pow(&n(0), &n(5), &m), n(0));
        assert_eq!(mod_pow(&n(3), &n(4), &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p-1) = 1 mod p for prime p and a not divisible by p
        let p = n(1_000_000_007);
        for a in [2u64, 3, 12345, 999_999_999] {
            assert_eq!(mod_pow(&n(a), &p.sub(&BigUint::one()), &p), BigUint::one());
        }
    }

    #[test]
    fn extended_gcd_bezout() {
        let a = n(240);
        let b = n(46);
        let (g, x, y) = extended_gcd(&a, &b);
        assert_eq!(g, n(2));
        let lhs = BigInt::from_biguint(a).mul(&x).add(&BigInt::from_biguint(b).mul(&y));
        assert_eq!(lhs, BigInt::from_biguint(n(2)));
    }

    #[test]
    fn inverse_small() {
        let m = n(17);
        for a in 1..17u64 {
            let inv = mod_inv(&n(a), &m).unwrap();
            assert_eq!(mod_mul(&n(a), &inv, &m), BigUint::one());
        }
        // no inverse when not coprime
        assert!(mod_inv(&n(6), &n(9)).is_none());
        assert!(mod_inv(&n(0), &n(9)).is_none());
    }

    #[test]
    fn inverse_large_random() {
        let mut rng = StdRng::seed_from_u64(42);
        let m = crate::prime::generate_prime(&mut rng, 128);
        for _ in 0..10 {
            let a = BigUint::random_below(&mut rng, &m);
            if a.is_zero() {
                continue;
            }
            let inv = mod_inv(&a, &m).unwrap();
            assert_eq!(mod_mul(&a, &inv, &m), BigUint::one());
        }
    }

    #[test]
    fn centered_representation() {
        let m = n(100);
        assert_eq!(to_centered(&n(3), &m).to_i128(), Some(3));
        assert_eq!(to_centered(&n(99), &m).to_i128(), Some(-1));
        assert_eq!(to_centered(&n(50), &m).to_i128(), Some(50));
        assert_eq!(to_centered(&n(51), &m).to_i128(), Some(-49));
    }

    #[test]
    fn pow_matches_naive_for_random_inputs() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = n(10007);
        for _ in 0..20 {
            let base = BigUint::random_below(&mut rng, &m);
            let exp: u64 = rand::Rng::gen_range(&mut rng, 0..50);
            let mut naive = BigUint::one();
            for _ in 0..exp {
                naive = mod_mul(&naive, &base, &m);
            }
            assert_eq!(mod_pow(&base, &BigUint::from_u64(exp), &m), naive);
        }
    }
}
