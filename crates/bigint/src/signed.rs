//! Signed arbitrary-precision integers (sign + magnitude).
//!
//! [`BigInt`] is a thin signed wrapper over [`BigUint`], used where intermediate values
//! may be negative: the extended Euclidean algorithm and the centred representation of
//! finite-field elements in the fixed-point `Decode` step of Protocol 1.

use crate::biguint::BigUint;
use std::cmp::Ordering;
use std::fmt;

/// Sign of a [`BigInt`]. Zero is always [`Sign::Zero`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

/// A signed arbitrary-precision integer represented as a sign and a magnitude.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    magnitude: BigUint,
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> Self {
        BigInt { sign: Sign::Zero, magnitude: BigUint::zero() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt { sign: Sign::Positive, magnitude: BigUint::one() }
    }

    /// Builds a non-negative value from a [`BigUint`].
    pub fn from_biguint(v: BigUint) -> Self {
        if v.is_zero() {
            Self::zero()
        } else {
            BigInt { sign: Sign::Positive, magnitude: v }
        }
    }

    /// Builds a value with an explicit sign; the sign is normalised for zero magnitudes.
    pub fn with_sign(sign: Sign, magnitude: BigUint) -> Self {
        if magnitude.is_zero() {
            Self::zero()
        } else {
            match sign {
                Sign::Zero => Self::zero(),
                s => BigInt { sign: s, magnitude },
            }
        }
    }

    /// Builds a value from an `i64`.
    pub fn from_i64(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => Self::zero(),
            Ordering::Greater => {
                BigInt { sign: Sign::Positive, magnitude: BigUint::from_u64(v as u64) }
            }
            Ordering::Less => {
                BigInt { sign: Sign::Negative, magnitude: BigUint::from_u64(v.unsigned_abs()) }
            }
        }
    }

    /// Returns the sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Returns the magnitude (absolute value).
    pub fn magnitude(&self) -> &BigUint {
        &self.magnitude
    }

    /// Returns `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        match self.sign {
            Sign::Zero => Self::zero(),
            Sign::Positive => BigInt { sign: Sign::Negative, magnitude: self.magnitude.clone() },
            Sign::Negative => BigInt { sign: Sign::Positive, magnitude: self.magnitude.clone() },
        }
    }

    /// Addition.
    pub fn add(&self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::with_sign(a, self.magnitude.add(&other.magnitude)),
            _ => {
                // opposite signs: subtract the smaller magnitude from the larger
                match self.magnitude.cmp(&other.magnitude) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => {
                        BigInt::with_sign(self.sign, self.magnitude.sub(&other.magnitude))
                    }
                    Ordering::Less => {
                        BigInt::with_sign(other.sign, other.magnitude.sub(&self.magnitude))
                    }
                }
            }
        }
    }

    /// Subtraction.
    pub fn sub(&self, other: &BigInt) -> BigInt {
        self.add(&other.neg())
    }

    /// Multiplication.
    pub fn mul(&self, other: &BigInt) -> BigInt {
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == other.sign { Sign::Positive } else { Sign::Negative };
        BigInt::with_sign(sign, self.magnitude.mul(&other.magnitude))
    }

    /// Euclidean remainder in `[0, modulus)` for a positive modulus.
    pub fn rem_euclid(&self, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modulus must be positive");
        let r = self.magnitude.rem(modulus);
        match self.sign {
            Sign::Negative if !r.is_zero() => modulus.sub(&r),
            _ => r,
        }
    }

    /// Lossy conversion to `f64` preserving sign.
    pub fn to_f64(&self) -> f64 {
        let m = self.magnitude.to_f64();
        match self.sign {
            Sign::Negative => -m,
            _ => m,
        }
    }

    /// Attempts to convert to `i128`; returns `None` if it does not fit.
    pub fn to_i128(&self) -> Option<i128> {
        let m = self.magnitude.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => {
                if m <= i128::MAX as u128 {
                    Some(m as i128)
                } else {
                    None
                }
            }
            Sign::Negative => {
                if m <= i128::MAX as u128 + 1 {
                    Some((m as i128).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        use Sign::*;
        match (self.sign, other.sign) {
            (Negative, Negative) => other.magnitude.cmp(&self.magnitude),
            (Negative, _) => Ordering::Less,
            (Zero, Negative) => Ordering::Greater,
            (Zero, Zero) => Ordering::Equal,
            (Zero, Positive) => Ordering::Less,
            (Positive, Positive) => self.magnitude.cmp(&other.magnitude),
            (Positive, _) => Ordering::Greater,
        }
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({})", self)
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            write!(f, "-")?;
        }
        write!(f, "{}", self.magnitude)
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        BigInt::from_i64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i64) -> BigInt {
        BigInt::from_i64(v)
    }

    #[test]
    fn sign_normalisation() {
        assert!(BigInt::with_sign(Sign::Negative, BigUint::zero()).is_zero());
        assert_eq!(bi(0).sign(), Sign::Zero);
        assert_eq!(bi(-3).sign(), Sign::Negative);
    }

    #[test]
    fn add_mixed_signs() {
        assert_eq!(bi(5).add(&bi(-3)), bi(2));
        assert_eq!(bi(3).add(&bi(-5)), bi(-2));
        assert_eq!(bi(-3).add(&bi(-5)), bi(-8));
        assert_eq!(bi(5).add(&bi(-5)), bi(0));
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(bi(5).sub(&bi(9)), bi(-4));
        assert_eq!(bi(-5).neg(), bi(5));
        assert_eq!(bi(0).neg(), bi(0));
    }

    #[test]
    fn mul_signs() {
        assert_eq!(bi(-4).mul(&bi(3)), bi(-12));
        assert_eq!(bi(-4).mul(&bi(-3)), bi(12));
        assert_eq!(bi(-4).mul(&bi(0)), bi(0));
    }

    #[test]
    fn rem_euclid_wraps_negative() {
        let modulus = BigUint::from_u64(7);
        assert_eq!(bi(-1).rem_euclid(&modulus), BigUint::from_u64(6));
        assert_eq!(bi(13).rem_euclid(&modulus), BigUint::from_u64(6));
        assert_eq!(bi(0).rem_euclid(&modulus), BigUint::zero());
        assert_eq!(bi(-14).rem_euclid(&modulus), BigUint::zero());
    }

    #[test]
    fn ordering() {
        assert!(bi(-10) < bi(-2));
        assert!(bi(-2) < bi(0));
        assert!(bi(0) < bi(1));
        assert!(bi(1) < bi(100));
    }

    #[test]
    fn i128_conversion() {
        assert_eq!(bi(-42).to_i128(), Some(-42));
        assert_eq!(bi(42).to_i128(), Some(42));
        assert_eq!(bi(0).to_i128(), Some(0));
    }
}
