//! Montgomery-form modular arithmetic: the batched-exponentiation engine.
//!
//! [`crate::modular::mod_pow`] pays a full `div_rem`-based reduction on every multiply.
//! The Paillier hot path of Protocol 1, however, performs thousands of independent
//! exponentiations over the *same* modulus (`n²` for `encrypt`/`scalar_mul`, `p²`/`q²`
//! for CRT decryption) and often over the same *base* (one encrypted inverse raised to
//! one scalar per model coordinate). This module amortises exactly those two axes:
//!
//! * [`ModulusCtx`] — per-modulus precomputation (the word inverse `n' = -n⁻¹ mod 2⁶⁴`
//!   and `R² mod n` with `R = 2⁶⁴ˢ`), enabling CIOS Montgomery multiplication in which
//!   every reduction is a word-by-word interleaved pass instead of a long division.
//!   On top of it sit a sliding-window [`ModulusCtx::pow`] and
//!   [`ModulusCtx::mod_pow_batch`] for many `(base, exp)` pairs over one modulus.
//! * [`FixedBaseCtx`] — per-base precomputation (a radix-2ʷ table of
//!   `base^(j·2^(w·t))`), so a batch of exponentiations of one base needs no squarings
//!   at all: each exponentiation is at most `⌈bits/w⌉` Montgomery multiplications.
//!
//! All methods take `&self`, so one context can be shared freely across the worker pool
//! (`uldp-runtime`): the contexts are immutable after construction.
//!
//! Montgomery form is a bijection of `Z_n`, so every result is bitwise-identical to the
//! schoolbook [`crate::modular::mod_pow`] path; the property tests in
//! `crates/bigint/tests/montgomery_props.rs` assert this up to 2048-bit moduli. Setting
//! the environment variable `ULDP_GENERIC_MODPOW=1` (read once per process, see
//! [`engine_disabled`]) makes the call sites in `uldp-crypto` fall back to the
//! schoolbook path, which CI uses to cross-check protocol aggregates bit-for-bit.

use crate::biguint::{BigUint, LIMB_BITS};
use std::sync::OnceLock;

/// Returns `true` when `ULDP_GENERIC_MODPOW` is set to `1`/`true` in the environment,
/// asking call sites to bypass the Montgomery engine and use the schoolbook
/// [`crate::modular::mod_pow`] path instead (read once per process).
///
/// This is a verification and benchmarking knob: CI runs the protocol smoke binary once
/// with the engine and once without and diffs the decrypted aggregates bit-for-bit.
pub fn engine_disabled() -> bool {
    static DISABLED: OnceLock<bool> = OnceLock::new();
    *DISABLED.get_or_init(|| {
        matches!(
            std::env::var("ULDP_GENERIC_MODPOW").as_deref().map(str::trim),
            Ok("1") | Ok("true") | Ok("TRUE")
        )
    })
}

/// An element of `Z_n` in Montgomery form (`a·R mod n`, fixed width of `n`'s limb count).
///
/// Only meaningful together with the [`ModulusCtx`] that produced it; equality in
/// Montgomery form is equivalent to equality in normal form because the mapping is a
/// bijection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MontElem {
    limbs: Vec<u64>,
}

/// Cached per-modulus state for Montgomery arithmetic over an odd modulus `n > 1`.
pub struct ModulusCtx {
    /// The modulus in canonical [`BigUint`] form.
    n: BigUint,
    /// The modulus as a fixed-width limb slice (width `s`, top limb non-zero).
    n_limbs: Vec<u64>,
    /// `-n⁻¹ mod 2⁶⁴` (the CIOS word inverse, via Newton iteration).
    n0_inv: u64,
    /// `R mod n` where `R = 2^(64·s)` — the Montgomery form of `1`.
    r1: Vec<u64>,
    /// `R² mod n` — multiplier converting into Montgomery form.
    r2: Vec<u64>,
}

impl std::fmt::Debug for ModulusCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModulusCtx").field("modulus_bits", &self.n.bit_length()).finish()
    }
}

/// Below this many limbs [`ModulusCtx::mont_sqr`] uses the generic CIOS product of a
/// value with itself: the dedicated squaring's separated passes only pay off once the
/// halved cross-product count outweighs their fixed overhead (measured crossover
/// between 512- and 1024-bit moduli; Paillier ciphertext moduli are 1–6 kbit).
const SQR_MIN_LIMBS: usize = 12;

/// From this many limbs (2048-bit moduli) upward [`ModulusCtx::mont_mul_limbs`]
/// abandons the interleaved CIOS pass for a separated product + reduction: the full
/// `2s`-word product comes from [`BigUint::mul`], whose Karatsuba tier kicks in at the
/// same width and saves word multiplications sub-quadratically, and the reduction then
/// folds `m_i·n` word by word exactly as in the dedicated squaring. Matches
/// `KARATSUBA_THRESHOLD` in `biguint.rs` — below it the separated form would run the
/// same schoolbook product as CIOS but with an extra pass over the buffer.
const KARATSUBA_MONT_MIN_LIMBS: usize = 32;

/// `x⁻¹ mod 2⁶⁴` for odd `x` (Newton–Hensel lifting: 6 doublings from the trivial
/// inverse mod 2).
fn inv_mod_word(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    let mut inv = 1u64;
    for _ in 0..6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv
}

impl ModulusCtx {
    /// Builds a context for an odd modulus `n > 1`; returns `None` otherwise (Montgomery
    /// reduction requires `gcd(n, 2⁶⁴) = 1`, and `Z_1` is the trivial ring).
    pub fn try_new(n: &BigUint) -> Option<ModulusCtx> {
        if n.is_even() || n.is_one() || n.is_zero() {
            return None;
        }
        let n_limbs = n.limbs().to_vec();
        let s = n_limbs.len();
        let n0_inv = inv_mod_word(n_limbs[0]).wrapping_neg();
        let r1 = to_fixed_width(&BigUint::one().shl_bits(s * LIMB_BITS).rem(n), s);
        let r2 = to_fixed_width(&BigUint::one().shl_bits(2 * s * LIMB_BITS).rem(n), s);
        Some(ModulusCtx { n: n.clone(), n_limbs, n0_inv, r1, r2 })
    }

    /// Builds a context for an odd modulus `n > 1`; panics otherwise.
    pub fn new(n: &BigUint) -> ModulusCtx {
        Self::try_new(n).expect("ModulusCtx requires an odd modulus greater than 1")
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Bit length of the modulus.
    pub fn bits(&self) -> usize {
        self.n.bit_length()
    }

    /// Converts a value into Montgomery form (reducing it modulo `n` first if needed).
    pub fn to_mont(&self, a: &BigUint) -> MontElem {
        let reduced = if a < &self.n { a.clone() } else { a.rem(&self.n) };
        let limbs = to_fixed_width(&reduced, self.n_limbs.len());
        MontElem { limbs: self.mont_mul_limbs(&limbs, &self.r2) }
    }

    /// Converts a Montgomery-form value back to a canonical [`BigUint`].
    pub fn from_mont(&self, a: &MontElem) -> BigUint {
        let mut one = vec![0u64; self.n_limbs.len()];
        one[0] = 1;
        BigUint::from_limbs(self.mont_mul_limbs(&a.limbs, &one))
    }

    /// The Montgomery form of `1` (`R mod n`).
    pub fn one(&self) -> MontElem {
        MontElem { limbs: self.r1.clone() }
    }

    /// Montgomery product `a·b·R⁻¹ mod n`.
    pub fn mont_mul(&self, a: &MontElem, b: &MontElem) -> MontElem {
        uldp_telemetry::metrics::MONT_MUL.inc();
        MontElem { limbs: self.mont_mul_limbs(&a.limbs, &b.limbs) }
    }

    /// Montgomery square `a·a·R⁻¹ mod n`, bitwise-identical to
    /// `mont_mul(a, a)` but ~1.5× cheaper: the squaring ladder of
    /// [`ModulusCtx::pow_mont`] is dominated by this operation.
    pub fn mont_sqr(&self, a: &MontElem) -> MontElem {
        uldp_telemetry::metrics::MONT_SQR.inc();
        MontElem { limbs: self.mont_sqr_limbs(&a.limbs) }
    }

    /// `a² mod n` in normal form — the hoisted convenience over
    /// [`ModulusCtx::mont_sqr`], bitwise-identical to `mod_mul(a, a, n)`.
    pub fn sqr(&self, a: &BigUint) -> BigUint {
        self.from_mont(&self.mont_sqr(&self.to_mont(a)))
    }

    /// `a·b mod n` in normal form through the Montgomery domain — bitwise-identical to
    /// [`crate::modular::mod_mul`]`(a, b, n)`, but reusing this context's cached state
    /// (and its Karatsuba product tier at wide moduli).
    pub fn mod_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.from_mont(&self.mont_mul(&self.to_mont(a), &self.to_mont(b)))
    }

    /// Dedicated Montgomery squaring: the product phase computes each cross term
    /// `a_i·a_j` (`i < j`) once and doubles the whole partial product — about half the
    /// word multiplications of the generic CIOS pass — then a separated Montgomery
    /// reduction folds in `m_i·n` word by word. Integer arithmetic is exact, so the
    /// result limbs are identical to [`ModulusCtx::mont_mul_limbs`]`(a, a)`.
    fn mont_sqr_limbs(&self, a: &[u64]) -> Vec<u64> {
        let s = self.n_limbs.len();
        debug_assert_eq!(a.len(), s);
        if s < SQR_MIN_LIMBS {
            // Below ~¾ kbit the dedicated routine's extra passes cost more than the
            // halved multiplications save; the interleaved CIOS product wins there.
            return self.mont_mul_limbs(a, a);
        }
        let n = &self.n_limbs;
        // 1) Cross products: t = Σ_{i<j} a_i·a_j · 2^(64(i+j)), iterator-zipped so the
        //    inner loop carries no bounds checks. Row i writes positions
        //    2i+1 ..= i+s-1 and its carry to i+s; earlier rows never touched i+s, so
        //    the carry store cannot clobber anything.
        let mut t = vec![0u64; 2 * s + 1];
        for i in 0..s {
            let ai = a[i] as u128;
            let mut carry = 0u128;
            for (tj, &aj) in t[2 * i + 1..i + s].iter_mut().zip(a[i + 1..].iter()) {
                let cur = *tj as u128 + ai * aj as u128 + carry;
                *tj = cur as u64;
                carry = cur >> 64;
            }
            t[i + s] = carry as u64;
        }
        // 2) One fused pass doubles the cross-term sum and adds the diagonal squares
        //    a_i² at position 2i. 2·Σ_{i<j} a_i·a_j + Σ a_i² = a² < n² < 2^(128s), so
        //    nothing carries out of word 2s − 1.
        let mut shift_carry = 0u64;
        let mut add_carry = 0u128;
        for i in 0..s {
            let sq = a[i] as u128 * a[i] as u128;
            let w = t[2 * i];
            let lo = ((w << 1) | shift_carry) as u128 + (sq as u64 as u128) + add_carry;
            shift_carry = w >> 63;
            t[2 * i] = lo as u64;
            let w = t[2 * i + 1];
            let hi = ((w << 1) | shift_carry) as u128 + (sq >> 64) + (lo >> 64);
            shift_carry = w >> 63;
            t[2 * i + 1] = hi as u64;
            add_carry = hi >> 64;
        }
        debug_assert_eq!(shift_carry as u128 + add_carry, 0);
        // 3) Separated Montgomery reduction: fold m_i·n into t at word offset i so the
        //    low s words cancel. The running total stays below a² + R·n < 2^(64(2s+1)),
        //    so the carry chain never leaves the buffer.
        for i in 0..s {
            let m = t[i].wrapping_mul(self.n0_inv) as u128;
            let mut carry = 0u128;
            for (tj, &nj) in t[i..i + s].iter_mut().zip(n.iter()) {
                let cur = *tj as u128 + m * nj as u128 + carry;
                *tj = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + s;
            while carry != 0 {
                debug_assert!(k <= 2 * s);
                let cur = t[k] as u128 + carry;
                t[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        // 5) Shift down s words: result = t[s..=2s] < 2n (a² < n·R for a < n), so one
        //    conditional subtraction canonicalises it, exactly like the CIOS pass.
        let needs_sub = t[2 * s] != 0 || cmp_fixed(&t[s..2 * s], n) != std::cmp::Ordering::Less;
        if needs_sub {
            let mut borrow = 0i128;
            for j in 0..s {
                let mut diff = t[s + j] as i128 - n[j] as i128 - borrow;
                if diff < 0 {
                    diff += 1i128 << 64;
                    borrow = 1;
                } else {
                    borrow = 0;
                }
                t[s + j] = diff as u64;
            }
            debug_assert_eq!(t[2 * s] as i128 - borrow, 0);
        }
        t.drain(..s);
        t.truncate(s);
        t
    }

    /// CIOS (coarsely integrated operand scanning) Montgomery multiplication.
    ///
    /// Inputs are fixed-width (`s` limbs) values `< n`; the output is the fixed-width
    /// `a·b·R⁻¹ mod n`. One interleaved pass multiplies and reduces word by word: after
    /// adding `a_i·b`, the low word is cancelled by adding `m·n` with
    /// `m = t_0·n' mod 2⁶⁴`, and the accumulator shifts down one word. The accumulator
    /// stays below `2n`, so a single conditional subtraction canonicalises the result.
    fn mont_mul_limbs(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let s = self.n_limbs.len();
        debug_assert_eq!(a.len(), s);
        debug_assert_eq!(b.len(), s);
        if s >= KARATSUBA_MONT_MIN_LIMBS {
            return self.mont_mul_limbs_karatsuba(a, b);
        }
        let n = &self.n_limbs;
        let mut t = vec![0u64; s + 2];
        for &ai in a.iter() {
            let ai = ai as u128;
            // t += a_i · b
            let mut carry = 0u128;
            for j in 0..s {
                let cur = t[j] as u128 + ai * b[j] as u128 + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[s] as u128 + carry;
            t[s] = cur as u64;
            t[s + 1] = (cur >> 64) as u64;
            // t += m · n with m chosen so t ≡ 0 mod 2⁶⁴, then shift one word down.
            let m = t[0].wrapping_mul(self.n0_inv) as u128;
            let cur = t[0] as u128 + m * n[0] as u128;
            let mut carry = cur >> 64;
            for j in 1..s {
                let cur = t[j] as u128 + m * n[j] as u128 + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[s] as u128 + carry;
            t[s - 1] = cur as u64;
            // t[s+1] ≤ 1 and the carry out of `cur` ≤ 1, so this addition cannot wrap.
            t[s] = t[s + 1] + (cur >> 64) as u64;
        }
        // t[0..=s] < 2n: subtract n once if needed.
        let needs_sub = t[s] != 0 || cmp_fixed(&t[..s], n) != std::cmp::Ordering::Less;
        if needs_sub {
            let mut borrow = 0i128;
            for j in 0..s {
                let mut diff = t[j] as i128 - n[j] as i128 - borrow;
                if diff < 0 {
                    diff += 1i128 << 64;
                    borrow = 1;
                } else {
                    borrow = 0;
                }
                t[j] = diff as u64;
            }
            debug_assert_eq!(t[s] as i128 - borrow, 0);
        }
        t.truncate(s);
        t
    }

    /// Separated-product Montgomery multiplication for wide moduli
    /// (≥ [`KARATSUBA_MONT_MIN_LIMBS`]): the full `2s`-word integer product `a·b` comes
    /// from [`BigUint::mul`] — which dispatches to its Karatsuba tier at exactly these
    /// widths — and the word-by-word Montgomery reduction of
    /// [`ModulusCtx::mont_sqr_limbs`] then cancels the low `s` words. Integer
    /// arithmetic is exact, so the result limbs are identical to the interleaved CIOS
    /// pass.
    fn mont_mul_limbs_karatsuba(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let s = self.n_limbs.len();
        let n = &self.n_limbs;
        let product = BigUint::from_limbs(a.to_vec()).mul(&BigUint::from_limbs(b.to_vec()));
        // a·b < n² < 2^(128s); the extra word is headroom for the reduction's carries.
        let mut t = to_fixed_width(&product, 2 * s + 1);
        // Separated Montgomery reduction: fold m_i·n into t at word offset i so the low
        // s words cancel. The running total stays below a·b + R·n < 2^(64(2s+1)), so
        // the carry chain never leaves the buffer.
        for i in 0..s {
            let m = t[i].wrapping_mul(self.n0_inv) as u128;
            let mut carry = 0u128;
            for (tj, &nj) in t[i..i + s].iter_mut().zip(n.iter()) {
                let cur = *tj as u128 + m * nj as u128 + carry;
                *tj = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + s;
            while carry != 0 {
                debug_assert!(k <= 2 * s);
                let cur = t[k] as u128 + carry;
                t[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        // Shift down s words: result = t[s..=2s] < 2n (a·b < n·R for a, b < n), so one
        // conditional subtraction canonicalises it, exactly like the CIOS pass.
        let needs_sub = t[2 * s] != 0 || cmp_fixed(&t[s..2 * s], n) != std::cmp::Ordering::Less;
        if needs_sub {
            let mut borrow = 0i128;
            for j in 0..s {
                let mut diff = t[s + j] as i128 - n[j] as i128 - borrow;
                if diff < 0 {
                    diff += 1i128 << 64;
                    borrow = 1;
                } else {
                    borrow = 0;
                }
                t[s + j] = diff as u64;
            }
            debug_assert_eq!(t[2 * s] as i128 - borrow, 0);
        }
        t.drain(..s);
        t.truncate(s);
        t
    }

    /// Montgomery-domain exponentiation by left-to-right sliding window.
    pub fn pow_mont(&self, base: &MontElem, exp: &BigUint) -> MontElem {
        uldp_telemetry::metrics::MODPOW_WINDOW.inc();
        let bits = exp.bit_length();
        if bits == 0 {
            return self.one();
        }
        let w = window_size(bits);
        // Odd powers base^1, base^3, …, base^(2^w − 1).
        let mut table = Vec::with_capacity(1 << (w - 1));
        table.push(base.clone());
        let base_sq = self.mont_sqr(base);
        for i in 1..(1usize << (w - 1)) {
            let next = self.mont_mul(&table[i - 1], &base_sq);
            table.push(next);
        }
        let mut acc = self.one();
        let mut i = bits as isize - 1;
        while i >= 0 {
            if !exp.bit(i as usize) {
                acc = self.mont_sqr(&acc);
                i -= 1;
                continue;
            }
            // Find the longest window [l, i] of at most w bits ending in a set bit.
            let mut l = (i - w as isize + 1).max(0);
            while !exp.bit(l as usize) {
                l += 1;
            }
            let mut value = 0usize;
            for b in (l..=i).rev() {
                acc = self.mont_sqr(&acc);
                value = (value << 1) | usize::from(exp.bit(b as usize));
            }
            acc = self.mont_mul(&acc, &table[(value - 1) / 2]);
            i = l - 1;
        }
        acc
    }

    /// `base^exp mod n` via Montgomery sliding-window exponentiation.
    ///
    /// Bitwise-identical to [`crate::modular::mod_pow`] for every input (including
    /// `0^0 = 1` and `base ≥ n`), at a fraction of the cost for large moduli.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one();
        }
        self.from_mont(&self.pow_mont(&self.to_mont(base), exp))
    }

    /// Exponentiates every `(base, exp)` pair over this shared context.
    ///
    /// The per-modulus precomputation is paid once for the whole batch. The method (like
    /// every other on this type) takes `&self`, so callers that want parallelism can
    /// split the slice across a worker pool and share one context.
    pub fn mod_pow_batch(&self, pairs: &[(BigUint, BigUint)]) -> Vec<BigUint> {
        pairs.iter().map(|(base, exp)| self.pow(base, exp)).collect()
    }

    /// Interleaved (Shamir-trick) multi-exponentiation: `∏ baseᵢ^expᵢ mod n` with one
    /// shared squaring ladder instead of one per base.
    ///
    /// A separate `pow` per base followed by a `mont_mul` chain pays
    /// `k·⌈bits/w⌉` squarings for `k` pairs; here each fixed-width digit position costs
    /// `w` squarings *total* plus at most one multiplication per base with a non-zero
    /// digit — the squaring ladder is shared across all `k` bases. This is the shape of
    /// Protocol 1 step 2.(b)'s per-cell `scalar_mul`-then-`add` chain.
    ///
    /// Montgomery arithmetic is exact, so the result is bitwise-identical to the unfused
    /// `pow` + `mod_mul` product for every input. Pairs with a zero exponent contribute
    /// the neutral element and are skipped; an empty slice yields `1`.
    pub fn multi_exp(&self, pairs: &[(BigUint, BigUint)]) -> BigUint {
        uldp_telemetry::metrics::MULTI_EXP.inc();
        let live: Vec<(MontElem, &BigUint)> = pairs
            .iter()
            .filter(|(_, exp)| !exp.is_zero())
            .map(|(base, exp)| (self.to_mont(base), exp))
            .collect();
        let max_bits = live.iter().map(|(_, exp)| exp.bit_length()).max().unwrap_or(0);
        if max_bits == 0 {
            return BigUint::one();
        }
        let w = multi_exp_window(max_bits);
        // Per-base table of base^1 … base^(2^w − 1): full (not odd-only) powers, so a
        // digit is a single table lookup inside the shared ladder.
        let tables: Vec<Vec<MontElem>> = live
            .iter()
            .map(|(base, _)| {
                let mut row = Vec::with_capacity((1 << w) - 1);
                row.push(base.clone());
                for j in 1..((1usize << w) - 1) {
                    let next = self.mont_mul(&row[j - 1], base);
                    row.push(next);
                }
                row
            })
            .collect();
        let mut acc = self.one();
        let mut started = false;
        for d in (0..max_bits.div_ceil(w)).rev() {
            if started {
                for _ in 0..w {
                    acc = self.mont_sqr(&acc);
                }
            }
            for (k, (_, exp)) in live.iter().enumerate() {
                let mut digit = 0usize;
                for b in 0..w {
                    let bit = d * w + b;
                    if bit < max_bits && exp.bit(bit) {
                        digit |= 1 << b;
                    }
                }
                if digit != 0 {
                    acc = self.mont_mul(&acc, &tables[k][digit - 1]);
                    started = true;
                }
            }
        }
        self.from_mont(&acc)
    }

    /// [`ModulusCtx::multi_exp`] for many independent products over one shared context.
    pub fn multi_exp_batch<P: AsRef<[(BigUint, BigUint)]>>(&self, groups: &[P]) -> Vec<BigUint> {
        groups.iter().map(|pairs| self.multi_exp(pairs.as_ref())).collect()
    }
}

/// Precomputed radix-2ʷ table for one base: many exponents, no squarings.
///
/// `table[t][j − 1]` holds `base^(j·2^(w·t))` in Montgomery form, so an exponent split
/// into `w`-bit digits `d_t` is evaluated as `∏_t table[t][d_t − 1]` — at most
/// `⌈max_bits/w⌉` Montgomery multiplications per exponentiation, with the table built
/// once per base. This is the shape of Protocol 1 step 2.(b): one encrypted inverse
/// raised to one scalar per `(silo, coordinate)` cell.
pub struct FixedBaseCtx {
    ctx: std::sync::Arc<ModulusCtx>,
    /// Digit width `w` in bits.
    window: usize,
    /// Largest exponent bit length the table covers.
    max_bits: usize,
    /// `table[t][j − 1] = base^(j·2^(w·t))` (Montgomery form), `j ∈ 1..2^w`.
    table: Vec<Vec<MontElem>>,
    /// The base in Montgomery form (fallback for out-of-range exponents).
    base: MontElem,
}

impl std::fmt::Debug for FixedBaseCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FixedBaseCtx")
            .field("modulus_bits", &self.ctx.bits())
            .field("window", &self.window)
            .field("max_bits", &self.max_bits)
            .finish()
    }
}

impl FixedBaseCtx {
    /// Estimated table footprint in bytes for one base over a `modulus_bits`-bit
    /// modulus, covering exponents of up to `max_bits` bits.
    ///
    /// Fixed-base tables trade memory for speed (several megabytes per base at
    /// paper-scale key sizes); callers hoisting many of them at once can budget with
    /// this before committing to [`FixedBaseCtx::new`].
    pub fn estimated_table_bytes(modulus_bits: usize, max_bits: usize) -> usize {
        let max_bits = max_bits.max(1);
        let window = fixed_base_window(max_bits);
        let rows = max_bits.div_ceil(window);
        let limbs = modulus_bits.max(1).div_ceil(LIMB_BITS);
        rows * ((1 << window) - 1) * limbs * 8
    }

    /// Builds the fixed-base table for `base` covering exponents of up to `max_bits`
    /// bits (larger exponents fall back to the sliding-window path).
    pub fn new(ctx: std::sync::Arc<ModulusCtx>, base: &BigUint, max_bits: usize) -> FixedBaseCtx {
        let max_bits = max_bits.max(1);
        Self::with_window(ctx, base, max_bits, fixed_base_window(max_bits))
    }

    /// Builds the table with an explicit digit width instead of the
    /// [`fixed_base_window`] default. Wider digits cost exponentially more table
    /// construction but fewer multiplications per exponentiation — worthwhile for
    /// tables reused far beyond their build cost (e.g. one per federation rather than
    /// one per user). Results are bitwise-identical at any width.
    pub fn with_window(
        ctx: std::sync::Arc<ModulusCtx>,
        base: &BigUint,
        max_bits: usize,
        window: usize,
    ) -> FixedBaseCtx {
        let max_bits = max_bits.max(1);
        assert!((1..=16).contains(&window), "fixed-base window must be in 1..=16");
        let windows = max_bits.div_ceil(window);
        let base_m = ctx.to_mont(base);
        let mut table = Vec::with_capacity(windows);
        let mut row_base = base_m.clone();
        for t in 0..windows {
            // Row t: j·2^(w·t)-th powers, built by repeated multiplication by row_base.
            let mut row = Vec::with_capacity((1 << window) - 1);
            row.push(row_base.clone());
            for j in 1..((1usize << window) - 1) {
                let next = ctx.mont_mul(&row[j - 1], &row_base);
                row.push(next);
            }
            if t + 1 < windows {
                // Next row's base: row_base^(2^w), by w squarings.
                for _ in 0..window {
                    row_base = ctx.mont_sqr(&row_base);
                }
            }
            table.push(row);
        }
        FixedBaseCtx { ctx, window, max_bits, table, base: base_m }
    }

    /// The shared modulus context the table was built over.
    pub fn modulus_ctx(&self) -> &ModulusCtx {
        &self.ctx
    }

    /// `base^exp mod n`, bitwise-identical to [`crate::modular::mod_pow`].
    pub fn pow(&self, exp: &BigUint) -> BigUint {
        let bits = exp.bit_length();
        if bits == 0 {
            return BigUint::one();
        }
        if bits > self.max_bits {
            // Out of table range (callers normally reduce exponents first); counted by
            // `pow_mont` as a sliding-window exponentiation, which it is.
            return self.ctx.from_mont(&self.ctx.pow_mont(&self.base, exp));
        }
        uldp_telemetry::metrics::MODPOW_FIXED_BASE.inc();
        let mut acc = self.ctx.one();
        for (t, row) in self.table.iter().enumerate() {
            let mut digit = 0usize;
            for b in 0..self.window {
                let bit = t * self.window + b;
                if bit < bits && exp.bit(bit) {
                    digit |= 1 << b;
                }
            }
            if digit != 0 {
                acc = self.ctx.mont_mul(&acc, &row[digit - 1]);
            }
        }
        self.ctx.from_mont(&acc)
    }
}

/// Sliding-window width for an exponent of `bits` bits (standard thresholds balancing
/// the 2^(w−1)-entry odd-power table against saved multiplications).
fn window_size(bits: usize) -> usize {
    match bits {
        0..=23 => 1,
        24..=79 => 3,
        80..=239 => 4,
        240..=671 => 5,
        _ => 6,
    }
}

/// Digit width of the interleaved multi-exponentiation ladder. The per-base table has
/// `2^w − 1` entries and every base pays its construction, so the crossover sits lower
/// than the single-base sliding window's.
fn multi_exp_window(max_bits: usize) -> usize {
    match max_bits {
        0..=32 => 2,
        33..=256 => 3,
        257..=768 => 4,
        _ => 5,
    }
}

/// Fixed-base digit width: larger tables only pay off for longer exponents.
fn fixed_base_window(max_bits: usize) -> usize {
    match max_bits {
        0..=63 => 2,
        64..=255 => 3,
        256..=1023 => 4,
        _ => 5,
    }
}

/// Pads a canonical value (`< 2^(64·width)`) to a fixed-width little-endian limb vector.
fn to_fixed_width(v: &BigUint, width: usize) -> Vec<u64> {
    let mut out = v.limbs().to_vec();
    debug_assert!(out.len() <= width);
    out.resize(width, 0);
    out
}

/// Compares two equal-width little-endian limb slices.
fn cmp_fixed(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            std::cmp::Ordering::Equal => continue,
            ord => return ord,
        }
    }
    std::cmp::Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::mod_pow;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn rejects_invalid_moduli() {
        assert!(ModulusCtx::try_new(&BigUint::zero()).is_none());
        assert!(ModulusCtx::try_new(&BigUint::one()).is_none());
        assert!(ModulusCtx::try_new(&n(4096)).is_none());
        assert!(ModulusCtx::try_new(&n(3)).is_some());
    }

    #[test]
    #[should_panic(expected = "odd modulus greater than 1")]
    fn new_panics_on_even_modulus() {
        let _ = ModulusCtx::new(&n(10));
    }

    #[test]
    fn word_inverse_is_exact() {
        for x in [1u64, 3, 5, 0xFFFF_FFFF_FFFF_FFFF, 0x1234_5678_9ABC_DEF1] {
            assert_eq!(x.wrapping_mul(inv_mod_word(x)), 1);
        }
    }

    #[test]
    fn mont_roundtrip_small() {
        let ctx = ModulusCtx::new(&n(1_000_003));
        for v in [0u64, 1, 2, 999_999, 1_000_002] {
            let m = ctx.to_mont(&n(v));
            assert_eq!(ctx.from_mont(&m), n(v));
        }
        // values ≥ n are reduced on the way in
        assert_eq!(ctx.from_mont(&ctx.to_mont(&n(2_000_007))), n(1));
    }

    #[test]
    fn mont_mul_matches_mod_mul() {
        let mut rng = StdRng::seed_from_u64(1);
        for bits in [63usize, 64, 65, 128, 512] {
            let mut modulus = BigUint::random_with_bits(&mut rng, bits);
            if modulus.is_even() {
                modulus = modulus.add(&BigUint::one());
            }
            let ctx = ModulusCtx::new(&modulus);
            for _ in 0..10 {
                let a = BigUint::random_below(&mut rng, &modulus);
                let b = BigUint::random_below(&mut rng, &modulus);
                let product = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
                assert_eq!(product, a.mul(&b).rem(&modulus));
            }
        }
    }

    #[test]
    fn karatsuba_tier_matches_schoolbook_product() {
        // 2048- and 2368-bit moduli are ≥ KARATSUBA_MONT_MIN_LIMBS limbs wide, so
        // mont_mul_limbs takes the separated Karatsuba-product route; the result must
        // still be bitwise-identical to the generic reduction of the schoolbook product.
        let mut rng = StdRng::seed_from_u64(17);
        for bits in [2048usize, 2368] {
            let mut modulus = BigUint::random_with_bits(&mut rng, bits);
            if modulus.is_even() {
                modulus = modulus.add(&BigUint::one());
            }
            let ctx = ModulusCtx::new(&modulus);
            assert!(ctx.modulus().limbs().len() >= KARATSUBA_MONT_MIN_LIMBS);
            for _ in 0..4 {
                let a = BigUint::random_below(&mut rng, &modulus);
                let b = BigUint::random_below(&mut rng, &modulus);
                assert_eq!(ctx.mod_mul(&a, &b), a.mul(&b).rem(&modulus), "bits={bits}");
            }
            // edge values: 0, 1, n − 1
            let top = modulus.sub(&BigUint::one());
            assert_eq!(ctx.mod_mul(&BigUint::zero(), &top), BigUint::zero());
            assert_eq!(ctx.mod_mul(&BigUint::one(), &top), top);
            assert_eq!(ctx.mod_mul(&top, &top), top.mul(&top).rem(&modulus));
        }
    }

    #[test]
    fn mod_mul_matches_generic_helper() {
        let mut rng = StdRng::seed_from_u64(19);
        for bits in [128usize, 512, 2048] {
            let mut modulus = BigUint::random_with_bits(&mut rng, bits);
            if modulus.is_even() {
                modulus = modulus.add(&BigUint::one());
            }
            let ctx = ModulusCtx::new(&modulus);
            for _ in 0..3 {
                let a = BigUint::random_below(&mut rng, &modulus);
                let b = BigUint::random_below(&mut rng, &modulus);
                assert_eq!(ctx.mod_mul(&a, &b), crate::modular::mod_mul(&a, &b, &modulus));
            }
        }
    }

    #[test]
    fn mont_sqr_matches_mont_mul_of_self() {
        let mut rng = StdRng::seed_from_u64(11);
        for bits in [63usize, 64, 65, 128, 512, 1024] {
            let mut modulus = BigUint::random_with_bits(&mut rng, bits);
            if modulus.is_even() {
                modulus = modulus.add(&BigUint::one());
            }
            let ctx = ModulusCtx::new(&modulus);
            for _ in 0..10 {
                let a = BigUint::random_below(&mut rng, &modulus);
                let m = ctx.to_mont(&a);
                assert_eq!(ctx.mont_sqr(&m), ctx.mont_mul(&m, &m), "bits={bits}");
            }
            // edge values: 0, 1, n − 1
            for v in [BigUint::zero(), BigUint::one(), modulus.sub(&BigUint::one())] {
                let m = ctx.to_mont(&v);
                assert_eq!(ctx.mont_sqr(&m), ctx.mont_mul(&m, &m));
            }
        }
    }

    #[test]
    fn sqr_matches_mod_mul_of_self() {
        let ctx = ModulusCtx::new(&n(1_000_003));
        for v in [0u64, 1, 7, 999_999, 1_000_002, u64::MAX] {
            let a = n(v);
            assert_eq!(
                ctx.sqr(&a),
                crate::modular::mod_mul(
                    &a.rem(ctx.modulus()),
                    &a.rem(ctx.modulus()),
                    ctx.modulus()
                )
            );
        }
    }

    #[test]
    fn pow_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(2);
        for bits in [16usize, 64, 192, 512, 1024] {
            let mut modulus = BigUint::random_with_bits(&mut rng, bits);
            if modulus.is_even() {
                modulus = modulus.add(&BigUint::one());
            }
            let ctx = ModulusCtx::new(&modulus);
            for exp_bits in [1usize, 17, 64, 200] {
                let base = BigUint::random_below(&mut rng, &modulus);
                let exp = BigUint::random_with_bits(&mut rng, exp_bits);
                assert_eq!(
                    ctx.pow(&base, &exp),
                    mod_pow(&base, &exp, &modulus),
                    "bits={bits} exp_bits={exp_bits}"
                );
            }
        }
    }

    #[test]
    fn pow_edge_cases() {
        let ctx = ModulusCtx::new(&n(1_000_003));
        // 0^0 = 1, matching mod_pow's convention.
        assert_eq!(ctx.pow(&BigUint::zero(), &BigUint::zero()), BigUint::one());
        assert_eq!(ctx.pow(&BigUint::zero(), &n(5)), BigUint::zero());
        assert_eq!(ctx.pow(&n(7), &BigUint::zero()), BigUint::one());
        // base ≥ n is reduced first.
        assert_eq!(ctx.pow(&n(1_000_004), &n(2)), BigUint::one());
    }

    #[test]
    fn mod_pow_batch_matches_pointwise() {
        let mut rng = StdRng::seed_from_u64(3);
        let modulus = n(0xFFFF_FFFF_FFFF_FFC5); // largest 64-bit prime
        let ctx = ModulusCtx::new(&modulus);
        let pairs: Vec<(BigUint, BigUint)> = (0..16)
            .map(|_| {
                (BigUint::random_below(&mut rng, &modulus), BigUint::random_with_bits(&mut rng, 64))
            })
            .collect();
        let batch = ctx.mod_pow_batch(&pairs);
        for (out, (base, exp)) in batch.iter().zip(pairs.iter()) {
            assert_eq!(out, &mod_pow(base, exp, &modulus));
        }
    }

    #[test]
    fn multi_exp_matches_unfused_chain() {
        let mut rng = StdRng::seed_from_u64(5);
        for bits in [64usize, 192, 512] {
            let mut modulus = BigUint::random_with_bits(&mut rng, bits);
            if modulus.is_even() {
                modulus = modulus.add(&BigUint::one());
            }
            let ctx = ModulusCtx::new(&modulus);
            for k in [1usize, 2, 3, 7] {
                let pairs: Vec<(BigUint, BigUint)> = (0..k)
                    .map(|_| {
                        (
                            BigUint::random_below(&mut rng, &modulus),
                            BigUint::random_with_bits(&mut rng, bits / 2),
                        )
                    })
                    .collect();
                let mut expected = BigUint::one();
                for (base, exp) in &pairs {
                    expected =
                        crate::modular::mod_mul(&expected, &mod_pow(base, exp, &modulus), &modulus);
                }
                assert_eq!(ctx.multi_exp(&pairs), expected, "bits={bits} k={k}");
            }
        }
    }

    #[test]
    fn multi_exp_edge_cases() {
        let ctx = ModulusCtx::new(&n(1_000_003));
        // Empty product and all-zero exponents are the neutral element.
        assert_eq!(ctx.multi_exp(&[]), BigUint::one());
        assert_eq!(ctx.multi_exp(&[(n(7), BigUint::zero())]), BigUint::one());
        // Zero-exponent pairs drop out of a mixed product.
        assert_eq!(ctx.multi_exp(&[(n(7), n(2)), (n(12345), BigUint::zero())]), n(49));
        // Zero base annihilates, bases ≥ n are reduced.
        assert_eq!(ctx.multi_exp(&[(BigUint::zero(), n(3)), (n(7), n(2))]), BigUint::zero());
        assert_eq!(ctx.multi_exp(&[(n(1_000_004), n(2))]), BigUint::one());
        // Batch wrapper is pointwise.
        let groups = vec![vec![(n(2), n(10))], vec![(n(3), n(4)), (n(5), n(3))]];
        assert_eq!(ctx.multi_exp_batch(&groups), vec![n(1024), n(81 * 125)]);
    }

    #[test]
    fn fixed_base_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(4);
        for bits in [64usize, 256, 768] {
            let mut modulus = BigUint::random_with_bits(&mut rng, bits);
            if modulus.is_even() {
                modulus = modulus.add(&BigUint::one());
            }
            let ctx = Arc::new(ModulusCtx::new(&modulus));
            let base = BigUint::random_below(&mut rng, &modulus);
            let fixed = FixedBaseCtx::new(Arc::clone(&ctx), &base, bits);
            for exp_bits in [1usize, 8, bits / 2, bits] {
                let exp = BigUint::random_with_bits(&mut rng, exp_bits);
                assert_eq!(fixed.pow(&exp), mod_pow(&base, &exp, &modulus), "bits={bits}");
            }
            // exponent 0 and out-of-table-range exponents
            assert_eq!(fixed.pow(&BigUint::zero()), BigUint::one());
            let big_exp = BigUint::random_with_bits(&mut rng, bits + 64);
            assert_eq!(fixed.pow(&big_exp), mod_pow(&base, &big_exp, &modulus));
            // explicit window widths are bitwise-identical to the default pick
            for window in [1usize, 2, 7] {
                let wide = FixedBaseCtx::with_window(Arc::clone(&ctx), &base, bits, window);
                let exp = BigUint::random_with_bits(&mut rng, bits);
                assert_eq!(wide.pow(&exp), fixed.pow(&exp), "bits={bits} window={window}");
            }
        }
    }

    #[test]
    fn engine_disabled_matches_environment() {
        // Must hold both in the default harness (var unset → engine active) and under
        // a `ULDP_GENERIC_MODPOW=1 cargo test` fallback-verification run.
        let expected = matches!(
            std::env::var("ULDP_GENERIC_MODPOW").as_deref().map(str::trim),
            Ok("1") | Ok("true") | Ok("TRUE")
        );
        assert_eq!(engine_disabled(), expected);
    }

    #[test]
    fn estimated_table_bytes_matches_actual_table() {
        let modulus = BigUint::from_hex("f123456789abcdef123456789abcdef1").unwrap();
        let bits = modulus.bit_length();
        let ctx = Arc::new(ModulusCtx::new(&modulus));
        let fixed = FixedBaseCtx::new(Arc::clone(&ctx), &n(7), bits);
        let actual: usize = fixed.table.iter().map(|row| row.len() * row[0].limbs.len() * 8).sum();
        assert_eq!(FixedBaseCtx::estimated_table_bytes(bits, bits), actual);
    }
}
