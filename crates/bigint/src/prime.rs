//! Primality testing and random prime generation.
//!
//! Used by the Paillier key generation of the private weighting protocol (Protocol 1).
//! The Miller–Rabin test with 40 random rounds gives an error probability below `2^-80`,
//! which is standard practice for cryptographic prime generation.

use crate::biguint::BigUint;
use crate::modular::mod_pow;
use crate::montgomery::{engine_disabled, ModulusCtx};
use rand::Rng;

/// Default number of Miller–Rabin rounds (error probability below `4^-40`).
pub const DEFAULT_MILLER_RABIN_ROUNDS: usize = 40;

/// Small primes used for fast trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Probabilistic primality test (trial division + Miller–Rabin).
pub fn is_probably_prime<R: Rng + ?Sized>(rng: &mut R, n: &BigUint, rounds: usize) -> bool {
    if n < &BigUint::two() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p_big = BigUint::from_u64(p);
        if n == &p_big {
            return true;
        }
        if n.rem(&p_big).is_zero() {
            return false;
        }
    }
    miller_rabin(rng, n, rounds)
}

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// Assumes `n` is odd and larger than the small-prime table. One Montgomery context
/// ([`ModulusCtx`]) is shared across all witness bases, and the `x ← x²` witness chain
/// stays in Montgomery form throughout (equality against `1` and `n − 1` is checked in
/// the Montgomery domain, which is a bijection), so key generation pays the per-modulus
/// precomputation once per candidate instead of once per exponentiation.
pub fn miller_rabin<R: Rng + ?Sized>(rng: &mut R, n: &BigUint, rounds: usize) -> bool {
    let one = BigUint::one();
    let n_minus_1 = n.sub(&one);
    // Write n-1 = d * 2^r with d odd.
    let mut d = n_minus_1.clone();
    let mut r = 0usize;
    while d.is_even() {
        d = d.shr_bits(1);
        r += 1;
    }
    if engine_disabled() {
        return miller_rabin_generic(rng, n, rounds, &d, r, &n_minus_1);
    }
    let ctx = ModulusCtx::new(n);
    let one_m = ctx.one();
    let n_minus_1_m = ctx.to_mont(&n_minus_1);
    'witness: for _ in 0..rounds {
        // base in [2, n-2]
        let bound = n.sub(&BigUint::from_u64(3));
        let a = BigUint::random_below(rng, &bound).add(&BigUint::two());
        let mut x = ctx.pow_mont(&ctx.to_mont(&a), &d);
        if x == one_m || x == n_minus_1_m {
            continue 'witness;
        }
        for _ in 0..r.saturating_sub(1) {
            x = ctx.mont_sqr(&x);
            if x == n_minus_1_m {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// The schoolbook witness loop (`ULDP_GENERIC_MODPOW=1` fallback). Draws witnesses from
/// `rng` in exactly the same order as the Montgomery path, so both paths consume the RNG
/// identically and generate bit-identical primes.
fn miller_rabin_generic<R: Rng + ?Sized>(
    rng: &mut R,
    n: &BigUint,
    rounds: usize,
    d: &BigUint,
    r: usize,
    n_minus_1: &BigUint,
) -> bool {
    'witness: for _ in 0..rounds {
        let bound = n.sub(&BigUint::from_u64(3));
        let a = BigUint::random_below(rng, &bound).add(&BigUint::two());
        let mut x = mod_pow(&a, d, n);
        if x.is_one() || x == *n_minus_1 {
            continue 'witness;
        }
        for _ in 0..r.saturating_sub(1) {
            x = mod_pow(&x, &BigUint::two(), n);
            if x == *n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
pub fn generate_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 2, "a prime needs at least 2 bits");
    loop {
        let mut candidate = BigUint::random_with_bits(rng, bits);
        // Force odd.
        if candidate.is_even() {
            candidate = candidate.add(&BigUint::one());
            if candidate.bit_length() != bits {
                continue;
            }
        }
        if is_probably_prime(rng, &candidate, DEFAULT_MILLER_RABIN_ROUNDS) {
            return candidate;
        }
    }
}

/// Generates a safe prime `p = 2q + 1` (with `q` prime) with exactly `bits` bits.
///
/// Used when constructing custom Diffie–Hellman groups; RFC 3526 groups are preferred for
/// realistic key sizes because safe-prime generation is expensive.
pub fn generate_safe_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 3, "a safe prime needs at least 3 bits");
    loop {
        let q = generate_prime(rng, bits - 1);
        let p = q.shl_bits(1).add(&BigUint::one());
        if p.bit_length() == bits && is_probably_prime(rng, &p, DEFAULT_MILLER_RABIN_ROUNDS) {
            return p;
        }
    }
}

/// Generates two distinct primes of the given bit length (used by Paillier key generation).
pub fn generate_prime_pair<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> (BigUint, BigUint) {
    let p = generate_prime(rng, bits);
    loop {
        let q = generate_prime(rng, bits);
        if q != p {
            return (p, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_primes_detected() {
        let mut rng = StdRng::seed_from_u64(0);
        for p in [2u64, 3, 5, 7, 97, 251, 257, 65537, 1_000_000_007] {
            assert!(is_probably_prime(&mut rng, &BigUint::from_u64(p), 20), "{p} should be prime");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        for c in [0u64, 1, 4, 6, 9, 15, 21, 255, 561, 1105, 341, 1_000_000_008] {
            assert!(
                !is_probably_prime(&mut rng, &BigUint::from_u64(c), 20),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool the Fermat test but not Miller-Rabin.
        let mut rng = StdRng::seed_from_u64(1);
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 62745, 162401] {
            assert!(!is_probably_prime(&mut rng, &BigUint::from_u64(c), 20));
        }
    }

    #[test]
    fn generated_primes_have_requested_bits() {
        let mut rng = StdRng::seed_from_u64(5);
        for bits in [16usize, 32, 64, 128] {
            let p = generate_prime(&mut rng, bits);
            assert_eq!(p.bit_length(), bits);
            assert!(is_probably_prime(&mut rng, &p, 20));
        }
    }

    #[test]
    fn generated_prime_pair_distinct() {
        let mut rng = StdRng::seed_from_u64(6);
        let (p, q) = generate_prime_pair(&mut rng, 64);
        assert_ne!(p, q);
    }

    #[test]
    fn safe_prime_structure() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = generate_safe_prime(&mut rng, 32);
        assert_eq!(p.bit_length(), 32);
        let q = p.sub(&BigUint::one()).shr_bits(1);
        assert!(is_probably_prime(&mut rng, &q, 20));
    }

    #[test]
    fn product_of_two_primes_is_composite() {
        let mut rng = StdRng::seed_from_u64(8);
        let p = generate_prime(&mut rng, 48);
        let q = generate_prime(&mut rng, 48);
        assert!(!is_probably_prime(&mut rng, &p.mul(&q), 20));
    }
}
