//! # uldp-bigint
//!
//! Arbitrary-precision integer arithmetic used by the cryptographic substrate of the
//! Uldp-FL reproduction (Paillier cryptosystem, Diffie–Hellman key agreement, finite-field
//! masking and the fixed-point encoding of Protocol 1).
//!
//! The crate provides:
//!
//! * [`BigUint`] — an unsigned, little-endian, 64-bit-limb big integer with the full set of
//!   ring operations (add, sub, mul with Karatsuba, Knuth-D division, shifts, bit access).
//! * [`BigInt`] — a signed wrapper (sign + magnitude) used where subtraction may go
//!   negative (extended Euclid, fixed-point decoding).
//! * [`modular`] — modular add/sub/mul/pow/inverse on [`BigUint`].
//! * [`montgomery`] — the batched-exponentiation engine: [`montgomery::ModulusCtx`]
//!   (CIOS Montgomery multiplication with cached per-modulus constants, sliding-window
//!   `pow`, `mod_pow_batch`) and [`montgomery::FixedBaseCtx`] (per-base radix-2ʷ tables
//!   for one-base/many-exponent batches). Bitwise-identical to the schoolbook path.
//! * [`prime`] — Miller–Rabin primality testing and random prime generation (sharing
//!   one Montgomery context across all witness bases).
//! * Utility functions [`gcd`], [`lcm`], and [`lcm_up_to`] (the `C_LCM` constant of the
//!   paper's Protocol 1).
//!
//! Multiplication is schoolbook with a Karatsuba path for large operands. Modular
//! exponentiation has two paths: the plain square-and-multiply [`modular::mod_pow`]
//! (the reference the engine is verified against, and the fallback selected by
//! `ULDP_GENERIC_MODPOW=1`) and the Montgomery engine in [`montgomery`], which the
//! Paillier/Diffie–Hellman call sites in `uldp-crypto` use by default.

pub mod biguint;
pub mod modular;
pub mod montgomery;
pub mod prime;
pub mod signed;

pub use biguint::BigUint;
pub use signed::{BigInt, Sign};

/// Greatest common divisor of two big unsigned integers (binary-free Euclid).
pub fn gcd(a: &BigUint, b: &BigUint) -> BigUint {
    let mut a = a.clone();
    let mut b = b.clone();
    while !b.is_zero() {
        let r = a.rem(&b);
        a = b;
        b = r;
    }
    a
}

/// Least common multiple of two big unsigned integers.
///
/// Returns zero if either input is zero.
pub fn lcm(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() || b.is_zero() {
        return BigUint::zero();
    }
    let g = gcd(a, b);
    a.div(&g).mul(b)
}

/// Least common multiple of all integers in `1..=n`.
///
/// This is the `C_LCM` constant of Protocol 1 in the paper: with `N_max` the upper bound
/// on the number of records a single user may hold, `C_LCM = lcm(1, 2, ..., N_max)` makes
/// `C_LCM / N_u` an exact integer for every admissible per-user record count `N_u`.
pub fn lcm_up_to(n: u64) -> BigUint {
    let mut acc = BigUint::one();
    for i in 2..=n {
        acc = lcm(&acc, &BigUint::from_u64(i));
    }
    acc
}

/// Least common multiple of an explicit set of admissible record counts.
///
/// The paper notes that `C_LCM` grows roughly exponentially with `N_max`; restricting the
/// admissible per-user record counts to a small set (e.g. powers of ten) keeps it small.
pub fn lcm_of_set(values: &[u64]) -> BigUint {
    let mut acc = BigUint::one();
    for &v in values {
        if v == 0 {
            continue;
        }
        acc = lcm(&acc, &BigUint::from_u64(v));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_small() {
        assert_eq!(gcd(&BigUint::from_u64(54), &BigUint::from_u64(24)), BigUint::from_u64(6));
        assert_eq!(gcd(&BigUint::from_u64(17), &BigUint::from_u64(5)), BigUint::from_u64(1));
        assert_eq!(gcd(&BigUint::zero(), &BigUint::from_u64(7)), BigUint::from_u64(7));
    }

    #[test]
    fn lcm_small() {
        assert_eq!(lcm(&BigUint::from_u64(4), &BigUint::from_u64(6)), BigUint::from_u64(12));
        assert_eq!(lcm(&BigUint::zero(), &BigUint::from_u64(6)), BigUint::zero());
    }

    #[test]
    fn lcm_up_to_ten() {
        // lcm(1..=10) = 2520
        assert_eq!(lcm_up_to(10), BigUint::from_u64(2520));
        assert_eq!(lcm_up_to(1), BigUint::one());
    }

    #[test]
    fn lcm_of_set_powers_of_ten() {
        // lcm(10, 100, 1000) = 1000
        assert_eq!(lcm_of_set(&[10, 100, 1000]), BigUint::from_u64(1000));
    }

    #[test]
    fn lcm_up_to_grows() {
        let a = lcm_up_to(20);
        let b = lcm_up_to(30);
        assert!(a < b);
        // lcm(1..=20) = 232792560
        assert_eq!(a, BigUint::from_u64(232_792_560));
    }
}
