//! Property tests pinning the Montgomery engine to the schoolbook reference.
//!
//! Over random odd moduli up to 2048 bits, `ModulusCtx::pow`, `mod_pow_batch` and
//! `FixedBaseCtx::pow` must agree bit for bit with `modular::mod_pow` — this is the
//! invariant that makes the engine a drop-in for the Paillier/DH/Miller–Rabin call
//! sites without perturbing any ciphertext or key. Edge cases (exponent zero, base
//! larger than the modulus, modulus-one rejection) ride along as unit tests.

use proptest::prelude::*;
use std::sync::Arc;
use uldp_bigint::modular::mod_pow;
use uldp_bigint::montgomery::{FixedBaseCtx, ModulusCtx};
use uldp_bigint::BigUint;

/// Builds an odd modulus `> 1` from arbitrary limbs (up to 2048 bits).
fn odd_modulus(limbs: &[u64]) -> BigUint {
    let mut n = BigUint::from_limbs(limbs.to_vec());
    if n.is_even() {
        n = n.add(&BigUint::one());
    }
    if n.is_one() || n.is_zero() {
        n = BigUint::from_u64(3);
    }
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pow_matches_schoolbook_mod_pow(
        mod_limbs in prop::collection::vec(any::<u64>(), 1..32),
        base_limbs in prop::collection::vec(any::<u64>(), 1..33),
        exp_limbs in prop::collection::vec(any::<u64>(), 1..32),
    ) {
        let n = odd_modulus(&mod_limbs);
        // base may exceed the modulus: the engine must reduce it like mod_pow does
        let base = BigUint::from_limbs(base_limbs);
        let exp = BigUint::from_limbs(exp_limbs);
        let ctx = ModulusCtx::new(&n);
        prop_assert_eq!(ctx.pow(&base, &exp), mod_pow(&base, &exp, &n));
    }

    #[test]
    fn mod_pow_batch_matches_schoolbook(
        mod_limbs in prop::collection::vec(any::<u64>(), 1..16),
        pair_seeds in prop::collection::vec((any::<u64>(), any::<u64>()), 1..8),
    ) {
        let n = odd_modulus(&mod_limbs);
        let ctx = ModulusCtx::new(&n);
        let pairs: Vec<(BigUint, BigUint)> = pair_seeds
            .iter()
            .map(|&(b, e)| (BigUint::from_u64(b), BigUint::from_u64(e)))
            .collect();
        let batch = ctx.mod_pow_batch(&pairs);
        prop_assert_eq!(batch.len(), pairs.len());
        for (out, (base, exp)) in batch.iter().zip(pairs.iter()) {
            prop_assert_eq!(out, &mod_pow(base, exp, &n));
        }
    }

    #[test]
    fn fixed_base_matches_schoolbook(
        mod_limbs in prop::collection::vec(any::<u64>(), 1..32),
        base_limbs in prop::collection::vec(any::<u64>(), 1..32),
        exp_limbs in prop::collection::vec(any::<u64>(), 1..16),
    ) {
        let n = odd_modulus(&mod_limbs);
        let base = BigUint::from_limbs(base_limbs);
        let exp = BigUint::from_limbs(exp_limbs);
        let ctx = Arc::new(ModulusCtx::new(&n));
        let fixed = FixedBaseCtx::new(Arc::clone(&ctx), &base, 16 * 64);
        prop_assert_eq!(fixed.pow(&exp), mod_pow(&base, &exp, &n));
    }

    #[test]
    fn multi_exp_matches_unfused_chain(
        mod_limbs in prop::collection::vec(any::<u64>(), 1..32),
        pair_limbs in prop::collection::vec(
            (prop::collection::vec(any::<u64>(), 1..33), prop::collection::vec(any::<u64>(), 0..16)),
            1..6,
        ),
    ) {
        // The interleaved ladder must agree bit for bit with the unfused
        // pow-then-mod_mul product at every k ≥ 1 (k = 1 degenerates to a plain pow;
        // empty exponent limb vectors exercise the exp = 0 edge) up to 2048-bit moduli.
        let n = odd_modulus(&mod_limbs);
        let ctx = ModulusCtx::new(&n);
        let pairs: Vec<(BigUint, BigUint)> = pair_limbs
            .iter()
            .map(|(b, e)| (BigUint::from_limbs(b.clone()), BigUint::from_limbs(e.clone())))
            .collect();
        let mut unfused = BigUint::one().rem(&n);
        for (base, exp) in &pairs {
            unfused = uldp_bigint::modular::mod_mul(&unfused, &mod_pow(base, exp, &n), &n);
        }
        prop_assert_eq!(ctx.multi_exp(&pairs), unfused);
    }

    #[test]
    fn mont_sqr_is_pinned_to_mont_mul_of_self(
        mod_limbs in prop::collection::vec(any::<u64>(), 1..32),
        value_limbs in prop::collection::vec(any::<u64>(), 1..33),
    ) {
        // The dedicated squaring (halved cross products + separated reduction) must be a
        // bit-exact drop-in for the generic CIOS product of a value with itself — this is
        // what lets the sliding-window pow ladder use it without perturbing any
        // ciphertext.
        let n = odd_modulus(&mod_limbs);
        let v = BigUint::from_limbs(value_limbs);
        let ctx = ModulusCtx::new(&n);
        let m = ctx.to_mont(&v);
        prop_assert_eq!(ctx.mont_sqr(&m), ctx.mont_mul(&m, &m));
        prop_assert_eq!(ctx.sqr(&v), uldp_bigint::modular::mod_mul(&v.rem(&n), &v.rem(&n), &n));
    }

    #[test]
    fn mont_roundtrip_is_identity(
        mod_limbs in prop::collection::vec(any::<u64>(), 1..32),
        value_limbs in prop::collection::vec(any::<u64>(), 1..32),
    ) {
        let n = odd_modulus(&mod_limbs);
        let v = BigUint::from_limbs(value_limbs);
        let ctx = ModulusCtx::new(&n);
        prop_assert_eq!(ctx.from_mont(&ctx.to_mont(&v)), v.rem(&n));
    }
}

#[test]
fn exponent_zero_yields_one() {
    let n = BigUint::from_u64(1_000_003);
    let ctx = ModulusCtx::new(&n);
    assert_eq!(ctx.pow(&BigUint::from_u64(12345), &BigUint::zero()), BigUint::one());
    // 0^0 = 1, matching mod_pow's convention.
    assert_eq!(ctx.pow(&BigUint::zero(), &BigUint::zero()), BigUint::one());
    let fixed = FixedBaseCtx::new(Arc::new(ModulusCtx::new(&n)), &BigUint::from_u64(7), 64);
    assert_eq!(fixed.pow(&BigUint::zero()), BigUint::one());
}

#[test]
fn base_larger_than_modulus_is_reduced() {
    let n = BigUint::from_u64(1_000_003);
    let ctx = ModulusCtx::new(&n);
    let base = BigUint::from_u128(u128::MAX);
    let exp = BigUint::from_u64(17);
    assert_eq!(ctx.pow(&base, &exp), mod_pow(&base, &exp, &n));
}

#[test]
fn modulus_one_and_even_moduli_are_rejected() {
    assert!(ModulusCtx::try_new(&BigUint::one()).is_none());
    assert!(ModulusCtx::try_new(&BigUint::zero()).is_none());
    assert!(ModulusCtx::try_new(&BigUint::from_u64(2)).is_none());
    assert!(ModulusCtx::try_new(&BigUint::from_u64(1 << 20)).is_none());
    assert!(ModulusCtx::try_new(&BigUint::from_u64(3)).is_some());
}
