//! Micro-benchmark: dedicated Montgomery squaring vs the generic CIOS product of a
//! value with itself, across modulus sizes.
//!
//! The sliding-window `pow` ladder is dominated by squarings, so this ratio is the
//! expected gain on the exponentiation hot path. Results are asserted bit-identical
//! while being timed. Single-core numbers on shared machines are noisy — prefer the
//! median of a few runs.
//!
//! ```bash
//! cargo run --release -p uldp-bigint --example sqr_bench
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use uldp_bigint::montgomery::ModulusCtx;
use uldp_bigint::BigUint;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    for bits in [512usize, 1024, 2048, 4096] {
        let mut n = BigUint::random_with_bits(&mut rng, bits);
        if n.is_even() {
            n = n.add(&BigUint::one());
        }
        let ctx = ModulusCtx::new(&n);
        let x = ctx.to_mont(&BigUint::random_below(&mut rng, &n));
        // Keep total work roughly constant across sizes (cost grows ~quadratically).
        let iters = 200_000_000 / (bits * bits / 64);
        let t = Instant::now();
        let mut a = x.clone();
        for _ in 0..iters {
            a = ctx.mont_mul(&a, &a);
        }
        let mul = t.elapsed();
        let t = Instant::now();
        let mut b = x.clone();
        for _ in 0..iters {
            b = ctx.mont_sqr(&b);
        }
        let sqr = t.elapsed();
        assert_eq!(a, b, "squaring chain must match the mul(x, x) chain bit for bit");
        println!(
            "bits={bits}: {iters} iters | mul(x,x) {mul:?} | sqr {sqr:?} | ratio {:.2}x",
            mul.as_secs_f64() / sqr.as_secs_f64()
        );
    }
}
