//! Cheap, high-quality seed derivation.
//!
//! All parallel code in the workspace derives per-task RNGs from a base seed and a task
//! index through these functions, so results are a pure function of `(seed, index)` and
//! never of thread scheduling. The finalizer is SplitMix64 (Steele et al., "Fast
//! splittable pseudorandom number generators"), which is a bijection on `u64` with full
//! avalanche — two derived seeds collide only if their inputs collide.

/// The SplitMix64 finalizer: a bijective mix of all 64 bits.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent stream seed from a base seed and a domain tag.
///
/// Use distinct tags for distinct purposes within one round (e.g. per-user training vs.
/// per-silo noise) so the streams never overlap.
#[inline]
pub fn mix(seed: u64, tag: u64) -> u64 {
    splitmix64(seed ^ splitmix64(tag))
}

/// The seed for task `index` of a parallel region seeded with `seed`:
/// `splitmix64(seed ^ hash(index))`.
///
/// [`crate::Runtime::par_map_seeded`] feeds this to `StdRng::seed_from_u64`, which makes
/// every index's RNG bitwise-identical at any thread count.
#[inline]
pub fn index_seed(seed: u64, index: u64) -> u64 {
    splitmix64(seed ^ splitmix64(index.wrapping_mul(0xD1B5_4A32_D192_ED03)))
}

/// A 256-bit base seed for a parallel region, as four words drawn from the caller's RNG.
///
/// A [`WideSeed`] region preserves the full entropy of its source RNG, unlike the
/// `u64`-seeded primitives, which cap a region at 64 bits — fine for simulation noise,
/// not for encryption randomness.
pub type WideSeed = [u64; 4];

/// Draws a [`WideSeed`] from `rng` (four sequential words).
#[inline]
pub fn wide_seed_from_rng<R: rand::Rng + ?Sized>(rng: &mut R) -> WideSeed {
    [rng.gen(), rng.gen(), rng.gen(), rng.gen()]
}

/// Derives the 256-bit RNG seed for task `index` of a region seeded with `seed`.
///
/// Each lane is mixed bijectively with a lane-tagged hash of the index, so for a fixed
/// index the map from `seed` to the derived seed is a bijection on 256 bits (entropy
/// preserving), and distinct indices yield unrelated seeds.
/// [`crate::Runtime::par_map_wide_seeded`] feeds this to `StdRng::from_seed`.
#[inline]
pub fn index_seed_wide(seed: WideSeed, index: u64) -> [u8; 32] {
    let h = splitmix64(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    let mut out = [0u8; 32];
    for (lane, word) in seed.iter().enumerate() {
        let tag = splitmix64(h ^ (lane as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        let mixed = splitmix64(word ^ tag);
        out[lane * 8..(lane + 1) * 8].copy_from_slice(&mixed.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_injective_on_a_sample() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)));
        }
    }

    #[test]
    fn index_seeds_differ_per_index_and_per_seed() {
        assert_ne!(index_seed(1, 0), index_seed(1, 1));
        assert_ne!(index_seed(1, 0), index_seed(2, 0));
        assert_eq!(index_seed(7, 3), index_seed(7, 3));
    }

    #[test]
    fn tags_separate_streams() {
        assert_ne!(mix(42, 0), mix(42, 1));
        assert_ne!(mix(42, 0), mix(43, 0));
    }

    #[test]
    fn wide_seeds_differ_per_index_per_lane_and_per_seed() {
        let base: WideSeed = [1, 2, 3, 4];
        assert_ne!(index_seed_wide(base, 0), index_seed_wide(base, 1));
        assert_ne!(index_seed_wide(base, 0), index_seed_wide([1, 2, 3, 5], 0));
        assert_eq!(index_seed_wide(base, 7), index_seed_wide(base, 7));
        // identical lane words must not produce identical lane outputs
        let out = index_seed_wide([9, 9, 9, 9], 0);
        assert_ne!(out[0..8], out[8..16]);
    }
}
