//! The persistent worker pool behind [`crate::Runtime`].
//!
//! Workers are plain `std::thread`s blocking on a shared `mpsc` channel of boxed jobs.
//! Batches of borrowed closures are executed through [`Pool::run_tasks`], which blocks the
//! submitting thread until every task of the batch has finished; this join-before-return
//! guarantee is what makes the (single, documented) lifetime transmute below sound, the
//! same contract `std::thread::scope` enforces.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use uldp_telemetry::{metrics, trace};

/// A type-erased unit of work owned by the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// Set while a pool worker is executing jobs. Parallel primitives consult this to run
    /// nested regions inline instead of re-submitting to the pool (which could otherwise
    /// leave every worker blocked waiting for queue slots that only workers can drain).
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is one of the pool's workers.
pub(crate) fn on_worker_thread() -> bool {
    IS_WORKER.with(|w| w.get())
}

/// Holds the pool-occupancy gauge up for the duration of one job; the drop-based
/// decrement keeps the gauge balanced even when the job unwinds.
struct OccupancyGuard;

impl OccupancyGuard {
    fn new() -> OccupancyGuard {
        metrics::POOL_OCCUPANCY.add(1);
        OccupancyGuard
    }
}

impl Drop for OccupancyGuard {
    fn drop(&mut self) {
        metrics::POOL_OCCUPANCY.sub(1);
    }
}

/// Runs one pool task with telemetry: queue-wait and execution histograms, the job
/// counter, the occupancy gauge and a `pool_job` span. `enqueued` was captured at
/// submission time (only when tracing was on, so the untraced path never reads the
/// clock).
fn run_traced(task: impl FnOnce(), enqueued: Option<Instant>) {
    let Some(enqueued) = enqueued else {
        task();
        return;
    };
    metrics::JOB_QUEUE_US.record_us(enqueued.elapsed().as_micros() as u64);
    metrics::POOL_JOBS.inc();
    let _occupancy = OccupancyGuard::new();
    let span = trace::span("runtime", "pool_job");
    task();
    metrics::JOB_EXEC_US.record_us(span.finish().as_micros() as u64);
}

/// Completion state shared between one `run_tasks` batch and its jobs.
///
/// Lives in an `Arc` so a worker may still touch it after the submitting thread has been
/// woken and returned; only the *user closures* borrow the caller's stack, and those have
/// all finished before the final decrement.
struct Completion {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

pub(crate) struct Pool {
    sender: Mutex<Option<Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Pool {
    /// Spawns `threads` workers (at least one).
    pub(crate) fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("uldp-runtime-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("failed to spawn runtime worker")
            })
            .collect();
        Pool { sender: Mutex::new(Some(sender)), workers: Mutex::new(workers) }
    }

    /// Runs a batch of tasks on the pool and blocks until all of them have completed.
    ///
    /// Panics from tasks are re-raised on the calling thread after the whole batch has
    /// drained (never before, so borrowed state stays alive for the full batch).
    pub(crate) fn run_tasks<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if tasks.is_empty() {
            return;
        }
        let completion = Arc::new(Completion {
            remaining: Mutex::new(tasks.len()),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        {
            // Everything from the first submission to the join below must be panic-free
            // on this thread — an unwind before the join would free the `'env` stack frame
            // while queued jobs still borrow it. Hence every lock in this region recovers
            // from poisoning instead of panicking, and a failed send runs the returned job
            // inline. (The shut-down expect sits before any submission, where panicking is
            // still sound.)
            let sender = self.sender.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let sender = sender.as_ref().expect("pool already shut down");
            let traced = uldp_telemetry::enabled();
            for task in tasks {
                let completion = Arc::clone(&completion);
                // Captured before the send so queue wait starts at submission. Telemetry
                // recording itself never unwinds (locks recover from poisoning), so the
                // panic-free contract of this region is preserved.
                let enqueued = traced.then(Instant::now);
                let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(|| run_traced(task, enqueued)));
                    if let Err(payload) = outcome {
                        completion
                            .panic
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .get_or_insert(payload);
                    }
                    let mut remaining = completion
                        .remaining
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    *remaining -= 1;
                    if *remaining == 0 {
                        completion.done.notify_all();
                    }
                });
                // SAFETY: this thread blocks below until `remaining` hits zero, which only
                // happens after every task closure has finished running (the decrement is
                // strictly after the user closure returns or unwinds). No code between
                // here and that join can unwind on this thread (see the region comment),
                // so the borrowed environment outlives every use, exactly as in
                // `std::thread::scope`; the transmute only erases the `'env` lifetime.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
                if let Err(returned) = sender.send(job) {
                    // Workers are gone (catastrophic); run the job inline so the batch
                    // still completes and the counter still reaches zero.
                    (returned.0)();
                }
            }
        }
        let mut remaining =
            completion.remaining.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while *remaining > 0 {
            remaining =
                completion.done.wait(remaining).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        drop(remaining);
        let payload =
            completion.panic.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Closing the channel makes every worker's `recv` fail and the loop exit.
        self.sender.lock().expect("pool sender poisoned").take();
        for handle in self.workers.lock().expect("pool workers poisoned").drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    IS_WORKER.with(|w| w.set(true));
    loop {
        // The lock is held across the blocking recv (mpsc receivers are not Sync), so
        // idle workers queue on the mutex and hand-off is serialized one pop at a time;
        // the guard drops before `job()` runs, so execution itself is concurrent.
        let job = match receiver.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // channel closed: pool is shutting down
        }
    }
}
