//! Bounded, order-preserving handoff queue for pipelined stage overlap.
//!
//! [`Handoff`] connects a producer stage to a consumer stage with a fixed number of
//! in-flight slots. Items carry a sequence number chosen by the producer (the round
//! index in the protocol pipeline) and are delivered strictly in push order, so the
//! completion order of the downstream stage is fixed by sequence number — never by
//! thread timing. The queue itself holds no randomness and performs no arithmetic;
//! it can only reorder *when* work happens, not *what* it computes.
//!
//! Backpressure is the double-buffering contract: with capacity `d`, the producer can
//! run at most `d` items ahead of the consumer before `push` blocks. Either side may
//! [`Handoff::close`] the queue — a closed queue rejects new pushes (returning `false`)
//! and lets the consumer drain what remains before `pop` returns `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A bounded FIFO channel whose delivery order is fixed by producer sequence numbers.
pub struct Handoff<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

struct State<T> {
    queue: VecDeque<(u64, T)>,
    closed: bool,
    last_seq: Option<u64>,
}

impl<T> Handoff<T> {
    /// Creates a handoff with `capacity` in-flight slots (clamped to at least one).
    pub fn new(capacity: usize) -> Self {
        Handoff {
            state: Mutex::new(State { queue: VecDeque::new(), closed: false, last_seq: None }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The number of in-flight slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues `(seq, item)`, blocking while all slots are full.
    ///
    /// Sequence numbers must be strictly increasing across pushes — that is what pins
    /// the consumer's completion order to the producer's round order. Returns `false`
    /// (dropping the item) if the queue was closed, which a producer should treat as
    /// "the consumer died early".
    pub fn push(&self, seq: u64, item: T) -> bool {
        let mut state = self.state.lock().expect("handoff lock poisoned");
        while state.queue.len() == self.capacity && !state.closed {
            state = self.not_full.wait(state).expect("handoff lock poisoned");
        }
        if state.closed {
            return false;
        }
        assert!(
            state.last_seq.is_none_or(|last| seq > last),
            "handoff sequence numbers must be strictly increasing (pushed {seq} after {:?})",
            state.last_seq
        );
        state.last_seq = Some(seq);
        state.queue.push_back((seq, item));
        drop(state);
        self.not_empty.notify_one();
        true
    }

    /// Dequeues the oldest item, blocking while the queue is empty and open.
    ///
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<(u64, T)> {
        let mut state = self.state.lock().expect("handoff lock poisoned");
        loop {
            if let Some(entry) = state.queue.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(entry);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("handoff lock poisoned");
        }
    }

    /// Dequeues the oldest item if one is ready, without blocking.
    pub fn try_pop(&self) -> Option<(u64, T)> {
        let mut state = self.state.lock().expect("handoff lock poisoned");
        let entry = state.queue.pop_front();
        drop(state);
        if entry.is_some() {
            self.not_full.notify_one();
        }
        entry
    }

    /// Closes the queue: pending items stay poppable, new pushes are rejected, and
    /// blocked producers/consumers wake up. Idempotent.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("handoff lock poisoned");
        state.closed = true;
        drop(state);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

/// Closes a [`Handoff`] when dropped.
///
/// A pipeline consumer holds one guard per queue it touches so that a panic mid-stage
/// closes both ends instead of deadlocking the producer against a full queue.
pub struct CloseOnDrop<'a, T>(pub &'a Handoff<T>);

impl<T> Drop for CloseOnDrop<'_, T> {
    fn drop(&mut self) {
        self.0.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn delivers_items_in_push_order() {
        let q: Handoff<u64> = Handoff::new(3);
        for seq in 0..3 {
            assert!(q.push(seq, seq * 10));
        }
        q.close();
        let drained: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![(0, 0), (1, 10), (2, 20)]);
        assert_eq!(q.pop(), None, "closed and drained");
    }

    #[test]
    fn push_blocks_until_a_slot_frees() {
        let q: Handoff<usize> = Handoff::new(1);
        assert!(q.push(0, 0));
        let pushed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                assert!(q.push(1, 1));
                pushed.store(1, Ordering::SeqCst);
            });
            // The queue is full, so the second push must park until we pop.
            std::thread::sleep(Duration::from_millis(50));
            assert_eq!(pushed.load(Ordering::SeqCst), 0, "push returned with no free slot");
            assert_eq!(q.pop(), Some((0, 0)));
        });
        assert_eq!(pushed.load(Ordering::SeqCst), 1);
        assert_eq!(q.pop(), Some((1, 1)));
    }

    #[test]
    fn close_rejects_new_pushes_and_unblocks_pop() {
        let q: Handoff<usize> = Handoff::new(2);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // Parked in pop() on the empty queue until close() wakes it.
                assert_eq!(q.pop(), None);
            });
            std::thread::sleep(Duration::from_millis(20));
            q.close();
        });
        assert!(!q.push(0, 7), "closed queue must reject pushes");
    }

    #[test]
    fn close_on_drop_guard_closes_the_queue() {
        let q: Handoff<usize> = Handoff::new(1);
        {
            let _guard = CloseOnDrop(&q);
        }
        assert!(!q.push(0, 1));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotonic_sequence_numbers_panic() {
        let q: Handoff<usize> = Handoff::new(4);
        q.push(5, 0);
        q.push(5, 1);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let q: Handoff<usize> = Handoff::new(0);
        assert_eq!(q.capacity(), 1);
    }
}
