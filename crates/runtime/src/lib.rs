//! # uldp-runtime
//!
//! A deterministic parallel execution substrate for the Uldp-FL workspace.
//!
//! Every compute-heavy layer of the reproduction — the per-round training loops in
//! `uldp-core`, the Paillier hot path of Protocol 1, and the batch primitives in
//! `uldp-crypto` — runs on one persistent worker pool instead of spawning ad-hoc OS
//! threads per call site. The pool exposes three primitives, all of which produce results
//! that are **bitwise-identical at any thread count**:
//!
//! * [`Runtime::par_map`] / [`Runtime::par_map_range`] — chunked, order-preserving
//!   parallel map over a slice / index range.
//! * [`Runtime::par_map_seeded`] — like `par_map_range`, but every index additionally
//!   receives its own `StdRng` derived from `splitmix64(seed ^ hash(index))`
//!   ([`seeding::index_seed`]), so randomised work is a pure function of `(seed, index)`.
//!   [`Runtime::par_map_wide_seeded`] is the 256-bit-seed variant for security-relevant
//!   randomness (encryption randomizers), preserving the source RNG's full entropy.
//! * [`Runtime::par_reduce`] — a fixed-shape binary tree reduction whose shape depends
//!   only on the input length, never on scheduling.
//!
//! ## Sizing
//!
//! [`Runtime::global`] sizes the shared pool from the `ULDP_THREADS` environment variable
//! when set (a positive integer; `1` disables parallelism entirely), falling back to
//! [`std::thread::available_parallelism`]. Components that want an explicit size (e.g.
//! `FlConfig::threads` / `ProtocolConfig::threads`) build their own handle with
//! [`Runtime::handle`].
//!
//! ## Nesting
//!
//! Calling a parallel primitive from inside a pool task runs the nested region inline on
//! the current worker. This keeps nested parallel code deadlock-free (workers never block
//! on work only workers can drain) without changing results — determinism never depends
//! on where a task runs.

pub mod seeding;

mod pool;

use pool::Pool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex, OnceLock};

/// Name of the environment variable that overrides the global pool size.
pub const THREADS_ENV: &str = "ULDP_THREADS";

/// How many chunks each worker gets on average in a `par_map`; > 1 smooths imbalance
/// between chunks without making per-chunk overhead noticeable.
const CHUNKS_PER_THREAD: usize = 4;

/// A handle to a persistent worker pool with deterministic parallel primitives.
///
/// `Runtime` is usually shared as `Arc<Runtime>`; a runtime with one thread executes
/// everything inline (no pool is spawned), which is the reference behaviour all parallel
/// runs must reproduce bit-for-bit.
pub struct Runtime {
    threads: usize,
    pool: Option<Pool>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime").field("threads", &self.threads).finish()
    }
}

impl Runtime {
    /// Creates a runtime with exactly `threads` workers (`0` and `1` both mean inline
    /// sequential execution).
    pub fn new(threads: usize) -> Runtime {
        let threads = threads.max(1);
        let pool = if threads > 1 { Some(Pool::new(threads)) } else { None };
        Runtime { threads, pool }
    }

    /// Resolves a configured thread count to a runtime handle: `0` means "auto" (the
    /// shared [`Runtime::global`] pool), anything else builds a dedicated pool.
    pub fn handle(threads: usize) -> Arc<Runtime> {
        if threads == 0 {
            Runtime::global()
        } else {
            Arc::new(Runtime::new(threads))
        }
    }

    /// The process-wide shared runtime, sized from `ULDP_THREADS` or the machine's
    /// available parallelism on first use.
    pub fn global() -> Arc<Runtime> {
        static GLOBAL: OnceLock<Arc<Runtime>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(Runtime::new(threads_from_env()))))
    }

    /// Number of worker threads this runtime uses (`1` = inline sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Order-preserving parallel map over `0..n`.
    ///
    /// Results are identical to `(0..n).map(f).collect()` at any thread count.
    pub fn par_map_range<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let Some(pool) = self.usable_pool(n) else {
            return (0..n).map(f).collect();
        };
        // Chunked: each task computes a contiguous index range into its own slot, so the
        // output order is the input order regardless of which worker ran what.
        let ranges = chunk_ranges(n, self.threads * CHUNKS_PER_THREAD);
        let slots: Vec<Mutex<Vec<U>>> = ranges.iter().map(|_| Mutex::new(Vec::new())).collect();
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
            .iter()
            .zip(slots.iter())
            .map(|(range, slot)| {
                let range = range.clone();
                Box::new(move || {
                    let out: Vec<U> = range.map(f).collect();
                    *slot.lock().expect("chunk slot poisoned") = out;
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_tasks(tasks);
        slots.into_iter().flat_map(|slot| slot.into_inner().expect("chunk slot poisoned")).collect()
    }

    /// Order-preserving parallel map over a slice; `f` receives `(index, &item)`.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        self.par_map_range(items.len(), |i| f(i, &items[i]))
    }

    /// Order-preserving parallel map over `0..n` where index `i` receives a fresh
    /// `StdRng` seeded with [`seeding::index_seed`]`(seed, i)`.
    ///
    /// Because the RNG is a pure function of `(seed, index)`, the output is
    /// bitwise-identical at any thread count — the deterministic replacement for handing a
    /// shared RNG to a parallel loop.
    pub fn par_map_seeded<U, F>(&self, n: usize, seed: u64, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize, &mut StdRng) -> U + Sync,
    {
        self.par_map_range(n, |i| {
            let mut rng = StdRng::seed_from_u64(seeding::index_seed(seed, i as u64));
            f(i, &mut rng)
        })
    }

    /// Like [`Runtime::par_map_seeded`], but with a 256-bit base seed: index `i` receives
    /// a fresh `StdRng` built with `StdRng::from_seed` from
    /// [`seeding::index_seed_wide`]`(seed, i)`.
    ///
    /// Use this where the RNG feeds security-relevant randomness (e.g. encryption
    /// randomizers): the derivation preserves the base seed's full 256 bits of entropy,
    /// while remaining bitwise-identical at any thread count.
    pub fn par_map_wide_seeded<U, F>(&self, n: usize, seed: seeding::WideSeed, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize, &mut StdRng) -> U + Sync,
    {
        self.par_map_range(n, |i| {
            let mut rng = StdRng::from_seed(seeding::index_seed_wide(seed, i as u64));
            f(i, &mut rng)
        })
    }

    /// Fixed-shape binary tree reduction: pairs adjacent elements level by level until one
    /// remains. Returns `None` for an empty input.
    ///
    /// The reduction shape depends only on `items.len()`, so for any `combine` (even a
    /// non-associative one) the result is identical at any thread count; for associative
    /// operations it also equals the sequential fold.
    pub fn par_reduce<T, F>(&self, mut items: Vec<T>, combine: F) -> Option<T>
    where
        T: Send,
        F: Fn(T, T) -> T + Sync,
    {
        while items.len() > 1 {
            let leftover = if items.len() % 2 == 1 { items.pop() } else { None };
            let pairs: Vec<(T, T)> = {
                let mut drain = items.drain(..);
                let mut out = Vec::new();
                while let (Some(a), Some(b)) = (drain.next(), drain.next()) {
                    out.push((a, b));
                }
                out
            };
            let mut next = self.par_map_consume(pairs, |(a, b)| combine(a, b));
            next.extend(leftover);
            items = next;
        }
        items.pop()
    }

    /// Parallel map that consumes its inputs (used by [`Runtime::par_reduce`] to move
    /// operands into `combine`).
    fn par_map_consume<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        if self.usable_pool(items.len()).is_none() {
            return items.into_iter().map(f).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        self.par_map(&slots, |_, slot| {
            let item = slot.lock().expect("reduce slot poisoned").take().expect("item taken twice");
            f(item)
        })
    }

    /// The pool to use for a region of `n` items, or `None` when the region should run
    /// inline (sequential runtime, trivial size, or already on a worker thread).
    fn usable_pool(&self, n: usize) -> Option<&Pool> {
        if n < 2 || pool::on_worker_thread() {
            return None;
        }
        self.pool.as_ref()
    }
}

/// Reads the pool size from `ULDP_THREADS`, falling back to available parallelism.
///
/// A set-but-invalid value falls back too, with a warning — a silently ignored typo
/// would make e.g. a 1-vs-N determinism check compare two identically-sized pools.
fn threads_from_env() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!(
                    "warning: ignoring invalid {THREADS_ENV}={raw:?}; \
                     using available parallelism"
                );
                available_threads()
            }
        },
        Err(_) => available_threads(),
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

/// Splits `0..n` into at most `max_chunks` contiguous ranges of near-equal size.
fn chunk_ranges(n: usize, max_chunks: usize) -> Vec<std::ops::Range<usize>> {
    let chunks = max_chunks.clamp(1, n.max(1));
    let base = n / chunks;
    let extra = n % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn par_map_preserves_order() {
        let rt = Runtime::new(4);
        let out = rt.par_map_range(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        let items: Vec<u32> = (0..17).collect();
        let doubled = rt.par_map(&items, |i, &x| (i as u32, x * 2));
        assert_eq!(doubled.len(), 17);
        assert!(doubled.iter().enumerate().all(|(i, &(j, v))| i as u32 == j && v == 2 * i as u32));
    }

    #[test]
    fn par_map_matches_sequential_runtime() {
        let seq = Runtime::new(1);
        let par = Runtime::new(3);
        let a = seq.par_map_range(33, |i| i as f64 * 0.1);
        let b = par.par_map_range(33, |i| i as f64 * 0.1);
        assert_eq!(a, b);
    }

    #[test]
    fn seeded_map_is_bitwise_identical_across_thread_counts() {
        let draws = |threads: usize| {
            Runtime::new(threads).par_map_seeded(64, 99, |i, rng| (i, rng.gen::<u64>()))
        };
        let one = draws(1);
        assert_eq!(one, draws(2));
        assert_eq!(one, draws(7));
        // distinct indices draw from distinct streams
        assert_ne!(one[0].1, one[1].1);
    }

    #[test]
    fn wide_seeded_map_is_bitwise_identical_across_thread_counts() {
        let seed: seeding::WideSeed = [3, 1, 4, 1];
        let draws = |threads: usize| {
            Runtime::new(threads).par_map_wide_seeded(32, seed, |i, rng| (i, rng.gen::<u64>()))
        };
        let one = draws(1);
        assert_eq!(one, draws(2));
        assert_eq!(one, draws(5));
        assert_ne!(one[0].1, one[1].1);
        // a different base seed changes every stream
        let other =
            Runtime::new(1).par_map_wide_seeded(32, [3, 1, 4, 2], |_, rng| rng.gen::<u64>());
        assert_ne!(one[0].1, other[0]);
    }

    #[test]
    fn par_reduce_shape_is_thread_count_independent() {
        // String concatenation is non-associative-in-shape: any shape difference shows up
        // in the bracketing.
        let bracketed = |threads: usize, n: usize| {
            let items: Vec<String> = (0..n).map(|i| i.to_string()).collect();
            Runtime::new(threads).par_reduce(items, |a, b| format!("({a}{b})")).unwrap_or_default()
        };
        for n in [1usize, 2, 3, 5, 8, 13] {
            assert_eq!(bracketed(1, n), bracketed(4, n), "shape differs for n = {n}");
        }
    }

    #[test]
    fn par_reduce_sums_correctly() {
        let rt = Runtime::new(4);
        let total = rt.par_reduce((1..=100u64).collect(), |a, b| a + b);
        assert_eq!(total, Some(5050));
        assert_eq!(rt.par_reduce(Vec::<u64>::new(), |a, b| a + b), None);
        assert_eq!(rt.par_reduce(vec![42u64], |a, b| a + b), Some(42));
    }

    #[test]
    fn nested_parallel_regions_run_inline_without_deadlock() {
        let rt = Runtime::new(2);
        let out = rt.par_map_range(8, |i| {
            // A nested region on the same (global-free) runtime must not deadlock; it runs
            // inline on the worker.
            Runtime::global().par_map_range(4, |j| i * 10 + j).iter().sum::<usize>()
        });
        assert_eq!(out.len(), 8);
        assert_eq!(out[1], 10 + 11 + 12 + 13);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let rt = Runtime::new(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.par_map_range(16, |i| {
                if i == 11 {
                    panic!("boom at 11");
                }
                i
            })
        }));
        assert!(result.is_err());
        // the pool survives a panicked batch
        assert_eq!(rt.par_map_range(4, |i| i).len(), 4);
    }

    #[test]
    fn handle_resolves_zero_to_global() {
        let auto = Runtime::handle(0);
        assert!(auto.threads() >= 1);
        let fixed = Runtime::handle(3);
        assert_eq!(fixed.threads(), 3);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 2, 7, 16, 100] {
            for chunks in [1usize, 3, 8, 200] {
                let ranges = chunk_ranges(n, chunks);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
            }
        }
    }
}
