//! # uldp-runtime
//!
//! A deterministic parallel execution substrate for the Uldp-FL workspace.
//!
//! Every compute-heavy layer of the reproduction — the per-round training loops in
//! `uldp-core`, the Paillier hot path of Protocol 1, and the batch primitives in
//! `uldp-crypto` — runs on one persistent worker pool instead of spawning ad-hoc OS
//! threads per call site. The pool exposes three primitives, all of which produce results
//! that are **bitwise-identical at any thread count**:
//!
//! * [`Runtime::par_map`] / [`Runtime::par_map_range`] — chunked, order-preserving
//!   parallel map over a slice / index range.
//! * [`Runtime::par_map_seeded`] — like `par_map_range`, but every index additionally
//!   receives its own `StdRng` derived from `splitmix64(seed ^ hash(index))`
//!   ([`seeding::index_seed`]), so randomised work is a pure function of `(seed, index)`.
//!   [`Runtime::par_map_wide_seeded`] is the 256-bit-seed variant for security-relevant
//!   randomness (encryption randomizers), preserving the source RNG's full entropy.
//! * [`Runtime::par_reduce`] — a fixed-shape binary tree reduction whose shape depends
//!   only on the input length, never on scheduling.
//! * [`Runtime::par_fold_reduce`] / [`Runtime::par_fold_seeded`] — streaming chunked
//!   folds: `0..n` is split into **fixed-size chunks whose shape depends only on
//!   `(n, chunk_size)`**, never on the thread count; each chunk folds its indices into
//!   one accumulator in index order (no per-task value is ever materialised), and the
//!   chunk partials combine left-to-right in chunk order. Transient memory is
//!   O(chunks × accumulator) instead of O(n × item). [`Runtime::par_fold_ranges`] is
//!   the underlying span-level building block for callers (e.g. the sharded round
//!   engine in `uldp-core`) that derive their own chunk grid.
//!
//! ## Sizing
//!
//! [`Runtime::global`] sizes the shared pool from the `ULDP_THREADS` environment variable
//! when set (a positive integer; `1` disables parallelism entirely), falling back to
//! [`std::thread::available_parallelism`]. Components that want an explicit size (e.g.
//! `FlConfig::threads` / `ProtocolConfig::threads`) build their own handle with
//! [`Runtime::handle`].
//!
//! ## Nesting
//!
//! Calling a parallel primitive from inside a pool task runs the nested region inline on
//! the current worker. This keeps nested parallel code deadlock-free (workers never block
//! on work only workers can drain) without changing results — determinism never depends
//! on where a task runs.

pub mod handoff;
pub mod seeding;

mod pool;

pub use handoff::{CloseOnDrop, Handoff};
use pool::Pool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex, OnceLock};

/// Name of the environment variable that overrides the global pool size.
pub const THREADS_ENV: &str = "ULDP_THREADS";

/// Name of the environment variable that overrides the default streaming-fold chunk size
/// (a positive number of tasks per chunk) for components left at `chunk_size = 0`.
///
/// Chunk shape never affects the *structure-invariant* call sites (exact integer /
/// modular accumulation, or the exact fixed-point delta accumulation in `uldp-core`);
/// it only trades transient memory (O(chunks × accumulator)) against load-balancing
/// granularity.
pub const CHUNK_ENV: &str = "ULDP_CHUNK";

/// Name of the kill-switch for pipelined round execution. Set to `0`, `false` or `off`
/// to force the sequential reference path everywhere; any other value (or unset) keeps
/// the pipeline on. The pipeline only reorders when work happens — results are bitwise
/// identical either way — so the switch exists for A/B timing and for bisecting.
pub const PIPELINE_ENV: &str = "ULDP_PIPELINE";

/// Name of the environment variable that overrides the pipeline depth (the number of
/// rounds the fold stage may run ahead of the decrypt stage) for components left at
/// `pipeline_depth = 0`. Must be a positive integer.
pub const PIPELINE_DEPTH_ENV: &str = "ULDP_PIPELINE_DEPTH";

/// Default number of in-flight rounds between the fold and decrypt stages: classic
/// double buffering — one round being decrypted while the next is being folded.
pub const DEFAULT_PIPELINE_DEPTH: usize = 2;

/// How many chunks each worker gets on average in a `par_map`; > 1 smooths imbalance
/// between chunks without making per-chunk overhead noticeable.
const CHUNKS_PER_THREAD: usize = 4;

/// A handle to a persistent worker pool with deterministic parallel primitives.
///
/// `Runtime` is usually shared as `Arc<Runtime>`; a runtime with one thread executes
/// everything inline (no pool is spawned), which is the reference behaviour all parallel
/// runs must reproduce bit-for-bit.
pub struct Runtime {
    threads: usize,
    pool: Option<Pool>,
    fold_gauge: MemoryGauge,
}

/// Records the transient accumulator footprint of streaming-fold regions.
///
/// Fold call sites report the bytes of chunk partials a region keeps alive
/// ([`MemoryGauge::record`]); benchmarks read the per-round peak to turn the
/// "O(chunks × dim) instead of O(tasks × dim)" claim into a measured number. The counts
/// are analytic (spans × accumulator size), so they are identical at any thread count.
#[derive(Debug, Default)]
pub struct MemoryGauge {
    last: std::sync::atomic::AtomicUsize,
    peak: std::sync::atomic::AtomicUsize,
}

impl MemoryGauge {
    /// Records the live accumulator bytes of one fold region.
    ///
    /// Also republishes the reading on the `runtime.fold_bytes` telemetry gauge, so
    /// traced runs see fold footprints alongside spans without polling the gauge.
    pub fn record(&self, bytes: usize) {
        use std::sync::atomic::Ordering::Relaxed;
        self.last.store(bytes, Relaxed);
        self.peak.fetch_max(bytes, Relaxed);
        uldp_telemetry::metrics::FOLD_BYTES.set(bytes as u64);
    }

    /// The bytes recorded by the most recent fold region.
    pub fn last(&self) -> usize {
        self.last.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The largest bytes recorded since the last [`MemoryGauge::reset`].
    pub fn peak(&self) -> usize {
        self.peak.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Clears both readings (call before the region of interest, e.g. one round).
    pub fn reset(&self) {
        use std::sync::atomic::Ordering::Relaxed;
        self.last.store(0, Relaxed);
        self.peak.store(0, Relaxed);
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime").field("threads", &self.threads).finish()
    }
}

impl Runtime {
    /// Creates a runtime with exactly `threads` workers (`0` and `1` both mean inline
    /// sequential execution).
    pub fn new(threads: usize) -> Runtime {
        let threads = threads.max(1);
        let pool = if threads > 1 { Some(Pool::new(threads)) } else { None };
        Runtime { threads, pool, fold_gauge: MemoryGauge::default() }
    }

    /// Resolves a configured thread count to a runtime handle: `0` means "auto" (the
    /// shared [`Runtime::global`] pool), anything else builds a dedicated pool.
    pub fn handle(threads: usize) -> Arc<Runtime> {
        if threads == 0 {
            Runtime::global()
        } else {
            Arc::new(Runtime::new(threads))
        }
    }

    /// The process-wide shared runtime, sized from `ULDP_THREADS` or the machine's
    /// available parallelism on first use.
    pub fn global() -> Arc<Runtime> {
        static GLOBAL: OnceLock<Arc<Runtime>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(Runtime::new(threads_from_env()))))
    }

    /// Number of worker threads this runtime uses (`1` = inline sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The gauge recording the transient accumulator footprint of streaming folds run on
    /// this runtime.
    pub fn fold_gauge(&self) -> &MemoryGauge {
        &self.fold_gauge
    }

    /// Order-preserving parallel map over `0..n`.
    ///
    /// Results are identical to `(0..n).map(f).collect()` at any thread count.
    pub fn par_map_range<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        if n == 0 {
            // Empty regions must not touch the pool's job queue at all.
            return Vec::new();
        }
        let Some(pool) = self.usable_pool(n) else {
            return (0..n).map(f).collect();
        };
        // Chunked: each task computes a contiguous index range into its own slot, so the
        // output order is the input order regardless of which worker ran what.
        let ranges = chunk_ranges(n, self.threads * CHUNKS_PER_THREAD);
        let slots: Vec<Mutex<Vec<U>>> = ranges.iter().map(|_| Mutex::new(Vec::new())).collect();
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
            .iter()
            .zip(slots.iter())
            .map(|(range, slot)| {
                let range = range.clone();
                Box::new(move || {
                    let out: Vec<U> = range.map(f).collect();
                    *slot.lock().expect("chunk slot poisoned") = out;
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_tasks(tasks);
        slots.into_iter().flat_map(|slot| slot.into_inner().expect("chunk slot poisoned")).collect()
    }

    /// Order-preserving parallel map over a slice; `f` receives `(index, &item)`.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        self.par_map_range(items.len(), |i| f(i, &items[i]))
    }

    /// Order-preserving parallel map over `0..n` where index `i` receives a fresh
    /// `StdRng` seeded with [`seeding::index_seed`]`(seed, i)`.
    ///
    /// Because the RNG is a pure function of `(seed, index)`, the output is
    /// bitwise-identical at any thread count — the deterministic replacement for handing a
    /// shared RNG to a parallel loop.
    pub fn par_map_seeded<U, F>(&self, n: usize, seed: u64, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize, &mut StdRng) -> U + Sync,
    {
        self.par_map_range(n, |i| {
            let mut rng = StdRng::seed_from_u64(seeding::index_seed(seed, i as u64));
            f(i, &mut rng)
        })
    }

    /// Like [`Runtime::par_map_seeded`], but with a 256-bit base seed: index `i` receives
    /// a fresh `StdRng` built with `StdRng::from_seed` from
    /// [`seeding::index_seed_wide`]`(seed, i)`.
    ///
    /// Use this where the RNG feeds security-relevant randomness (e.g. encryption
    /// randomizers): the derivation preserves the base seed's full 256 bits of entropy,
    /// while remaining bitwise-identical at any thread count.
    pub fn par_map_wide_seeded<U, F>(&self, n: usize, seed: seeding::WideSeed, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize, &mut StdRng) -> U + Sync,
    {
        self.par_map_range(n, |i| {
            let mut rng = StdRng::from_seed(seeding::index_seed_wide(seed, i as u64));
            f(i, &mut rng)
        })
    }

    /// Fixed-shape binary tree reduction: pairs adjacent elements level by level until one
    /// remains. Returns `None` for an empty input.
    ///
    /// The reduction shape depends only on `items.len()`, so for any `combine` (even a
    /// non-associative one) the result is identical at any thread count; for associative
    /// operations it also equals the sequential fold.
    pub fn par_reduce<T, F>(&self, mut items: Vec<T>, combine: F) -> Option<T>
    where
        T: Send,
        F: Fn(T, T) -> T + Sync,
    {
        while items.len() > 1 {
            let leftover = if items.len() % 2 == 1 { items.pop() } else { None };
            let pairs: Vec<(T, T)> = {
                let mut drain = items.drain(..);
                let mut out = Vec::new();
                while let (Some(a), Some(b)) = (drain.next(), drain.next()) {
                    out.push((a, b));
                }
                out
            };
            let mut next = self.par_map_consume(pairs, |(a, b)| combine(a, b));
            next.extend(leftover);
            items = next;
        }
        items.pop()
    }

    /// Streaming fold over caller-provided index spans: each span folds its indices, in
    /// order, into one fresh accumulator, and the per-span partials are returned in span
    /// order. Spans run as independent pooled tasks.
    ///
    /// This is the building block of [`Runtime::par_fold_reduce`] and of callers that
    /// derive their own span grid (e.g. the sharded round engine in `uldp-core`). Because
    /// the partials depend only on the spans — never on which worker ran what — the
    /// result is bitwise-identical at any thread count. An empty span list returns
    /// immediately without touching the pool.
    pub fn par_fold_ranges<A, I, F>(
        &self,
        ranges: &[std::ops::Range<usize>],
        init: I,
        fold: F,
    ) -> Vec<A>
    where
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(&mut A, usize) + Sync,
    {
        if ranges.is_empty() {
            return Vec::new();
        }
        let run_range = |range: &std::ops::Range<usize>| {
            // One span per fold chunk: traced runs see every chunk of every streaming
            // fold (training shards, protocol cell chunks) as its own slice.
            let _span = uldp_telemetry::trace::span("runtime", "fold_chunk")
                .arg("start", range.start)
                .arg("len", range.len());
            let mut acc = init();
            for i in range.clone() {
                fold(&mut acc, i);
            }
            acc
        };
        let Some(pool) = self.usable_pool(ranges.len()) else {
            return ranges.iter().map(run_range).collect();
        };
        let slots: Vec<Mutex<Option<A>>> = ranges.iter().map(|_| Mutex::new(None)).collect();
        let run_range = &run_range;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
            .iter()
            .zip(slots.iter())
            .map(|(range, slot)| {
                Box::new(move || {
                    let partial = run_range(range);
                    *slot.lock().expect("fold slot poisoned") = Some(partial);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_tasks(tasks);
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().expect("fold slot poisoned").expect("fold partial missing")
            })
            .collect()
    }

    /// Streaming chunked fold over `0..n`: the indices are split into fixed-size chunks
    /// of `chunk_size` ([`fold_chunk_ranges`] — the grid depends only on
    /// `(n, chunk_size)`, never on the thread count), each chunk folds its indices in
    /// order into a fresh accumulator, and the chunk partials combine left-to-right in
    /// chunk order. Returns `None` for `n == 0` without touching the pool.
    ///
    /// Transient memory is O(chunks × accumulator) — the streaming replacement for
    /// "materialise one value per index, then reduce". For an exact `combine` (integer,
    /// modular, or fixed-point accumulation) the result is additionally identical for
    /// *any* chunk size; for floating-point accumulators only the thread-count invariance
    /// holds, exactly as with [`Runtime::par_map_seeded`].
    pub fn par_fold_reduce<A, I, F, G>(
        &self,
        n: usize,
        chunk_size: usize,
        init: I,
        fold: F,
        combine: G,
    ) -> Option<A>
    where
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(&mut A, usize) + Sync,
        G: Fn(A, A) -> A,
    {
        if n == 0 {
            return None;
        }
        let ranges = fold_chunk_ranges(n, chunk_size);
        self.par_fold_ranges(&ranges, init, fold).into_iter().reduce(combine)
    }

    /// Like [`Runtime::par_fold_reduce`], but index `i` additionally receives a fresh
    /// `StdRng` seeded with [`seeding::index_seed`]`(seed, i)` — the same derivation as
    /// [`Runtime::par_map_seeded`], so every index's randomness is a pure function of
    /// `(seed, index)`, independent of thread count *and* of the chunk grid.
    pub fn par_fold_seeded<A, I, F, G>(
        &self,
        n: usize,
        chunk_size: usize,
        seed: u64,
        init: I,
        fold: F,
        combine: G,
    ) -> Option<A>
    where
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(&mut A, usize, &mut StdRng) + Sync,
        G: Fn(A, A) -> A,
    {
        self.par_fold_reduce(
            n,
            chunk_size,
            init,
            |acc, i| {
                let mut rng = StdRng::seed_from_u64(seeding::index_seed(seed, i as u64));
                fold(acc, i, &mut rng);
            },
            combine,
        )
    }

    /// Parallel map that consumes its inputs (used by [`Runtime::par_reduce`] to move
    /// operands into `combine`).
    fn par_map_consume<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        if self.usable_pool(items.len()).is_none() {
            return items.into_iter().map(f).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        self.par_map(&slots, |_, slot| {
            let item = slot.lock().expect("reduce slot poisoned").take().expect("item taken twice");
            f(item)
        })
    }

    /// The pool to use for a region of `n` items, or `None` when the region should run
    /// inline (sequential runtime, trivial size, or already on a worker thread).
    ///
    /// The `threads < 2` arm is deliberately explicit even though a 1-thread runtime
    /// never constructs a pool: dispatching to a hypothetical 1-worker pool would pay
    /// cross-thread hand-off for zero parallelism, and the inline path is the
    /// bit-for-bit reference all pooled runs must reproduce anyway.
    fn usable_pool(&self, n: usize) -> Option<&Pool> {
        if self.threads < 2 || n < 2 || pool::on_worker_thread() {
            return None;
        }
        self.pool.as_ref()
    }
}

/// Reads the pool size from `ULDP_THREADS`, falling back to available parallelism.
///
/// A set-but-invalid value falls back too, with a warning — a silently ignored typo
/// would make e.g. a 1-vs-N determinism check compare two identically-sized pools.
fn threads_from_env() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!(
                    "warning: ignoring invalid {THREADS_ENV}={raw:?}; \
                     using available parallelism"
                );
                available_threads()
            }
        },
        Err(_) => available_threads(),
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

/// The fixed chunk grid of a streaming fold: `0..n` split into `⌈n / chunk_size⌉`
/// contiguous ranges of exactly `chunk_size` indices (the last one smaller).
///
/// The grid depends only on `(n, chunk_size)` — never on the thread count — which is
/// what makes [`Runtime::par_fold_reduce`] bitwise-identical at any pool size.
/// `chunk_size = 0` and `chunk_size ≥ n` both yield a single chunk.
pub fn fold_chunk_ranges(n: usize, chunk_size: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let chunk = if chunk_size == 0 { n } else { chunk_size.min(n) };
    (0..n).step_by(chunk).map(|start| start..(start + chunk).min(n)).collect()
}

/// Resolves a configured fold chunk size: a non-zero configuration wins, otherwise the
/// `ULDP_CHUNK` environment variable (a positive integer), otherwise `default_chunk`.
///
/// Mirrors how `ULDP_THREADS` backs `threads = 0`, so every component exposes the same
/// "0 = auto" convention for its chunk knob.
pub fn resolve_chunk_size(configured: usize, default_chunk: usize) -> usize {
    if configured != 0 {
        return configured;
    }
    match std::env::var(CHUNK_ENV) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("warning: ignoring invalid {CHUNK_ENV}={raw:?}; using the default");
                default_chunk
            }
        },
        Err(_) => default_chunk,
    }
}

/// Whether pipelined round execution is enabled process-wide (the `ULDP_PIPELINE`
/// kill-switch). Cached after the first read, like the engine toggles in `uldp-crypto`.
pub fn pipeline_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var(PIPELINE_ENV) {
        Ok(raw) => !matches!(raw.trim(), "0" | "false" | "FALSE" | "off" | "OFF"),
        Err(_) => true,
    })
}

/// Resolves a configured pipeline depth into an effective one: `0` when the
/// `ULDP_PIPELINE` kill-switch disables overlap, otherwise a non-zero configuration
/// wins, otherwise `ULDP_PIPELINE_DEPTH`, otherwise [`DEFAULT_PIPELINE_DEPTH`].
///
/// A return of `0` means "run the sequential reference path"; callers must not treat
/// it as an unbounded queue.
pub fn resolve_pipeline_depth(configured: usize) -> usize {
    if !pipeline_enabled() {
        return 0;
    }
    if configured != 0 {
        return configured;
    }
    match std::env::var(PIPELINE_DEPTH_ENV) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!(
                    "warning: ignoring invalid {PIPELINE_DEPTH_ENV}={raw:?}; using the default"
                );
                DEFAULT_PIPELINE_DEPTH
            }
        },
        Err(_) => DEFAULT_PIPELINE_DEPTH,
    }
}

/// Splits `0..n` into at most `max_chunks` contiguous ranges of near-equal size.
fn chunk_ranges(n: usize, max_chunks: usize) -> Vec<std::ops::Range<usize>> {
    let chunks = max_chunks.clamp(1, n.max(1));
    let base = n / chunks;
    let extra = n % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn par_map_preserves_order() {
        let rt = Runtime::new(4);
        let out = rt.par_map_range(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        let items: Vec<u32> = (0..17).collect();
        let doubled = rt.par_map(&items, |i, &x| (i as u32, x * 2));
        assert_eq!(doubled.len(), 17);
        assert!(doubled.iter().enumerate().all(|(i, &(j, v))| i as u32 == j && v == 2 * i as u32));
    }

    #[test]
    fn par_map_matches_sequential_runtime() {
        let seq = Runtime::new(1);
        let par = Runtime::new(3);
        let a = seq.par_map_range(33, |i| i as f64 * 0.1);
        let b = par.par_map_range(33, |i| i as f64 * 0.1);
        assert_eq!(a, b);
    }

    #[test]
    fn seeded_map_is_bitwise_identical_across_thread_counts() {
        let draws = |threads: usize| {
            Runtime::new(threads).par_map_seeded(64, 99, |i, rng| (i, rng.gen::<u64>()))
        };
        let one = draws(1);
        assert_eq!(one, draws(2));
        assert_eq!(one, draws(7));
        // distinct indices draw from distinct streams
        assert_ne!(one[0].1, one[1].1);
    }

    #[test]
    fn wide_seeded_map_is_bitwise_identical_across_thread_counts() {
        let seed: seeding::WideSeed = [3, 1, 4, 1];
        let draws = |threads: usize| {
            Runtime::new(threads).par_map_wide_seeded(32, seed, |i, rng| (i, rng.gen::<u64>()))
        };
        let one = draws(1);
        assert_eq!(one, draws(2));
        assert_eq!(one, draws(5));
        assert_ne!(one[0].1, one[1].1);
        // a different base seed changes every stream
        let other =
            Runtime::new(1).par_map_wide_seeded(32, [3, 1, 4, 2], |_, rng| rng.gen::<u64>());
        assert_ne!(one[0].1, other[0]);
    }

    #[test]
    fn par_reduce_shape_is_thread_count_independent() {
        // String concatenation is non-associative-in-shape: any shape difference shows up
        // in the bracketing.
        let bracketed = |threads: usize, n: usize| {
            let items: Vec<String> = (0..n).map(|i| i.to_string()).collect();
            Runtime::new(threads).par_reduce(items, |a, b| format!("({a}{b})")).unwrap_or_default()
        };
        for n in [1usize, 2, 3, 5, 8, 13] {
            assert_eq!(bracketed(1, n), bracketed(4, n), "shape differs for n = {n}");
        }
    }

    #[test]
    fn par_reduce_sums_correctly() {
        let rt = Runtime::new(4);
        let total = rt.par_reduce((1..=100u64).collect(), |a, b| a + b);
        assert_eq!(total, Some(5050));
        assert_eq!(rt.par_reduce(Vec::<u64>::new(), |a, b| a + b), None);
        assert_eq!(rt.par_reduce(vec![42u64], |a, b| a + b), Some(42));
    }

    #[test]
    fn nested_parallel_regions_run_inline_without_deadlock() {
        let rt = Runtime::new(2);
        let out = rt.par_map_range(8, |i| {
            // A nested region on the same (global-free) runtime must not deadlock; it runs
            // inline on the worker.
            Runtime::global().par_map_range(4, |j| i * 10 + j).iter().sum::<usize>()
        });
        assert_eq!(out.len(), 8);
        assert_eq!(out[1], 10 + 11 + 12 + 13);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let rt = Runtime::new(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.par_map_range(16, |i| {
                if i == 11 {
                    panic!("boom at 11");
                }
                i
            })
        }));
        assert!(result.is_err());
        // the pool survives a panicked batch
        assert_eq!(rt.par_map_range(4, |i| i).len(), 4);
    }

    #[test]
    fn handle_resolves_zero_to_global() {
        let auto = Runtime::handle(0);
        assert!(auto.threads() >= 1);
        let fixed = Runtime::handle(3);
        assert_eq!(fixed.threads(), 3);
    }

    #[test]
    fn empty_regions_do_not_touch_the_pool() {
        // Regression test for the n == 0 fast path: with every worker wedged on a
        // long-running batch, an empty region on the *same* runtime must still return
        // immediately — it may not enqueue anything behind the blocked jobs.
        let rt = Arc::new(Runtime::new(2));
        let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let guard = std::thread::spawn({
            let rt = Arc::clone(&rt);
            let release = Arc::clone(&release);
            move || {
                rt.par_map_range(2, |_| {
                    while !release.load(std::sync::atomic::Ordering::Relaxed) {
                        std::thread::yield_now();
                    }
                });
            }
        });
        // Give the blocking batch time to occupy both workers.
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(rt.par_map_range(0, |i| i), Vec::<usize>::new());
        let empty_fold = rt.par_fold_reduce(0, 4, || 0u64, |acc, i| *acc += i as u64, |a, b| a + b);
        assert_eq!(empty_fold, None);
        assert!(rt.par_fold_ranges(&[], || 0u64, |_, _| {}).is_empty());
        release.store(true, std::sync::atomic::Ordering::Relaxed);
        guard.join().expect("blocking batch completes");
    }

    #[test]
    fn fold_chunk_ranges_have_fixed_size() {
        assert!(fold_chunk_ranges(0, 4).is_empty());
        assert_eq!(fold_chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(fold_chunk_ranges(3, 0), vec![0..3]);
        assert_eq!(fold_chunk_ranges(3, usize::MAX), vec![0..3]);
        for n in [1usize, 2, 7, 16, 100] {
            for chunk in [1usize, 3, 7, 200] {
                let ranges = fold_chunk_ranges(n, chunk);
                assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), n);
                assert!(ranges.iter().all(|r| r.len() <= chunk.max(1)));
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
            }
        }
    }

    #[test]
    fn fold_reduce_matches_sequential_fold_for_exact_ops() {
        // Integer accumulation is exact, so every (threads, chunk) combination must give
        // the sequential left-fold result bit for bit.
        let expected: u64 = (0..97u64).map(|i| i * i).sum();
        for threads in [1usize, 2, 5] {
            let rt = Runtime::new(threads);
            for chunk in [1usize, 7, 32, usize::MAX] {
                let total = rt.par_fold_reduce(
                    97,
                    chunk,
                    || 0u64,
                    |acc, i| *acc += (i as u64) * (i as u64),
                    |a, b| a + b,
                );
                assert_eq!(total, Some(expected), "threads={threads} chunk={chunk}");
            }
        }
    }

    #[test]
    fn fold_partials_follow_the_chunk_grid_at_any_thread_count() {
        // Chunk boundaries come from (n, chunk_size) only: the string partials expose
        // them directly, so any scheduling dependence shows up as a different grouping.
        let folds = |threads: usize| {
            Runtime::new(threads).par_fold_ranges(
                &fold_chunk_ranges(7, 3),
                String::new,
                |acc, i| acc.push_str(&i.to_string()),
            )
        };
        let one = folds(1);
        assert_eq!(one, vec!["012".to_string(), "345".to_string(), "6".to_string()]);
        assert_eq!(one, folds(4));
    }

    #[test]
    fn fold_seeded_rng_streams_are_chunk_and_thread_invariant() {
        // Wrapping adds are exact, so the fold over per-index RNG draws must be identical
        // across every (threads, chunk) combination — and must equal the draws the seeded
        // *map* produces for the same (seed, index) pairs.
        let via_map: u64 = Runtime::new(1)
            .par_map_seeded(23, 77, |_, rng| rng.gen::<u64>())
            .into_iter()
            .fold(0u64, u64::wrapping_add);
        for threads in [1usize, 3] {
            let rt = Runtime::new(threads);
            for chunk in [1usize, 5, usize::MAX] {
                let total = rt
                    .par_fold_seeded(
                        23,
                        chunk,
                        77,
                        || 0u64,
                        |acc, _, rng| *acc = acc.wrapping_add(rng.gen::<u64>()),
                        u64::wrapping_add,
                    )
                    .unwrap();
                assert_eq!(total, via_map, "threads={threads} chunk={chunk}");
            }
        }
    }

    #[test]
    fn memory_gauge_tracks_last_and_peak() {
        let rt = Runtime::new(1);
        let gauge = rt.fold_gauge();
        assert_eq!((gauge.last(), gauge.peak()), (0, 0));
        gauge.record(100);
        gauge.record(40);
        assert_eq!((gauge.last(), gauge.peak()), (40, 100));
        gauge.reset();
        assert_eq!((gauge.last(), gauge.peak()), (0, 0));
    }

    #[test]
    fn resolve_chunk_size_prefers_explicit_configuration() {
        // Only the configured-value path is testable without mutating the process
        // environment (racy with concurrently running tests).
        assert_eq!(resolve_chunk_size(5, 16), 5);
        if std::env::var(CHUNK_ENV).is_err() {
            assert_eq!(resolve_chunk_size(0, 16), 16);
        }
    }

    #[test]
    fn resolve_pipeline_depth_prefers_explicit_configuration() {
        // As with the chunk knob, only the configured-value path is testable without
        // mutating the process environment.
        if pipeline_enabled() {
            assert_eq!(resolve_pipeline_depth(3), 3);
            if std::env::var(PIPELINE_DEPTH_ENV).is_err() {
                assert_eq!(resolve_pipeline_depth(0), DEFAULT_PIPELINE_DEPTH);
            }
        } else {
            assert_eq!(resolve_pipeline_depth(3), 0, "kill-switch overrides configuration");
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 2, 7, 16, 100] {
            for chunks in [1usize, 3, 8, 200] {
                let ranges = chunk_ranges(n, chunks);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
            }
        }
    }
}
