//! # uldp-core
//!
//! The Uldp-FL framework: **cross-silo federated learning with across-silo user-level
//! differential privacy**, reproducing Kato et al. (VLDB 2024).
//!
//! The crate implements the full algorithm suite of the paper:
//!
//! * **DEFAULT** — non-private FedAVG with two-sided learning rates (the utility upper
//!   bound in the figures).
//! * **ULDP-NAIVE** (Algorithm 1) — per-silo delta clipping with noise scaled to the
//!   `C·|S|` user-level sensitivity.
//! * **ULDP-GROUP-k** (Algorithm 2) — per-silo DP-SGD plus the group-privacy conversion,
//!   with contribution-bounding flags `B`.
//! * **ULDP-AVG / ULDP-SGD** (Algorithm 3) — per-user weighted clipping inside each silo,
//!   directly bounding user-level sensitivity to `C`.
//! * **ULDP-AVG-w** — the enhanced weighting strategy `w_{s,u} = n_{s,u} / N_u` (Eq. 3).
//! * **User-level sub-sampling** (Algorithm 4) — Poisson sampling of users per round for
//!   RDP amplification.
//! * **Protocol 1** — the private weighting protocol combining Paillier encryption,
//!   Diffie–Hellman-derived pairwise masks (secure aggregation) and multiplicative
//!   blinding, so that neither the server nor other silos learn any silo's per-user record
//!   histogram while still computing the enhanced weights.
//!
//! Entry point: [`trainer::Trainer`]. Configure a run with [`config::FlConfig`], pick a
//! [`config::Method`], and call [`trainer::Trainer::run`]; the returned
//! [`trainer::TrainingHistory`] carries per-round utility and the accumulated ULDP ε.

pub mod aggregation;
pub mod algorithms;
pub mod attack;
pub mod config;
pub mod protocol;
pub mod sampling;
pub mod scenario;
pub mod silo;
pub mod trainer;
pub mod weighting;

pub use config::{FlConfig, GroupSize, Method, WeightingStrategy};
pub use protocol::{
    ObliviousSubsampling, PrivateWeightingProtocol, ProtocolConfig, ProtocolTimings, RoundInput,
    RoundOutput, RoundTimings,
};
pub use sampling::SampleMask;
pub use scenario::{ByzantineStrategy, FaultPlan, Scenario};
pub use trainer::{RoundMetrics, Trainer, TrainingHistory};
pub use weighting::WeightMatrix;
