//! User-level Poisson sub-sampling with population-sub-linear draw cost.
//!
//! ULDP-FL sub-samples *users* per round: each user joins independently with
//! probability `q`. The naive draw is one Bernoulli trial per user — `O(|U|)` RNG
//! consumption and an `O(|U|)` dense mask even when `q·|U|` users participate. At the
//! ROADMAP's 10⁵–10⁶-user populations that per-round pass dominates everything the
//! sampled users actually cost.
//!
//! [`SampleMask::poisson`] replaces the pass with **inversion-based sampling over
//! sorted geometric gaps**: the gap between consecutive sampled indices under
//! independent Bernoulli(q) trials is geometrically distributed, and a geometric
//! variate is drawn by inverting one uniform — `gap = ⌊ln(1−u)/ln(1−q)⌋`. Walking the
//! population by gaps emits the sampled indices **already sorted** and consumes
//! exactly one `f64` draw per emitted index (plus the final overshoot draw):
//! `O(q·|U| + 1)` RNG consumption and `O(q·|U|)` memory.
//!
//! The result is held as a [`SampleMask`], which picks its representation by density:
//! sparse sorted `Vec<u32>` below [`DENSE_THRESHOLD_NUM`]`/`[`DENSE_THRESHOLD_DEN`]
//! sampled fraction, dense `Vec<bool>` above (where a bitmap walk is cheaper and the
//! sparse path saves nothing). The `ULDP_DENSE_MASK=1` environment knob (read once per
//! process, mirroring `ULDP_FRESH_ENCRYPT`) forces the dense representation everywhere
//! so CI can diff sparse-vs-dense aggregates bit for bit — the two representations are
//! semantically identical ([`PartialEq`] compares the sampled *set*, not the layout)
//! and every consumer must produce bitwise-identical output under either.

use rand::Rng;
use std::sync::OnceLock;

/// A sampled fraction of at least `NUM/DEN` switches the representation to dense.
///
/// At ≥ ¼ sampled, the sparse index list is within 4× of the population anyway and the
/// dense bitmap (1 byte/user vs 4 bytes/sampled-user) is both smaller and cheaper to
/// probe; the sub-linear win only exists for genuinely sparse rounds (q ≪ 1).
const DENSE_THRESHOLD_NUM: usize = 1;
const DENSE_THRESHOLD_DEN: usize = 4;

/// Returns `true` when `ULDP_DENSE_MASK` is set to `1`/`true` in the environment,
/// forcing [`SampleMask`] to always use the dense `Vec<bool>` representation (read once
/// per process).
///
/// This is a verification knob, mirroring `ULDP_FRESH_ENCRYPT`: CI runs the population
/// smoke binary once sparse and once dense and diffs the AGG/MRD fingerprints bit for
/// bit, so any divergence between the two layouts fails loudly.
pub fn dense_mask_forced() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        matches!(
            std::env::var("ULDP_DENSE_MASK").as_deref().map(str::trim),
            Ok("1") | Ok("true") | Ok("TRUE")
        )
    })
}

/// Which users of a round's population are sampled.
///
/// Two layouts, one meaning: `Dense` stores one bool per user, `Sparse` stores the
/// sorted indices of the sampled users only. Equality is semantic (same population
/// size, same sampled set), so a densified mask compares equal to its sparse original.
#[derive(Clone, Debug)]
pub struct SampleMask {
    num_users: usize,
    repr: MaskRepr,
}

#[derive(Clone, Debug)]
enum MaskRepr {
    /// One flag per user of the population.
    Dense(Vec<bool>),
    /// Strictly increasing indices of the sampled users.
    Sparse(Vec<u32>),
}

impl PartialEq for SampleMask {
    fn eq(&self, other: &Self) -> bool {
        if self.num_users != other.num_users || self.sampled_count() != other.sampled_count() {
            return false;
        }
        self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for SampleMask {}

impl SampleMask {
    /// Draws a Poisson (independent Bernoulli(q)) sample over `num_users` users by
    /// geometric-gap inversion: one uniform per sampled user, indices emitted sorted.
    ///
    /// `q ≥ 1` samples everyone (and consumes no randomness); `q ≤ 0` samples no one
    /// likewise. The RNG stream consumed is a deterministic function of `(q, the
    /// emitted indices)` — exactly `sampled_count() + 1` `f64` draws for `0 < q < 1` —
    /// so replaying a seeded RNG reproduces the mask bit for bit.
    pub fn poisson<R: Rng>(rng: &mut R, num_users: usize, q: f64) -> SampleMask {
        if q >= 1.0 {
            return SampleMask::all(num_users);
        }
        if q <= 0.0 || num_users == 0 {
            return SampleMask::from_sorted_indices(num_users, Vec::new());
        }
        let ln1mq = (1.0 - q).ln();
        let mut indices = Vec::new();
        let mut cursor = 0u64;
        loop {
            let u: f64 = rng.gen();
            // Geometric gap via inversion: P(gap = k) = q·(1−q)^k. `1 − u` is in
            // (0, 1], so the log is finite and ≤ 0; the ratio is ≥ 0.
            let gap = ((1.0 - u).ln() / ln1mq).floor();
            cursor =
                cursor.saturating_add(if gap >= u64::MAX as f64 { u64::MAX } else { gap as u64 });
            if cursor >= num_users as u64 {
                break;
            }
            indices.push(cursor as u32);
            cursor += 1;
        }
        SampleMask::from_sorted_indices(num_users, indices)
    }

    /// The everyone-sampled mask (dense; probing it is free and it round-trips the
    /// legacy no-mask paths exactly).
    pub fn all(num_users: usize) -> SampleMask {
        SampleMask { num_users, repr: MaskRepr::Dense(vec![true; num_users]) }
    }

    /// Builds a mask from a dense flag vector, re-deciding the representation by
    /// density (so a sparse flag vector still gets the sparse layout).
    pub fn from_dense(flags: Vec<bool>) -> SampleMask {
        let num_users = flags.len();
        let indices: Vec<u32> =
            flags.iter().enumerate().filter(|(_, &f)| f).map(|(u, _)| u as u32).collect();
        SampleMask::from_sorted_indices(num_users, indices)
    }

    /// Builds a mask from strictly-increasing sampled indices, picking the
    /// representation by density (dense when forced via `ULDP_DENSE_MASK` or when at
    /// least a quarter of the population is sampled).
    pub fn from_sorted_indices(num_users: usize, indices: Vec<u32>) -> SampleMask {
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]), "indices must be strictly sorted");
        debug_assert!(indices.last().is_none_or(|&u| (u as usize) < num_users));
        let dense = dense_mask_forced()
            || indices.len() * DENSE_THRESHOLD_DEN >= num_users * DENSE_THRESHOLD_NUM;
        if dense {
            let mut flags = vec![false; num_users];
            for &u in &indices {
                flags[u as usize] = true;
            }
            SampleMask { num_users, repr: MaskRepr::Dense(flags) }
        } else {
            SampleMask { num_users, repr: MaskRepr::Sparse(indices) }
        }
    }

    /// Population size the mask is drawn over.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Whether user `u` is sampled this round.
    pub fn contains(&self, u: usize) -> bool {
        match &self.repr {
            MaskRepr::Dense(flags) => flags.get(u).copied().unwrap_or(false),
            MaskRepr::Sparse(indices) => indices.binary_search(&(u as u32)).is_ok(),
        }
    }

    /// Number of sampled users.
    pub fn sampled_count(&self) -> usize {
        match &self.repr {
            MaskRepr::Dense(flags) => flags.iter().filter(|&&f| f).count(),
            MaskRepr::Sparse(indices) => indices.len(),
        }
    }

    /// `true` when the mask stores the sparse index-list layout.
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, MaskRepr::Sparse(_))
    }

    /// Iterates the sampled user indices in increasing order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = usize> + '_> {
        match &self.repr {
            MaskRepr::Dense(flags) => {
                Box::new(flags.iter().enumerate().filter(|(_, &f)| f).map(|(u, _)| u))
            }
            MaskRepr::Sparse(indices) => Box::new(indices.iter().map(|&u| u as usize)),
        }
    }

    /// The mask as a dense flag vector (allocates `O(|U|)`; for tests and the legacy
    /// dense consumers only — hot paths should use [`SampleMask::iter`] /
    /// [`SampleMask::contains`]).
    pub fn to_dense_vec(&self) -> Vec<bool> {
        match &self.repr {
            MaskRepr::Dense(flags) => flags.clone(),
            MaskRepr::Sparse(indices) => {
                let mut flags = vec![false; self.num_users];
                for &u in indices {
                    flags[u as usize] = true;
                }
                flags
            }
        }
    }

    /// A copy of this mask in the dense representation (same sampled set, so it
    /// compares equal and every consumer must produce bitwise-identical output).
    pub fn densified(&self) -> SampleMask {
        SampleMask { num_users: self.num_users, repr: MaskRepr::Dense(self.to_dense_vec()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_draws_are_sorted_in_range_and_deterministic() {
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mask = SampleMask::poisson(&mut rng, 1000, 0.05);
            let indices: Vec<usize> = mask.iter().collect();
            assert!(indices.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
            assert!(indices.iter().all(|&u| u < 1000));
            let mut rng2 = StdRng::seed_from_u64(seed);
            assert_eq!(mask, SampleMask::poisson(&mut rng2, 1000, 0.05), "same seed, same mask");
        }
    }

    #[test]
    fn poisson_consumes_exactly_count_plus_one_draws() {
        // The sub-linearity claim in RNG terms: the stream position after drawing a
        // mask is a function of the emitted index count alone, not the population.
        for (users, q) in [(1_000usize, 0.02f64), (10_000, 0.01), (500, 0.3)] {
            let mut rng = StdRng::seed_from_u64(42);
            let mask = SampleMask::poisson(&mut rng, users, q);
            let mut replay = StdRng::seed_from_u64(42);
            for _ in 0..mask.sampled_count() + 1 {
                let _: f64 = replay.gen();
            }
            // Both RNGs are now at the same stream position.
            assert_eq!(rng.gen::<u64>(), replay.gen::<u64>(), "users={users} q={q}");
        }
    }

    #[test]
    fn poisson_rate_is_roughly_q() {
        let mut rng = StdRng::seed_from_u64(7);
        let mask = SampleMask::poisson(&mut rng, 100_000, 0.1);
        let rate = mask.sampled_count() as f64 / 100_000.0;
        assert!((rate - 0.1).abs() < 0.01, "empirical rate {rate} far from q=0.1");
    }

    #[test]
    fn extreme_rates_short_circuit() {
        let mut rng = StdRng::seed_from_u64(1);
        let before = rng.clone().gen::<u64>();
        let all = SampleMask::poisson(&mut rng, 10, 1.0);
        let none = SampleMask::poisson(&mut rng, 10, 0.0);
        assert_eq!(all.sampled_count(), 10);
        assert_eq!(none.sampled_count(), 0);
        // Neither consumed randomness.
        assert_eq!(rng.gen::<u64>(), before);
    }

    #[test]
    fn representation_follows_density() {
        let sparse = SampleMask::from_sorted_indices(100, vec![3, 17, 50]);
        let dense = SampleMask::from_sorted_indices(100, (0..50).collect());
        if !dense_mask_forced() {
            assert!(sparse.is_sparse());
        }
        assert!(!dense.is_sparse());
        assert!(sparse.contains(17) && !sparse.contains(18));
        assert!(dense.contains(49) && !dense.contains(50));
    }

    #[test]
    fn densified_masks_compare_equal_and_roundtrip() {
        let mask = SampleMask::from_sorted_indices(64, vec![0, 9, 63]);
        let dense = mask.densified();
        assert_eq!(mask, dense);
        assert!(!dense.is_sparse());
        assert_eq!(SampleMask::from_dense(mask.to_dense_vec()), mask);
        assert_eq!(dense.iter().collect::<Vec<_>>(), vec![0, 9, 63]);
        // Different sets (or populations) are unequal.
        assert_ne!(mask, SampleMask::from_sorted_indices(64, vec![0, 9, 62]));
        assert_ne!(mask, SampleMask::from_sorted_indices(65, vec![0, 9, 63]));
    }

    #[test]
    fn dense_mask_forced_matches_environment() {
        let expected = matches!(
            std::env::var("ULDP_DENSE_MASK").as_deref().map(str::trim),
            Ok("1") | Ok("true") | Ok("TRUE")
        );
        assert_eq!(dense_mask_forced(), expected);
    }
}
