//! Server-side aggregation of silo contributions.
//!
//! The paper assumes every aggregation is performed with secure aggregation so that the
//! server only ever sees the *sum* of the silo contributions (plus the DP noise each silo
//! added locally). Because the sum is numerically identical whether or not masks are
//! applied, the trainer uses the plaintext sum for speed; [`SecureAggregationSim::masked_sum`] implements the
//! masked path over the fixed-point field and is verified against the plaintext sum in
//! tests and used by the full private weighting protocol ([`crate::protocol`]).

use rand::Rng;
use uldp_bigint::modular::mod_add;
use uldp_bigint::BigUint;
use uldp_crypto::masking::{apply_pairwise_masks, MaskGenerator, MaskSeed};
use uldp_crypto::FixedPointCodec;
use uldp_ml::rng::gaussian_vector;

/// Sums per-silo delta vectors element-wise.
///
/// Returns a zero vector of length `dim` when `deltas` is empty.
pub fn sum_deltas(deltas: &[Vec<f64>], dim: usize) -> Vec<f64> {
    let mut out = vec![0.0; dim];
    for d in deltas {
        assert_eq!(d.len(), dim, "delta dimensionality mismatch");
        for (o, v) in out.iter_mut().zip(d.iter()) {
            *o += v;
        }
    }
    out
}

/// Adds i.i.d. Gaussian noise with the given standard deviation to a delta in place.
pub fn add_gaussian_noise<R: Rng + ?Sized>(delta: &mut [f64], std_dev: f64, rng: &mut R) {
    if std_dev == 0.0 {
        return;
    }
    let noise = gaussian_vector(rng, std_dev, delta.len());
    for (d, n) in delta.iter_mut().zip(noise.iter()) {
        *d += n;
    }
}

/// Configuration of the simulated secure-aggregation path.
#[derive(Clone, Debug)]
pub struct SecureAggregationSim {
    codec: FixedPointCodec,
}

impl SecureAggregationSim {
    /// Creates a simulator with the given fixed-point precision. The field modulus is a
    /// fixed 256-bit value, comfortably larger than any encoded model delta.
    pub fn new(precision: f64) -> Self {
        let modulus = BigUint::one().shl_bits(256);
        SecureAggregationSim { codec: FixedPointCodec::new(precision, modulus) }
    }

    /// The fixed-point codec in use.
    pub fn codec(&self) -> &FixedPointCodec {
        &self.codec
    }

    /// Bonawitz-style masked aggregation of per-silo real-valued vectors.
    ///
    /// `pair_seeds[i][j]` must hold the symmetric seed shared by silos `i` and `j`
    /// (`pair_seeds[i][j] == pair_seeds[j][i]`, diagonal ignored). The server only ever
    /// receives the masked vectors; the returned value is their sum, which equals the
    /// plaintext sum up to fixed-point precision because the masks cancel.
    ///
    /// Cancellation requires the sum to range over **exactly** the silo set the masks
    /// were generated for (see `uldp_crypto::masking`); silos dropping between masking
    /// and summation would leave dangling masks, so the scenario engine only ever drops
    /// silos *before* this point. Seed symmetry — the matrix half of that precondition —
    /// is debug-asserted here.
    pub fn masked_sum(
        &self,
        silo_vectors: &[Vec<f64>],
        pair_seeds: &[Vec<MaskSeed>],
        round: u64,
    ) -> Vec<f64> {
        let num_silos = silo_vectors.len();
        assert!(num_silos > 0, "need at least one silo");
        assert_eq!(pair_seeds.len(), num_silos, "pair seed matrix shape mismatch");
        debug_assert!(
            (0..num_silos)
                .all(|i| (i + 1..num_silos).all(|j| pair_seeds[i][j] == pair_seeds[j][i])),
            "pair seeds must be symmetric — the mask-cancellation precondition"
        );
        let dim = silo_vectors[0].len();
        let modulus = self.codec.modulus().clone();

        // Each silo encodes and masks its vector; the server accumulates field elements.
        let mut accumulator = vec![BigUint::zero(); dim];
        for (silo, vector) in silo_vectors.iter().enumerate() {
            assert_eq!(vector.len(), dim, "silo vector dimensionality mismatch");
            let generators: Vec<(usize, MaskGenerator)> = (0..num_silos)
                .filter(|&other| other != silo)
                .map(|other| (other, MaskGenerator::new(pair_seeds[silo][other], modulus.clone())))
                .collect();
            for (coord, &value) in vector.iter().enumerate() {
                let encoded = self.codec.encode(value);
                let pair_masks: Vec<(usize, BigUint)> = generators
                    .iter()
                    .map(|(other, gen)| (*other, gen.mask(round, coord as u64)))
                    .collect();
                let masked = apply_pairwise_masks(&encoded, silo, &pair_masks, &modulus);
                accumulator[coord] = mod_add(&accumulator[coord], &masked, &modulus);
            }
        }
        accumulator.iter().map(|v| self.codec.decode_plain(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pair_seeds(num_silos: usize) -> Vec<Vec<MaskSeed>> {
        let mut seeds = vec![vec![MaskSeed::new([0u8; 32]); num_silos]; num_silos];
        for (i, row) in seeds.iter_mut().enumerate() {
            for (j, slot) in row.iter_mut().enumerate() {
                let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                let mut bytes = [0u8; 32];
                bytes[0] = lo as u8;
                bytes[1] = hi as u8;
                bytes[2] = 0xAB;
                *slot = MaskSeed::new(bytes);
            }
        }
        seeds
    }

    #[test]
    fn sum_deltas_basic() {
        let deltas = vec![vec![1.0, 2.0], vec![-0.5, 3.0]];
        assert_eq!(sum_deltas(&deltas, 2), vec![0.5, 5.0]);
        assert_eq!(sum_deltas(&[], 3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn noise_changes_values_with_right_scale() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut delta = vec![0.0; 20_000];
        add_gaussian_noise(&mut delta, 2.0, &mut rng);
        let var = delta.iter().map(|x| x * x).sum::<f64>() / delta.len() as f64;
        assert!((var - 4.0).abs() < 0.3, "variance {var}");
        // zero std is a no-op
        let mut zero = vec![1.0, 2.0];
        add_gaussian_noise(&mut zero, 0.0, &mut rng);
        assert_eq!(zero, vec![1.0, 2.0]);
    }

    #[test]
    fn masked_sum_matches_plaintext_sum() {
        let sim = SecureAggregationSim::new(1e-9);
        let vectors = vec![
            vec![0.5, -1.25, 3.0, 0.0],
            vec![-0.25, 0.75, -2.0, 1.5],
            vec![1.0, 1.0, 1.0, -1.0],
        ];
        let plaintext = sum_deltas(&vectors, 4);
        let masked = sim.masked_sum(&vectors, &pair_seeds(3), 7);
        for (a, b) in plaintext.iter().zip(masked.iter()) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn masked_sum_single_silo_is_identity() {
        let sim = SecureAggregationSim::new(1e-9);
        let vectors = vec![vec![0.125, -7.5]];
        let masked = sim.masked_sum(&vectors, &pair_seeds(1), 0);
        assert!((masked[0] - 0.125).abs() < 1e-8);
        assert!((masked[1] + 7.5).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    #[cfg(debug_assertions)]
    fn asymmetric_pair_seeds_are_rejected_in_debug() {
        let sim = SecureAggregationSim::new(1e-9);
        let mut seeds = pair_seeds(2);
        seeds[0][1] = MaskSeed::new([9u8; 32]);
        let _ = sim.masked_sum(&[vec![1.0], vec![2.0]], &seeds, 0);
    }

    #[test]
    fn individual_masked_vectors_are_hidden() {
        // Re-derive what silo 0 would send and check it differs from its plaintext.
        let sim = SecureAggregationSim::new(1e-9);
        let seeds = pair_seeds(2);
        let modulus = sim.codec().modulus().clone();
        let gen = MaskGenerator::new(seeds[0][1], modulus.clone());
        let value = 0.5f64;
        let encoded = sim.codec().encode(value);
        let masked = apply_pairwise_masks(&encoded, 0, &[(1, gen.mask(0, 0))], &modulus);
        assert_ne!(masked, encoded);
    }
}
