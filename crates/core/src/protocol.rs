//! Protocol 1: the private weighting protocol.
//!
//! The enhanced weighting strategy `w_{s,u} = n_{s,u} / N_u` needs the cross-silo user
//! totals `N_u`, which no single party may learn. Protocol 1 combines three primitives so
//! that the weighted aggregation is computed without revealing any `n_{s,u}` (Theorem 5):
//!
//! 1. **Multiplicative blinding** — silos share a random seed `R` (unknown to the server)
//!    and blind their histograms as `B(n_{s,u}) = r_u · n_{s,u} mod n`; the server can sum
//!    and invert blinded totals but learns nothing about the underlying counts.
//! 2. **Secure aggregation** — pairwise additive masks derived from Diffie–Hellman shared
//!    seeds hide the individual blinded histograms (and later the per-silo encrypted model
//!    deltas) so the server only ever sees sums.
//! 3. **Paillier encryption** — the server returns `Enc_p(B_inv(N_u))` to the silos, which
//!    then compute the weighted, clipped model deltas *under encryption*
//!    (scalar-multiplying by `Encode(Δ̃) · n_{s,u} · r_u · C_LCM`), cancelling the blinding
//!    factor homomorphically; the server decrypts only the aggregate.
//!
//! The fixed-point `Encode`/`Decode` of Algorithm 5 and the `C_LCM` factor make the
//! per-user division by `N_u` exact on the finite field (Theorem 4).
//!
//! The implementation mirrors the message flow of the paper's Protocol 1 within a single
//! process and records wall-clock timings for each phase, which the benchmark harness uses
//! to regenerate Figures 10 and 11.
//!
//! ## Parallel execution
//!
//! The per-(silo, user) Paillier work — server-side encryption of the blinded inverses
//! (step 2.a), silo-side weighted `scalar_mul` of the clipped deltas (2.b) and the
//! homomorphic aggregation plus decryption (2.c) — runs on the deterministic
//! [`uldp_runtime::Runtime`] worker pool. Steps 2.(b)–(c) stream through one chunked
//! fold over the `(silo, coordinate)` cells in coordinate-major order
//! ([`uldp_runtime::Runtime::par_fold_reduce`]): each chunk folds its cells straight
//! into per-coordinate ciphertext totals, so no per-cell ciphertext collection is ever
//! materialised — O(dim + chunks) transient ciphertexts instead of O(silos × dim) —
//! and only the per-coordinate totals reach the decryption pass. All encryption
//! randomness is derived per user index from a single 256-bit seed drawn from the
//! caller's RNG, and ciphertext accumulation is exact modular arithmetic, so every
//! ciphertext and the decrypted aggregate are bitwise-identical at any thread count and
//! chunk size (`ProtocolConfig::threads` / `ULDP_THREADS`,
//! `ProtocolConfig::chunk_size` / `ULDP_CHUNK`); `RoundTimings` still reports each
//! phase's wall-clock separately (timings, being wall-clock, naturally vary).
//!
//! All exponentiations run on the Montgomery engine of `uldp-bigint` through contexts
//! cached in the Paillier keys (built once at setup, shared by every round): step 2.(a)
//! encrypts over the cached `n²` context, step 2.(b) hoists one fixed-base context per
//! encrypted inverse out of the (silo, coordinate) cell loop, and step 2.(c) decrypts by
//! CRT over cached `p²`/`q²` contexts. `ULDP_GENERIC_MODPOW=1` forces the schoolbook
//! square-and-multiply path instead; both paths produce bit-identical ciphertexts and
//! aggregates (CI diffs them).

use crate::config::WeightingStrategy;
use crate::scenario::FaultPlan;
use crate::weighting::WeightMatrix;
use rand::Rng;
use std::sync::Arc;
use std::time::Duration;
use uldp_bigint::modular::{mod_inv, mod_mul};
use uldp_bigint::montgomery::FixedBaseCtx;
use uldp_bigint::BigUint;
use uldp_crypto::dh::{DhGroup, DhKeyPair};
use uldp_crypto::masking::MaskSeed;
use uldp_crypto::oblivious_transfer::OneOutOfP;
use uldp_crypto::paillier::{Ciphertext, PaillierKeyPair, PaillierPublicKey, ScalarMulCtx};
use uldp_crypto::{FixedPointCodec, MultiplicativeBlinder};
use uldp_runtime::{seeding, Runtime};
use uldp_telemetry::{metrics, trace};

/// Cryptographic parameters of the protocol.
#[derive(Clone, Debug)]
pub struct ProtocolConfig {
    /// Paillier modulus size in bits (the paper's default security level is 3072; tests
    /// and quick demos use smaller moduli).
    pub paillier_bits: usize,
    /// Size of the custom Diffie–Hellman safe-prime group used for the silo key exchange.
    /// Ignored when [`ProtocolConfig::use_rfc_group`] is set.
    pub dh_bits: usize,
    /// Use the RFC 3526 2048-bit MODP group instead of generating a custom group.
    pub use_rfc_group: bool,
    /// Fixed-point precision parameter `P` of Algorithm 5.
    pub precision: f64,
    /// Upper bound `N_max` on the number of records a user may hold across silos;
    /// `C_LCM = lcm(1..=N_max)`.
    pub n_max: u64,
    /// Worker threads for the protocol's parallel phases: `0` uses the process-wide
    /// runtime (`ULDP_THREADS` / available parallelism), `1` forces sequential execution,
    /// any other value builds a dedicated pool. Results are bitwise-identical regardless.
    pub threads: usize,
    /// Fold chunk size (cells per chunk) for the streaming `(silo, coordinate)` cell
    /// fold of step 2.(b)–(c): `0` reads `ULDP_CHUNK`, falling back to a small default.
    /// Ciphertext accumulation is exact modular arithmetic, so results are
    /// bitwise-identical at any setting.
    pub chunk_size: usize,
    /// Deterministic fault injection for the protocol's rounds ([`crate::scenario`]):
    /// silos dropping or straggling between steps 2.(b) and 2.(c). Only honoured by
    /// [`PrivateWeightingProtocol::weighting_round_faulted`]; the plain round entry
    /// points ignore it. The default plan injects nothing.
    pub fault_plan: FaultPlan,
}

/// Default cells-per-chunk of the protocol's streaming fold when neither
/// [`ProtocolConfig::chunk_size`] nor `ULDP_CHUNK` is set. Each cell already amortises
/// one Paillier exponentiation per participating user, so fine chunks cost little and
/// keep the pool balanced even for small `silos × dim` grids.
const DEFAULT_PROTOCOL_CHUNK: usize = 4;

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            paillier_bits: 512,
            dh_bits: 256,
            use_rfc_group: false,
            precision: 1e-10,
            n_max: 64,
            threads: 0,
            chunk_size: 0,
            fault_plan: FaultPlan::none(),
        }
    }
}

impl ProtocolConfig {
    /// The paper's full-strength parameters (3072-bit security, `N_max = 2000`).
    ///
    /// Key generation and per-round encryption at this size are expensive; benchmarks
    /// report the key size they actually ran with.
    pub fn paper_scale() -> Self {
        ProtocolConfig {
            paillier_bits: 3072,
            dh_bits: 0,
            use_rfc_group: true,
            precision: 1e-10,
            n_max: 2000,
            threads: 0,
            chunk_size: 0,
            fault_plan: FaultPlan::none(),
        }
    }
}

/// Wall-clock timings of the one-off setup phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProtocolTimings {
    /// Paillier + Diffie–Hellman key generation and pairwise seed agreement (steps a–c).
    pub key_exchange: Duration,
    /// Blinded-histogram construction, masking and aggregation (steps d–e).
    pub histogram_blinding: Duration,
    /// Modular inversion of the blinded totals on the server (step f).
    pub inverse_computation: Duration,
}

impl ProtocolTimings {
    /// Total setup time.
    pub fn total(&self) -> Duration {
        self.key_exchange + self.histogram_blinding + self.inverse_computation
    }
}

/// Wall-clock timings of one weighting round (steps 2.a–2.c).
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundTimings {
    /// Server-side Poisson sampling and Paillier encryption of the blinded inverses (2.a).
    pub server_encryption: Duration,
    /// Silo-side weighted encryption of clipped deltas and noise (2.b) plus the fused
    /// homomorphic cross-silo summation, streamed over all silos.
    pub silo_weighting: Duration,
    /// Server-side decryption and decoding (2.c). (The homomorphic aggregation itself is
    /// fused into the streaming silo-weighting fold.)
    pub aggregation: Duration,
}

impl RoundTimings {
    /// Total round time.
    pub fn total(&self) -> Duration {
        self.server_encryption + self.silo_weighting + self.aggregation
    }
}

/// Private user-level sub-sampling via 1-out-of-P oblivious transfer (Section 4.1).
///
/// The participation probability is `numerator / denominator`: the server prepares
/// `numerator` copies of the real encrypted inverse and `denominator − numerator`
/// encryptions of zero, and one is fetched obliviously. Only rational probabilities can be
/// expressed this way — the discretisation limitation the paper notes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObliviousSubsampling {
    /// Number of "real" slots.
    pub numerator: u64,
    /// Total number of slots `P`.
    pub denominator: u64,
}

impl ObliviousSubsampling {
    /// Creates a sub-sampling description with participation probability
    /// `numerator / denominator`.
    pub fn new(numerator: u64, denominator: u64) -> Self {
        assert!(denominator >= 1, "denominator must be at least 1");
        assert!(numerator <= denominator, "numerator must not exceed denominator");
        ObliviousSubsampling { numerator, denominator }
    }

    /// The effective user-level participation probability `q = numerator / denominator`.
    pub fn probability(&self) -> f64 {
        self.numerator as f64 / self.denominator as f64
    }

    /// Builds the OT offer for one user: `numerator` re-randomised copies of the real
    /// ciphertext followed by `denominator − numerator` fresh encryptions of zero.
    ///
    /// Every slot is a fresh Paillier encryption, so the receiver cannot tell real from
    /// dummy slots.
    pub fn build_offer<R: Rng + ?Sized>(
        &self,
        public_key: &PaillierPublicKey,
        real: &Ciphertext,
        rng: &mut R,
    ) -> OneOutOfP<Ciphertext> {
        let mut items = Vec::with_capacity(self.denominator as usize);
        for _ in 0..self.numerator {
            // Re-randomise by homomorphically adding an encryption of zero.
            let rerandomised = public_key.add(real, &public_key.encrypt(rng, &BigUint::zero()));
            items.push(rerandomised);
        }
        for _ in self.numerator..self.denominator {
            items.push(public_key.encrypt(rng, &BigUint::zero()));
        }
        OneOutOfP::new(items)
    }
}

/// The state of a completed setup phase, able to run any number of weighting rounds.
pub struct PrivateWeightingProtocol {
    num_silos: usize,
    num_users: usize,
    paillier: PaillierKeyPair,
    codec: FixedPointCodec,
    c_lcm: BigUint,
    /// The silos' shared blinding-factor expander (seeded by `R`, never sent to the server).
    blinder: MultiplicativeBlinder,
    /// Per-silo record histograms `n_{s,u}` (silo-private in the real deployment).
    silo_histograms: Vec<Vec<u64>>,
    /// Cross-silo totals `N_u` (kept only to validate inputs; not revealed by the protocol).
    user_totals: Vec<u64>,
    /// Server-side blinded inverses `B_inv(N_u)`; `None` for users with no records.
    blinded_inverses: Vec<Option<BigUint>>,
    /// Pairwise secure-aggregation seeds (symmetric).
    pair_seeds: Vec<Vec<MaskSeed>>,
    setup_timings: ProtocolTimings,
    /// Worker pool for the parallel phases (shared, or dedicated per
    /// [`ProtocolConfig::threads`]).
    runtime: Arc<Runtime>,
    /// Resolved cells-per-chunk of the streaming cell fold
    /// ([`ProtocolConfig::chunk_size`] / `ULDP_CHUNK` / default).
    chunk_size: usize,
    /// Fault plan for [`PrivateWeightingProtocol::weighting_round_faulted`].
    fault_plan: FaultPlan,
}

impl PrivateWeightingProtocol {
    /// Runs the setup phase (Protocol 1, step 1) for the given per-silo histograms.
    ///
    /// `histogram[s][u]` is the number of records user `u` holds in silo `s`. Every user
    /// total must be at most `config.n_max` for the `C_LCM` divisibility argument of
    /// Theorem 4 to hold.
    pub fn setup<R: Rng + ?Sized>(
        histogram: &[Vec<usize>],
        config: &ProtocolConfig,
        rng: &mut R,
    ) -> Self {
        let num_silos = histogram.len();
        assert!(num_silos >= 2, "the protocol needs at least two silos");
        let num_users = histogram[0].len();
        assert!(num_users >= 1, "the protocol needs at least one user");
        assert!(histogram.iter().all(|row| row.len() == num_users));
        config.fault_plan.validate();
        let runtime = Runtime::handle(config.threads);

        // --- Step 1.(a)-(c): key generation and pairwise seed agreement. ---
        let key_span = trace::timed_span("protocol", "key_exchange");
        let paillier = PaillierKeyPair::generate(rng, config.paillier_bits);
        // Warm the ciphertext-modulus Montgomery context during setup so every round
        // (steps 2.(a)-(c)) shares the cached engine state and no phase ever pays for
        // context construction mid-round.
        let _ = paillier.public.ctx_n2();
        let dh_group = if config.use_rfc_group {
            DhGroup::rfc3526_2048()
        } else {
            DhGroup::generate(rng, config.dh_bits.max(64))
        };
        let keypairs: Vec<DhKeyPair> =
            (0..num_silos).map(|_| DhKeyPair::generate(rng, &dh_group)).collect();
        let mut pair_seeds = vec![vec![MaskSeed::new([0u8; 32]); num_silos]; num_silos];
        for i in 0..num_silos {
            for j in 0..num_silos {
                if i != j {
                    pair_seeds[i][j] =
                        MaskSeed::new(keypairs[i].shared_seed(keypairs[j].public_key()));
                }
            }
        }
        // Silo 0 picks the shared random seed R and distributes it over the pairwise
        // channels; the server never sees it.
        let mut blind_seed = [0u8; 32];
        rng.fill(&mut blind_seed);
        let key_exchange = key_span.finish();

        let modulus = paillier.public.n.clone();
        let codec = FixedPointCodec::new(config.precision, modulus.clone());
        let c_lcm = uldp_bigint::lcm_up_to(config.n_max);
        let blinder = MultiplicativeBlinder::new(blind_seed, modulus.clone());

        // --- Step 1.(d)-(e): blinded, masked histogram aggregation. ---
        let hist_span = trace::timed_span("protocol", "histogram_blinding");
        let silo_histograms: Vec<Vec<u64>> =
            histogram.iter().map(|row| row.iter().map(|&c| c as u64).collect()).collect();
        let mut user_totals = vec![0u64; num_users];
        for row in &silo_histograms {
            for (t, &c) in user_totals.iter_mut().zip(row.iter()) {
                *t += c;
            }
        }
        for (&total, _) in user_totals.iter().zip(0..num_users) {
            assert!(
                total <= config.n_max,
                "user total {total} exceeds N_max = {} (required by Theorem 4)",
                config.n_max
            );
        }
        // Each silo blinds and masks its histogram; the server sums the masked values.
        // The pairwise masks cancel in the sum, so we compute the aggregate directly while
        // still exercising the blinding (what the server actually sees is r_u * N_u).
        // Blinding-factor expansion is SHA-256-based and per-user independent, so the
        // per-user columns run on the worker pool.
        let blinded_totals: Vec<BigUint> = runtime.par_map_range(num_users, |u| {
            let mut total = BigUint::zero();
            for row in &silo_histograms {
                let blinded = blinder.blind(u as u64, &BigUint::from_u64(row[u]));
                total = uldp_bigint::modular::mod_add(&total, &blinded, &modulus);
            }
            total
        });
        let histogram_blinding = hist_span.finish();

        // --- Step 1.(f): server inverts the blinded totals (one mod_inv per user). ---
        let inv_span = trace::timed_span("protocol", "inverse_computation");
        let blinded_inverses: Vec<Option<BigUint>> =
            runtime.par_map(
                &blinded_totals,
                |_, b| if b.is_zero() { None } else { mod_inv(b, &modulus) },
            );
        let inverse_computation = inv_span.finish();

        PrivateWeightingProtocol {
            num_silos,
            num_users,
            paillier,
            codec,
            c_lcm,
            blinder,
            silo_histograms,
            user_totals,
            blinded_inverses,
            pair_seeds,
            setup_timings: ProtocolTimings {
                key_exchange,
                histogram_blinding,
                inverse_computation,
            },
            runtime,
            chunk_size: uldp_runtime::resolve_chunk_size(config.chunk_size, DEFAULT_PROTOCOL_CHUNK),
            fault_plan: config.fault_plan,
        }
    }

    /// Replaces the worker pool this protocol instance runs on (e.g. to compare a
    /// sequential and a parallel execution of the same setup).
    pub fn with_runtime(mut self, runtime: Arc<Runtime>) -> Self {
        self.runtime = runtime;
        self
    }

    /// The worker pool in use.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Number of silos.
    pub fn num_silos(&self) -> usize {
        self.num_silos
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Bit length of the Paillier modulus actually in use.
    pub fn modulus_bits(&self) -> usize {
        self.paillier.public.modulus_bits()
    }

    /// Timings of the setup phase.
    pub fn setup_timings(&self) -> &ProtocolTimings {
        &self.setup_timings
    }

    /// The pairwise secure-aggregation seeds established during setup.
    pub fn pair_seeds(&self) -> &[Vec<MaskSeed>] {
        &self.pair_seeds
    }

    /// The record-proportional weight matrix the protocol implicitly computes
    /// (`w_{s,u} = n_{s,u} / N_u`), exposed for validation against the plaintext path.
    pub fn reference_weights(&self) -> WeightMatrix {
        let histogram: Vec<Vec<usize>> = self
            .silo_histograms
            .iter()
            .map(|row| row.iter().map(|&c| c as usize).collect())
            .collect();
        WeightMatrix::from_histogram(WeightingStrategy::RecordProportional, &histogram)
    }

    /// Runs one weighting round (Protocol 1, step 2).
    ///
    /// * `clipped_deltas[s][u]` — silo `s`'s clipped model delta for user `u`
    ///   (`Δ̃_{s,u}` *before* weighting; empty when the user has no records in the silo).
    /// * `noises[s]` — the Gaussian noise vector `z_s` silo `s` adds.
    /// * `sampled` — optional user-level sub-sampling mask; unsampled users' inverses are
    ///   encrypted as zero (step 2.a), so their deltas drop out exactly.
    ///
    /// Returns the decoded aggregate `Σ_s (Σ_u w_{s,u} Δ̃_{s,u} + z_s)` plus per-phase
    /// timings.
    pub fn weighting_round<R: Rng + ?Sized>(
        &self,
        clipped_deltas: &[Vec<Vec<f64>>],
        noises: &[Vec<f64>],
        sampled: Option<&[bool]>,
        rng: &mut R,
    ) -> (Vec<f64>, RoundTimings) {
        assert_eq!(clipped_deltas.len(), self.num_silos, "one delta set per silo required");
        assert_eq!(noises.len(), self.num_silos, "one noise vector per silo required");
        let dim = noises[0].len();
        assert!(dim > 0, "model dimension must be positive");

        // --- Step 2.(a): server encrypts (possibly sub-sampled) blinded inverses. ---
        // One 256-bit seed drawn from the caller's RNG parameterises the whole batch;
        // per-user encryption randomness is derived from (seed, u), so the ciphertexts
        // are bitwise-identical at any thread count without capping the entropy of the
        // encryption randomizers.
        let enc_span = trace::timed_span("protocol", "server_encryption");
        let batch_seed = seeding::wide_seed_from_rng(rng);
        let plaintexts: Vec<BigUint> = (0..self.num_users)
            .map(|u| {
                let keep = sampled.is_none_or(|s| s[u]);
                match (&self.blinded_inverses[u], keep) {
                    (Some(inv), true) => inv.clone(),
                    _ => BigUint::zero(),
                }
            })
            .collect();
        let encrypted_inverses =
            self.paillier.public.encrypt_batch(&self.runtime, batch_seed, &plaintexts);
        let server_encryption = enc_span.finish();

        // --- Steps 2.(b)-(c): silo-side encrypted weighting, secure aggregation of
        // ciphertexts, decryption and decoding. The pairwise additive masks cancel in the
        // sum exactly as in step 1.(e); the decrypted aggregate is therefore the same with
        // or without them.
        let (out, mut timings) = self.weighting_round_with_inverses(
            clipped_deltas,
            noises,
            &encrypted_inverses,
            dim,
            None,
        );
        timings.server_encryption = server_encryption;
        (out, timings)
    }

    /// Runs one weighting round under the configured [`ProtocolConfig::fault_plan`]:
    /// silos selected by the plan drop out **between steps 2.(b) and 2.(c)** — after the
    /// server ships the encrypted blinded inverses, before silo reports aggregate — and
    /// straggling silos inflate the round's `silo_weighting` timing by
    /// [`FaultPlan::delay_ms`] each without touching the result.
    ///
    /// Degradation semantics: a dropped silo's `(silo, coordinate)` cells (deltas *and*
    /// noise) are excluded from the streaming homomorphic fold — the Paillier path needs
    /// no mask recovery because the pairwise masks cancel inside each per-coordinate sum
    /// over the silos that actually contributed — and the decrypted aggregate is
    /// re-weighted by `|S| / |S_surviving|` so the update keeps its expected scale. The
    /// result is *exactly* the surviving-silo plaintext reference
    /// ([`PrivateWeightingProtocol::plaintext_reference_faulted`]) and stays
    /// bitwise-identical across every `(threads, chunk_size)` setting; at least one silo
    /// always survives.
    ///
    /// `round` tells the plan which round's fault set to draw (faults are re-drawn every
    /// round). Returns the re-weighted aggregate, the dropout mask in silo order, and
    /// the per-phase timings.
    pub fn weighting_round_faulted<R: Rng + ?Sized>(
        &self,
        clipped_deltas: &[Vec<Vec<f64>>],
        noises: &[Vec<f64>],
        sampled: Option<&[bool]>,
        round: u64,
        rng: &mut R,
    ) -> (Vec<f64>, Vec<bool>, RoundTimings) {
        assert_eq!(clipped_deltas.len(), self.num_silos, "one delta set per silo required");
        assert_eq!(noises.len(), self.num_silos, "one noise vector per silo required");
        let dim = noises[0].len();
        assert!(dim > 0, "model dimension must be positive");

        // Step 2.(a) is unchanged: the server encrypts before any silo drops.
        let enc_span = trace::timed_span("protocol", "server_encryption");
        let batch_seed = seeding::wide_seed_from_rng(rng);
        let plaintexts: Vec<BigUint> = (0..self.num_users)
            .map(|u| {
                let keep = sampled.is_none_or(|s| s[u]);
                match (&self.blinded_inverses[u], keep) {
                    (Some(inv), true) => inv.clone(),
                    _ => BigUint::zero(),
                }
            })
            .collect();
        let encrypted_inverses =
            self.paillier.public.encrypt_batch(&self.runtime, batch_seed, &plaintexts);
        let server_encryption = enc_span.finish();

        let dropped = self.fault_plan.dropped_silos(round, self.num_silos);
        let delayed = self.fault_plan.delayed_silos(round, self.num_silos);
        if uldp_telemetry::enabled() {
            // Structured fault events: one per affected silo, tagged with the round so
            // traces of multi-round runs stay attributable.
            for (silo, _) in dropped.iter().enumerate().filter(|(_, &d)| d) {
                metrics::FAULT_EVENTS.inc();
                trace::event(
                    "fault",
                    "dropout",
                    vec![("round", round.into()), ("silo", silo.into())],
                );
            }
            for (silo, _) in delayed.iter().enumerate().filter(|(_, &d)| d) {
                metrics::FAULT_EVENTS.inc();
                trace::event(
                    "fault",
                    "delay",
                    vec![
                        ("round", round.into()),
                        ("silo", silo.into()),
                        ("delay_ms", self.fault_plan.delay_ms.into()),
                    ],
                );
            }
        }
        let (mut out, mut timings) = self.weighting_round_with_inverses(
            clipped_deltas,
            noises,
            &encrypted_inverses,
            dim,
            Some(&dropped),
        );
        timings.server_encryption = server_encryption;

        // Surviving-silo re-weighting: the decrypted value is the exact sum over the
        // survivors, scaled up so the server update keeps its |S|-silo magnitude.
        let surviving = dropped.iter().filter(|&&d| !d).count();
        debug_assert!(surviving >= 1, "the fault plan must leave at least one silo");
        let factor = self.num_silos as f64 / surviving as f64;
        if factor != 1.0 {
            for o in out.iter_mut() {
                *o *= factor;
            }
        }
        // Stragglers: each delayed report lands `delay_ms` late. Simulated in the
        // timings only — no wall-clock sleep, the aggregate is untouched.
        let delayed_count = delayed.iter().filter(|&&d| d).count() as u64;
        timings.silo_weighting += Duration::from_millis(self.fault_plan.delay_ms * delayed_count);
        (out, dropped, timings)
    }

    /// Runs one weighting round with **private user-level sub-sampling** via simulated
    /// 1-out-of-P oblivious transfer (the extension sketched in Section 4.1 of the paper).
    ///
    /// For every user the server prepares `sampling.denominator` ciphertexts of which
    /// `sampling.numerator` encrypt the real blinded inverse and the rest encrypt zero; a
    /// single ciphertext is obtained through OT and used for the round. The server never
    /// learns whether a user was sampled (it cannot see the OT choice) and the silos never
    /// learn it either (a dummy is indistinguishable from a real Paillier ciphertext), so
    /// the participation probability is exactly `numerator / denominator` but the outcome
    /// stays hidden — unlike [`PrivateWeightingProtocol::weighting_round`], where the mask
    /// is chosen by the server in the clear.
    ///
    /// Returns the decoded aggregate, the realised selection flags (**for validation and
    /// accounting tests only** — in a deployment no party may observe them), and the
    /// per-phase timings.
    pub fn weighting_round_with_oblivious_subsampling<R: Rng + ?Sized>(
        &self,
        clipped_deltas: &[Vec<Vec<f64>>],
        noises: &[Vec<f64>],
        sampling: &ObliviousSubsampling,
        rng: &mut R,
    ) -> (Vec<f64>, Vec<bool>, RoundTimings) {
        assert_eq!(clipped_deltas.len(), self.num_silos, "one delta set per silo required");
        assert_eq!(noises.len(), self.num_silos, "one noise vector per silo required");
        let dim = noises[0].len();
        assert!(dim > 0, "model dimension must be positive");

        // Server side: build the OT offers (step 2.a extended with dummies). Every user's
        // offer and transfer draw from an RNG derived from a 256-bit (seed, u) stream, so
        // the realised selection is identical at any thread count.
        let enc_span = trace::timed_span("protocol", "server_encryption");
        let batch_seed = seeding::wide_seed_from_rng(rng);
        let per_user: Vec<(Ciphertext, bool)> =
            self.runtime.par_map_wide_seeded(self.num_users, batch_seed, |u, rng| {
                let real = match &self.blinded_inverses[u] {
                    Some(inv) => self.paillier.public.encrypt(rng, inv),
                    None => self.paillier.public.encrypt(rng, &BigUint::zero()),
                };
                let offer = sampling.build_offer(&self.paillier.public, &real, rng);
                let (output, _sender_view) = offer.transfer_uniform(rng);
                // The receiver keeps only the ciphertext; whether it was a real slot is
                // recorded here purely so tests can validate correctness.
                let was_real = output.chosen_index < sampling.numerator as usize
                    && self.blinded_inverses[u].is_some();
                (output.item, was_real)
            });
        let (chosen, selected_flags): (Vec<Ciphertext>, Vec<bool>) = per_user.into_iter().unzip();
        let server_encryption = enc_span.finish();

        // Silo side and aggregation are identical to the plain round, using the chosen
        // ciphertexts in place of the server-published inverses.
        let (out, mut timings) =
            self.weighting_round_with_inverses(clipped_deltas, noises, &chosen, dim, None);
        timings.server_encryption = server_encryption;
        (out, selected_flags, timings)
    }

    /// Shared silo-side + aggregation logic of steps 2.(b)-(c), parameterised by the
    /// per-user encrypted inverses actually distributed to the silos. When `dropped` is
    /// given, the marked silos' cells (deltas and noise) are excluded from the streaming
    /// fold — their reports never reach the server.
    fn weighting_round_with_inverses(
        &self,
        clipped_deltas: &[Vec<Vec<f64>>],
        noises: &[Vec<f64>],
        encrypted_inverses: &[Ciphertext],
        dim: usize,
        dropped: Option<&[bool]>,
    ) -> (Vec<f64>, RoundTimings) {
        let n = &self.paillier.public.n;
        let rt = &*self.runtime;
        let silo_span = trace::timed_span("protocol", "silo_weighting");
        for silo in 0..self.num_silos {
            assert_eq!(clipped_deltas[silo].len(), self.num_users, "per-user deltas required");
            assert_eq!(noises[silo].len(), dim, "noise dimensionality mismatch");
            for delta in clipped_deltas[silo].iter().filter(|d| !d.is_empty()) {
                assert_eq!(delta.len(), dim, "delta dimensionality mismatch");
            }
        }
        // The per-user scalar prefix `n_su · r_u · C_LCM mod n` is independent of the
        // coordinate, so it is computed once per (silo, user) instead of once per
        // (silo, user, coordinate); the SHA-based blinding-factor expansion runs on the
        // pool.
        let factors: Vec<BigUint> =
            rt.par_map_range(self.num_users, |u| self.blinder.factor(u as u64));
        let prefixes: Vec<Vec<BigUint>> = (0..self.num_silos)
            .map(|silo| {
                (0..self.num_users)
                    .map(|u| {
                        let n_su = self.silo_histograms[silo][u];
                        let p = mod_mul(&BigUint::from_u64(n_su), &factors[u], n);
                        mod_mul(&p, &self.c_lcm, n)
                    })
                    .collect()
            })
            .collect();
        // User u's encrypted inverse is raised to one scalar per (participating silo,
        // coordinate) cell, so one exponentiation context per user is hoisted out of the
        // cell loop: for heavily-used bases it precomputes a fixed-base table (no
        // squarings per scalar_mul), and no per-cell Montgomery context is ever rebuilt.
        let ctx_uses: Vec<usize> = (0..self.num_users)
            .map(|u| {
                dim * (0..self.num_silos)
                    .filter(|&s| self.silo_histograms[s][u] > 0 && !clipped_deltas[s][u].is_empty())
                    .count()
            })
            .collect();
        // All per-user contexts are alive for the whole region, and a fixed-base table
        // costs megabytes per user at paper-scale key sizes — so the tables are only
        // requested while the aggregate footprint stays within a fixed budget; beyond
        // it, users get the table-free sliding-window context (`expected 1 use`), which
        // still shares the cached per-modulus engine state.
        const FIXED_BASE_BUDGET_BYTES: usize = 256 << 20;
        let table_bytes = FixedBaseCtx::estimated_table_bytes(
            self.paillier.public.n_squared.bit_length(),
            self.paillier.public.n.bit_length(),
        );
        let participating = ctx_uses.iter().filter(|&&uses| uses > 0).count();
        let tables_affordable =
            participating.saturating_mul(table_bytes) <= FIXED_BASE_BUDGET_BYTES;
        let inverse_ctxs: Vec<Option<ScalarMulCtx>> = rt.par_map_range(self.num_users, |u| {
            (ctx_uses[u] > 0).then(|| {
                let expected_muls = if tables_affordable { ctx_uses[u] } else { 1 };
                self.paillier.public.scalar_mul_ctx(&encrypted_inverses[u], expected_muls)
            })
        });
        // Steps 2.(b)+(c) silo side: every (silo, coordinate) cell is independent — the
        // Paillier `scalar_mul` per user inside it is the protocol's dominant cost
        // (Figures 10–11) — and ciphertext addition is exact modular arithmetic, so the
        // cells stream through one chunked fold in coordinate-major order: each chunk
        // folds its cells straight into per-coordinate ciphertext totals (the cross-silo
        // homomorphic sum is fused into the fold), and chunk partials combine in fixed
        // cell order. No per-cell ciphertext collection is ever materialised — transient
        // memory is O(dim + chunks) ciphertexts instead of O(silos × dim) — and the
        // result is bitwise-identical at any (threads, chunk_size) setting.
        let num_cells = dim * self.num_silos;
        let chunk_size = self.chunk_size;
        let cell_ranges = uldp_runtime::fold_chunk_ranges(num_cells, chunk_size);
        let ct_bytes = self.paillier.public.n_squared.bit_length().div_ceil(64) * 8;
        let partial_entries: usize = cell_ranges
            .iter()
            .map(|r| (r.end - 1) / self.num_silos - r.start / self.num_silos + 1)
            .sum();
        rt.fold_gauge().record(partial_entries * ct_bytes);
        let compute_cell = |silo: usize, j: usize| -> Ciphertext {
            let mut acc = self.paillier.public.trivial_zero();
            // A dropped silo's report never reaches the server: neither its weighted
            // deltas nor its noise enter the per-coordinate total (the pairwise masks
            // cancel over the silos that did contribute, so no recovery is needed).
            if dropped.is_some_and(|d| d[silo]) {
                return acc;
            }
            for (u, delta) in clipped_deltas[silo].iter().enumerate() {
                if self.silo_histograms[silo][u] == 0 || delta.is_empty() {
                    continue;
                }
                let scalar = mod_mul(&self.codec.encode(delta[j]), &prefixes[silo][u], n);
                let ctx = inverse_ctxs[u].as_ref().expect("context built for participating user");
                let term = ctx.pow(&scalar);
                acc = self.paillier.public.add(&acc, &term);
            }
            let noise_scalar = mod_mul(&self.codec.encode(noises[silo][j]), &self.c_lcm, n);
            self.paillier.public.add_plain(&acc, &noise_scalar)
        };
        // Chunk partials carry (coordinate, running total) pairs; a chunk touches at
        // most ⌈chunk/|S|⌉ + 1 coordinates, and partials merge at shared boundaries.
        let fold_cell = |acc: &mut Vec<(usize, Ciphertext)>, idx: usize| {
            let j = idx / self.num_silos;
            let silo = idx % self.num_silos;
            let cell = compute_cell(silo, j);
            match acc.last_mut() {
                Some((last_j, total)) if *last_j == j => {
                    *total = self.paillier.public.add(total, &cell);
                }
                _ => acc.push((j, cell)),
            }
        };
        let merge = |mut a: Vec<(usize, Ciphertext)>, b: Vec<(usize, Ciphertext)>| {
            for (j, partial) in b {
                match a.last_mut() {
                    Some((last_j, total)) if *last_j == j => {
                        *total = self.paillier.public.add(total, &partial);
                    }
                    _ => a.push((j, partial)),
                }
            }
            a
        };
        let totals: Vec<Ciphertext> = rt
            .par_fold_reduce(num_cells, chunk_size, Vec::new, fold_cell, merge)
            .expect("at least one (silo, coordinate) cell")
            .into_iter()
            .map(|(_, total)| total)
            .collect();
        debug_assert_eq!(totals.len(), dim);
        let silo_weighting = silo_span.finish();

        // Step 2.(c) server side: parallel decryption — one CRT `c^λ mod n²` per
        // coordinate — and fixed-point decoding. (The homomorphic cross-silo sum is
        // fused into the streaming fold above.) The `aggregation` span covers decryption
        // plus decoding; each coordinate's decrypt additionally carries its own nested
        // `decryption` span so traces show where the phase's time actually goes.
        let agg_span = trace::timed_span("protocol", "aggregation");
        let out: Vec<f64> = rt.par_map(&totals, |j, total| {
            let dec_span = trace::span("protocol", "decryption").arg("coordinate", j);
            let decrypted = self.paillier.secret.decrypt(total);
            drop(dec_span);
            self.codec.decode(&decrypted, &self.c_lcm)
        });
        let aggregation = agg_span.finish();
        (out, RoundTimings { server_encryption: Duration::ZERO, silo_weighting, aggregation })
    }

    /// The plaintext value the protocol is supposed to compute:
    /// `Σ_s ( Σ_u (n_{s,u} / N_u) Δ̃_{s,u} + z_s )`, honouring the sub-sampling mask.
    pub fn plaintext_reference(
        &self,
        clipped_deltas: &[Vec<Vec<f64>>],
        noises: &[Vec<f64>],
        sampled: Option<&[bool]>,
    ) -> Vec<f64> {
        let dim = noises[0].len();
        let mut out = vec![0.0; dim];
        for silo in 0..self.num_silos {
            for (u, delta) in clipped_deltas[silo].iter().enumerate() {
                let keep = sampled.is_none_or(|s| s[u]);
                let n_su = self.silo_histograms[silo][u];
                if !keep || n_su == 0 || delta.is_empty() || self.user_totals[u] == 0 {
                    continue;
                }
                let w = n_su as f64 / self.user_totals[u] as f64;
                for (o, d) in out.iter_mut().zip(delta.iter()) {
                    *o += w * d;
                }
            }
            for (o, z) in out.iter_mut().zip(noises[silo].iter()) {
                *o += z;
            }
        }
        out
    }

    /// The plaintext value a faulted round is supposed to compute: the
    /// [`PrivateWeightingProtocol::plaintext_reference`] sum restricted to silos *not*
    /// marked in `dropped`, re-weighted by `|S| / |S_surviving|`.
    pub fn plaintext_reference_faulted(
        &self,
        clipped_deltas: &[Vec<Vec<f64>>],
        noises: &[Vec<f64>],
        sampled: Option<&[bool]>,
        dropped: &[bool],
    ) -> Vec<f64> {
        assert_eq!(dropped.len(), self.num_silos, "one dropout flag per silo required");
        let dim = noises[0].len();
        let mut out = vec![0.0; dim];
        for silo in 0..self.num_silos {
            if dropped[silo] {
                continue;
            }
            for (u, delta) in clipped_deltas[silo].iter().enumerate() {
                let keep = sampled.is_none_or(|s| s[u]);
                let n_su = self.silo_histograms[silo][u];
                if !keep || n_su == 0 || delta.is_empty() || self.user_totals[u] == 0 {
                    continue;
                }
                let w = n_su as f64 / self.user_totals[u] as f64;
                for (o, d) in out.iter_mut().zip(delta.iter()) {
                    *o += w * d;
                }
            }
            for (o, z) in out.iter_mut().zip(noises[silo].iter()) {
                *o += z;
            }
        }
        let surviving = dropped.iter().filter(|&&d| !d).count().max(1);
        let factor = self.num_silos as f64 / surviving as f64;
        if factor != 1.0 {
            for o in out.iter_mut() {
                *o *= factor;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_histogram() -> Vec<Vec<usize>> {
        // 3 silos, 4 users
        vec![vec![2, 0, 1, 3], vec![1, 4, 0, 1], vec![0, 2, 2, 0]]
    }

    fn test_config() -> ProtocolConfig {
        ProtocolConfig { paillier_bits: 256, dh_bits: 128, n_max: 16, ..Default::default() }
    }

    fn deltas_and_noise(
        histogram: &[Vec<usize>],
        dim: usize,
        seed: u64,
    ) -> (Vec<Vec<Vec<f64>>>, Vec<Vec<f64>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let deltas: Vec<Vec<Vec<f64>>> = histogram
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&c| {
                        if c == 0 {
                            Vec::new()
                        } else {
                            (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()
                        }
                    })
                    .collect()
            })
            .collect();
        let noises: Vec<Vec<f64>> = histogram
            .iter()
            .map(|_| (0..dim).map(|_| rng.gen_range(-0.01..0.01)).collect())
            .collect();
        (deltas, noises)
    }

    #[test]
    fn protocol_matches_plaintext_aggregation() {
        let mut rng = StdRng::seed_from_u64(1);
        let histogram = small_histogram();
        let protocol = PrivateWeightingProtocol::setup(&histogram, &test_config(), &mut rng);
        let (deltas, noises) = deltas_and_noise(&histogram, 4, 2);
        let (secure, timings) = protocol.weighting_round(&deltas, &noises, None, &mut rng);
        let reference = protocol.plaintext_reference(&deltas, &noises, None);
        for (a, b) in secure.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-6, "secure {a} vs plaintext {b}");
        }
        assert!(timings.total() > Duration::ZERO);
    }

    #[test]
    fn subsampling_removes_unsampled_users_exactly() {
        let mut rng = StdRng::seed_from_u64(3);
        let histogram = small_histogram();
        let protocol = PrivateWeightingProtocol::setup(&histogram, &test_config(), &mut rng);
        let (deltas, noises) = deltas_and_noise(&histogram, 3, 4);
        let sampled = vec![true, false, true, false];
        let (secure, _) = protocol.weighting_round(&deltas, &noises, Some(&sampled), &mut rng);
        let reference = protocol.plaintext_reference(&deltas, &noises, Some(&sampled));
        for (a, b) in secure.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-6, "secure {a} vs plaintext {b}");
        }
        // and it differs from the un-sampled aggregate
        let full_reference = protocol.plaintext_reference(&deltas, &noises, None);
        let diff: f64 =
            reference.iter().zip(full_reference.iter()).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-3);
    }

    #[test]
    fn reference_weights_match_record_proportional_strategy() {
        let mut rng = StdRng::seed_from_u64(5);
        let histogram = small_histogram();
        let protocol = PrivateWeightingProtocol::setup(&histogram, &test_config(), &mut rng);
        let weights = protocol.reference_weights();
        assert!((weights.get(0, 0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((weights.get(1, 1) - 4.0 / 6.0).abs() < 1e-12);
        assert!(weights.satisfies_sensitivity_constraint(1e-9));
    }

    #[test]
    fn setup_reports_timings_and_key_size() {
        let mut rng = StdRng::seed_from_u64(6);
        let protocol =
            PrivateWeightingProtocol::setup(&small_histogram(), &test_config(), &mut rng);
        assert!(protocol.setup_timings().total() > Duration::ZERO);
        assert!(protocol.modulus_bits() >= 255);
        assert_eq!(protocol.num_silos(), 3);
        assert_eq!(protocol.num_users(), 4);
        assert_eq!(protocol.pair_seeds().len(), 3);
    }

    #[test]
    fn oblivious_subsampling_always_selected_matches_full_round() {
        // numerator == denominator: every user is selected, so the result must equal the
        // plaintext reference with no mask.
        let mut rng = StdRng::seed_from_u64(31);
        let histogram = small_histogram();
        let protocol = PrivateWeightingProtocol::setup(&histogram, &test_config(), &mut rng);
        let (deltas, noises) = deltas_and_noise(&histogram, 3, 32);
        let sampling = ObliviousSubsampling::new(4, 4);
        let (secure, flags, _) = protocol
            .weighting_round_with_oblivious_subsampling(&deltas, &noises, &sampling, &mut rng);
        assert!(flags.iter().all(|&f| f));
        let reference = protocol.plaintext_reference(&deltas, &noises, None);
        for (a, b) in secure.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn oblivious_subsampling_never_selected_leaves_only_noise() {
        let mut rng = StdRng::seed_from_u64(33);
        let histogram = small_histogram();
        let protocol = PrivateWeightingProtocol::setup(&histogram, &test_config(), &mut rng);
        let (deltas, noises) = deltas_and_noise(&histogram, 3, 34);
        let sampling = ObliviousSubsampling::new(0, 4);
        let (secure, flags, _) = protocol
            .weighting_round_with_oblivious_subsampling(&deltas, &noises, &sampling, &mut rng);
        assert!(flags.iter().all(|&f| !f));
        // Only the per-silo noise survives.
        let noise_only = protocol.plaintext_reference(
            &vec![vec![Vec::new(); protocol.num_users()]; protocol.num_silos()],
            &noises,
            None,
        );
        for (a, b) in secure.iter().zip(noise_only.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn oblivious_subsampling_matches_plaintext_for_realised_selection() {
        let mut rng = StdRng::seed_from_u64(35);
        let histogram = small_histogram();
        let protocol = PrivateWeightingProtocol::setup(&histogram, &test_config(), &mut rng);
        let (deltas, noises) = deltas_and_noise(&histogram, 3, 36);
        let sampling = ObliviousSubsampling::new(1, 2);
        assert!((sampling.probability() - 0.5).abs() < 1e-12);
        let (secure, flags, _) = protocol
            .weighting_round_with_oblivious_subsampling(&deltas, &noises, &sampling, &mut rng);
        let reference = protocol.plaintext_reference(&deltas, &noises, Some(&flags));
        for (a, b) in secure.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn weighting_round_is_bitwise_identical_across_thread_counts() {
        let histogram = small_histogram();
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(9);
            let cfg = ProtocolConfig { threads, ..test_config() };
            let protocol = PrivateWeightingProtocol::setup(&histogram, &cfg, &mut rng);
            let (deltas, noises) = deltas_and_noise(&histogram, 4, 42);
            let (out, _) = protocol.weighting_round(&deltas, &noises, None, &mut rng);
            out.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
        };
        let sequential = run(1);
        assert_eq!(sequential, run(2));
        assert_eq!(sequential, run(4));
    }

    #[test]
    fn oblivious_round_is_bitwise_identical_across_thread_counts() {
        let histogram = small_histogram();
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(13);
            let cfg = ProtocolConfig { threads, ..test_config() };
            let protocol = PrivateWeightingProtocol::setup(&histogram, &cfg, &mut rng);
            let (deltas, noises) = deltas_and_noise(&histogram, 3, 14);
            let sampling = ObliviousSubsampling::new(1, 2);
            let (out, flags, _) = protocol
                .weighting_round_with_oblivious_subsampling(&deltas, &noises, &sampling, &mut rng);
            (out.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(), flags)
        };
        let sequential = run(1);
        assert_eq!(sequential, run(2));
        assert_eq!(sequential, run(4));
    }

    #[test]
    #[should_panic(expected = "numerator must not exceed denominator")]
    fn oblivious_subsampling_rejects_invalid_fraction() {
        let _ = ObliviousSubsampling::new(3, 2);
    }

    #[test]
    #[should_panic(expected = "exceeds N_max")]
    fn rejects_user_totals_above_n_max() {
        let mut rng = StdRng::seed_from_u64(7);
        let histogram = vec![vec![20usize], vec![20usize]];
        let cfg =
            ProtocolConfig { n_max: 8, paillier_bits: 128, dh_bits: 64, ..Default::default() };
        let _ = PrivateWeightingProtocol::setup(&histogram, &cfg, &mut rng);
    }

    #[test]
    #[should_panic(expected = "at least two silos")]
    fn rejects_single_silo() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = PrivateWeightingProtocol::setup(&[vec![1, 2]], &test_config(), &mut rng);
    }

    fn faulted_config(plan: FaultPlan) -> ProtocolConfig {
        ProtocolConfig { fault_plan: plan, ..test_config() }
    }

    #[test]
    fn faulted_round_without_faults_matches_plain_round() {
        let histogram = small_histogram();
        let mut rng = StdRng::seed_from_u64(51);
        let protocol = PrivateWeightingProtocol::setup(&histogram, &test_config(), &mut rng);
        let (deltas, noises) = deltas_and_noise(&histogram, 3, 52);
        let round_rng = rng.clone();
        let (plain, _) = protocol.weighting_round(&deltas, &noises, None, &mut round_rng.clone());
        let (faulted, dropped, _) =
            protocol.weighting_round_faulted(&deltas, &noises, None, 0, &mut round_rng.clone());
        assert!(dropped.iter().all(|&d| !d));
        assert_eq!(
            plain.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            faulted.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dropout_reweights_surviving_homomorphic_sum_exactly() {
        // A dropped silo's cells are excluded from the homomorphic fold; the decrypted
        // aggregate must equal the surviving-silo plaintext reference (re-weighted by
        // |S|/|S_surviving|) and — before the common re-weighting factor — be bitwise
        // identical to a plain round where the dropped silo's inputs are explicit zeros.
        let histogram = small_histogram();
        let plan = FaultPlan { dropout_fraction: 0.4, seed: 77, ..FaultPlan::none() };
        let mut rng = StdRng::seed_from_u64(53);
        let protocol = PrivateWeightingProtocol::setup(&histogram, &faulted_config(plan), &mut rng);
        let (deltas, noises) = deltas_and_noise(&histogram, 4, 54);
        let round_rng = rng.clone();
        let (faulted, dropped, _) =
            protocol.weighting_round_faulted(&deltas, &noises, None, 3, &mut round_rng.clone());
        assert_eq!(dropped.iter().filter(|&&d| d).count(), 1, "0.4 of 3 silos rounds to one");

        let reference = protocol.plaintext_reference_faulted(&deltas, &noises, None, &dropped);
        for (a, b) in faulted.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-6, "faulted {a} vs surviving reference {b}");
        }
        // And the re-weighted aggregate genuinely differs from the full-participation one.
        let full = protocol.plaintext_reference(&deltas, &noises, None);
        let diff: f64 = reference.iter().zip(full.iter()).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-3, "dropout must change the aggregate");

        // Bitwise exactness of the fold: dropping silo s equals zeroing silo s's inputs.
        let mut zeroed_deltas = deltas.clone();
        let mut zeroed_noises = noises.clone();
        for (silo, &gone) in dropped.iter().enumerate() {
            if gone {
                zeroed_deltas[silo] = vec![Vec::new(); protocol.num_users()];
                zeroed_noises[silo] = vec![0.0; 4];
            }
        }
        let (zeroed, _) =
            protocol.weighting_round(&zeroed_deltas, &zeroed_noises, None, &mut round_rng.clone());
        let surviving = dropped.iter().filter(|&&d| !d).count();
        let factor = protocol.num_silos() as f64 / surviving as f64;
        let rescaled: Vec<u64> = zeroed.iter().map(|v| (v * factor).to_bits()).collect();
        assert_eq!(faulted.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), rescaled);
    }

    #[test]
    fn faulted_round_is_bitwise_identical_across_threads_and_chunks() {
        let histogram = small_histogram();
        let plan = FaultPlan {
            dropout_fraction: 0.4,
            delay_fraction: 0.4,
            delay_ms: 1,
            seed: 5,
            ..FaultPlan::none()
        };
        let run = |threads: usize, chunk_size: usize| {
            let mut rng = StdRng::seed_from_u64(55);
            let cfg = ProtocolConfig { threads, chunk_size, ..faulted_config(plan) };
            let protocol = PrivateWeightingProtocol::setup(&histogram, &cfg, &mut rng);
            let (deltas, noises) = deltas_and_noise(&histogram, 3, 56);
            let (out, dropped, _) =
                protocol.weighting_round_faulted(&deltas, &noises, None, 1, &mut rng);
            (out.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(), dropped)
        };
        let sequential = run(1, usize::MAX);
        for (threads, chunk) in [(2, 1), (4, 7), (2, usize::MAX)] {
            assert_eq!(sequential, run(threads, chunk), "threads={threads} chunk={chunk}");
        }
    }

    #[test]
    fn delayed_silos_inflate_timings_but_not_results() {
        let histogram = small_histogram();
        let plan = FaultPlan { delay_fraction: 1.0, delay_ms: 40, ..FaultPlan::none() };
        let mut rng = StdRng::seed_from_u64(57);
        let protocol = PrivateWeightingProtocol::setup(&histogram, &faulted_config(plan), &mut rng);
        let (deltas, noises) = deltas_and_noise(&histogram, 3, 58);
        let round_rng = rng.clone();
        let (plain, plain_timings) =
            protocol.weighting_round(&deltas, &noises, None, &mut round_rng.clone());
        let (delayed, dropped, delayed_timings) =
            protocol.weighting_round_faulted(&deltas, &noises, None, 0, &mut round_rng.clone());
        assert!(dropped.iter().all(|&d| !d));
        assert_eq!(
            plain.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            delayed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "stragglers must not change the aggregate"
        );
        // All three silos straggle by 40 ms each on top of the real fold time.
        assert!(
            delayed_timings.silo_weighting >= plain_timings.silo_weighting
                && delayed_timings.silo_weighting >= Duration::from_millis(120),
            "delayed round must account 3 × 40 ms of straggler lateness"
        );
    }
}
