//! Protocol 1: the private weighting protocol.
//!
//! The enhanced weighting strategy `w_{s,u} = n_{s,u} / N_u` needs the cross-silo user
//! totals `N_u`, which no single party may learn. Protocol 1 combines three primitives so
//! that the weighted aggregation is computed without revealing any `n_{s,u}` (Theorem 5):
//!
//! 1. **Multiplicative blinding** — silos share a random seed `R` (unknown to the server)
//!    and blind their histograms as `B(n_{s,u}) = r_u · n_{s,u} mod n`; the server can sum
//!    and invert blinded totals but learns nothing about the underlying counts.
//! 2. **Secure aggregation** — pairwise additive masks derived from Diffie–Hellman shared
//!    seeds hide the individual blinded histograms (and later the per-silo encrypted model
//!    deltas) so the server only ever sees sums.
//! 3. **Paillier encryption** — the server returns `Enc_p(B_inv(N_u))` to the silos, which
//!    then compute the weighted, clipped model deltas *under encryption*
//!    (scalar-multiplying by `Encode(Δ̃) · n_{s,u} · r_u · C_LCM`), cancelling the blinding
//!    factor homomorphically; the server decrypts only the aggregate.
//!
//! The fixed-point `Encode`/`Decode` of Algorithm 5 and the `C_LCM` factor make the
//! per-user division by `N_u` exact on the finite field (Theorem 4).
//!
//! The implementation mirrors the message flow of the paper's Protocol 1 within a single
//! process and records wall-clock timings for each phase, which the benchmark harness uses
//! to regenerate Figures 10 and 11.
//!
//! ## Parallel execution
//!
//! The per-(silo, user) Paillier work — server-side encryption of the blinded inverses
//! (step 2.a), silo-side weighted `scalar_mul` of the clipped deltas (2.b) and the
//! homomorphic aggregation plus decryption (2.c) — runs on the deterministic
//! [`uldp_runtime::Runtime`] worker pool. Steps 2.(b)–(c) stream through one chunked
//! fold over the `(silo, coordinate)` cells in coordinate-major order
//! ([`uldp_runtime::Runtime::par_fold_reduce`]): each chunk folds its cells straight
//! into per-coordinate ciphertext totals, so no per-cell ciphertext collection is ever
//! materialised — O(dim + chunks) transient ciphertexts instead of O(silos × dim) —
//! and only the per-coordinate totals reach the decryption pass. All encryption
//! randomness is derived per user index from a single 256-bit seed drawn from the
//! caller's RNG, and ciphertext accumulation is exact modular arithmetic, so every
//! ciphertext and the decrypted aggregate are bitwise-identical at any thread count and
//! chunk size (`ProtocolConfig::threads` / `ULDP_THREADS`,
//! `ProtocolConfig::chunk_size` / `ULDP_CHUNK`); `RoundTimings` still reports each
//! phase's wall-clock separately (timings, being wall-clock, naturally vary).
//!
//! All exponentiations run on the Montgomery engine of `uldp-bigint` through contexts
//! cached in the Paillier keys (built once at setup, shared by every round): step 2.(a)
//! encrypts over the cached `n²` context, step 2.(b) hoists one fixed-base context per
//! encrypted inverse out of the (silo, coordinate) cell loop, and step 2.(c) decrypts by
//! CRT over cached `p²`/`q²` contexts. `ULDP_GENERIC_MODPOW=1` forces the schoolbook
//! square-and-multiply path instead; both paths produce bit-identical ciphertexts and
//! aggregates (CI diffs them).
//!
//! ## Multi-round ciphertext reuse
//!
//! Across rounds the server's step 2.(a) plaintexts — the blinded inverses — do not
//! change unless the sampling mask does, so a per-federation `RoundCryptoCache` holds
//! the encrypted inverses: round 1 encrypts and populates it; later rounds under an
//! unchanged mask *re-randomise* the cached ciphertexts (`c · h^t` for a fresh `t`, one
//! squaring-free fixed-base lookup per user) instead of paying a full Paillier
//! encryption each. Mask flips, silo dropouts and `ULDP_FRESH_ENCRYPT=1` (or
//! [`ProtocolConfig::fresh_encrypt`]) invalidate exactly the affected users' entries.
//! Step 2.(b)'s fixed-base tables anchor to the round-1 base ciphertexts
//! (`current^k = base_table[k] · h_table[rand_exp · k]`), so they too are reused across
//! rounds; bases too lightly used for a table fuse their cell terms into one
//! interleaved multi-exponentiation (`ModulusCtx::multi_exp`). Every step is exact
//! group arithmetic, so decrypted aggregates stay bitwise-identical to the
//! fresh-encryption path at every `(threads, shards, chunk)` point — CI diffs a cached
//! against a `ULDP_FRESH_ENCRYPT=1` smoke run to pin this.
//!
//! ## Population scaling
//!
//! Round cost tracks the *sampled* users, not the population. A round's user-level
//! Poisson sample arrives as a [`SampleMask`] — dense flags or sorted sampled indices
//! ([`crate::sampling`]). With a sparse mask, step 2.(a) encrypts (or re-randomises)
//! only the sampled users' inverses, the cross-round cache holds entries only for users
//! that have actually been sampled (a `BTreeMap` keyed by user id, not an `O(|U|)` slot
//! vector), and the step 2.(b) cell fold walks per-silo participant lists built from
//! the round's active users instead of scanning `0..|U|` per cell — so unsampled users
//! cost no ciphertext, no fixed-base table and no fold work. Omitting an unsampled
//! user's `Enc(0)` term subtracts exactly zero from every decrypted total, so sparse
//! and dense masks produce bitwise-identical aggregates at every `(threads, shards,
//! chunk)` point; `ULDP_DENSE_MASK=1` forces the dense representation everywhere so CI
//! can diff the two paths process against process.

use crate::config::WeightingStrategy;
use crate::sampling::SampleMask;
use crate::scenario::FaultPlan;
use crate::weighting::WeightMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;
use uldp_bigint::modular::{mod_inv, mod_mul, mod_pow};
use uldp_bigint::montgomery::{engine_disabled, FixedBaseCtx};
use uldp_bigint::BigUint;
use uldp_crypto::dh::{DhGroup, DhKeyPair};
use uldp_crypto::masking::MaskSeed;
use uldp_crypto::oblivious_transfer::OneOutOfP;
use uldp_crypto::paillier::{Ciphertext, PaillierKeyPair, PaillierPublicKey, RerandCtx};
use uldp_crypto::{FixedPointCodec, MultiplicativeBlinder};
use uldp_runtime::{seeding, CloseOnDrop, Handoff, Runtime};
use uldp_telemetry::{metrics, trace};

/// Cryptographic parameters of the protocol.
#[derive(Clone, Debug)]
pub struct ProtocolConfig {
    /// Paillier modulus size in bits (the paper's default security level is 3072; tests
    /// and quick demos use smaller moduli).
    pub paillier_bits: usize,
    /// Size of the custom Diffie–Hellman safe-prime group used for the silo key exchange.
    /// Ignored when [`ProtocolConfig::use_rfc_group`] is set.
    pub dh_bits: usize,
    /// Use the RFC 3526 2048-bit MODP group instead of generating a custom group.
    pub use_rfc_group: bool,
    /// Fixed-point precision parameter `P` of Algorithm 5.
    pub precision: f64,
    /// Upper bound `N_max` on the number of records a user may hold across silos;
    /// `C_LCM = lcm(1..=N_max)`.
    pub n_max: u64,
    /// Worker threads for the protocol's parallel phases: `0` uses the process-wide
    /// runtime (`ULDP_THREADS` / available parallelism), `1` forces sequential execution,
    /// any other value builds a dedicated pool. Results are bitwise-identical regardless.
    pub threads: usize,
    /// Fold chunk size (cells per chunk) for the streaming `(silo, coordinate)` cell
    /// fold of step 2.(b)–(c): `0` reads `ULDP_CHUNK`, falling back to a small default.
    /// Ciphertext accumulation is exact modular arithmetic, so results are
    /// bitwise-identical at any setting.
    pub chunk_size: usize,
    /// Deterministic fault injection for the protocol's rounds ([`crate::scenario`]):
    /// silos dropping or straggling between steps 2.(b) and 2.(c). Only honoured by
    /// [`PrivateWeightingProtocol::weighting_round_faulted`]; the plain round entry
    /// points ignore it. The default plan injects nothing.
    pub fault_plan: FaultPlan,
    /// Bypass the cross-round ciphertext cache: every round freshly encrypts all
    /// blinded inverses (the pre-cache behaviour). `ULDP_FRESH_ENCRYPT=1` forces the
    /// same bypass process-wide; decrypted aggregates are bitwise-identical either way
    /// (CI diffs them), only the per-round `server_encryption` cost changes.
    pub fresh_encrypt: bool,
    /// Depth of the multi-round pipeline driven by
    /// [`PrivateWeightingProtocol::run_rounds`]: how many rounds the fold stage
    /// (steps 2.a–2.b) may run ahead of the decrypt stage (step 2.c). `0` reads
    /// `ULDP_PIPELINE_DEPTH` (default 2, classic double buffering); the `ULDP_PIPELINE`
    /// kill-switch forces the sequential path regardless. The pipeline reorders *when*
    /// work happens, never what it computes — aggregates are bitwise-identical at any
    /// depth.
    pub pipeline_depth: usize,
}

/// Default cells-per-chunk of the protocol's streaming fold when neither
/// [`ProtocolConfig::chunk_size`] nor `ULDP_CHUNK` is set. Each cell already amortises
/// one Paillier exponentiation per participating user, so fine chunks cost little and
/// keep the pool balanced even for small `silos × dim` grids.
const DEFAULT_PROTOCOL_CHUNK: usize = 4;

/// Returns `true` when `ULDP_FRESH_ENCRYPT` forces every round to freshly encrypt the
/// blinded inverses instead of re-randomising cached ciphertexts. Read once per process;
/// accepts `1` / `true`.
pub fn fresh_encrypt_forced() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("ULDP_FRESH_ENCRYPT")
            .map(|v| matches!(v.trim(), "1" | "true" | "TRUE"))
            .unwrap_or(false)
    })
}

/// Reserved derivation index for the re-randomisation context's secret unit `ρ`. The
/// per-user encryption streams use indices `0..num_users`, so the reserved slot can
/// never collide with them — and because `ρ` is derived from the round's batch seed,
/// building the context consumes **no** extra draws from the caller's RNG: the cached
/// and `ULDP_FRESH_ENCRYPT=1` executions stay stream-aligned round for round.
const RERAND_SEED_INDEX: u64 = u64::MAX;

/// Mirror of the crypto crate's fixed-base threshold (`FIXED_BASE_MIN_MULS`): below this
/// many expected exponentiations of one base a table never amortises, and the cell
/// terms are gathered into one interleaved multi-exponentiation instead.
const FIXED_BASE_TABLE_MIN_MULS: usize = 8;

/// Headroom (bits) the accumulated re-randomisation exponent may grow beyond the
/// plaintext-modulus width before the cache re-bases the entry with a fresh encryption.
/// Exponents compose additively across rounds (≈1 extra bit per doubling of the round
/// count), so the guard is unreachable in practice; it exists to keep the shifted-table
/// exponent `rand_exp · scalar` inside the `2·|n| + 64` bits the [`RerandCtx`] table
/// covers.
const RERAND_EXP_HEADROOM_BITS: usize = 64;

/// One user's cached encrypted inverse. `base` is the ciphertext the fixed-base table
/// (if any) is anchored to; `current = base · h^rand_exp mod n²` is what the silos
/// actually received in the most recent round. Keeping the pair lets step 2.(b) reuse
/// the round-1 table forever: `current^k = base_table[k] · h_table[rand_exp · k]` —
/// exact group arithmetic, bitwise-identical to a direct table over `current`.
struct CacheEntry {
    /// The sampling decision the entry was encrypted under; a flip invalidates it (the
    /// plaintext changes between the blinded inverse and zero).
    keep: bool,
    /// Ciphertext the fixed-base table is anchored to.
    base: Ciphertext,
    /// Most recently distributed re-randomisation of `base`.
    current: Ciphertext,
    /// Accumulated re-randomisation exponent: `current = base · h^rand_exp`.
    rand_exp: BigUint,
    /// Fixed-base table over `base`, built lazily by step 2.(b) and reused until the
    /// entry is invalidated.
    table: Option<Arc<FixedBaseCtx>>,
}

/// Per-federation cross-round ciphertext cache: round 1 encrypts every blinded inverse
/// and populates the entries; later rounds with an unchanged sampling mask re-randomise
/// the cached ciphertexts in one pooled batch (`c · h^t`, one squaring-free fixed-base
/// `pow` per user) instead of paying a full Paillier encryption each. Mask changes,
/// silo dropouts and [`ProtocolConfig::fresh_encrypt`] / `ULDP_FRESH_ENCRYPT=1`
/// invalidate only the affected users' entries, so multi-round cost is
/// `encrypt + (R − 1) · rerandomise` while the decrypted aggregates stay
/// bitwise-identical to the fresh-encryption path.
struct RoundCryptoCache {
    /// Shared re-randomisation context (`h = ρ^n mod n²` plus its wide fixed-base
    /// table), derived once per federation from the first round's reserved seed slot.
    rerand: Option<Arc<RerandCtx>>,
    /// Per-user entries keyed by user id, created lazily the first round a user is
    /// active and removed on invalidation. Sparse sampled rounds therefore hold
    /// `O(q·|U|)`-many entries — an unsampled user never allocates cache state.
    entries: BTreeMap<u32, CacheEntry>,
    /// Users freshly encrypted by the most recent round's step 2.(a).
    last_fresh: usize,
    /// Users re-randomised from cache by the most recent round's step 2.(a).
    last_rerandomised: usize,
}

/// Read-only snapshot of one user's cache entry, taken during step 2.(a) so the
/// streaming fold of step 2.(b) never touches the cache mutex.
struct CachedUserState {
    base: Ciphertext,
    table: Option<Arc<FixedBaseCtx>>,
    rand_exp: BigUint,
}

/// Snapshot of the whole cache for one round (only present on the cached path).
struct CachedRoundState {
    users: Vec<CachedUserState>,
    rerand: Arc<RerandCtx>,
}

/// How step 2.(b) evaluates `inverse^scalar` for one participating user this round.
enum InverseEval {
    /// Schoolbook square-and-multiply (the `ULDP_GENERIC_MODPOW=1` path).
    Generic { base: BigUint },
    /// Too few uses for a table: the cell's terms are gathered and fused into one
    /// interleaved (Shamir-trick) multi-exponentiation over the cached `n²` context —
    /// the shared squaring ladder replaces one ladder per term.
    Fused { base: BigUint },
    /// Fixed-base table directly over the distributed ciphertext.
    Table(Arc<FixedBaseCtx>),
    /// Cached entry whose table is anchored to the round-1 `base`:
    /// `current^k = base_table[k] · h_table[rand_exp · k]`.
    Shifted { base_table: Arc<FixedBaseCtx>, rand_exp: BigUint, rerand: Arc<RerandCtx> },
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            paillier_bits: 512,
            dh_bits: 256,
            use_rfc_group: false,
            precision: 1e-10,
            n_max: 64,
            threads: 0,
            chunk_size: 0,
            fault_plan: FaultPlan::none(),
            fresh_encrypt: false,
            pipeline_depth: 0,
        }
    }
}

impl ProtocolConfig {
    /// The paper's full-strength parameters (3072-bit security, `N_max = 2000`).
    ///
    /// Key generation and per-round encryption at this size are expensive; benchmarks
    /// report the key size they actually ran with.
    pub fn paper_scale() -> Self {
        ProtocolConfig {
            paillier_bits: 3072,
            dh_bits: 0,
            use_rfc_group: true,
            precision: 1e-10,
            n_max: 2000,
            threads: 0,
            chunk_size: 0,
            fault_plan: FaultPlan::none(),
            fresh_encrypt: false,
            pipeline_depth: 0,
        }
    }
}

/// Wall-clock timings of the one-off setup phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProtocolTimings {
    /// Paillier + Diffie–Hellman key generation and pairwise seed agreement (steps a–c).
    pub key_exchange: Duration,
    /// Blinded-histogram construction, masking and aggregation (steps d–e).
    pub histogram_blinding: Duration,
    /// Modular inversion of the blinded totals on the server (step f).
    pub inverse_computation: Duration,
}

impl ProtocolTimings {
    /// Total setup time.
    pub fn total(&self) -> Duration {
        self.key_exchange + self.histogram_blinding + self.inverse_computation
    }
}

/// Wall-clock timings of one weighting round (steps 2.a–2.c).
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundTimings {
    /// Server-side Poisson sampling and Paillier encryption of the blinded inverses (2.a).
    pub server_encryption: Duration,
    /// Silo-side weighted encryption of clipped deltas and noise (2.b) plus the fused
    /// homomorphic cross-silo summation, streamed over all silos.
    pub silo_weighting: Duration,
    /// Server-side decryption and decoding (2.c). (The homomorphic aggregation itself is
    /// fused into the streaming silo-weighting fold.)
    pub aggregation: Duration,
}

impl RoundTimings {
    /// Total round time.
    pub fn total(&self) -> Duration {
        self.server_encryption + self.silo_weighting + self.aggregation
    }
}

/// One round's inputs for [`PrivateWeightingProtocol::run_rounds`]: the arguments the
/// per-round entry points take, bundled so a replay can be described up front and
/// driven through the pipeline.
pub struct RoundInput<'a> {
    /// `clipped_deltas[s][u]` — silo `s`'s clipped model delta for user `u` (empty when
    /// the user has no records in the silo).
    pub clipped_deltas: &'a [Vec<Vec<f64>>],
    /// `noises[s]` — the Gaussian noise vector silo `s` adds.
    pub noises: &'a [Vec<f64>],
    /// Optional user-level sub-sampling mask.
    pub sampled: Option<&'a SampleMask>,
    /// `Some(round)` runs the round under the configured [`ProtocolConfig::fault_plan`],
    /// drawing round `round`'s fault set. Rounds whose draw drops a silo drain the
    /// pipeline and run sequentially (cache invalidation must stay ordered); `None`
    /// ignores the plan entirely, like [`PrivateWeightingProtocol::weighting_round`].
    pub faulted: Option<u64>,
}

impl<'a> RoundInput<'a> {
    /// A plain, fault-free, unsampled round.
    pub fn new(clipped_deltas: &'a [Vec<Vec<f64>>], noises: &'a [Vec<f64>]) -> Self {
        RoundInput { clipped_deltas, noises, sampled: None, faulted: None }
    }
}

/// One round's outputs from [`PrivateWeightingProtocol::run_rounds`] — exactly what the
/// matching sequential entry point returns, bit for bit.
pub struct RoundOutput {
    /// The decoded aggregate `Σ_s (Σ_u w_{s,u} Δ̃_{s,u} + z_s)` (re-weighted by
    /// `|S| / |S_surviving|` on faulted rounds).
    pub aggregate: Vec<f64>,
    /// Dropout mask in silo order (faulted rounds only).
    pub dropped: Option<Vec<bool>>,
    /// Per-phase wall-clocks. Under overlap the phases of different rounds run
    /// concurrently, so summed phase times can exceed the replay's wall-clock.
    pub timings: RoundTimings,
}

/// What the pipeline's fold stage hands the decrypt stage for one round: the folded
/// per-coordinate totals plus everything needed to finish the round without touching
/// shared mutable state.
struct DecryptJob {
    totals: Vec<Ciphertext>,
    server_encryption: Duration,
    silo_weighting: Duration,
    /// `|S| / |S_surviving|` (always 1.0 for pipelined rounds — dropouts drain).
    reweight: f64,
    dropped: Option<Vec<bool>>,
}

/// Private user-level sub-sampling via 1-out-of-P oblivious transfer (Section 4.1).
///
/// The participation probability is `numerator / denominator`: the server prepares
/// `numerator` copies of the real encrypted inverse and `denominator − numerator`
/// encryptions of zero, and one is fetched obliviously. Only rational probabilities can be
/// expressed this way — the discretisation limitation the paper notes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObliviousSubsampling {
    /// Number of "real" slots.
    pub numerator: u64,
    /// Total number of slots `P`.
    pub denominator: u64,
}

impl ObliviousSubsampling {
    /// Creates a sub-sampling description with participation probability
    /// `numerator / denominator`.
    pub fn new(numerator: u64, denominator: u64) -> Self {
        assert!(denominator >= 1, "denominator must be at least 1");
        assert!(numerator <= denominator, "numerator must not exceed denominator");
        ObliviousSubsampling { numerator, denominator }
    }

    /// The effective user-level participation probability `q = numerator / denominator`.
    pub fn probability(&self) -> f64 {
        self.numerator as f64 / self.denominator as f64
    }

    /// Builds the OT offer for one user: `numerator` re-randomised copies of the real
    /// ciphertext followed by `denominator − numerator` fresh encryptions of zero.
    ///
    /// Every slot is a fresh Paillier encryption, so the receiver cannot tell real from
    /// dummy slots.
    pub fn build_offer<R: Rng + ?Sized>(
        &self,
        public_key: &PaillierPublicKey,
        real: &Ciphertext,
        rng: &mut R,
    ) -> OneOutOfP<Ciphertext> {
        let mut items = Vec::with_capacity(self.denominator as usize);
        for _ in 0..self.numerator {
            // Homomorphic re-randomisation: multiplying by a fresh `r^n` is *exactly*
            // the historical `add(real, encrypt(rng, 0))` — `Enc(0; r) = (1 + 0·n)·r^n
            // = r^n` — with the same single `sample_unit` draw from `rng`, so the
            // offer's ciphertext bits are unchanged; it just skips the redundant
            // `(1 + m·n)` blinding step and one multiplication.
            items.push(public_key.rerandomise(rng, real));
        }
        for _ in self.numerator..self.denominator {
            items.push(public_key.encrypt(rng, &BigUint::zero()));
        }
        OneOutOfP::new(items)
    }
}

/// The state of a completed setup phase, able to run any number of weighting rounds.
pub struct PrivateWeightingProtocol {
    num_silos: usize,
    num_users: usize,
    paillier: PaillierKeyPair,
    codec: FixedPointCodec,
    c_lcm: BigUint,
    /// The silos' shared blinding-factor expander (seeded by `R`, never sent to the server).
    blinder: MultiplicativeBlinder,
    /// Per-silo record histograms `n_{s,u}` (silo-private in the real deployment).
    silo_histograms: Vec<Vec<u64>>,
    /// Cross-silo totals `N_u` (kept only to validate inputs; not revealed by the protocol).
    user_totals: Vec<u64>,
    /// Server-side blinded inverses `B_inv(N_u)`; `None` for users with no records.
    blinded_inverses: Vec<Option<BigUint>>,
    /// Pairwise secure-aggregation seeds (symmetric).
    pair_seeds: Vec<Vec<MaskSeed>>,
    setup_timings: ProtocolTimings,
    /// Worker pool for the parallel phases (shared, or dedicated per
    /// [`ProtocolConfig::threads`]).
    runtime: Arc<Runtime>,
    /// Resolved cells-per-chunk of the streaming cell fold
    /// ([`ProtocolConfig::chunk_size`] / `ULDP_CHUNK` / default).
    chunk_size: usize,
    /// Fault plan for [`PrivateWeightingProtocol::weighting_round_faulted`].
    fault_plan: FaultPlan,
    /// Cross-round ciphertext cache for step 2.(a) (see [`RoundCryptoCache`]).
    cache: Mutex<RoundCryptoCache>,
    /// Bypass the cache ([`ProtocolConfig::fresh_encrypt`] or `ULDP_FRESH_ENCRYPT=1`):
    /// every round freshly encrypts all blinded inverses.
    fresh_encrypt: bool,
    /// Resolved multi-round pipeline depth ([`ProtocolConfig::pipeline_depth`] /
    /// `ULDP_PIPELINE_DEPTH` / `ULDP_PIPELINE`); `0` means sequential.
    pipeline_depth: usize,
}

impl PrivateWeightingProtocol {
    /// Runs the setup phase (Protocol 1, step 1) for the given per-silo histograms.
    ///
    /// `histogram[s][u]` is the number of records user `u` holds in silo `s`. Every user
    /// total must be at most `config.n_max` for the `C_LCM` divisibility argument of
    /// Theorem 4 to hold.
    pub fn setup<R: Rng + ?Sized>(
        histogram: &[Vec<usize>],
        config: &ProtocolConfig,
        rng: &mut R,
    ) -> Self {
        let num_silos = histogram.len();
        assert!(num_silos >= 2, "the protocol needs at least two silos");
        let num_users = histogram[0].len();
        assert!(num_users >= 1, "the protocol needs at least one user");
        assert!(histogram.iter().all(|row| row.len() == num_users));
        config.fault_plan.validate();
        let runtime = Runtime::handle(config.threads);

        // --- Step 1.(a)-(c): key generation and pairwise seed agreement. ---
        let key_span = trace::timed_span("protocol", "key_exchange");
        let paillier = PaillierKeyPair::generate(rng, config.paillier_bits);
        // Warm the ciphertext-modulus Montgomery context during setup so every round
        // (steps 2.(a)-(c)) shares the cached engine state and no phase ever pays for
        // context construction mid-round.
        let _ = paillier.public.ctx_n2();
        let dh_group = if config.use_rfc_group {
            DhGroup::rfc3526_2048()
        } else {
            DhGroup::generate(rng, config.dh_bits.max(64))
        };
        let keypairs: Vec<DhKeyPair> =
            (0..num_silos).map(|_| DhKeyPair::generate(rng, &dh_group)).collect();
        let mut pair_seeds = vec![vec![MaskSeed::new([0u8; 32]); num_silos]; num_silos];
        for i in 0..num_silos {
            for j in 0..num_silos {
                if i != j {
                    pair_seeds[i][j] =
                        MaskSeed::new(keypairs[i].shared_seed(keypairs[j].public_key()));
                }
            }
        }
        // Silo 0 picks the shared random seed R and distributes it over the pairwise
        // channels; the server never sees it.
        let mut blind_seed = [0u8; 32];
        rng.fill(&mut blind_seed);
        let key_exchange = key_span.finish();

        let modulus = paillier.public.n.clone();
        let codec = FixedPointCodec::new(config.precision, modulus.clone());
        let c_lcm = uldp_bigint::lcm_up_to(config.n_max);
        let blinder = MultiplicativeBlinder::new(blind_seed, modulus.clone());

        // --- Step 1.(d)-(e): blinded, masked histogram aggregation. ---
        let hist_span = trace::timed_span("protocol", "histogram_blinding");
        let silo_histograms: Vec<Vec<u64>> =
            histogram.iter().map(|row| row.iter().map(|&c| c as u64).collect()).collect();
        let mut user_totals = vec![0u64; num_users];
        for row in &silo_histograms {
            for (t, &c) in user_totals.iter_mut().zip(row.iter()) {
                *t += c;
            }
        }
        for (&total, _) in user_totals.iter().zip(0..num_users) {
            assert!(
                total <= config.n_max,
                "user total {total} exceeds N_max = {} (required by Theorem 4)",
                config.n_max
            );
        }
        // Each silo blinds and masks its histogram; the server sums the masked values.
        // The pairwise masks cancel in the sum, so we compute the aggregate directly while
        // still exercising the blinding (what the server actually sees is r_u * N_u).
        // Blinding-factor expansion is SHA-256-based and per-user independent, so the
        // per-user columns run on the worker pool.
        let blinded_totals: Vec<BigUint> = runtime.par_map_range(num_users, |u| {
            let mut total = BigUint::zero();
            for row in &silo_histograms {
                let blinded = blinder.blind(u as u64, &BigUint::from_u64(row[u]));
                total = uldp_bigint::modular::mod_add(&total, &blinded, &modulus);
            }
            total
        });
        let histogram_blinding = hist_span.finish();

        // --- Step 1.(f): server inverts the blinded totals (one mod_inv per user). ---
        let inv_span = trace::timed_span("protocol", "inverse_computation");
        let blinded_inverses: Vec<Option<BigUint>> =
            runtime.par_map(
                &blinded_totals,
                |_, b| if b.is_zero() { None } else { mod_inv(b, &modulus) },
            );
        let inverse_computation = inv_span.finish();

        PrivateWeightingProtocol {
            num_silos,
            num_users,
            paillier,
            codec,
            c_lcm,
            blinder,
            silo_histograms,
            user_totals,
            blinded_inverses,
            pair_seeds,
            setup_timings: ProtocolTimings {
                key_exchange,
                histogram_blinding,
                inverse_computation,
            },
            runtime,
            chunk_size: uldp_runtime::resolve_chunk_size(config.chunk_size, DEFAULT_PROTOCOL_CHUNK),
            fault_plan: config.fault_plan,
            cache: Mutex::new(RoundCryptoCache {
                rerand: None,
                entries: BTreeMap::new(),
                last_fresh: 0,
                last_rerandomised: 0,
            }),
            fresh_encrypt: config.fresh_encrypt || fresh_encrypt_forced(),
            pipeline_depth: uldp_runtime::resolve_pipeline_depth(config.pipeline_depth),
        }
    }

    /// Replaces the worker pool this protocol instance runs on (e.g. to compare a
    /// sequential and a parallel execution of the same setup).
    pub fn with_runtime(mut self, runtime: Arc<Runtime>) -> Self {
        self.runtime = runtime;
        self
    }

    /// The worker pool in use.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Number of silos.
    pub fn num_silos(&self) -> usize {
        self.num_silos
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Bit length of the Paillier modulus actually in use.
    pub fn modulus_bits(&self) -> usize {
        self.paillier.public.modulus_bits()
    }

    /// Timings of the setup phase.
    pub fn setup_timings(&self) -> &ProtocolTimings {
        &self.setup_timings
    }

    /// The pairwise secure-aggregation seeds established during setup.
    pub fn pair_seeds(&self) -> &[Vec<MaskSeed>] {
        &self.pair_seeds
    }

    /// The record-proportional weight matrix the protocol implicitly computes
    /// (`w_{s,u} = n_{s,u} / N_u`), exposed for validation against the plaintext path.
    pub fn reference_weights(&self) -> WeightMatrix {
        let histogram: Vec<Vec<usize>> = self
            .silo_histograms
            .iter()
            .map(|row| row.iter().map(|&c| c as usize).collect())
            .collect();
        WeightMatrix::from_histogram(WeightingStrategy::RecordProportional, &histogram)
    }

    /// `(fresh, rerandomised)` user counts of the most recent round's step 2.(a): how
    /// many encrypted inverses were freshly Paillier-encrypted vs re-randomised from
    /// the cross-round cache. Bypass mode always reports `(num_users, 0)`.
    pub fn round_cache_stats(&self) -> (usize, usize) {
        let cache = self.cache.lock().expect("cache mutex poisoned");
        (cache.last_fresh, cache.last_rerandomised)
    }

    /// Number of users currently holding a cross-round cache entry. Dense rounds
    /// materialise one entry per user; sparse sampled rounds only ever materialise
    /// entries for users that have been active in some round.
    pub fn cached_entry_count(&self) -> usize {
        let cache = self.cache.lock().expect("cache mutex poisoned");
        cache.entries.len()
    }

    /// Estimated resident bytes of the cross-round per-user crypto state: two
    /// ciphertexts and one accumulated exponent per entry, plus any fixed-base tables.
    /// With a sparse [`SampleMask`] this tracks `O(q·|U|)` instead of `O(|U|)` — the
    /// population-scaling benchmarks report it alongside the fold gauge.
    pub fn cached_state_bytes(&self) -> usize {
        let cache = self.cache.lock().expect("cache mutex poisoned");
        let ct_bytes = self.paillier.public.n_squared.bit_length().div_ceil(64) * 8;
        let n_bytes = self.paillier.public.n.bit_length().div_ceil(64) * 8;
        let table_bytes = FixedBaseCtx::estimated_table_bytes(
            self.paillier.public.n_squared.bit_length(),
            self.paillier.public.n.bit_length(),
        );
        cache
            .entries
            .values()
            .map(|e| 2 * ct_bytes + n_bytes + if e.table.is_some() { table_bytes } else { 0 })
            .sum()
    }

    /// Drops every cached ciphertext (and the re-randomisation context), so the next
    /// round freshly encrypts all inverses — used by benchmarks that run several rounds
    /// of the same setup and need each to pay the full encryption cost.
    pub fn reset_round_cache(&self) {
        let mut cache = self.cache.lock().expect("cache mutex poisoned");
        cache.rerand = None;
        cache.entries.clear();
    }

    /// The round's *active* users — the users whose encrypted inverses are actually
    /// distributed to the silos — as an ascending id list.
    ///
    /// With no mask or a dense mask this is every user: unsampled users receive
    /// `Enc(0)`, the legacy path, bitwise identical to earlier revisions. A sparse mask
    /// keeps only sampled users that hold records — omitting a user's `Enc(0)` term
    /// subtracts exactly zero from every decrypted total, so the aggregate keeps
    /// identical bits while step 2.(a)–(b) cost drops to `O(q·|U|)` crypto operations.
    fn active_users(&self, sampled: Option<&SampleMask>) -> Vec<u32> {
        match sampled {
            Some(mask) if mask.is_sparse() => mask
                .iter()
                .filter(|&u| self.blinded_inverses[u].is_some())
                .map(|u| u as u32)
                .collect(),
            _ => (0..self.num_users as u32).collect(),
        }
    }

    /// Step 2.(a): produces the encrypted blinded inverses for one round's active users
    /// — either freshly encrypting everything (bypass mode, first round, invalidated
    /// entries) or re-randomising cached ciphertexts in one pooled batch. Returns the
    /// active user ids with their ciphertexts aligned position for position.
    ///
    /// Exactly one 256-bit batch seed is drawn from the caller's RNG whichever path
    /// runs, so the cached, fresh-encryption, sparse and dense executions all consume
    /// identical caller randomness streams and CI can diff their aggregates process
    /// against process. Per-user work is seeded from `(seed, user id)` — not the active
    /// position — so a sparse round derives exactly the per-user streams the dense walk
    /// would, and the output is bitwise-identical at any thread count.
    fn distribute_inverses<R: Rng + ?Sized>(
        &self,
        sampled: Option<&SampleMask>,
        rng: &mut R,
    ) -> (Vec<u32>, Vec<Ciphertext>, Option<CachedRoundState>) {
        let batch_seed = seeding::wide_seed_from_rng(rng);
        let active = self.active_users(sampled);
        let keep_of = |u: usize| -> bool {
            sampled.is_none_or(|m| m.contains(u)) && self.blinded_inverses[u].is_some()
        };
        let plaintext = |u: usize| -> BigUint {
            if keep_of(u) {
                self.blinded_inverses[u].clone().expect("keep implies a blinded inverse")
            } else {
                BigUint::zero()
            }
        };
        if self.fresh_encrypt {
            let cts: Vec<Ciphertext> = self.runtime.par_map(&active, |_, &u| {
                let mut rng = StdRng::from_seed(seeding::index_seed_wide(batch_seed, u as u64));
                self.paillier.public.encrypt(&mut rng, &plaintext(u as usize))
            });
            let mut cache = self.cache.lock().expect("cache mutex poisoned");
            cache.last_fresh = active.len();
            cache.last_rerandomised = 0;
            return (active, cts, None);
        }
        let mut cache = self.cache.lock().expect("cache mutex poisoned");
        if cache.rerand.is_none() {
            // The context's secret unit ρ comes from the reserved slot of THIS round's
            // batch seed: no extra caller draws, no collision with the user streams.
            let mut ctx_rng =
                StdRng::from_seed(seeding::index_seed_wide(batch_seed, RERAND_SEED_INDEX));
            cache.rerand = Some(Arc::new(self.paillier.public.rerand_ctx(&mut ctx_rng)));
        }
        let rerand = Arc::clone(cache.rerand.as_ref().expect("context just initialised"));
        let headroom_bits = self.paillier.public.n.bit_length() + RERAND_EXP_HEADROOM_BITS;
        let fresh: Vec<bool> = active
            .iter()
            .map(|&u| match cache.entries.get(&u) {
                Some(e) => {
                    e.keep != keep_of(u as usize) || e.rand_exp.bit_length() >= headroom_bits
                }
                None => true,
            })
            .collect();
        // One pooled pass over the active users: fresh entries pay a full Paillier
        // encryption, cached ones one squaring-free `c · h^t`. The workers only read
        // the entries through the guard held by this thread.
        let entries = &cache.entries;
        let results: Vec<(Ciphertext, Option<BigUint>)> = self.runtime.par_map(&active, |i, &u| {
            let mut rng = StdRng::from_seed(seeding::index_seed_wide(batch_seed, u as u64));
            if fresh[i] {
                (self.paillier.public.encrypt(&mut rng, &plaintext(u as usize)), None)
            } else {
                let entry = entries.get(&u).expect("non-fresh user has an entry");
                let (ct, t) = rerand.rerandomise(&mut rng, &entry.current);
                (ct, Some(t))
            }
        });
        let mut fresh_count = 0usize;
        let mut rerand_count = 0usize;
        for (i, (ct, t)) in results.iter().enumerate() {
            let u = active[i];
            match t {
                None => {
                    fresh_count += 1;
                    cache.entries.insert(
                        u,
                        CacheEntry {
                            keep: keep_of(u as usize),
                            base: ct.clone(),
                            current: ct.clone(),
                            rand_exp: BigUint::zero(),
                            table: None,
                        },
                    );
                }
                Some(t) => {
                    rerand_count += 1;
                    let entry = cache.entries.get_mut(&u).expect("non-fresh user has an entry");
                    entry.current = ct.clone();
                    entry.rand_exp = entry.rand_exp.add(t);
                }
            }
        }
        cache.last_fresh = fresh_count;
        cache.last_rerandomised = rerand_count;
        let users: Vec<CachedUserState> = active
            .iter()
            .map(|u| {
                let e = cache.entries.get(u).expect("every active user has an entry");
                CachedUserState {
                    base: e.base.clone(),
                    table: e.table.clone(),
                    rand_exp: e.rand_exp.clone(),
                }
            })
            .collect();
        drop(cache);
        let cts: Vec<Ciphertext> = results.into_iter().map(|(ct, _)| ct).collect();
        (active, cts, Some(CachedRoundState { users, rerand }))
    }

    /// Post-round cache invalidation after silo dropouts: any user with records in a
    /// dropped silo gets freshly re-encrypted next round. (The server only learns of a
    /// dropout when the round's reports are collected, so the invalidation necessarily
    /// lands after the fact; users untouched by the dropped silos keep their entries.)
    fn invalidate_users_of_dropped(&self, dropped: &[bool]) {
        let mut cache = self.cache.lock().expect("cache mutex poisoned");
        cache.entries.retain(|&u, _| {
            !dropped.iter().enumerate().any(|(s, &d)| d && self.silo_histograms[s][u as usize] > 0)
        });
    }

    /// Runs one weighting round (Protocol 1, step 2).
    ///
    /// * `clipped_deltas[s][u]` — silo `s`'s clipped model delta for user `u`
    ///   (`Δ̃_{s,u}` *before* weighting; empty when the user has no records in the silo).
    /// * `noises[s]` — the Gaussian noise vector `z_s` silo `s` adds.
    /// * `sampled` — optional user-level sub-sampling [`SampleMask`]. Under a dense
    ///   mask, unsampled users' inverses are encrypted as zero (step 2.a), so their
    ///   deltas drop out exactly; under a sparse mask they are skipped outright — no
    ///   ciphertext, no cache entry, no fold work — which yields the same aggregate bit
    ///   for bit (an `Enc(0)` term adds exactly zero to every decrypted total).
    ///
    /// Returns the decoded aggregate `Σ_s (Σ_u w_{s,u} Δ̃_{s,u} + z_s)` plus per-phase
    /// timings.
    pub fn weighting_round<R: Rng + ?Sized>(
        &self,
        clipped_deltas: &[Vec<Vec<f64>>],
        noises: &[Vec<f64>],
        sampled: Option<&SampleMask>,
        rng: &mut R,
    ) -> (Vec<f64>, RoundTimings) {
        assert_eq!(clipped_deltas.len(), self.num_silos, "one delta set per silo required");
        assert_eq!(noises.len(), self.num_silos, "one noise vector per silo required");
        let dim = noises[0].len();
        assert!(dim > 0, "model dimension must be positive");

        // --- Step 2.(a): server encrypts (possibly sub-sampled) blinded inverses, or —
        // when the cross-round cache holds them under an unchanged mask — re-randomises
        // the cached ciphertexts in one pooled batch. One 256-bit seed drawn from the
        // caller's RNG parameterises the whole batch; per-user randomness is derived
        // from (seed, u), so the output is bitwise-identical at any thread count.
        let enc_span = trace::timed_span("protocol", "server_encryption");
        let (active, encrypted_inverses, cached) = self.distribute_inverses(sampled, rng);
        let server_encryption = enc_span.finish();

        // --- Steps 2.(b)-(c): silo-side encrypted weighting, secure aggregation of
        // ciphertexts, decryption and decoding. The pairwise additive masks cancel in the
        // sum exactly as in step 1.(e); the decrypted aggregate is therefore the same with
        // or without them.
        let (out, mut timings) = self.weighting_round_with_inverses(
            clipped_deltas,
            noises,
            &active,
            &encrypted_inverses,
            dim,
            None,
            cached.as_ref(),
        );
        timings.server_encryption = server_encryption;
        (out, timings)
    }

    /// Runs one weighting round under the configured [`ProtocolConfig::fault_plan`]:
    /// silos selected by the plan drop out **between steps 2.(b) and 2.(c)** — after the
    /// server ships the encrypted blinded inverses, before silo reports aggregate — and
    /// straggling silos inflate the round's `silo_weighting` timing by
    /// [`FaultPlan::delay_ms`] each without touching the result.
    ///
    /// Degradation semantics: a dropped silo's `(silo, coordinate)` cells (deltas *and*
    /// noise) are excluded from the streaming homomorphic fold — the Paillier path needs
    /// no mask recovery because the pairwise masks cancel inside each per-coordinate sum
    /// over the silos that actually contributed — and the decrypted aggregate is
    /// re-weighted by `|S| / |S_surviving|` so the update keeps its expected scale. The
    /// result is *exactly* the surviving-silo plaintext reference
    /// ([`PrivateWeightingProtocol::plaintext_reference_faulted`]) and stays
    /// bitwise-identical across every `(threads, chunk_size)` setting; at least one silo
    /// always survives.
    ///
    /// `round` tells the plan which round's fault set to draw (faults are re-drawn every
    /// round). Returns the re-weighted aggregate, the dropout mask in silo order, and
    /// the per-phase timings.
    pub fn weighting_round_faulted<R: Rng + ?Sized>(
        &self,
        clipped_deltas: &[Vec<Vec<f64>>],
        noises: &[Vec<f64>],
        sampled: Option<&SampleMask>,
        round: u64,
        rng: &mut R,
    ) -> (Vec<f64>, Vec<bool>, RoundTimings) {
        assert_eq!(clipped_deltas.len(), self.num_silos, "one delta set per silo required");
        assert_eq!(noises.len(), self.num_silos, "one noise vector per silo required");
        let dim = noises[0].len();
        assert!(dim > 0, "model dimension must be positive");

        // Step 2.(a) is unchanged: the server encrypts (or re-randomises from cache)
        // before any silo drops.
        let enc_span = trace::timed_span("protocol", "server_encryption");
        let (active, encrypted_inverses, cached) = self.distribute_inverses(sampled, rng);
        let server_encryption = enc_span.finish();

        let dropped = self.fault_plan.dropped_silos(round, self.num_silos);
        let delayed = self.fault_plan.delayed_silos(round, self.num_silos);
        if uldp_telemetry::enabled() {
            // Structured fault events: one per affected silo, tagged with the round so
            // traces of multi-round runs stay attributable.
            for (silo, _) in dropped.iter().enumerate().filter(|(_, &d)| d) {
                metrics::FAULT_EVENTS.inc();
                trace::event(
                    "fault",
                    "dropout",
                    vec![("round", round.into()), ("silo", silo.into())],
                );
            }
            for (silo, _) in delayed.iter().enumerate().filter(|(_, &d)| d) {
                metrics::FAULT_EVENTS.inc();
                trace::event(
                    "fault",
                    "delay",
                    vec![
                        ("round", round.into()),
                        ("silo", silo.into()),
                        ("delay_ms", self.fault_plan.delay_ms.into()),
                    ],
                );
            }
        }
        let (mut out, mut timings) = self.weighting_round_with_inverses(
            clipped_deltas,
            noises,
            &active,
            &encrypted_inverses,
            dim,
            Some(&dropped),
            cached.as_ref(),
        );
        timings.server_encryption = server_encryption;

        // Surviving-silo re-weighting: the decrypted value is the exact sum over the
        // survivors, scaled up so the server update keeps its |S|-silo magnitude.
        let surviving = dropped.iter().filter(|&&d| !d).count();
        debug_assert!(surviving >= 1, "the fault plan must leave at least one silo");
        let factor = self.num_silos as f64 / surviving as f64;
        if factor != 1.0 {
            for o in out.iter_mut() {
                *o *= factor;
            }
        }
        // Stragglers: each delayed report lands `delay_ms` late. Simulated in the
        // timings only — no wall-clock sleep, the aggregate is untouched.
        let delayed_count = delayed.iter().filter(|&&d| d).count() as u64;
        timings.silo_weighting += Duration::from_millis(self.fault_plan.delay_ms * delayed_count);
        // A user whose records sit in a dropped silo gets freshly re-encrypted next
        // round; everyone else keeps their cached ciphertext.
        self.invalidate_users_of_dropped(&dropped);
        (out, dropped, timings)
    }

    /// Runs a multi-round replay through the round pipeline at the protocol's resolved
    /// depth ([`ProtocolConfig::pipeline_depth`] / `ULDP_PIPELINE_DEPTH`, with the
    /// `ULDP_PIPELINE` kill-switch forcing the sequential path).
    ///
    /// While the server decrypts round `t`'s per-coordinate totals (step 2.c), the pool
    /// is already folding round `t+1`'s cells — including its `RoundCryptoCache`
    /// re-randomisation batch (step 2.a). The stages commute because they touch
    /// disjoint state: the fold writes only ciphertext totals derived from the public
    /// key, the decrypt reads only already-folded totals with the secret key. Every
    /// caller-RNG draw happens on the submitting thread in round order (one 256-bit
    /// seed per round, exactly as the sequential loop draws it), so seed derivation
    /// never depends on overlap and the outputs are bitwise-identical to
    /// [`PrivateWeightingProtocol::weighting_round`] run in a loop, at every
    /// `(threads × shards × chunk × depth)` point.
    ///
    /// Rounds whose [`FaultPlan`] drops a silo force a pipeline drain: their dropout
    /// invalidates cache entries, which must not race a later round's re-randomisation
    /// batch already in flight, so the pipeline completes all queued decrypts and runs
    /// the faulted round inline before refilling. Fault-free rounds (including rounds
    /// with stragglers only) stay overlapped.
    pub fn run_rounds<R: Rng + ?Sized>(
        &self,
        rounds: &[RoundInput<'_>],
        rng: &mut R,
    ) -> Vec<RoundOutput> {
        self.run_rounds_with_depth(rounds, self.pipeline_depth, rng)
    }

    /// [`PrivateWeightingProtocol::run_rounds`] at an explicit pipeline depth:
    /// `0` runs the sequential reference loop, `d ≥ 1` lets the fold stage run up to
    /// `d` rounds ahead of the decrypt stage. Exposed so tests and benches can compare
    /// depths without touching the process environment.
    pub fn run_rounds_with_depth<R: Rng + ?Sized>(
        &self,
        rounds: &[RoundInput<'_>],
        depth: usize,
        rng: &mut R,
    ) -> Vec<RoundOutput> {
        if depth == 0 || rounds.len() < 2 {
            return rounds.iter().map(|input| self.run_round_sequential(input, rng)).collect();
        }
        let mut outputs: Vec<Option<RoundOutput>> = (0..rounds.len()).map(|_| None).collect();
        // Two bounded queues per replay: `jobs` carries folded totals forward (its
        // capacity is the pipeline depth — the double buffer), `finished` carries
        // decrypted rounds back (capacity = replay length, so the decrypt stage
        // never blocks on the producer). Both deliver strictly in round order.
        let jobs: Handoff<DecryptJob> = Handoff::new(depth);
        let finished: Handoff<RoundOutput> = Handoff::new(rounds.len());
        std::thread::scope(|scope| {
            let (jobs, finished) = (&jobs, &finished);
            scope.spawn(move || {
                // A panic mid-decrypt must close both queues, or the producer would
                // block forever against a full `jobs` queue.
                let _close_finished = CloseOnDrop(finished);
                let _close_jobs = CloseOnDrop(jobs);
                while let Some((seq, job)) = jobs.pop() {
                    let (mut aggregate, aggregation) = self.decrypt_totals(&job.totals);
                    if job.reweight != 1.0 {
                        for v in aggregate.iter_mut() {
                            *v *= job.reweight;
                        }
                    }
                    metrics::PIPELINE_INFLIGHT.sub(1);
                    let out = RoundOutput {
                        aggregate,
                        dropped: job.dropped,
                        timings: RoundTimings {
                            server_encryption: job.server_encryption,
                            silo_weighting: job.silo_weighting,
                            aggregation,
                        },
                    };
                    if !finished.push(seq, out) {
                        break;
                    }
                }
            });
            let mut submitted = 0usize;
            let mut collected = 0usize;
            for (t, input) in rounds.iter().enumerate() {
                let drains = input.faulted.is_some_and(|round| {
                    self.fault_plan.dropped_silos(round, self.num_silos).iter().any(|&d| d)
                });
                if drains {
                    // Dropouts invalidate cache entries; draining first keeps the
                    // invalidation ordered after every in-flight round, exactly as the
                    // sequential loop orders it.
                    let wait = trace::span("protocol", "pipeline_wait").arg("drain_at", t);
                    while collected < submitted {
                        let (seq, out) =
                            finished.pop().expect("decrypt stage died with rounds queued");
                        outputs[seq as usize] = Some(out);
                        collected += 1;
                    }
                    drop(wait);
                    outputs[t] = Some(self.run_round_sequential(input, rng));
                    continue;
                }
                let job = self.stage_round(input, rng);
                metrics::PIPELINE_INFLIGHT.add(1);
                {
                    // The producer parks here while all `depth` slots are in flight —
                    // the span makes backpressure visible in traces.
                    let _wait = trace::span("protocol", "pipeline_wait").arg("round", t);
                    assert!(jobs.push(t as u64, job), "pipeline decrypt stage terminated early");
                }
                submitted += 1;
                while let Some((seq, out)) = finished.try_pop() {
                    outputs[seq as usize] = Some(out);
                    collected += 1;
                }
            }
            jobs.close();
            let wait =
                trace::span("protocol", "pipeline_wait").arg("final_drain", submitted - collected);
            while collected < submitted {
                let (seq, out) = finished.pop().expect("decrypt stage died with rounds queued");
                outputs[seq as usize] = Some(out);
                collected += 1;
            }
            drop(wait);
        });
        outputs.into_iter().map(|out| out.expect("every round decrypted exactly once")).collect()
    }

    /// One round through the existing sequential entry points, shaped as a
    /// [`RoundOutput`] — the reference the pipelined path must match bit for bit.
    fn run_round_sequential<R: Rng + ?Sized>(
        &self,
        input: &RoundInput<'_>,
        rng: &mut R,
    ) -> RoundOutput {
        match input.faulted {
            Some(round) => {
                let (aggregate, dropped, timings) = self.weighting_round_faulted(
                    input.clipped_deltas,
                    input.noises,
                    input.sampled,
                    round,
                    rng,
                );
                RoundOutput { aggregate, dropped: Some(dropped), timings }
            }
            None => {
                let (aggregate, timings) =
                    self.weighting_round(input.clipped_deltas, input.noises, input.sampled, rng);
                RoundOutput { aggregate, dropped: None, timings }
            }
        }
    }

    /// The producer half of one pipelined round: step 2.(a) (all caller-RNG draws, in
    /// round order) plus the streaming cell fold of step 2.(b), yielding the decrypt
    /// job the consumer finishes. Fault handling mirrors
    /// [`PrivateWeightingProtocol::weighting_round_faulted`] for rounds the pipeline
    /// does not drain for (stragglers and empty fault draws): the dropout mask is
    /// all-false, so no cache invalidation is due.
    fn stage_round<R: Rng + ?Sized>(&self, input: &RoundInput<'_>, rng: &mut R) -> DecryptJob {
        let clipped_deltas = input.clipped_deltas;
        let noises = input.noises;
        assert_eq!(clipped_deltas.len(), self.num_silos, "one delta set per silo required");
        assert_eq!(noises.len(), self.num_silos, "one noise vector per silo required");
        let dim = noises[0].len();
        assert!(dim > 0, "model dimension must be positive");

        let enc_span = trace::timed_span("protocol", "server_encryption");
        let (active, encrypted_inverses, cached) = self.distribute_inverses(input.sampled, rng);
        let server_encryption = enc_span.finish();

        let (dropped, reweight, delay) = match input.faulted {
            None => (None, 1.0, Duration::ZERO),
            Some(round) => {
                let dropped = self.fault_plan.dropped_silos(round, self.num_silos);
                let delayed = self.fault_plan.delayed_silos(round, self.num_silos);
                debug_assert!(
                    dropped.iter().all(|&d| !d),
                    "rounds with dropouts drain the pipeline and run sequentially"
                );
                if uldp_telemetry::enabled() {
                    for (silo, _) in delayed.iter().enumerate().filter(|(_, &d)| d) {
                        metrics::FAULT_EVENTS.inc();
                        trace::event(
                            "fault",
                            "delay",
                            vec![
                                ("round", round.into()),
                                ("silo", silo.into()),
                                ("delay_ms", self.fault_plan.delay_ms.into()),
                            ],
                        );
                    }
                }
                let delayed_count = delayed.iter().filter(|&&d| d).count() as u64;
                let delay = Duration::from_millis(self.fault_plan.delay_ms * delayed_count);
                (Some(dropped), 1.0, delay)
            }
        };
        let (totals, silo_weighting) = self.fold_round_totals(
            clipped_deltas,
            noises,
            &active,
            &encrypted_inverses,
            dim,
            dropped.as_deref(),
            cached.as_ref(),
        );
        DecryptJob {
            totals,
            server_encryption,
            silo_weighting: silo_weighting + delay,
            reweight,
            dropped,
        }
    }

    /// Runs one weighting round with **private user-level sub-sampling** via simulated
    /// 1-out-of-P oblivious transfer (the extension sketched in Section 4.1 of the paper).
    ///
    /// For every user the server prepares `sampling.denominator` ciphertexts of which
    /// `sampling.numerator` encrypt the real blinded inverse and the rest encrypt zero; a
    /// single ciphertext is obtained through OT and used for the round. The server never
    /// learns whether a user was sampled (it cannot see the OT choice) and the silos never
    /// learn it either (a dummy is indistinguishable from a real Paillier ciphertext), so
    /// the participation probability is exactly `numerator / denominator` but the outcome
    /// stays hidden — unlike [`PrivateWeightingProtocol::weighting_round`], where the mask
    /// is chosen by the server in the clear.
    ///
    /// Returns the decoded aggregate, the realised selection flags (**for validation and
    /// accounting tests only** — in a deployment no party may observe them), and the
    /// per-phase timings.
    pub fn weighting_round_with_oblivious_subsampling<R: Rng + ?Sized>(
        &self,
        clipped_deltas: &[Vec<Vec<f64>>],
        noises: &[Vec<f64>],
        sampling: &ObliviousSubsampling,
        rng: &mut R,
    ) -> (Vec<f64>, Vec<bool>, RoundTimings) {
        assert_eq!(clipped_deltas.len(), self.num_silos, "one delta set per silo required");
        assert_eq!(noises.len(), self.num_silos, "one noise vector per silo required");
        let dim = noises[0].len();
        assert!(dim > 0, "model dimension must be positive");

        // Server side: build the OT offers (step 2.a extended with dummies). Every user's
        // offer and transfer draw from an RNG derived from a 256-bit (seed, u) stream, so
        // the realised selection is identical at any thread count.
        let enc_span = trace::timed_span("protocol", "server_encryption");
        let batch_seed = seeding::wide_seed_from_rng(rng);
        let per_user: Vec<(Ciphertext, bool)> =
            self.runtime.par_map_wide_seeded(self.num_users, batch_seed, |u, rng| {
                let real = match &self.blinded_inverses[u] {
                    Some(inv) => self.paillier.public.encrypt(rng, inv),
                    None => self.paillier.public.encrypt(rng, &BigUint::zero()),
                };
                let offer = sampling.build_offer(&self.paillier.public, &real, rng);
                let (output, _sender_view) = offer.transfer_uniform(rng);
                // The receiver keeps only the ciphertext; whether it was a real slot is
                // recorded here purely so tests can validate correctness.
                let was_real = output.chosen_index < sampling.numerator as usize
                    && self.blinded_inverses[u].is_some();
                (output.item, was_real)
            });
        let (chosen, selected_flags): (Vec<Ciphertext>, Vec<bool>) = per_user.into_iter().unzip();
        let server_encryption = enc_span.finish();

        // Silo side and aggregation are identical to the plain round, using the chosen
        // ciphertexts in place of the server-published inverses. Every user gets an OT
        // offer (the whole point is hiding who was sampled), so all users are active.
        let active: Vec<u32> = (0..self.num_users as u32).collect();
        let (out, mut timings) = self.weighting_round_with_inverses(
            clipped_deltas,
            noises,
            &active,
            &chosen,
            dim,
            None,
            None,
        );
        timings.server_encryption = server_encryption;
        (out, selected_flags, timings)
    }

    /// Shared silo-side + aggregation logic of steps 2.(b)-(c), parameterised by the
    /// round's active users and their encrypted inverses (aligned position for
    /// position) as distributed to the silos. When `dropped` is given, the marked
    /// silos' cells (deltas and noise) are excluded from the streaming fold — their
    /// reports never reach the server. When `cached` is given (the cross-round cache
    /// path), per-user fixed-base tables anchor to the round-1 base ciphertexts, so
    /// they survive re-randomisation and are reused across rounds.
    #[allow(clippy::too_many_arguments)]
    fn weighting_round_with_inverses(
        &self,
        clipped_deltas: &[Vec<Vec<f64>>],
        noises: &[Vec<f64>],
        active: &[u32],
        encrypted_inverses: &[Ciphertext],
        dim: usize,
        dropped: Option<&[bool]>,
        cached: Option<&CachedRoundState>,
    ) -> (Vec<f64>, RoundTimings) {
        let (totals, silo_weighting) = self.fold_round_totals(
            clipped_deltas,
            noises,
            active,
            encrypted_inverses,
            dim,
            dropped,
            cached,
        );
        let (out, aggregation) = self.decrypt_totals(&totals);
        (out, RoundTimings { server_encryption: Duration::ZERO, silo_weighting, aggregation })
    }

    /// The fold stage of one round — steps 2.(b) and the fused homomorphic cross-silo
    /// sum — producing the per-coordinate ciphertext totals and the `silo_weighting`
    /// wall-clock. This is the stage the round pipeline overlaps with the *previous*
    /// round's [`PrivateWeightingProtocol::decrypt_totals`]: the two touch disjoint
    /// key material (public vs secret) and disjoint state, and each is deterministic
    /// in isolation, so overlap cannot change any bit of either.
    #[allow(clippy::too_many_arguments)]
    fn fold_round_totals(
        &self,
        clipped_deltas: &[Vec<Vec<f64>>],
        noises: &[Vec<f64>],
        active: &[u32],
        encrypted_inverses: &[Ciphertext],
        dim: usize,
        dropped: Option<&[bool]>,
        cached: Option<&CachedRoundState>,
    ) -> (Vec<Ciphertext>, Duration) {
        let n = &self.paillier.public.n;
        let n_squared = &self.paillier.public.n_squared;
        let rt = &*self.runtime;
        debug_assert_eq!(active.len(), encrypted_inverses.len());
        let silo_span = trace::timed_span("protocol", "silo_weighting");
        for silo in 0..self.num_silos {
            assert_eq!(clipped_deltas[silo].len(), self.num_users, "per-user deltas required");
            assert_eq!(noises[silo].len(), dim, "noise dimensionality mismatch");
            for delta in clipped_deltas[silo].iter().filter(|d| !d.is_empty()) {
                assert_eq!(delta.len(), dim, "delta dimensionality mismatch");
            }
        }
        // Per-silo participant lists: active users with records *and* a delta in this
        // silo, as (active position, user id) pairs. `active` is ascending, so each
        // list walks users in exactly the order the dense `0..|U|` scan did — the cell
        // totals keep identical bits — while the fold below only ever touches the
        // round's participants instead of the whole population per cell.
        let participants: Vec<Vec<(usize, usize)>> = (0..self.num_silos)
            .map(|silo| {
                active
                    .iter()
                    .enumerate()
                    .filter(|&(_, &u)| {
                        self.silo_histograms[silo][u as usize] > 0
                            && !clipped_deltas[silo][u as usize].is_empty()
                    })
                    .map(|(i, &u)| (i, u as usize))
                    .collect()
            })
            .collect();
        // The per-user scalar prefix `n_su · r_u · C_LCM mod n` is independent of the
        // coordinate, so it is computed once per (silo, active user) instead of once
        // per (silo, user, coordinate); the SHA-based blinding-factor expansion runs on
        // the pool.
        let factors: Vec<BigUint> = rt.par_map(active, |_, &u| self.blinder.factor(u as u64));
        let prefixes: Vec<Vec<BigUint>> = (0..self.num_silos)
            .map(|silo| {
                active
                    .iter()
                    .enumerate()
                    .map(|(i, &u)| {
                        let n_su = self.silo_histograms[silo][u as usize];
                        let p = mod_mul(&BigUint::from_u64(n_su), &factors[i], n);
                        mod_mul(&p, &self.c_lcm, n)
                    })
                    .collect()
            })
            .collect();
        // User u's encrypted inverse is raised to one scalar per (participating silo,
        // coordinate) cell, so one exponentiation context per user is hoisted out of the
        // cell loop: for heavily-used bases it precomputes a fixed-base table (no
        // squarings per scalar_mul), and no per-cell Montgomery context is ever rebuilt.
        let mut ctx_uses = vec![0usize; active.len()];
        for plist in &participants {
            for &(i, _) in plist {
                ctx_uses[i] += dim;
            }
        }
        // All per-user contexts are alive for the whole region, and a fixed-base table
        // costs megabytes per user at paper-scale key sizes — so the tables are only
        // requested while the aggregate footprint stays within a fixed budget; beyond
        // it, users get the table-free sliding-window context (`expected 1 use`), which
        // still shares the cached per-modulus engine state.
        const FIXED_BASE_BUDGET_BYTES: usize = 256 << 20;
        let table_bytes = FixedBaseCtx::estimated_table_bytes(
            self.paillier.public.n_squared.bit_length(),
            self.paillier.public.n.bit_length(),
        );
        let participating = ctx_uses.iter().filter(|&&uses| uses > 0).count();
        let tables_affordable =
            participating.saturating_mul(table_bytes) <= FIXED_BASE_BUDGET_BYTES;
        let generic = engine_disabled();
        let n_bits = n.bit_length();
        let evals: Vec<Option<InverseEval>> = rt.par_map_range(active.len(), |i| {
            (ctx_uses[i] > 0).then(|| {
                let ct = &encrypted_inverses[i];
                if generic {
                    return InverseEval::Generic { base: ct.0.clone() };
                }
                if !tables_affordable || ctx_uses[i] < FIXED_BASE_TABLE_MIN_MULS {
                    return InverseEval::Fused { base: ct.0.clone() };
                }
                match cached {
                    // Un-cached path (OT rounds, bypass mode): table over the
                    // distributed ciphertext itself, rebuilt every round.
                    None => InverseEval::Table(Arc::new(FixedBaseCtx::new(
                        Arc::clone(self.paillier.public.ctx_n2()),
                        &ct.0,
                        n_bits,
                    ))),
                    // Cached path: the table anchors to the round-1 base, so a
                    // re-randomised `current = base · h^rand_exp` evaluates as
                    // `base_table[k] · h_table[rand_exp · k]` — same group element,
                    // same bits, no table rebuild.
                    Some(state) => {
                        let user = &state.users[i];
                        let table = user.table.clone().unwrap_or_else(|| {
                            Arc::new(FixedBaseCtx::new(
                                Arc::clone(self.paillier.public.ctx_n2()),
                                &user.base.0,
                                n_bits,
                            ))
                        });
                        if user.rand_exp.is_zero() {
                            InverseEval::Table(table)
                        } else {
                            InverseEval::Shifted {
                                base_table: table,
                                rand_exp: user.rand_exp.clone(),
                                rerand: Arc::clone(&state.rerand),
                            }
                        }
                    }
                }
            })
        });
        // Persist tables built this round so later rounds skip the precomputation.
        if cached.is_some() {
            let mut cache = self.cache.lock().expect("cache mutex poisoned");
            for (i, eval) in evals.iter().enumerate() {
                let table = match eval {
                    Some(InverseEval::Table(t)) => t,
                    Some(InverseEval::Shifted { base_table, .. }) => base_table,
                    _ => continue,
                };
                if let Some(entry) = cache.entries.get_mut(&active[i]) {
                    if entry.table.is_none() {
                        entry.table = Some(Arc::clone(table));
                    }
                }
            }
        }
        // Steps 2.(b)+(c) silo side: every (silo, coordinate) cell is independent — the
        // Paillier `scalar_mul` per user inside it is the protocol's dominant cost
        // (Figures 10–11) — and ciphertext addition is exact modular arithmetic, so the
        // cells stream through one chunked fold in coordinate-major order: each chunk
        // folds its cells straight into per-coordinate ciphertext totals (the cross-silo
        // homomorphic sum is fused into the fold), and chunk partials combine in fixed
        // cell order. No per-cell ciphertext collection is ever materialised — transient
        // memory is O(dim + chunks) ciphertexts instead of O(silos × dim) — and the
        // result is bitwise-identical at any (threads, chunk_size) setting.
        let num_cells = dim * self.num_silos;
        let chunk_size = self.chunk_size;
        let cell_ranges = uldp_runtime::fold_chunk_ranges(num_cells, chunk_size);
        let ct_bytes = self.paillier.public.n_squared.bit_length().div_ceil(64) * 8;
        let partial_entries: usize = cell_ranges
            .iter()
            .map(|r| (r.end - 1) / self.num_silos - r.start / self.num_silos + 1)
            .sum();
        rt.fold_gauge().record(partial_entries * ct_bytes);
        let compute_cell = |silo: usize, j: usize| -> Ciphertext {
            let mut acc = self.paillier.public.trivial_zero();
            // A dropped silo's report never reaches the server: neither its weighted
            // deltas nor its noise enter the per-coordinate total (the pairwise masks
            // cancel over the silos that did contribute, so no recovery is needed).
            if dropped.is_some_and(|d| d[silo]) {
                return acc;
            }
            // Table-free bases gather their `(base, scalar)` terms here and fuse into
            // one interleaved multi-exponentiation after the loop; ciphertext addition
            // is modular multiplication, which commutes, so hoisting these terms out of
            // the running product leaves the cell total bit-identical.
            let mut fused: Vec<(BigUint, BigUint)> = Vec::new();
            for &(i, u) in &participants[silo] {
                let delta = &clipped_deltas[silo][u];
                let scalar = mod_mul(&self.codec.encode(delta[j]), &prefixes[silo][i], n);
                let eval = evals[i].as_ref().expect("evaluator built for participating user");
                let term = match eval {
                    InverseEval::Generic { base } => mod_pow(base, &scalar, n_squared),
                    InverseEval::Fused { base } => {
                        fused.push((base.clone(), scalar));
                        continue;
                    }
                    InverseEval::Table(table) => table.pow(&scalar),
                    InverseEval::Shifted { base_table, rand_exp, rerand } => mod_mul(
                        &base_table.pow(&scalar),
                        &rerand.pow_h(&rand_exp.mul(&scalar)),
                        n_squared,
                    ),
                };
                metrics::PAILLIER_SCALAR_MUL.inc();
                acc = self.paillier.public.add(&acc, &Ciphertext(term));
            }
            if !fused.is_empty() {
                metrics::PAILLIER_SCALAR_MUL.add(fused.len() as u64);
                let product = self.paillier.public.ctx_n2().multi_exp(&fused);
                acc = self.paillier.public.add(&acc, &Ciphertext(product));
            }
            let noise_scalar = mod_mul(&self.codec.encode(noises[silo][j]), &self.c_lcm, n);
            self.paillier.public.add_plain(&acc, &noise_scalar)
        };
        // Chunk partials carry (coordinate, running total) pairs; a chunk touches at
        // most ⌈chunk/|S|⌉ + 1 coordinates, and partials merge at shared boundaries.
        let fold_cell = |acc: &mut Vec<(usize, Ciphertext)>, idx: usize| {
            let j = idx / self.num_silos;
            let silo = idx % self.num_silos;
            let cell = compute_cell(silo, j);
            match acc.last_mut() {
                Some((last_j, total)) if *last_j == j => {
                    *total = self.paillier.public.add(total, &cell);
                }
                _ => acc.push((j, cell)),
            }
        };
        let merge = |mut a: Vec<(usize, Ciphertext)>, b: Vec<(usize, Ciphertext)>| {
            for (j, partial) in b {
                match a.last_mut() {
                    Some((last_j, total)) if *last_j == j => {
                        *total = self.paillier.public.add(total, &partial);
                    }
                    _ => a.push((j, partial)),
                }
            }
            a
        };
        let totals: Vec<Ciphertext> = rt
            .par_fold_reduce(num_cells, chunk_size, Vec::new, fold_cell, merge)
            .expect("at least one (silo, coordinate) cell")
            .into_iter()
            .map(|(_, total)| total)
            .collect();
        debug_assert_eq!(totals.len(), dim);
        let silo_weighting = silo_span.finish();
        (totals, silo_weighting)
    }

    /// The decrypt stage of one round — step 2.(c): batched CRT decryption of the
    /// per-coordinate totals and fixed-point decoding. (The homomorphic cross-silo sum
    /// is fused into the streaming fold.) The CRT contexts are hoisted once per batch
    /// inside [`uldp_crypto::paillier::PaillierSecretKey::decrypt_batch`], so the
    /// pipeline's
    /// overlapped decrypt pass never re-derives per-round state. The `aggregation`
    /// span covers decryption plus decoding, with one nested `decryption` span for the
    /// batch itself.
    fn decrypt_totals(&self, totals: &[Ciphertext]) -> (Vec<f64>, Duration) {
        let rt = &*self.runtime;
        let agg_span = trace::timed_span("protocol", "aggregation");
        let dec_span = trace::span("protocol", "decryption").arg("coordinates", totals.len());
        let decrypted = self.paillier.secret.decrypt_batch(rt, totals);
        drop(dec_span);
        let out: Vec<f64> = rt.par_map(&decrypted, |_, m| self.codec.decode(m, &self.c_lcm));
        (out, agg_span.finish())
    }

    /// The plaintext value the protocol is supposed to compute:
    /// `Σ_s ( Σ_u (n_{s,u} / N_u) Δ̃_{s,u} + z_s )`, honouring the sub-sampling mask.
    pub fn plaintext_reference(
        &self,
        clipped_deltas: &[Vec<Vec<f64>>],
        noises: &[Vec<f64>],
        sampled: Option<&SampleMask>,
    ) -> Vec<f64> {
        let dim = noises[0].len();
        let mut out = vec![0.0; dim];
        for silo in 0..self.num_silos {
            for (u, delta) in clipped_deltas[silo].iter().enumerate() {
                let keep = sampled.is_none_or(|s| s.contains(u));
                let n_su = self.silo_histograms[silo][u];
                if !keep || n_su == 0 || delta.is_empty() || self.user_totals[u] == 0 {
                    continue;
                }
                let w = n_su as f64 / self.user_totals[u] as f64;
                for (o, d) in out.iter_mut().zip(delta.iter()) {
                    *o += w * d;
                }
            }
            for (o, z) in out.iter_mut().zip(noises[silo].iter()) {
                *o += z;
            }
        }
        out
    }

    /// The plaintext value a faulted round is supposed to compute: the
    /// [`PrivateWeightingProtocol::plaintext_reference`] sum restricted to silos *not*
    /// marked in `dropped`, re-weighted by `|S| / |S_surviving|`.
    pub fn plaintext_reference_faulted(
        &self,
        clipped_deltas: &[Vec<Vec<f64>>],
        noises: &[Vec<f64>],
        sampled: Option<&SampleMask>,
        dropped: &[bool],
    ) -> Vec<f64> {
        assert_eq!(dropped.len(), self.num_silos, "one dropout flag per silo required");
        let dim = noises[0].len();
        let mut out = vec![0.0; dim];
        for silo in 0..self.num_silos {
            if dropped[silo] {
                continue;
            }
            for (u, delta) in clipped_deltas[silo].iter().enumerate() {
                let keep = sampled.is_none_or(|s| s.contains(u));
                let n_su = self.silo_histograms[silo][u];
                if !keep || n_su == 0 || delta.is_empty() || self.user_totals[u] == 0 {
                    continue;
                }
                let w = n_su as f64 / self.user_totals[u] as f64;
                for (o, d) in out.iter_mut().zip(delta.iter()) {
                    *o += w * d;
                }
            }
            for (o, z) in out.iter_mut().zip(noises[silo].iter()) {
                *o += z;
            }
        }
        let surviving = dropped.iter().filter(|&&d| !d).count().max(1);
        let factor = self.num_silos as f64 / surviving as f64;
        if factor != 1.0 {
            for o in out.iter_mut() {
                *o *= factor;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_histogram() -> Vec<Vec<usize>> {
        // 3 silos, 4 users
        vec![vec![2, 0, 1, 3], vec![1, 4, 0, 1], vec![0, 2, 2, 0]]
    }

    fn test_config() -> ProtocolConfig {
        ProtocolConfig { paillier_bits: 256, dh_bits: 128, n_max: 16, ..Default::default() }
    }

    fn deltas_and_noise(
        histogram: &[Vec<usize>],
        dim: usize,
        seed: u64,
    ) -> (Vec<Vec<Vec<f64>>>, Vec<Vec<f64>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let deltas: Vec<Vec<Vec<f64>>> = histogram
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&c| {
                        if c == 0 {
                            Vec::new()
                        } else {
                            (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()
                        }
                    })
                    .collect()
            })
            .collect();
        let noises: Vec<Vec<f64>> = histogram
            .iter()
            .map(|_| (0..dim).map(|_| rng.gen_range(-0.01..0.01)).collect())
            .collect();
        (deltas, noises)
    }

    #[test]
    fn protocol_matches_plaintext_aggregation() {
        let mut rng = StdRng::seed_from_u64(1);
        let histogram = small_histogram();
        let protocol = PrivateWeightingProtocol::setup(&histogram, &test_config(), &mut rng);
        let (deltas, noises) = deltas_and_noise(&histogram, 4, 2);
        let (secure, timings) = protocol.weighting_round(&deltas, &noises, None, &mut rng);
        let reference = protocol.plaintext_reference(&deltas, &noises, None);
        for (a, b) in secure.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-6, "secure {a} vs plaintext {b}");
        }
        assert!(timings.total() > Duration::ZERO);
    }

    #[test]
    fn subsampling_removes_unsampled_users_exactly() {
        let mut rng = StdRng::seed_from_u64(3);
        let histogram = small_histogram();
        let protocol = PrivateWeightingProtocol::setup(&histogram, &test_config(), &mut rng);
        let (deltas, noises) = deltas_and_noise(&histogram, 3, 4);
        let sampled = SampleMask::from_dense(vec![true, false, true, false]);
        let (secure, _) = protocol.weighting_round(&deltas, &noises, Some(&sampled), &mut rng);
        let reference = protocol.plaintext_reference(&deltas, &noises, Some(&sampled));
        for (a, b) in secure.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-6, "secure {a} vs plaintext {b}");
        }
        // and it differs from the un-sampled aggregate
        let full_reference = protocol.plaintext_reference(&deltas, &noises, None);
        let diff: f64 =
            reference.iter().zip(full_reference.iter()).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-3);
    }

    #[test]
    fn reference_weights_match_record_proportional_strategy() {
        let mut rng = StdRng::seed_from_u64(5);
        let histogram = small_histogram();
        let protocol = PrivateWeightingProtocol::setup(&histogram, &test_config(), &mut rng);
        let weights = protocol.reference_weights();
        assert!((weights.get(0, 0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((weights.get(1, 1) - 4.0 / 6.0).abs() < 1e-12);
        assert!(weights.satisfies_sensitivity_constraint(1e-9));
    }

    #[test]
    fn setup_reports_timings_and_key_size() {
        let mut rng = StdRng::seed_from_u64(6);
        let protocol =
            PrivateWeightingProtocol::setup(&small_histogram(), &test_config(), &mut rng);
        assert!(protocol.setup_timings().total() > Duration::ZERO);
        assert!(protocol.modulus_bits() >= 255);
        assert_eq!(protocol.num_silos(), 3);
        assert_eq!(protocol.num_users(), 4);
        assert_eq!(protocol.pair_seeds().len(), 3);
    }

    #[test]
    fn oblivious_subsampling_always_selected_matches_full_round() {
        // numerator == denominator: every user is selected, so the result must equal the
        // plaintext reference with no mask.
        let mut rng = StdRng::seed_from_u64(31);
        let histogram = small_histogram();
        let protocol = PrivateWeightingProtocol::setup(&histogram, &test_config(), &mut rng);
        let (deltas, noises) = deltas_and_noise(&histogram, 3, 32);
        let sampling = ObliviousSubsampling::new(4, 4);
        let (secure, flags, _) = protocol
            .weighting_round_with_oblivious_subsampling(&deltas, &noises, &sampling, &mut rng);
        assert!(flags.iter().all(|&f| f));
        let reference = protocol.plaintext_reference(&deltas, &noises, None);
        for (a, b) in secure.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn oblivious_subsampling_never_selected_leaves_only_noise() {
        let mut rng = StdRng::seed_from_u64(33);
        let histogram = small_histogram();
        let protocol = PrivateWeightingProtocol::setup(&histogram, &test_config(), &mut rng);
        let (deltas, noises) = deltas_and_noise(&histogram, 3, 34);
        let sampling = ObliviousSubsampling::new(0, 4);
        let (secure, flags, _) = protocol
            .weighting_round_with_oblivious_subsampling(&deltas, &noises, &sampling, &mut rng);
        assert!(flags.iter().all(|&f| !f));
        // Only the per-silo noise survives.
        let noise_only = protocol.plaintext_reference(
            &vec![vec![Vec::new(); protocol.num_users()]; protocol.num_silos()],
            &noises,
            None,
        );
        for (a, b) in secure.iter().zip(noise_only.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn oblivious_subsampling_matches_plaintext_for_realised_selection() {
        let mut rng = StdRng::seed_from_u64(35);
        let histogram = small_histogram();
        let protocol = PrivateWeightingProtocol::setup(&histogram, &test_config(), &mut rng);
        let (deltas, noises) = deltas_and_noise(&histogram, 3, 36);
        let sampling = ObliviousSubsampling::new(1, 2);
        assert!((sampling.probability() - 0.5).abs() < 1e-12);
        let (secure, flags, _) = protocol
            .weighting_round_with_oblivious_subsampling(&deltas, &noises, &sampling, &mut rng);
        let mask = SampleMask::from_dense(flags);
        let reference = protocol.plaintext_reference(&deltas, &noises, Some(&mask));
        for (a, b) in secure.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn weighting_round_is_bitwise_identical_across_thread_counts() {
        let histogram = small_histogram();
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(9);
            let cfg = ProtocolConfig { threads, ..test_config() };
            let protocol = PrivateWeightingProtocol::setup(&histogram, &cfg, &mut rng);
            let (deltas, noises) = deltas_and_noise(&histogram, 4, 42);
            let (out, _) = protocol.weighting_round(&deltas, &noises, None, &mut rng);
            out.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
        };
        let sequential = run(1);
        assert_eq!(sequential, run(2));
        assert_eq!(sequential, run(4));
    }

    #[test]
    fn oblivious_round_is_bitwise_identical_across_thread_counts() {
        let histogram = small_histogram();
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(13);
            let cfg = ProtocolConfig { threads, ..test_config() };
            let protocol = PrivateWeightingProtocol::setup(&histogram, &cfg, &mut rng);
            let (deltas, noises) = deltas_and_noise(&histogram, 3, 14);
            let sampling = ObliviousSubsampling::new(1, 2);
            let (out, flags, _) = protocol
                .weighting_round_with_oblivious_subsampling(&deltas, &noises, &sampling, &mut rng);
            (out.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(), flags)
        };
        let sequential = run(1);
        assert_eq!(sequential, run(2));
        assert_eq!(sequential, run(4));
    }

    #[test]
    #[should_panic(expected = "numerator must not exceed denominator")]
    fn oblivious_subsampling_rejects_invalid_fraction() {
        let _ = ObliviousSubsampling::new(3, 2);
    }

    #[test]
    #[should_panic(expected = "exceeds N_max")]
    fn rejects_user_totals_above_n_max() {
        let mut rng = StdRng::seed_from_u64(7);
        let histogram = vec![vec![20usize], vec![20usize]];
        let cfg =
            ProtocolConfig { n_max: 8, paillier_bits: 128, dh_bits: 64, ..Default::default() };
        let _ = PrivateWeightingProtocol::setup(&histogram, &cfg, &mut rng);
    }

    #[test]
    #[should_panic(expected = "at least two silos")]
    fn rejects_single_silo() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = PrivateWeightingProtocol::setup(&[vec![1, 2]], &test_config(), &mut rng);
    }

    fn faulted_config(plan: FaultPlan) -> ProtocolConfig {
        ProtocolConfig { fault_plan: plan, ..test_config() }
    }

    #[test]
    fn faulted_round_without_faults_matches_plain_round() {
        let histogram = small_histogram();
        let mut rng = StdRng::seed_from_u64(51);
        let protocol = PrivateWeightingProtocol::setup(&histogram, &test_config(), &mut rng);
        let (deltas, noises) = deltas_and_noise(&histogram, 3, 52);
        let round_rng = rng.clone();
        let (plain, _) = protocol.weighting_round(&deltas, &noises, None, &mut round_rng.clone());
        let (faulted, dropped, _) =
            protocol.weighting_round_faulted(&deltas, &noises, None, 0, &mut round_rng.clone());
        assert!(dropped.iter().all(|&d| !d));
        assert_eq!(
            plain.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            faulted.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dropout_reweights_surviving_homomorphic_sum_exactly() {
        // A dropped silo's cells are excluded from the homomorphic fold; the decrypted
        // aggregate must equal the surviving-silo plaintext reference (re-weighted by
        // |S|/|S_surviving|) and — before the common re-weighting factor — be bitwise
        // identical to a plain round where the dropped silo's inputs are explicit zeros.
        let histogram = small_histogram();
        let plan = FaultPlan { dropout_fraction: 0.4, seed: 77, ..FaultPlan::none() };
        let mut rng = StdRng::seed_from_u64(53);
        let protocol = PrivateWeightingProtocol::setup(&histogram, &faulted_config(plan), &mut rng);
        let (deltas, noises) = deltas_and_noise(&histogram, 4, 54);
        let round_rng = rng.clone();
        let (faulted, dropped, _) =
            protocol.weighting_round_faulted(&deltas, &noises, None, 3, &mut round_rng.clone());
        assert_eq!(dropped.iter().filter(|&&d| d).count(), 1, "0.4 of 3 silos rounds to one");

        let reference = protocol.plaintext_reference_faulted(&deltas, &noises, None, &dropped);
        for (a, b) in faulted.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-6, "faulted {a} vs surviving reference {b}");
        }
        // And the re-weighted aggregate genuinely differs from the full-participation one.
        let full = protocol.plaintext_reference(&deltas, &noises, None);
        let diff: f64 = reference.iter().zip(full.iter()).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-3, "dropout must change the aggregate");

        // Bitwise exactness of the fold: dropping silo s equals zeroing silo s's inputs.
        let mut zeroed_deltas = deltas.clone();
        let mut zeroed_noises = noises.clone();
        for (silo, &gone) in dropped.iter().enumerate() {
            if gone {
                zeroed_deltas[silo] = vec![Vec::new(); protocol.num_users()];
                zeroed_noises[silo] = vec![0.0; 4];
            }
        }
        let (zeroed, _) =
            protocol.weighting_round(&zeroed_deltas, &zeroed_noises, None, &mut round_rng.clone());
        let surviving = dropped.iter().filter(|&&d| !d).count();
        let factor = protocol.num_silos() as f64 / surviving as f64;
        let rescaled: Vec<u64> = zeroed.iter().map(|v| (v * factor).to_bits()).collect();
        assert_eq!(faulted.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), rescaled);
    }

    #[test]
    fn faulted_round_is_bitwise_identical_across_threads_and_chunks() {
        let histogram = small_histogram();
        let plan = FaultPlan {
            dropout_fraction: 0.4,
            delay_fraction: 0.4,
            delay_ms: 1,
            seed: 5,
            ..FaultPlan::none()
        };
        let run = |threads: usize, chunk_size: usize| {
            let mut rng = StdRng::seed_from_u64(55);
            let cfg = ProtocolConfig { threads, chunk_size, ..faulted_config(plan) };
            let protocol = PrivateWeightingProtocol::setup(&histogram, &cfg, &mut rng);
            let (deltas, noises) = deltas_and_noise(&histogram, 3, 56);
            let (out, dropped, _) =
                protocol.weighting_round_faulted(&deltas, &noises, None, 1, &mut rng);
            (out.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(), dropped)
        };
        let sequential = run(1, usize::MAX);
        for (threads, chunk) in [(2, 1), (4, 7), (2, usize::MAX)] {
            assert_eq!(sequential, run(threads, chunk), "threads={threads} chunk={chunk}");
        }
    }

    #[test]
    fn cached_rounds_match_fresh_encryption_rounds_bitwise() {
        // Four rounds of the same setup, identical caller RNG streams: the cached
        // protocol re-randomises rounds 2..4 while the bypass instance re-encrypts
        // every round, and the decrypted aggregates must agree bit for bit.
        if fresh_encrypt_forced() {
            return; // ULDP_FRESH_ENCRYPT=1 turns the cached run into a second bypass run
        }
        let histogram = small_histogram();
        let run = |fresh_encrypt: bool| {
            let mut rng = StdRng::seed_from_u64(91);
            let cfg = ProtocolConfig { fresh_encrypt, ..test_config() };
            let protocol = PrivateWeightingProtocol::setup(&histogram, &cfg, &mut rng);
            let mut rounds = Vec::new();
            let mut stats = Vec::new();
            for round in 0..4u64 {
                let (deltas, noises) = deltas_and_noise(&histogram, 4, 92 + round);
                let (out, _) = protocol.weighting_round(&deltas, &noises, None, &mut rng);
                rounds.push(out.iter().map(|v| v.to_bits()).collect::<Vec<u64>>());
                stats.push(protocol.round_cache_stats());
            }
            (rounds, stats)
        };
        let (cached_rounds, cached_stats) = run(false);
        let (fresh_rounds, fresh_stats) = run(true);
        assert_eq!(cached_rounds, fresh_rounds, "aggregates must not depend on the cache");
        // Cached: round 1 encrypts all 4 users, rounds 2..4 re-randomise all 4.
        assert_eq!(cached_stats, vec![(4, 0), (0, 4), (0, 4), (0, 4)]);
        // Bypass: every round encrypts everything.
        assert_eq!(fresh_stats, vec![(4, 0); 4]);
        // Every cached round still matches its plaintext reference.
        let mut check_rng = StdRng::seed_from_u64(91);
        let cfg = ProtocolConfig { ..test_config() };
        let protocol = PrivateWeightingProtocol::setup(&histogram, &cfg, &mut check_rng);
        for round in 0..4u64 {
            let (deltas, noises) = deltas_and_noise(&histogram, 4, 92 + round);
            let (out, _) = protocol.weighting_round(&deltas, &noises, None, &mut check_rng);
            let reference = protocol.plaintext_reference(&deltas, &noises, None);
            for (a, b) in out.iter().zip(reference.iter()) {
                assert!((a - b).abs() < 1e-6, "round {round}: secure {a} vs plaintext {b}");
            }
        }
    }

    #[test]
    fn mask_change_reencrypts_exactly_the_changed_users() {
        if fresh_encrypt_forced() {
            return; // stats are trivially (4, 0) in bypass mode
        }
        let histogram = small_histogram();
        let mut rng = StdRng::seed_from_u64(95);
        let protocol = PrivateWeightingProtocol::setup(&histogram, &test_config(), &mut rng);
        let (deltas, noises) = deltas_and_noise(&histogram, 3, 96);
        let all = SampleMask::from_dense(vec![true; 4]);
        let half = SampleMask::from_dense(vec![true, false, true, false]);

        let _ = protocol.weighting_round(&deltas, &noises, Some(&all), &mut rng);
        assert_eq!(protocol.round_cache_stats(), (4, 0), "first round encrypts everyone");
        let _ = protocol.weighting_round(&deltas, &noises, Some(&all), &mut rng);
        assert_eq!(protocol.round_cache_stats(), (0, 4), "unchanged mask reuses everyone");

        // Users 1 and 3 flip to unsampled: exactly those two re-encrypt (as zero), the
        // other two re-randomise — and the round still matches its reference.
        let (out, _) = protocol.weighting_round(&deltas, &noises, Some(&half), &mut rng);
        assert_eq!(protocol.round_cache_stats(), (2, 2), "only flipped users re-encrypt");
        let reference = protocol.plaintext_reference(&deltas, &noises, Some(&half));
        for (a, b) in out.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-6, "secure {a} vs plaintext {b}");
        }

        // Flipping back re-encrypts the same two users again.
        let (out, _) = protocol.weighting_round(&deltas, &noises, Some(&all), &mut rng);
        assert_eq!(protocol.round_cache_stats(), (2, 2), "flip-back re-encrypts the pair");
        let reference = protocol.plaintext_reference(&deltas, &noises, Some(&all));
        for (a, b) in out.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-6, "secure {a} vs plaintext {b}");
        }

        // reset_round_cache drops everything: the next round is fully fresh.
        protocol.reset_round_cache();
        let _ = protocol.weighting_round(&deltas, &noises, Some(&all), &mut rng);
        assert_eq!(protocol.round_cache_stats(), (4, 0), "reset forces full re-encryption");
    }

    #[test]
    fn dropout_invalidates_exactly_the_affected_users_entries() {
        // Same plan/round as dropout_reweights_surviving_homomorphic_sum_exactly: round
        // 3 drops exactly one of the three silos.
        if fresh_encrypt_forced() {
            return; // stats are trivially (4, 0) in bypass mode
        }
        let histogram = small_histogram();
        let plan = FaultPlan { dropout_fraction: 0.4, seed: 77, ..FaultPlan::none() };
        let mut rng = StdRng::seed_from_u64(97);
        let protocol = PrivateWeightingProtocol::setup(&histogram, &faulted_config(plan), &mut rng);
        let (deltas, noises) = deltas_and_noise(&histogram, 4, 98);

        let _ = protocol.weighting_round(&deltas, &noises, None, &mut rng);
        assert_eq!(protocol.round_cache_stats(), (4, 0));
        // The faulted round itself is served entirely from cache (encryption happens
        // before the dropout)…
        let (_, dropped, _) = protocol.weighting_round_faulted(&deltas, &noises, None, 3, &mut rng);
        assert_eq!(dropped.iter().filter(|&&d| d).count(), 1, "0.4 of 3 silos rounds to one");
        assert_eq!(protocol.round_cache_stats(), (0, 4));
        // …and afterwards exactly the users with records in the dropped silo are
        // invalidated, so the next round freshly re-encrypts them alone.
        let affected = (0..protocol.num_users())
            .filter(|&u| dropped.iter().enumerate().any(|(s, &d)| d && histogram[s][u] > 0))
            .count();
        assert!(affected > 0 && affected < 4, "the plan must split the users");
        let (out, _) = protocol.weighting_round(&deltas, &noises, None, &mut rng);
        assert_eq!(protocol.round_cache_stats(), (affected, 4 - affected));
        let reference = protocol.plaintext_reference(&deltas, &noises, None);
        for (a, b) in out.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-6, "secure {a} vs plaintext {b}");
        }
    }

    #[test]
    fn delayed_silos_inflate_timings_but_not_results() {
        let histogram = small_histogram();
        let plan = FaultPlan { delay_fraction: 1.0, delay_ms: 40, ..FaultPlan::none() };
        let mut rng = StdRng::seed_from_u64(57);
        let protocol = PrivateWeightingProtocol::setup(&histogram, &faulted_config(plan), &mut rng);
        let (deltas, noises) = deltas_and_noise(&histogram, 3, 58);
        let round_rng = rng.clone();
        let (plain, plain_timings) =
            protocol.weighting_round(&deltas, &noises, None, &mut round_rng.clone());
        let (delayed, dropped, delayed_timings) =
            protocol.weighting_round_faulted(&deltas, &noises, None, 0, &mut round_rng.clone());
        assert!(dropped.iter().all(|&d| !d));
        assert_eq!(
            plain.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            delayed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "stragglers must not change the aggregate"
        );
        // All three silos straggle by 40 ms each on top of the real fold time.
        assert!(
            delayed_timings.silo_weighting >= plain_timings.silo_weighting
                && delayed_timings.silo_weighting >= Duration::from_millis(120),
            "delayed round must account 3 × 40 ms of straggler lateness"
        );
    }

    fn wide_histogram() -> Vec<Vec<usize>> {
        // 2 silos, 13 users; user 11 holds no records anywhere.
        vec![
            vec![1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1],
            vec![2, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 0, 1],
        ]
    }

    #[test]
    fn sparse_and_dense_masks_agree_bitwise_across_rounds() {
        // The tentpole determinism oracle at unit scale: the same multi-round run under
        // the sparse index-list mask and under its densified copy must produce
        // bit-identical aggregates (cross-round cache interplay included), and both
        // must match the plaintext reference.
        let histogram = wide_histogram();
        let mask = SampleMask::from_sorted_indices(13, vec![2, 7, 11]);
        let run = |mask: &SampleMask| {
            let mut rng = StdRng::seed_from_u64(61);
            let protocol = PrivateWeightingProtocol::setup(&histogram, &test_config(), &mut rng);
            let mut rounds = Vec::new();
            for round in 0..3u64 {
                let (deltas, noises) = deltas_and_noise(&histogram, 3, 62 + round);
                let (out, _) = protocol.weighting_round(&deltas, &noises, Some(mask), &mut rng);
                rounds.push(out.iter().map(|v| v.to_bits()).collect::<Vec<u64>>());
            }
            rounds
        };
        let sparse_rounds = run(&mask);
        assert_eq!(sparse_rounds, run(&mask.densified()), "mask layout must not change bits");
        let mut rng = StdRng::seed_from_u64(61);
        let protocol = PrivateWeightingProtocol::setup(&histogram, &test_config(), &mut rng);
        for round in 0..3u64 {
            let (deltas, noises) = deltas_and_noise(&histogram, 3, 62 + round);
            let (out, _) = protocol.weighting_round(&deltas, &noises, Some(&mask), &mut rng);
            let reference = protocol.plaintext_reference(&deltas, &noises, Some(&mask));
            for (a, b) in out.iter().zip(reference.iter()) {
                assert!((a - b).abs() < 1e-6, "round {round}: secure {a} vs plaintext {b}");
            }
        }
    }

    #[test]
    fn sparse_rounds_materialise_only_sampled_state() {
        if fresh_encrypt_forced() || crate::sampling::dense_mask_forced() {
            return; // both bypass knobs deliberately change the stats pinned below
        }
        let histogram = wide_histogram();
        let mut rng = StdRng::seed_from_u64(71);
        let protocol = PrivateWeightingProtocol::setup(&histogram, &test_config(), &mut rng);
        let (deltas, noises) = deltas_and_noise(&histogram, 3, 72);
        let mask = SampleMask::from_sorted_indices(13, vec![2, 7, 11]);
        assert!(mask.is_sparse());

        // Round 1: only the sampled users with records encrypt — user 11 holds no
        // records and costs neither a ciphertext nor a cache entry.
        let _ = protocol.weighting_round(&deltas, &noises, Some(&mask), &mut rng);
        assert_eq!(protocol.round_cache_stats(), (2, 0));
        assert_eq!(protocol.cached_entry_count(), 2);
        // Round 2: both served from cache.
        let _ = protocol.weighting_round(&deltas, &noises, Some(&mask), &mut rng);
        assert_eq!(protocol.round_cache_stats(), (0, 2));

        // A different sample: newcomers encrypt fresh; leavers keep their lazy entries
        // (their cached plaintext is still the real inverse)…
        let other = SampleMask::from_sorted_indices(13, vec![0, 4]);
        assert!(other.is_sparse());
        let _ = protocol.weighting_round(&deltas, &noises, Some(&other), &mut rng);
        assert_eq!(protocol.round_cache_stats(), (2, 0));
        assert_eq!(protocol.cached_entry_count(), 4);
        // …so re-entering users re-randomise instead of re-encrypting.
        let (out, _) = protocol.weighting_round(&deltas, &noises, Some(&mask), &mut rng);
        assert_eq!(protocol.round_cache_stats(), (0, 2));
        let reference = protocol.plaintext_reference(&deltas, &noises, Some(&mask));
        for (a, b) in out.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-6, "secure {a} vs plaintext {b}");
        }
        assert!(protocol.cached_state_bytes() > 0);
    }

    #[test]
    fn pipelined_replays_match_sequential_replays_bitwise_across_grid() {
        // The tentpole determinism oracle: the same 4-round replay through the round
        // pipeline at depth ∈ {1, 2, 3} must produce aggregates bit-identical to the
        // sequential loop, at several (threads × chunk) points. The pipeline reorders
        // when work happens, never what it computes.
        let histogram = small_histogram();
        let (deltas, noises) = deltas_and_noise(&histogram, 4, 102);
        let run = |threads: usize, chunk_size: usize, depth: usize| {
            let mut rng = StdRng::seed_from_u64(101);
            let cfg = ProtocolConfig { threads, chunk_size, ..test_config() };
            let protocol = PrivateWeightingProtocol::setup(&histogram, &cfg, &mut rng);
            let inputs: Vec<RoundInput<'_>> =
                (0..4).map(|_| RoundInput::new(&deltas, &noises)).collect();
            let outputs = protocol.run_rounds_with_depth(&inputs, depth, &mut rng);
            outputs
                .iter()
                .map(|o| o.aggregate.iter().map(|v| v.to_bits()).collect::<Vec<u64>>())
                .collect::<Vec<_>>()
        };
        let sequential = run(1, usize::MAX, 0);
        for (threads, chunk) in [(1, usize::MAX), (3, 1), (4, 5)] {
            for depth in [1, 2, 3] {
                assert_eq!(
                    sequential,
                    run(threads, chunk, depth),
                    "threads={threads} chunk={chunk} depth={depth}"
                );
            }
        }
    }

    #[test]
    fn faulted_replay_drains_the_pipeline_and_invalidates_exactly_the_affected_entries() {
        // A mid-replay dropout must (a) leave every aggregate and dropout mask
        // bit-identical to the sequential loop and (b) invalidate exactly the users
        // with records in the dropped silo — visible as the next round's fresh count —
        // which requires the drain: an in-flight later round must not race the
        // invalidation.
        if fresh_encrypt_forced() {
            return; // stats are trivially (4, 0) in bypass mode
        }
        let histogram = small_histogram();
        // Same plan as dropout_invalidates_exactly_the_affected_users_entries: round 3
        // drops exactly one of the three silos; other rounds draw empty fault sets.
        let plan = FaultPlan { dropout_fraction: 0.4, seed: 77, ..FaultPlan::none() };
        let (deltas, noises) = deltas_and_noise(&histogram, 4, 104);
        let run = |depth: usize| {
            let mut rng = StdRng::seed_from_u64(103);
            let protocol =
                PrivateWeightingProtocol::setup(&histogram, &faulted_config(plan), &mut rng);
            // Only round index 3 runs under the plan (which drops one silo there); the
            // rounds around it stay fault-free and overlap across the drain.
            let inputs: Vec<RoundInput<'_>> = (0..5)
                .map(|t| RoundInput {
                    faulted: (t == 3).then_some(3),
                    ..RoundInput::new(&deltas, &noises)
                })
                .collect();
            let outputs = protocol.run_rounds_with_depth(&inputs, depth, &mut rng);
            let stats = protocol.round_cache_stats();
            let fingerprints = outputs
                .iter()
                .map(|o| {
                    (
                        o.aggregate.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
                        o.dropped.clone(),
                    )
                })
                .collect::<Vec<_>>();
            (fingerprints, stats)
        };
        let (sequential, seq_stats) = run(0);
        let dropped_at_3 = sequential[3].1.as_ref().expect("faulted round reports a mask").clone();
        assert_eq!(dropped_at_3.iter().filter(|&&d| d).count(), 1, "round 3 drops one silo");
        for depth in [1, 2, 3] {
            let (pipelined, pipe_stats) = run(depth);
            assert_eq!(sequential, pipelined, "depth={depth}");
            assert_eq!(seq_stats, pipe_stats, "depth={depth}");
        }
        // Round 4 (the one after the dropout) freshly re-encrypts exactly the affected
        // users; the rest re-randomise — the invalidation landed, and landed once.
        let affected = (0..4)
            .filter(|&u| dropped_at_3.iter().enumerate().any(|(s, &d)| d && histogram[s][u] > 0))
            .count();
        assert!(affected > 0 && affected < 4, "the plan must split the users");
        assert_eq!(seq_stats, (affected, 4 - affected));
    }

    #[test]
    fn single_round_and_depth_zero_replays_take_the_sequential_path() {
        // Replays too short to overlap fall back to the sequential loop outright; the
        // outputs still match the per-round entry point exactly.
        let histogram = small_histogram();
        let (deltas, noises) = deltas_and_noise(&histogram, 3, 106);
        let mut rng = StdRng::seed_from_u64(105);
        let protocol = PrivateWeightingProtocol::setup(&histogram, &test_config(), &mut rng);
        let inputs = [RoundInput::new(&deltas, &noises)];
        let via_replay = protocol.run_rounds_with_depth(&inputs, 3, &mut rng.clone());
        let (direct, _) = protocol.weighting_round(&deltas, &noises, None, &mut rng);
        assert_eq!(
            via_replay[0].aggregate.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
            direct.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
        );
        assert!(via_replay[0].dropped.is_none());
    }
}
