//! ULDP-NAIVE (Algorithm 1): silo-level clipping with `|S|`-scaled Gaussian noise.
//!
//! Each silo trains on its full local dataset like DEFAULT, clips the resulting model
//! delta to `C`, and adds Gaussian noise with variance `σ²C²|S|`. Because a single user
//! may appear in every silo, the user-level sensitivity of the aggregated delta is `C·|S|`
//! and the per-silo noise must be scaled up accordingly (Theorem 1); with only a handful
//! of silos to average over, the result is a very noisy update — the reason this baseline
//! achieves a small ε but poor utility in the figures.

use crate::aggregation::{add_gaussian_noise, sum_deltas};
use crate::algorithms::{apply_update, map_silos};
use crate::config::FlConfig;
use crate::silo;
use uldp_ml::{clipping, Model};
use uldp_runtime::Runtime;

use uldp_datasets::FederatedDataset;

/// Runs one ULDP-NAIVE round on the worker pool, updating `model` in place.
pub fn run_round(
    rt: &Runtime,
    model: &mut Box<dyn Model>,
    dataset: &FederatedDataset,
    config: &FlConfig,
    round_seed: u64,
) {
    let global = model.parameters().to_vec();
    let dim = global.len();
    let template = model.clone_model();
    // Per-silo noise std: sqrt(sigma^2 C^2 |S|) = sigma * C * sqrt(|S|)  (Algorithm 1, l.14).
    let noise_std = config.sigma * config.clip_bound * (dataset.num_silos as f64).sqrt();
    let deltas = map_silos(rt, dataset.num_silos, round_seed, |silo_id, rng| {
        let mut scratch = template.clone_model();
        let records: Vec<&uldp_ml::Sample> =
            dataset.silo_records(silo_id).into_iter().map(|r| &r.sample).collect();
        let mut delta = silo::local_train(
            scratch.as_mut(),
            &global,
            &records,
            config.local_epochs,
            config.local_lr,
            config.batch_size,
            rng,
        );
        clipping::clip_to_norm(&mut delta, config.clip_bound);
        add_gaussian_noise(&mut delta, noise_std, rng);
        delta
    });
    let aggregate = sum_deltas(&deltas, dim);
    apply_update(model.as_mut(), &aggregate, config.global_lr, 1.0 / dataset.num_silos as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_util::{tiny_federation, tiny_model};
    use crate::config::{FlConfig, Method};

    fn rt() -> Runtime {
        Runtime::new(2)
    }

    #[test]
    fn noiseless_naive_matches_clipped_default_behaviour() {
        // With sigma = 0 the only difference from DEFAULT is clipping; training should
        // still make progress on separable data.
        let dataset = tiny_federation(3, 10, 120);
        let mut model = tiny_model();
        let config = FlConfig {
            method: Method::UldpNaive,
            sigma: 0.0,
            clip_bound: 10.0,
            local_lr: 0.3,
            ..Default::default()
        };
        for t in 0..5 {
            run_round(&rt(), &mut model, &dataset, &config, t);
        }
        let acc = uldp_ml::metrics::accuracy(model.as_ref(), &dataset.test);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn noise_dominates_with_default_sigma() {
        // With the paper's sigma = 5 and few silos the update is mostly noise: parameters
        // after one round should differ markedly between two different noise seeds.
        let dataset = tiny_federation(3, 10, 60);
        let config = FlConfig { method: Method::UldpNaive, sigma: 5.0, ..Default::default() };
        let mut m1 = tiny_model();
        let mut m2 = tiny_model();
        run_round(&rt(), &mut m1, &dataset, &config, 1);
        run_round(&rt(), &mut m2, &dataset, &config, 2);
        let diff: f64 =
            m1.parameters().iter().zip(m2.parameters().iter()).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 0.1, "different noise seeds should give different models");
    }

    #[test]
    fn clipping_bounds_silo_contribution_without_noise() {
        let dataset = tiny_federation(2, 5, 60);
        let clip = 0.05;
        let config = FlConfig {
            method: Method::UldpNaive,
            sigma: 0.0,
            clip_bound: clip,
            global_lr: 1.0,
            ..Default::default()
        };
        let mut model = tiny_model();
        let before = model.parameters().to_vec();
        run_round(&rt(), &mut model, &dataset, &config, 0);
        // ||x_{t+1} - x_t|| <= global_lr * (1/|S|) * sum_s ||clip(delta_s)|| <= clip
        let moved: f64 = model
            .parameters()
            .iter()
            .zip(before.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(moved <= clip + 1e-9, "moved {moved} > clip {clip}");
    }
}
