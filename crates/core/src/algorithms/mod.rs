//! Round implementations of the five training algorithms evaluated in the paper.
//!
//! Each sub-module exposes a `run_round` function that performs one complete federated
//! round: silo-local computation (possibly per user), clipping, DP noise, aggregation and
//! the global model update. The [`crate::trainer::Trainer`] dispatches to the right module
//! based on [`crate::config::Method`] and handles privacy accounting, user-level
//! sub-sampling masks and evaluation.

pub mod default;
pub mod group;
pub mod naive;
pub mod uldp_avg;
pub mod uldp_sgd;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uldp_ml::Model;

/// Runs `per_silo` for every silo, in parallel when there are enough silos to justify the
/// thread overhead, and returns the per-silo results in silo order.
///
/// Every silo receives its own deterministic RNG derived from `base_seed` so that results
/// do not depend on scheduling.
pub(crate) fn map_silos<F>(num_silos: usize, base_seed: u64, per_silo: F) -> Vec<Vec<f64>>
where
    F: Fn(usize, &mut StdRng) -> Vec<f64> + Sync,
{
    let silo_seed = |s: usize| base_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(s as u64);
    if num_silos < 2 {
        return (0..num_silos)
            .map(|s| {
                let mut rng = StdRng::seed_from_u64(silo_seed(s));
                per_silo(s, &mut rng)
            })
            .collect();
    }
    let mut results: Vec<Option<Vec<f64>>> = (0..num_silos).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_silos);
        for s in 0..num_silos {
            let per_silo = &per_silo;
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(silo_seed(s));
                per_silo(s, &mut rng)
            }));
        }
        for (s, handle) in handles.into_iter().enumerate() {
            results[s] = Some(handle.join().expect("silo thread panicked"));
        }
    });
    results.into_iter().map(|r| r.expect("missing silo result")).collect()
}

/// Applies the aggregated update to the global model:
/// `x ← x + global_lr · scale · aggregate`.
pub(crate) fn apply_update(model: &mut dyn Model, aggregate: &[f64], global_lr: f64, scale: f64) {
    let params = model.parameters_mut();
    assert_eq!(params.len(), aggregate.len(), "aggregate dimensionality mismatch");
    for (p, a) in params.iter_mut().zip(aggregate.iter()) {
        *p += global_lr * scale * a;
    }
}

/// Derives a fresh per-round seed from the configured seed and round index.
pub(crate) fn round_seed(seed: u64, round: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed ^ round.wrapping_mul(0xD1B5_4A32_D192_ED03));
    rng.gen()
}

#[cfg(test)]
pub(crate) mod test_util {
    //! Shared helpers for algorithm unit tests: a tiny linearly separable federation.

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use uldp_datasets::{FederatedDataset, FederatedRecord};
    use uldp_ml::{LinearClassifier, Model, Sample};

    /// A tiny 2-feature, 2-class, linearly separable federation.
    pub fn tiny_federation(num_silos: usize, num_users: usize, records: usize) -> FederatedDataset {
        let mut rng = StdRng::seed_from_u64(99);
        let mut recs = Vec::with_capacity(records);
        for i in 0..records {
            let label = i % 2;
            let sign = if label == 1 { 1.0 } else { -1.0 };
            let features =
                vec![sign * 2.0 + rng.gen_range(-0.3..0.3), sign * 1.0 + rng.gen_range(-0.3..0.3)];
            recs.push(FederatedRecord {
                sample: Sample::classification(features, label),
                user: rng.gen_range(0..num_users),
                silo: rng.gen_range(0..num_silos),
            });
        }
        let test: Vec<Sample> = (0..40)
            .map(|i| {
                let label = i % 2;
                let sign = if label == 1 { 1.0 } else { -1.0 };
                Sample::classification(vec![sign * 2.0, sign * 1.0], label)
            })
            .collect();
        FederatedDataset::new("tiny", num_silos, num_users, recs, test)
    }

    /// A fresh linear model matching the tiny federation.
    pub fn tiny_model() -> Box<dyn Model> {
        Box::new(LinearClassifier::new(2, 2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uldp_ml::LinearClassifier;

    #[test]
    fn map_silos_is_deterministic_and_ordered() {
        let f = |s: usize, rng: &mut StdRng| vec![s as f64, rng.gen::<f64>()];
        let a = map_silos(4, 7, f);
        let b = map_silos(4, 7, f);
        assert_eq!(a, b);
        for (s, v) in a.iter().enumerate() {
            assert_eq!(v[0], s as f64);
        }
        // different seeds give different randomness
        let c = map_silos(4, 8, f);
        assert_ne!(a, c);
    }

    #[test]
    fn map_silos_single_silo() {
        let out = map_silos(1, 0, |_, _| vec![42.0]);
        assert_eq!(out, vec![vec![42.0]]);
    }

    #[test]
    fn apply_update_moves_parameters() {
        let mut model: Box<dyn uldp_ml::Model> = Box::new(LinearClassifier::new(1, 2));
        let dim = model.num_parameters();
        apply_update(model.as_mut(), &vec![1.0; dim], 0.5, 2.0);
        assert!(model.parameters().iter().all(|&p| (p - 1.0).abs() < 1e-12));
    }

    #[test]
    fn round_seed_varies_by_round() {
        assert_ne!(round_seed(1, 0), round_seed(1, 1));
        assert_eq!(round_seed(1, 5), round_seed(1, 5));
    }
}
