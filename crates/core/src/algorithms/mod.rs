//! Round implementations of the five training algorithms evaluated in the paper.
//!
//! Each sub-module exposes a `run_round` function that performs one complete federated
//! round: silo-local computation (possibly per user), clipping, DP noise, aggregation and
//! the global model update. The [`crate::trainer::Trainer`] dispatches to the right module
//! based on [`crate::config::Method`] and handles privacy accounting, user-level
//! sub-sampling masks and evaluation.

pub mod default;
pub mod group;
pub mod naive;
pub(crate) mod stream;
pub mod uldp_avg;
pub mod uldp_sgd;

use crate::sampling::SampleMask;
use crate::weighting::WeightMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_datasets::FederatedDataset;
use uldp_ml::Model;
use uldp_runtime::{seeding, Runtime};

/// Stream tag separating per-task training RNGs from per-silo noise RNGs within a round.
pub(crate) const STREAM_TRAIN: u64 = 1;
/// Stream tag for per-silo Gaussian-noise RNGs.
pub(crate) const STREAM_NOISE: u64 = 2;

/// Runs `per_silo` for every silo on the shared worker pool and returns the per-silo
/// results in silo order.
///
/// Every silo receives its own deterministic RNG derived from `(base_seed, silo)` via
/// [`seeding::index_seed`], so results are bitwise-identical at any thread count.
pub(crate) fn map_silos<F>(
    rt: &Runtime,
    num_silos: usize,
    base_seed: u64,
    per_silo: F,
) -> Vec<Vec<f64>>
where
    F: Fn(usize, &mut StdRng) -> Vec<f64> + Sync,
{
    rt.par_map_seeded(num_silos, base_seed, per_silo)
}

/// The deterministic RNG for one `(silo, user)` training task of a round.
///
/// Seeded from the round's training stream and the user's global task index, so the
/// stream is a pure function of `(round_seed, silo, user)` — independent of both thread
/// count and of which other users participate in the round.
pub(crate) fn task_rng(round_seed: u64, num_users: usize, silo: usize, user: usize) -> StdRng {
    let task_index = (silo * num_users + user) as u64;
    StdRng::seed_from_u64(seeding::index_seed(seeding::mix(round_seed, STREAM_TRAIN), task_index))
}

/// The deterministic RNG for silo-level Gaussian noise of a round.
pub(crate) fn noise_rng(round_seed: u64, silo: usize) -> StdRng {
    StdRng::seed_from_u64(seeding::index_seed(seeding::mix(round_seed, STREAM_NOISE), silo as u64))
}

/// The participating `(silo, user)` pairs of a round — users present in a silo whose
/// weight is non-zero and who are in the round's sampling mask — in flattened
/// silo-major order. Shared by `uldp_avg` and `uldp_sgd`, whose parallel regions run
/// one task per pair.
///
/// The mask is probed per candidate task rather than materialised into a zeroed weight
/// matrix, so an unsampled user costs one [`SampleMask::contains`] probe and no
/// per-user allocation; the resulting task list is identical to filtering on a
/// [`WeightMatrix::masked_by_sampling`] copy of `weights`.
pub(crate) fn participating_tasks(
    dataset: &FederatedDataset,
    weights: &WeightMatrix,
    mask: Option<&SampleMask>,
) -> Vec<(usize, usize)> {
    (0..dataset.num_silos)
        .flat_map(|silo_id| {
            dataset
                .users_in_silo(silo_id)
                .into_iter()
                .filter(move |&user| {
                    mask.is_none_or(|m| m.contains(user)) && weights.get(silo_id, user) != 0.0
                })
                .map(move |user| (silo_id, user))
        })
        .collect()
}

/// Applies the aggregated update to the global model:
/// `x ← x + global_lr · scale · aggregate`.
pub(crate) fn apply_update(model: &mut dyn Model, aggregate: &[f64], global_lr: f64, scale: f64) {
    let params = model.parameters_mut();
    assert_eq!(params.len(), aggregate.len(), "aggregate dimensionality mismatch");
    for (p, a) in params.iter_mut().zip(aggregate.iter()) {
        *p += global_lr * scale * a;
    }
}

/// Derives a fresh per-round seed from the configured seed and round index.
///
/// A SplitMix64-style hash ([`seeding::index_seed`]) rather than a full `StdRng`
/// construction per call: the derivation is a pure 64-bit mix, an order of magnitude
/// cheaper and just as well distributed.
pub(crate) fn round_seed(seed: u64, round: u64) -> u64 {
    seeding::index_seed(seed, round)
}

#[cfg(test)]
pub(crate) mod test_util {
    //! Shared helpers for algorithm unit tests: a tiny linearly separable federation.

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use uldp_datasets::{FederatedDataset, FederatedRecord};
    use uldp_ml::{LinearClassifier, Model, Sample};

    /// A tiny 2-feature, 2-class, linearly separable federation.
    pub fn tiny_federation(num_silos: usize, num_users: usize, records: usize) -> FederatedDataset {
        let mut rng = StdRng::seed_from_u64(99);
        let mut recs = Vec::with_capacity(records);
        for i in 0..records {
            let label = i % 2;
            let sign = if label == 1 { 1.0 } else { -1.0 };
            let features =
                vec![sign * 2.0 + rng.gen_range(-0.3..0.3), sign * 1.0 + rng.gen_range(-0.3..0.3)];
            recs.push(FederatedRecord {
                sample: Sample::classification(features, label),
                user: rng.gen_range(0..num_users),
                silo: rng.gen_range(0..num_silos),
            });
        }
        let test: Vec<Sample> = (0..40)
            .map(|i| {
                let label = i % 2;
                let sign = if label == 1 { 1.0 } else { -1.0 };
                Sample::classification(vec![sign * 2.0, sign * 1.0], label)
            })
            .collect();
        FederatedDataset::new("tiny", num_silos, num_users, recs, test)
    }

    /// A fresh linear model matching the tiny federation.
    pub fn tiny_model() -> Box<dyn Model> {
        Box::new(LinearClassifier::new(2, 2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use uldp_ml::LinearClassifier;

    #[test]
    fn map_silos_is_deterministic_and_ordered() {
        let rt = Runtime::new(3);
        let f = |s: usize, rng: &mut StdRng| vec![s as f64, rng.gen::<f64>()];
        let a = map_silos(&rt, 4, 7, f);
        let b = map_silos(&rt, 4, 7, f);
        assert_eq!(a, b);
        // thread count does not change the results
        assert_eq!(a, map_silos(&Runtime::new(1), 4, 7, f));
        for (s, v) in a.iter().enumerate() {
            assert_eq!(v[0], s as f64);
        }
        // different seeds give different randomness
        let c = map_silos(&rt, 4, 8, f);
        assert_ne!(a, c);
    }

    #[test]
    fn map_silos_single_silo() {
        let out = map_silos(&Runtime::new(2), 1, 0, |_, _| vec![42.0]);
        assert_eq!(out, vec![vec![42.0]]);
    }

    #[test]
    fn task_and_noise_rngs_are_stream_separated() {
        let a: u64 = task_rng(5, 10, 0, 0).gen();
        let b: u64 = task_rng(5, 10, 0, 1).gen();
        let c: u64 = task_rng(5, 10, 1, 0).gen();
        let z: u64 = noise_rng(5, 0).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, z);
        let a2: u64 = task_rng(5, 10, 0, 0).gen();
        assert_eq!(a, a2);
    }

    #[test]
    fn apply_update_moves_parameters() {
        let mut model: Box<dyn uldp_ml::Model> = Box::new(LinearClassifier::new(1, 2));
        let dim = model.num_parameters();
        apply_update(model.as_mut(), &vec![1.0; dim], 0.5, 2.0);
        assert!(model.parameters().iter().all(|&p| (p - 1.0).abs() < 1e-12));
    }

    #[test]
    fn round_seed_varies_by_round() {
        assert_ne!(round_seed(1, 0), round_seed(1, 1));
        assert_eq!(round_seed(1, 5), round_seed(1, 5));
    }
}
