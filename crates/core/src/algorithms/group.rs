//! ULDP-GROUP-k (Algorithm 2): per-silo DP-SGD plus group-privacy conversion.
//!
//! Contribution-bounding flags `B` restrict every user to at most `k` records across all
//! silos; each silo then runs record-level DP-SGD on its surviving records. Group privacy
//! (Lemma 6) lifts the record-level guarantee to `(k, ε, δ)`-GDP which, by Proposition 1,
//! implies `(ε, δ)`-ULDP — at the cost of the super-linear privacy-bound blow-up shown in
//! Figure 2 and of dropping records for users above the cap.
//!
//! Following the paper's experimental setup, the flags are generated *for existing
//! records* (greedily keeping the first `k` records of each user) to minimise waste,
//! ignoring the privacy cost of computing the flags themselves (a stated limitation of
//! this baseline).

use crate::algorithms::apply_update;
use crate::algorithms::stream::DeltaAccumulator;
use crate::config::{FlConfig, GroupSize};
use crate::silo;
use uldp_datasets::FederatedDataset;
use uldp_ml::Model;
use uldp_runtime::Runtime;

/// Resolves the configured [`GroupSize`] to a concrete `k` for a dataset.
pub fn resolve_group_size(dataset: &FederatedDataset, group_size: GroupSize) -> u64 {
    match group_size {
        GroupSize::Max => dataset.max_records_per_user().max(1) as u64,
        GroupSize::Median => dataset.median_records_per_user().max(1) as u64,
        GroupSize::Fixed(k) => k.max(1),
    }
}

/// The accounting group size: the largest power of two that is `≤ k`.
///
/// Lemma 6 needs a power-of-two group size; the paper reports ε computed at the largest
/// power of two below `k` as a lower bound when `k` itself is not a power of two.
pub fn accounting_group_size(k: u64) -> u64 {
    let k = k.max(1);
    let mut p = 1u64;
    while p * 2 <= k {
        p *= 2;
    }
    p
}

/// Builds the contribution-bounding flags `B`: `flags[i]` is `true` iff record `i` of the
/// dataset participates in training. Each user keeps at most `k` records (in record
/// order across all silos).
pub fn build_contribution_flags(dataset: &FederatedDataset, k: u64) -> Vec<bool> {
    let mut kept_per_user = vec![0u64; dataset.num_users];
    dataset
        .records
        .iter()
        .map(|r| {
            if kept_per_user[r.user] < k {
                kept_per_user[r.user] += 1;
                true
            } else {
                false
            }
        })
        .collect()
}

/// Runs one ULDP-GROUP-k round on the worker pool, updating `model` in place.
///
/// `flags` must come from [`build_contribution_flags`] and stay constant across rounds.
/// The silo-level DP-SGD loops (inherently sequential per silo: every step depends on
/// the previous one) stream through a chunked fold over the silos: each chunk folds its
/// silos' noisy deltas straight into one exact accumulator, so the per-silo delta
/// vectors are never materialised together (O(chunks × dim) transient memory). Each
/// silo's RNG is derived from `(round_seed, silo)` exactly as with
/// [`crate::algorithms::map_silos`], so the
/// round is bitwise-identical across all `(threads, chunk_size)` settings.
/// [`FlConfig::shards`] does not apply here — a silo's DP-SGD loop cannot be split.
pub fn run_round(
    rt: &Runtime,
    model: &mut Box<dyn Model>,
    dataset: &FederatedDataset,
    config: &FlConfig,
    flags: &[bool],
    round_seed: u64,
) {
    assert_eq!(flags.len(), dataset.num_records(), "flag vector length mismatch");
    let sampling_rate = match config.method {
        crate::config::Method::UldpGroup { sampling_rate, .. } => sampling_rate,
        _ => panic!("run_round called with a non-GROUP method"),
    };
    let global = model.parameters().to_vec();
    let dim = global.len();
    let template = model.clone_model();
    // One fold task here covers whole *silos*, not (silo, user) pairs, so the training
    // default of 16 tasks per chunk would collapse typical silo counts into a single
    // sequential chunk. Default to one silo per chunk — the same per-silo pooled
    // parallelism (and O(silos × dim) footprint) as the previous map_silos path — and
    // let an explicit `FlConfig::chunk_size` coarsen it.
    let chunk_size = if config.chunk_size != 0 { config.chunk_size } else { 1 };
    rt.fold_gauge().record(
        uldp_runtime::fold_chunk_ranges(dataset.num_silos, chunk_size).len()
            * DeltaAccumulator::bytes(dim),
    );
    let aggregate = rt
        .par_fold_seeded(
            dataset.num_silos,
            chunk_size,
            round_seed,
            || DeltaAccumulator::new(dim),
            |acc, silo_id, rng| {
                let mut scratch = template.clone_model();
                // D'_s: this silo's records that survive the contribution bound.
                let records: Vec<&uldp_ml::Sample> = dataset
                    .records
                    .iter()
                    .zip(flags.iter())
                    .filter(|(r, &keep)| keep && r.silo == silo_id)
                    .map(|(r, _)| &r.sample)
                    .collect();
                let delta = silo::dp_sgd(
                    scratch.as_mut(),
                    &global,
                    &records,
                    config.local_epochs,
                    config.local_lr,
                    config.clip_bound,
                    config.sigma,
                    sampling_rate,
                    rng,
                );
                acc.add(&delta);
            },
            |mut a, b| {
                a.merge(b);
                a
            },
        )
        .map(DeltaAccumulator::finish)
        .unwrap_or_else(|| vec![0.0; dim]);
    apply_update(model.as_mut(), &aggregate, config.global_lr, 1.0 / dataset.num_silos as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_util::{tiny_federation, tiny_model};
    use crate::config::{FlConfig, GroupSize, Method};

    fn rt() -> Runtime {
        Runtime::new(2)
    }

    #[test]
    fn flags_limit_records_per_user() {
        let dataset = tiny_federation(3, 5, 200);
        let k = 4;
        let flags = build_contribution_flags(&dataset, k);
        let mut per_user = vec![0u64; dataset.num_users];
        for (r, &keep) in dataset.records.iter().zip(flags.iter()) {
            if keep {
                per_user[r.user] += 1;
            }
        }
        assert!(per_user.iter().all(|&c| c <= k));
        // something survives
        assert!(flags.iter().any(|&f| f));
    }

    #[test]
    fn group_max_keeps_everything() {
        let dataset = tiny_federation(3, 5, 100);
        let k = resolve_group_size(&dataset, GroupSize::Max);
        let flags = build_contribution_flags(&dataset, k);
        assert!(flags.iter().all(|&f| f));
    }

    #[test]
    fn group_size_resolution() {
        let dataset = tiny_federation(2, 4, 50);
        assert_eq!(
            resolve_group_size(&dataset, GroupSize::Max),
            dataset.max_records_per_user() as u64
        );
        assert_eq!(
            resolve_group_size(&dataset, GroupSize::Median),
            dataset.median_records_per_user() as u64
        );
        assert_eq!(resolve_group_size(&dataset, GroupSize::Fixed(7)), 7);
    }

    #[test]
    fn accounting_size_rounds_down_to_power_of_two() {
        assert_eq!(accounting_group_size(1), 1);
        assert_eq!(accounting_group_size(2), 2);
        assert_eq!(accounting_group_size(3), 2);
        assert_eq!(accounting_group_size(7), 4);
        assert_eq!(accounting_group_size(8), 8);
        assert_eq!(accounting_group_size(100), 64);
    }

    #[test]
    fn group_round_learns_without_noise() {
        let dataset = tiny_federation(3, 10, 150);
        let mut model = tiny_model();
        let config = FlConfig {
            method: Method::UldpGroup { group_size: GroupSize::Max, sampling_rate: 1.0 },
            sigma: 0.0,
            clip_bound: 5.0,
            local_lr: 0.3,
            local_epochs: 5,
            ..Default::default()
        };
        let flags =
            build_contribution_flags(&dataset, resolve_group_size(&dataset, GroupSize::Max));
        for t in 0..5 {
            run_round(&rt(), &mut model, &dataset, &config, &flags, t);
        }
        let acc = uldp_ml::metrics::accuracy(model.as_ref(), &dataset.test);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn default_chunking_keeps_one_fold_task_per_silo() {
        // Regression guard: the silo-granularity fold must not inherit the per-user
        // training chunk default (16), which would serialise every dataset with ≤ 16
        // silos. At defaults the gauge must see one chunk partial per silo.
        let dataset = tiny_federation(3, 5, 60);
        let mut model = tiny_model();
        let config = FlConfig {
            method: Method::UldpGroup { group_size: GroupSize::Max, sampling_rate: 1.0 },
            sigma: 0.0,
            ..Default::default()
        };
        let flags =
            build_contribution_flags(&dataset, resolve_group_size(&dataset, GroupSize::Max));
        let rt = rt();
        rt.fold_gauge().reset();
        run_round(&rt, &mut model, &dataset, &config, &flags, 0);
        let dim = model.num_parameters();
        assert_eq!(rt.fold_gauge().last(), 3 * DeltaAccumulator::bytes(dim));
    }

    #[test]
    #[should_panic(expected = "flag vector length mismatch")]
    fn wrong_flag_length_rejected() {
        let dataset = tiny_federation(2, 4, 20);
        let mut model = tiny_model();
        let config = FlConfig {
            method: Method::UldpGroup { group_size: GroupSize::Fixed(2), sampling_rate: 0.5 },
            ..Default::default()
        };
        run_round(&rt(), &mut model, &dataset, &config, &[true, false], 0);
    }
}
