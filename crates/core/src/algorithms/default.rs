//! DEFAULT: non-private FedAVG with two-sided learning rates.
//!
//! Every silo trains for `Q` epochs of mini-batch SGD on its full local dataset and sends
//! the raw model delta; the server averages the deltas and applies the global learning
//! rate. This is the utility upper bound ("DEFAULT" in Figures 4–7); it offers no DP
//! guarantee.

use crate::aggregation::sum_deltas;
use crate::algorithms::{apply_update, map_silos};
use crate::config::FlConfig;
use crate::silo;
use uldp_datasets::FederatedDataset;
use uldp_ml::Model;
use uldp_runtime::Runtime;

/// Runs one DEFAULT round on the worker pool, updating `model` in place.
pub fn run_round(
    rt: &Runtime,
    model: &mut Box<dyn Model>,
    dataset: &FederatedDataset,
    config: &FlConfig,
    round_seed: u64,
) {
    let global = model.parameters().to_vec();
    let dim = global.len();
    let template = model.clone_model();
    let deltas = map_silos(rt, dataset.num_silos, round_seed, |silo_id, rng| {
        let mut scratch = template.clone_model();
        let records: Vec<&uldp_ml::Sample> =
            dataset.silo_records(silo_id).into_iter().map(|r| &r.sample).collect();
        silo::local_train(
            scratch.as_mut(),
            &global,
            &records,
            config.local_epochs,
            config.local_lr,
            config.batch_size,
            rng,
        )
    });
    let aggregate = sum_deltas(&deltas, dim);
    apply_update(model.as_mut(), &aggregate, config.global_lr, 1.0 / dataset.num_silos as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_util::{tiny_federation, tiny_model};
    use crate::config::{FlConfig, Method};
    use uldp_ml::metrics::accuracy;

    fn rt() -> Runtime {
        Runtime::new(2)
    }

    #[test]
    fn default_round_improves_accuracy() {
        let dataset = tiny_federation(3, 10, 120);
        let mut model = tiny_model();
        let config = FlConfig {
            method: Method::Default,
            rounds: 5,
            local_epochs: 2,
            local_lr: 0.3,
            ..Default::default()
        };
        let before = accuracy(model.as_ref(), &dataset.test);
        for t in 0..5 {
            run_round(&rt(), &mut model, &dataset, &config, t);
        }
        let after = accuracy(model.as_ref(), &dataset.test);
        assert!(after > before.max(0.9), "accuracy {before} -> {after}");
    }

    #[test]
    fn round_is_deterministic_for_fixed_seed() {
        let dataset = tiny_federation(2, 5, 60);
        let config = FlConfig { method: Method::Default, ..Default::default() };
        let mut m1 = tiny_model();
        let mut m2 = tiny_model();
        run_round(&rt(), &mut m1, &dataset, &config, 3);
        run_round(&rt(), &mut m2, &dataset, &config, 3);
        assert_eq!(m1.parameters(), m2.parameters());
    }

    #[test]
    fn empty_silo_contributes_zero() {
        // 5 silos but records only land in silos 0..3 (probabilistically all); even if a
        // silo is empty the round must not panic.
        let dataset = tiny_federation(5, 4, 20);
        let mut model = tiny_model();
        let config = FlConfig { method: Method::Default, ..Default::default() };
        run_round(&rt(), &mut model, &dataset, &config, 0);
        assert!(model.parameters().iter().all(|p| p.is_finite()));
    }
}
