//! The streaming sharded round engine behind ULDP-AVG / ULDP-SGD (and, via
//! [`crate::algorithms::group`], the per-silo DP-SGD aggregation).
//!
//! The seed implementation materialised one dim-length delta per participating
//! `(silo, user)` task and then accumulated them sequentially — O(tasks × dim) transient
//! memory per round, which caps how many users a silo can serve. This engine replaces
//! that with chunked in-place folds on [`Runtime::par_fold_ranges`]:
//!
//! * each silo's participating users are split into [`FlConfig::shards`] contiguous
//!   **shards** that run as independent pooled tasks (so one silo's round scales past a
//!   single task), and each shard is further split into fixed-size **chunks** of
//!   [`FlConfig::chunk_size`] tasks;
//! * each `(silo, shard, chunk)` span folds its users' deltas into one
//!   [`DeltaAccumulator`] — no per-task delta collection ever exists — giving
//!   O(spans × dim) transient memory;
//! * span partials merge per silo in span order.
//!
//! ## Determinism
//!
//! The accumulator is an **exact** fixed-point integer ([`DeltaAccumulator`]): adds and
//! merges are integer additions, so the per-silo sums are independent of how tasks are
//! grouped into spans and of which worker ran what. Together with the per-task RNG
//! streams (a pure function of `(round_seed, silo, user)`), this makes every round
//! **bitwise-identical across all `(threads, shards, chunk_size)` settings** — a
//! strictly stronger guarantee than the seed's thread-count invariance, asserted by
//! `tests/runtime_determinism.rs`.

use std::ops::Range;
use uldp_runtime::Runtime;

/// Fixed-point scale (in bits) of the exact delta accumulator.
///
/// Contributions are quantised to multiples of 2⁻⁸⁰ (≈ 8.3·10⁻²⁵ — over ten orders of
/// magnitude below f64's relative resolution at typical delta magnitudes) and summed as
/// exact `i128` integers. Headroom: |Σ| < 2⁴⁷ ≈ 1.4·10¹⁴, far above any clipped-delta
/// aggregate (|coordinate| ≤ C per user).
const SCALE_BITS: i32 = 80;

/// Default chunk size (tasks per fold span) for the training hot path when neither
/// [`FlConfig::chunk_size`](crate::config::FlConfig::chunk_size) nor `ULDP_CHUNK` is
/// set. Per-user training dominates each task, so modest chunks keep the pool busy
/// without letting span partials approach the old per-task materialisation.
pub(crate) const DEFAULT_TRAIN_CHUNK: usize = 16;

/// An exact fixed-point accumulator for dim-length f64 delta vectors.
///
/// `add` quantises each coordinate to the 2⁻⁸⁰ grid (an exact operation up to the
/// quantisation itself: scaling by a power of two is lossless, truncation is
/// deterministic) and accumulates in `i128`. Integer addition is associative and
/// commutative, so any grouping of `add`/`merge` calls over the same multiset of
/// contributions produces identical bits — the property the sharded round engine's
/// invariance guarantee rests on.
#[derive(Clone, Debug)]
pub(crate) struct DeltaAccumulator {
    acc: Vec<i128>,
}

impl DeltaAccumulator {
    /// A zeroed accumulator for `dim` coordinates.
    pub(crate) fn new(dim: usize) -> Self {
        DeltaAccumulator { acc: vec![0i128; dim] }
    }

    /// Transient footprint of one accumulator in bytes (what the fold sites report to
    /// the runtime's [`uldp_runtime::MemoryGauge`]).
    pub(crate) fn bytes(dim: usize) -> usize {
        dim * std::mem::size_of::<i128>()
    }

    /// Adds a delta vector (must have the accumulator's dimensionality).
    pub(crate) fn add(&mut self, delta: &[f64]) {
        assert_eq!(delta.len(), self.acc.len(), "delta dimensionality mismatch");
        let scale = 2f64.powi(SCALE_BITS);
        for (a, &d) in self.acc.iter_mut().zip(delta.iter()) {
            // Saturating cast + wrapping add: both deterministic, neither reachable for
            // clipped training deltas.
            *a = a.wrapping_add((d * scale) as i128);
        }
    }

    /// Merges another accumulator in (exact, so merge order cannot change the result).
    pub(crate) fn merge(&mut self, other: DeltaAccumulator) {
        assert_eq!(other.acc.len(), self.acc.len(), "accumulator dimensionality mismatch");
        for (a, b) in self.acc.iter_mut().zip(other.acc) {
            *a = a.wrapping_add(b);
        }
    }

    /// Rounds the exact sum back to f64 (one rounding for the whole sum, `i128 → f64`
    /// is round-to-nearest and the power-of-two rescale is lossless).
    pub(crate) fn finish(self) -> Vec<f64> {
        let inv_scale = 2f64.powi(-SCALE_BITS);
        self.acc.into_iter().map(|a| a as f64 * inv_scale).collect()
    }
}

/// One fold span of a round: a contiguous run of task indices belonging to one silo.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct SiloSpan {
    /// The silo every task in the span belongs to.
    pub(crate) silo: usize,
    /// Contiguous range into the flattened `(silo, user)` task list.
    pub(crate) range: Range<usize>,
}

/// Builds the `(silo, shard, chunk)` span grid over a silo-major task list.
///
/// Each silo's contiguous task run is split into at most `shards` near-equal shards
/// (empty shards are dropped), and each shard into chunks of `chunk_size` tasks. The
/// grid depends only on the task list and the two knobs — never on the thread count.
pub(crate) fn shard_spans(
    tasks: &[(usize, usize)],
    num_silos: usize,
    shards: usize,
    chunk_size: usize,
) -> Vec<SiloSpan> {
    debug_assert!(tasks.windows(2).all(|w| w[0].0 <= w[1].0), "task list must be silo-major");
    let shards = shards.max(1);
    let mut spans = Vec::new();
    let mut silo_start = 0usize;
    for silo in 0..num_silos {
        let silo_end = tasks[silo_start..]
            .iter()
            .position(|&(s, _)| s != silo)
            .map(|off| silo_start + off)
            .unwrap_or(tasks.len());
        let len = silo_end - silo_start;
        // Near-equal shard split (first `len % shards` shards get one extra task).
        let base = len / shards;
        let extra = len % shards;
        let mut shard_start = silo_start;
        for shard in 0..shards {
            let shard_len = base + usize::from(shard < extra);
            if shard_len == 0 {
                continue;
            }
            let shard_end = shard_start + shard_len;
            let chunk = if chunk_size == 0 { shard_len } else { chunk_size.min(shard_len) };
            let mut start = shard_start;
            while start < shard_end {
                let end = (start + chunk).min(shard_end);
                spans.push(SiloSpan { silo, range: start..end });
                start = end;
            }
            shard_start = shard_end;
        }
        silo_start = silo_end;
    }
    spans
}

/// Streams per-task contributions into per-silo delta sums on the worker pool.
///
/// `per_task(silo, user)` produces one task's (already weighted/clipped) delta, or
/// `None` when the task contributes nothing; it is called exactly once per task, in a
/// scheduling-independent order within each span. Returns one dim-length sum per silo
/// (zeros for silos without contributions). Transient memory — reported to the
/// runtime's fold gauge — is O(spans × dim) instead of the seed's O(tasks × dim).
pub(crate) fn stream_silo_deltas<F>(
    rt: &Runtime,
    tasks: &[(usize, usize)],
    num_silos: usize,
    shards: usize,
    chunk_size: usize,
    dim: usize,
    per_task: F,
) -> Vec<Vec<f64>>
where
    F: Fn(usize, usize) -> Option<Vec<f64>> + Sync,
{
    let spans = shard_spans(tasks, num_silos, shards, chunk_size);
    // The whole streaming fold as one span; the runtime adds one nested `fold_chunk`
    // span per (silo, shard, chunk) range underneath it.
    let _stream_span = uldp_telemetry::trace::span("train", "stream_silo_deltas")
        .arg("tasks", tasks.len())
        .arg("spans", spans.len())
        .arg("dim", dim);
    rt.fold_gauge().record(spans.len() * DeltaAccumulator::bytes(dim));
    let ranges: Vec<Range<usize>> = spans.iter().map(|s| s.range.clone()).collect();
    let partials = rt.par_fold_ranges(
        &ranges,
        || DeltaAccumulator::new(dim),
        |acc, i| {
            let (silo, user) = tasks[i];
            if let Some(delta) = per_task(silo, user) {
                acc.add(&delta);
            }
        },
    );
    // Exact per-silo merge in span order (spans are silo-major).
    let mut per_silo: Vec<DeltaAccumulator> =
        (0..num_silos).map(|_| DeltaAccumulator::new(dim)).collect();
    for (span, partial) in spans.into_iter().zip(partials) {
        per_silo[span.silo].merge(partial);
    }
    per_silo.into_iter().map(DeltaAccumulator::finish).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_is_exact_and_grouping_invariant() {
        let values: Vec<Vec<f64>> =
            (0..17).map(|i| vec![0.1 * i as f64, -0.37 + i as f64 * 1e-9]).collect();
        // One big fold vs many partial merges in a different grouping.
        let mut whole = DeltaAccumulator::new(2);
        for v in &values {
            whole.add(v);
        }
        let mut grouped = DeltaAccumulator::new(2);
        for group in values.chunks(3).rev() {
            let mut partial = DeltaAccumulator::new(2);
            for v in group {
                partial.add(v);
            }
            grouped.merge(partial);
        }
        let a = whole.finish();
        let b = grouped.finish();
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // and the fixed-point sum tracks the real sum to quantisation precision
        let expect: f64 = values.iter().map(|v| v[0]).sum();
        assert!((a[0] - expect).abs() < 1e-12);
    }

    #[test]
    fn accumulator_saturates_deterministically_at_extreme_magnitudes() {
        // |d| ≥ 2⁴⁷ overflows the i128 grid (2¹²⁷ / 2⁸⁰ = 2⁴⁷): the cast saturates and
        // the wrapping add keeps every grouping on the same bits — a byzantine
        // scaled-gradient delta of 1e30 must not introduce grouping-dependent results.
        let extremes =
            vec![vec![1e30], vec![-1e30], vec![f64::MAX], vec![-f64::MAX], vec![2f64.powi(47)]];
        let mut whole = DeltaAccumulator::new(1);
        for v in &extremes {
            whole.add(v);
        }
        let mut grouped = DeltaAccumulator::new(1);
        for group in extremes.chunks(2).rev() {
            let mut partial = DeltaAccumulator::new(1);
            for v in group {
                partial.add(v);
            }
            grouped.merge(partial);
        }
        assert_eq!(whole.finish()[0].to_bits(), grouped.finish()[0].to_bits());

        // The saturation boundary is exact: 2⁴⁷ pins to i128::MAX while the largest f64
        // below 2⁴⁷ still fits the grid (its scaled value is < 2¹²⁷).
        let saturating = |d: f64| {
            let mut acc = DeltaAccumulator::new(1);
            acc.add(&[d]);
            acc.acc[0]
        };
        assert_eq!(saturating(2f64.powi(47)), i128::MAX);
        assert_eq!(saturating(-2f64.powi(47)), i128::MIN);
        let below = f64::from_bits(2f64.powi(47).to_bits() - 1);
        assert!(saturating(below) < i128::MAX);
        // Opposite saturations cancel to -1 on the wrap (MAX + MIN), not to 0: the
        // result is garbage numerically but identical garbage in every grouping.
        let mut wrap = DeltaAccumulator::new(1);
        wrap.add(&[1e30]);
        wrap.add(&[-1e30]);
        assert_eq!(wrap.acc[0], -1);
    }

    #[test]
    fn accumulator_quantises_signed_zeros_and_subnormals_to_positive_zero() {
        // -0.0 · 2⁸⁰ = -0.0, and `(-0.0) as i128 == 0`; subnormals (≈ 5·10⁻³²⁴) scale to
        // ≈ 6·10⁻³⁰⁰, far below the 2⁻⁸⁰ grid, and truncate to 0. Either way the sum is
        // integer zero and `finish` returns +0.0 — the sign bit of a -0.0 contribution
        // never leaks into the aggregate.
        for d in [-0.0f64, 0.0, f64::from_bits(1), -f64::from_bits(1), f64::MIN_POSITIVE] {
            let mut acc = DeltaAccumulator::new(1);
            acc.add(&[d]);
            assert_eq!(acc.acc[0], 0, "d = {d:e}");
            assert_eq!(acc.finish()[0].to_bits(), 0.0f64.to_bits(), "d = {d:e}");
        }
        // Mixed signed zeros across merges agree bitwise with the plain fold.
        let mut a = DeltaAccumulator::new(2);
        a.add(&[-0.0, 1.5]);
        let mut b = DeltaAccumulator::new(2);
        b.add(&[0.0, -0.0]);
        a.merge(b);
        let out = a.finish();
        assert_eq!(out[0].to_bits(), 0.0f64.to_bits());
        assert_eq!(out[1].to_bits(), 1.5f64.to_bits());
    }

    #[test]
    fn shard_spans_cover_the_task_list_in_order() {
        let tasks: Vec<(usize, usize)> =
            vec![(0, 0), (0, 1), (0, 2), (0, 3), (0, 4), (2, 0), (2, 1), (2, 2)];
        for shards in [1usize, 2, 3, 10] {
            for chunk in [0usize, 1, 2, 7] {
                let spans = shard_spans(&tasks, 3, shards, chunk);
                // spans tile the list exactly, in order
                let mut expect = 0;
                for span in &spans {
                    assert_eq!(span.range.start, expect);
                    expect = span.range.end;
                    // every task in the span belongs to the span's silo
                    assert!(tasks[span.range.clone()].iter().all(|&(s, _)| s == span.silo));
                }
                assert_eq!(expect, tasks.len(), "shards={shards} chunk={chunk}");
            }
        }
        // shards=2, chunk=all: silo 0 (5 tasks) splits 3+2, silo 2 (3 tasks) splits 2+1
        let spans = shard_spans(&tasks, 3, 2, 0);
        let shape: Vec<(usize, usize)> = spans.iter().map(|s| (s.silo, s.range.len())).collect();
        assert_eq!(shape, vec![(0, 3), (0, 2), (2, 2), (2, 1)]);
    }

    #[test]
    fn stream_matches_naive_accumulation_and_is_structure_invariant() {
        let tasks: Vec<(usize, usize)> =
            (0..3).flat_map(|s| (0..11).map(move |u| (s, u))).collect();
        let dim = 4;
        let per_task = |silo: usize, user: usize| {
            if user == 5 {
                return None; // tasks may contribute nothing
            }
            Some((0..dim).map(|j| (silo * 100 + user * 7 + j) as f64 * 0.013 - 1.5).collect())
        };
        let reference = stream_silo_deltas(&Runtime::new(1), &tasks, 3, 1, 0, dim, per_task);
        // naive sum tracks it to quantisation precision
        for (silo, sums) in reference.iter().enumerate() {
            for j in 0..dim {
                let expect: f64 = (0..11).filter_map(|u| per_task(silo, u).map(|d| d[j])).sum();
                assert!((sums[j] - expect).abs() < 1e-12, "silo {silo} coord {j}");
            }
        }
        let bits = |deltas: &Vec<Vec<f64>>| {
            deltas.iter().flat_map(|d| d.iter().map(|v| v.to_bits())).collect::<Vec<_>>()
        };
        // bitwise-identical across every (threads, shards, chunk) combination
        for threads in [1usize, 2, 4] {
            let rt = Runtime::new(threads);
            for shards in [1usize, 2, 3] {
                for chunk in [1usize, 7, 0] {
                    let out = stream_silo_deltas(&rt, &tasks, 3, shards, chunk, dim, per_task);
                    assert_eq!(
                        bits(&out),
                        bits(&reference),
                        "threads={threads} shards={shards} chunk={chunk}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_task_list_yields_zero_sums() {
        let out = stream_silo_deltas(&Runtime::new(2), &[], 2, 3, 4, 3, |_, _| {
            panic!("no tasks to fold")
        });
        assert_eq!(out, vec![vec![0.0; 3]; 2]);
    }

    #[test]
    fn gauge_reports_span_count_times_accumulator_bytes() {
        let tasks: Vec<(usize, usize)> = (0..10).map(|u| (0, u)).collect();
        let rt = Runtime::new(1);
        rt.fold_gauge().reset();
        let _ = stream_silo_deltas(&rt, &tasks, 1, 2, 5, 6, |_, _| Some(vec![0.0; 6]));
        // 2 shards × 5 tasks, chunk 5 → one span per shard
        assert_eq!(rt.fold_gauge().last(), 2 * DeltaAccumulator::bytes(6));
    }
}
