//! ULDP-AVG (Algorithm 3): per-user weighted clipping inside each silo.
//!
//! For every user `u` with data in silo `s`, the silo trains a copy of the global model
//! for `Q` epochs on that user's records only, clips the resulting delta to `C`, scales it
//! by the clipping weight `w_{s,u}`, and sums over users. Gaussian noise with variance
//! `σ²C²/|S|` is added per silo so the aggregate carries variance `σ²C²`. Because
//! `Σ_s w_{s,u} = 1`, each user's total contribution to the aggregated delta is at most
//! `C`, i.e. the user-level sensitivity is `C` — this is what lets ULDP-AVG satisfy ULDP
//! directly (Theorem 3) without the group-privacy blow-up.
//!
//! The server update divides by `|U|·|S|` (or `q·|U|·|S|` under user-level sub-sampling,
//! Algorithm 4).

use crate::aggregation::{add_gaussian_noise, sum_deltas};
use crate::algorithms::{apply_update, noise_rng, participating_tasks, stream, task_rng};
use crate::config::FlConfig;
use crate::sampling::SampleMask;
use crate::silo;
use crate::weighting::WeightMatrix;
use uldp_datasets::FederatedDataset;
use uldp_ml::{clipping, Model};
use uldp_runtime::Runtime;
use uldp_telemetry::{metrics, trace};

/// Runs one ULDP-AVG round on the worker pool, updating `model` in place.
///
/// `weights` must satisfy the `Σ_s w_{s,u} ≤ 1` constraint; user-level sub-sampling is
/// expressed by passing the round's [`SampleMask`] together with the matching
/// `sampling_q`. The mask filters the task list directly — equivalent to (but without
/// allocating) a [`WeightMatrix::masked_by_sampling`] copy whose unsampled users are
/// zeroed, so sampled-round cost scales with the sampled users, not the population.
///
/// The per-user local training loops — the algorithm's dominant cost (Section 3.4) — run
/// on the streaming sharded round engine ([`crate::algorithms::stream`]): each silo's
/// users are split into [`FlConfig::shards`] pooled shards whose chunks fold weighted
/// deltas in place (O(chunks × dim) transient memory instead of O(users × dim)). Each
/// `(silo, user)` task trains with an RNG derived from `(round_seed, silo, user)` and
/// each silo draws its Gaussian noise from a separate per-silo stream, so the round is
/// bitwise-identical across all `(threads, shards, chunk_size)` settings.
///
/// Degradation semantics under [`FlConfig::fault_plan`] ([`crate::scenario`]):
///
/// * A **dropped** silo contributes neither deltas nor noise, and the server update is
///   re-scaled by the surviving silo count (`scale = 1/(q·|U|·|S_surviving|)`), so the
///   round equals a plan-less round over the survivors with the global learning rate
///   compensated by `|S|/|S_surviving|`.
/// * A **byzantine** silo's raw per-user deltas are corrupted *before* clipping, so each
///   corrupted task still contributes at most `w_{s,u}·C` in norm — the attacker's total
///   influence on the aggregate is bounded by `2·C·Σ_{corrupted (s,u)} w_{s,u}`.
///
/// All fault decisions are pure functions of `(plan seed, round_seed, silo[, user])`, so
/// faulted rounds keep the bitwise runtime-grid determinism.
#[allow(clippy::too_many_arguments)]
pub fn run_round(
    rt: &Runtime,
    model: &mut Box<dyn Model>,
    dataset: &FederatedDataset,
    config: &FlConfig,
    weights: &WeightMatrix,
    mask: Option<&SampleMask>,
    sampling_q: f64,
    round_seed: u64,
) {
    debug_assert!(weights.satisfies_sensitivity_constraint(1e-9));
    let _round_span = trace::span("train", "uldp_avg_round").arg("round", round_seed);
    let global = model.parameters().to_vec();
    let dim = global.len();
    let template = model.clone_model();
    let noise_std = config.sigma * config.clip_bound / (dataset.num_silos as f64).sqrt();

    let plan = &config.fault_plan;
    let dropped = plan.dropped_silos(round_seed, dataset.num_silos);
    let byzantine = plan.byzantine_silos(round_seed, dataset.num_silos);
    let surviving = dropped.iter().filter(|&&d| !d).count();

    if uldp_telemetry::enabled() {
        for (silo, &d) in dropped.iter().enumerate() {
            if d {
                metrics::FAULT_EVENTS.inc();
                trace::event(
                    "fault",
                    "dropout",
                    vec![("round", round_seed.into()), ("silo", silo.into())],
                );
            }
        }
    }

    let mut tasks = participating_tasks(dataset, weights, mask);
    tasks.retain(|&(silo_id, _)| !dropped[silo_id]);

    let mut deltas = stream::stream_silo_deltas(
        rt,
        &tasks,
        dataset.num_silos,
        config.resolved_shards(),
        config.resolved_chunk_size(),
        dim,
        |silo_id, user| {
            let records = dataset.silo_user_records(silo_id, user);
            if records.is_empty() {
                return None;
            }
            let mut rng = task_rng(round_seed, dataset.num_users, silo_id, user);
            let mut scratch = template.clone_model();
            // Per-user local training with Q epochs on D_{s,u} (full-batch per epoch —
            // per-user datasets are small).
            let mut delta = silo::local_train(
                scratch.as_mut(),
                &global,
                &records,
                config.local_epochs,
                config.local_lr,
                records.len().max(1),
                &mut rng,
            );
            if byzantine[silo_id] {
                plan.corrupt_delta(&mut delta, round_seed, dataset.num_users, silo_id, user);
                if uldp_telemetry::enabled() {
                    metrics::FAULT_EVENTS.inc();
                    trace::event(
                        "fault",
                        "byzantine",
                        vec![
                            ("round", round_seed.into()),
                            ("silo", silo_id.into()),
                            ("user", user.into()),
                        ],
                    );
                }
            }
            clipping::clip_to_norm(&mut delta, config.clip_bound);
            let w = weights.get(silo_id, user);
            for d in delta.iter_mut() {
                *d *= w;
            }
            Some(delta)
        },
    );
    // Per-silo noise from dedicated streams on top of the streamed per-silo sums; a
    // dropped silo's report never arrives, noise included.
    for (silo_id, silo_delta) in deltas.iter_mut().enumerate() {
        if dropped[silo_id] {
            continue;
        }
        add_gaussian_noise(silo_delta, noise_std, &mut noise_rng(round_seed, silo_id));
    }

    let aggregate = sum_deltas(&deltas, dim);
    let scale = 1.0 / (sampling_q * dataset.num_users as f64 * surviving as f64);
    apply_update(model.as_mut(), &aggregate, config.global_lr, scale);
}

/// The maximum possible contribution of a single user to the *aggregated* (pre-noise)
/// delta under the given weights — the user-level sensitivity bounded by Theorem 3.
pub fn user_sensitivity_bound(weights: &WeightMatrix, clip_bound: f64) -> f64 {
    weights.user_sums().into_iter().fold(0.0f64, f64::max) * clip_bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_util::{tiny_federation, tiny_model};
    use crate::config::{FlConfig, Method, WeightingStrategy};
    use uldp_ml::metrics::accuracy;

    fn rt() -> Runtime {
        Runtime::new(2)
    }

    fn avg_config(sigma: f64, num_silos: usize) -> FlConfig {
        FlConfig {
            method: Method::UldpAvg { weighting: WeightingStrategy::Uniform },
            sigma,
            clip_bound: 2.0,
            local_lr: 0.5,
            local_epochs: 3,
            global_lr: num_silos as f64,
            ..Default::default()
        }
    }

    #[test]
    fn noiseless_uldp_avg_learns() {
        let dataset = tiny_federation(3, 8, 160);
        let mut model = tiny_model();
        let config = avg_config(0.0, 3);
        let weights = WeightMatrix::uniform(3, 8);
        // The per-user averaging scales the effective step by ~1/|U|, so run more rounds
        // with an up-scaled global lr.
        let mut cfg = config;
        cfg.global_lr = 3.0 * 8.0;
        for t in 0..10 {
            run_round(&rt(), &mut model, &dataset, &cfg, &weights, None, 1.0, t);
        }
        let acc = accuracy(model.as_ref(), &dataset.test);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn user_contribution_bounded_by_clip() {
        // One round with a single user's data and zero noise: the parameter movement is at
        // most global_lr * C / (|U| |S|) because Σ_s w_{s,u} = 1.
        let dataset = tiny_federation(2, 6, 80);
        let mut model = tiny_model();
        let clip = 0.1;
        let cfg = FlConfig {
            method: Method::UldpAvg { weighting: WeightingStrategy::Uniform },
            sigma: 0.0,
            clip_bound: clip,
            local_lr: 1.0,
            local_epochs: 5,
            global_lr: 1.0,
            ..Default::default()
        };
        let weights = WeightMatrix::uniform(2, 6);
        let before = model.parameters().to_vec();
        run_round(&rt(), &mut model, &dataset, &cfg, &weights, None, 1.0, 0);
        let moved: f64 = model
            .parameters()
            .iter()
            .zip(before.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        // Total aggregate norm <= |U| * C (each user at most C), scaled by 1/(|U||S|).
        let bound = cfg.global_lr * clip / dataset.num_silos as f64;
        assert!(moved <= bound + 1e-9, "moved {moved} > bound {bound}");
    }

    #[test]
    fn sensitivity_bound_matches_theorem3() {
        let weights = WeightMatrix::uniform(4, 10);
        assert!((user_sensitivity_bound(&weights, 2.0) - 2.0).abs() < 1e-9);
        let masked = weights.masked_by_sampling(&[false; 10]);
        assert_eq!(user_sensitivity_bound(&masked, 2.0), 0.0);
    }

    #[test]
    fn subsampled_round_skips_unsampled_users() {
        let dataset = tiny_federation(2, 6, 60);
        let cfg = avg_config(0.0, 2);
        let weights = WeightMatrix::uniform(2, 6);
        // No users sampled: model must not move.
        let none = weights.masked_by_sampling(&[false; 6]);
        let mut model = tiny_model();
        let before = model.parameters().to_vec();
        run_round(&rt(), &mut model, &dataset, &cfg, &none, None, 0.5, 0);
        assert_eq!(model.parameters(), before.as_slice());
    }

    #[test]
    fn record_proportional_weights_respect_constraint() {
        let dataset = tiny_federation(3, 7, 90);
        let weights = WeightMatrix::from_histogram(
            WeightingStrategy::RecordProportional,
            &dataset.histogram(),
        );
        assert!(weights.satisfies_sensitivity_constraint(1e-9));
        let mut model = tiny_model();
        let cfg = avg_config(0.0, 3);
        run_round(&rt(), &mut model, &dataset, &cfg, &weights, None, 1.0, 0);
        assert!(model.parameters().iter().all(|p| p.is_finite()));
    }
}
