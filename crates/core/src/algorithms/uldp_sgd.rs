//! ULDP-SGD (Algorithm 3, client variant for a single gradient step).
//!
//! Like ULDP-AVG but each user contributes a single clipped, weighted stochastic gradient
//! instead of a multi-epoch model delta; the server applies the aggregated gradient as a
//! descent step. The paper notes ULDP-SGD converges more slowly than ULDP-AVG (the same
//! relationship as FedSGD vs FedAVG), which Figures 4–7 confirm.

use crate::aggregation::{add_gaussian_noise, sum_deltas};
use crate::algorithms::{apply_update, noise_rng, participating_tasks, stream};
use crate::config::FlConfig;
use crate::sampling::SampleMask;
use crate::silo;
use crate::weighting::WeightMatrix;
use uldp_datasets::FederatedDataset;
use uldp_ml::{clipping, Model};
use uldp_runtime::Runtime;
use uldp_telemetry::{metrics, trace};

/// Runs one ULDP-SGD round on the worker pool, updating `model` in place.
///
/// The per-user gradient computations run on the streaming sharded round engine
/// ([`crate::algorithms::stream`]) like ULDP-AVG's training loops (they consume no
/// randomness); per-silo Gaussian noise comes from dedicated seeded streams, so the
/// round is bitwise-identical across all `(threads, shards, chunk_size)` settings.
///
/// [`FlConfig::fault_plan`] degradation semantics match ULDP-AVG
/// ([`crate::algorithms::uldp_avg::run_round`]): dropped silos contribute neither
/// gradients nor noise and the update re-scales by the surviving silo count; byzantine
/// silos corrupt raw gradients *before* clipping, bounding their influence by the
/// clipping norm. Fault decisions are seed-derived, preserving bitwise determinism.
#[allow(clippy::too_many_arguments)]
pub fn run_round(
    rt: &Runtime,
    model: &mut Box<dyn Model>,
    dataset: &FederatedDataset,
    config: &FlConfig,
    weights: &WeightMatrix,
    mask: Option<&SampleMask>,
    sampling_q: f64,
    round_seed: u64,
) {
    debug_assert!(weights.satisfies_sensitivity_constraint(1e-9));
    let _round_span = trace::span("train", "uldp_sgd_round").arg("round", round_seed);
    let global = model.parameters().to_vec();
    let dim = global.len();
    let template = model.clone_model();
    let noise_std = config.sigma * config.clip_bound / (dataset.num_silos as f64).sqrt();

    let plan = &config.fault_plan;
    let dropped = plan.dropped_silos(round_seed, dataset.num_silos);
    let byzantine = plan.byzantine_silos(round_seed, dataset.num_silos);
    let surviving = dropped.iter().filter(|&&d| !d).count();

    if uldp_telemetry::enabled() {
        for (silo, &d) in dropped.iter().enumerate() {
            if d {
                metrics::FAULT_EVENTS.inc();
                trace::event(
                    "fault",
                    "dropout",
                    vec![("round", round_seed.into()), ("silo", silo.into())],
                );
            }
        }
    }

    let mut tasks = participating_tasks(dataset, weights, mask);
    tasks.retain(|&(silo_id, _)| !dropped[silo_id]);

    let mut gradients = stream::stream_silo_deltas(
        rt,
        &tasks,
        dataset.num_silos,
        config.resolved_shards(),
        config.resolved_chunk_size(),
        dim,
        |silo_id, user| {
            let records = dataset.silo_user_records(silo_id, user);
            if records.is_empty() {
                return None;
            }
            let mut scratch = template.clone_model();
            let mut grad = silo::local_gradient(scratch.as_mut(), &global, &records);
            if byzantine[silo_id] {
                plan.corrupt_delta(&mut grad, round_seed, dataset.num_users, silo_id, user);
                if uldp_telemetry::enabled() {
                    metrics::FAULT_EVENTS.inc();
                    trace::event(
                        "fault",
                        "byzantine",
                        vec![
                            ("round", round_seed.into()),
                            ("silo", silo_id.into()),
                            ("user", user.into()),
                        ],
                    );
                }
            }
            clipping::clip_to_norm(&mut grad, config.clip_bound);
            let w = weights.get(silo_id, user);
            for g in grad.iter_mut() {
                *g *= w;
            }
            Some(grad)
        },
    );
    for (silo_id, silo_grad) in gradients.iter_mut().enumerate() {
        if dropped[silo_id] {
            continue;
        }
        add_gaussian_noise(silo_grad, noise_std, &mut noise_rng(round_seed, silo_id));
    }

    let aggregate = sum_deltas(&gradients, dim);
    // Gradients point uphill, so the server applies a *descent* step with the local
    // learning rate folded in (one SGD step per round at user level).
    let scale = -config.local_lr / (sampling_q * dataset.num_users as f64 * surviving as f64);
    apply_update(model.as_mut(), &aggregate, config.global_lr, scale);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_util::{tiny_federation, tiny_model};
    use crate::config::{FlConfig, Method, WeightingStrategy};
    use uldp_ml::metrics::accuracy;

    fn rt() -> Runtime {
        Runtime::new(2)
    }

    fn sgd_config() -> FlConfig {
        FlConfig {
            method: Method::UldpSgd { weighting: WeightingStrategy::Uniform },
            sigma: 0.0,
            clip_bound: 5.0,
            local_lr: 0.5,
            global_lr: 2.0 * 8.0, // |S| * |U| to undo the averaging scale on the tiny problem
            ..Default::default()
        }
    }

    #[test]
    fn noiseless_uldp_sgd_learns_slower_than_avg_but_learns() {
        let dataset = tiny_federation(2, 8, 120);
        let weights = WeightMatrix::uniform(2, 8);
        let cfg = sgd_config();
        let mut model = tiny_model();
        let before = accuracy(model.as_ref(), &dataset.test);
        for t in 0..30 {
            run_round(&rt(), &mut model, &dataset, &cfg, &weights, None, 1.0, t);
        }
        let after = accuracy(model.as_ref(), &dataset.test);
        assert!(after > before.max(0.85), "accuracy {before} -> {after}");
    }

    #[test]
    fn gradient_step_moves_against_loss() {
        let dataset = tiny_federation(2, 8, 120);
        let weights = WeightMatrix::uniform(2, 8);
        let cfg = sgd_config();
        let mut model = tiny_model();
        let refs: Vec<&uldp_ml::Sample> = dataset.test.iter().collect();
        let loss_before = model.loss(&refs);
        run_round(&rt(), &mut model, &dataset, &cfg, &weights, None, 1.0, 0);
        let loss_after = model.loss(&refs);
        assert!(loss_after < loss_before, "{loss_before} -> {loss_after}");
    }

    #[test]
    fn zero_weights_freeze_model() {
        let dataset = tiny_federation(2, 8, 60);
        let weights = WeightMatrix::uniform(2, 8).masked_by_sampling(&[false; 8]);
        let cfg = sgd_config();
        let mut model = tiny_model();
        let before = model.parameters().to_vec();
        run_round(&rt(), &mut model, &dataset, &cfg, &weights, None, 1.0, 0);
        assert_eq!(model.parameters(), before.as_slice());
    }
}
