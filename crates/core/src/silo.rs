//! Silo-local training subroutines.
//!
//! Three local procedures cover everything the paper's client algorithms need:
//!
//! * [`local_train`] — plain mini-batch SGD over a record set for `Q` epochs, returning
//!   the model delta (`Client` of DEFAULT and of ULDP-NAIVE before clipping, and the
//!   per-user inner loop of ULDP-AVG when called with one user's records).
//! * [`local_gradient`] — a single full-batch gradient (the per-user step of ULDP-SGD).
//! * [`dp_sgd`] — record-level DP-SGD (Abadi et al.): per-record gradient clipping,
//!   Poisson record sampling and Gaussian noise, used by the ULDP-GROUP-k baseline.

use rand::seq::SliceRandom;
use rand::Rng;
use uldp_ml::{clipping, rng::gaussian_vector, Model, Sample, Sgd};

/// Runs `epochs` of mini-batch SGD starting from `initial_params` over `records`, and
/// returns the parameter delta `x_local − x_initial`.
///
/// Returns a zero delta when `records` is empty (a silo or user with no data contributes
/// nothing).
pub fn local_train<R: Rng + ?Sized>(
    model: &mut dyn Model,
    initial_params: &[f64],
    records: &[&Sample],
    epochs: u64,
    learning_rate: f64,
    batch_size: usize,
    rng: &mut R,
) -> Vec<f64> {
    assert!(batch_size > 0);
    model.set_parameters(initial_params);
    if records.is_empty() {
        return vec![0.0; initial_params.len()];
    }
    let sgd = Sgd::new(learning_rate);
    let mut order: Vec<usize> = (0..records.len()).collect();
    for _ in 0..epochs {
        order.shuffle(rng);
        for chunk in order.chunks(batch_size) {
            let batch: Vec<&Sample> = chunk.iter().map(|&i| records[i]).collect();
            let (_, grad) = model.loss_and_gradient(&batch);
            sgd.step(model.parameters_mut(), &grad);
        }
    }
    model.parameters().iter().zip(initial_params.iter()).map(|(new, old)| new - old).collect()
}

/// A single full-batch gradient of the loss at `params` over `records`.
///
/// Returns a zero gradient when `records` is empty.
pub fn local_gradient(model: &mut dyn Model, params: &[f64], records: &[&Sample]) -> Vec<f64> {
    model.set_parameters(params);
    if records.is_empty() {
        return vec![0.0; params.len()];
    }
    model.loss_and_gradient(records).1
}

/// Record-level DP-SGD (Algorithm 1 of Abadi et al.), the local subroutine of
/// ULDP-GROUP-k.
///
/// Each of the `steps` iterations Poisson-samples records with probability
/// `sampling_rate`, clips every per-record gradient to `clip_bound`, sums them, adds
/// Gaussian noise with standard deviation `sigma · clip_bound`, and divides by the
/// *expected* batch size. Returns the parameter delta.
#[allow(clippy::too_many_arguments)]
pub fn dp_sgd<R: Rng + ?Sized>(
    model: &mut dyn Model,
    initial_params: &[f64],
    records: &[&Sample],
    steps: u64,
    learning_rate: f64,
    clip_bound: f64,
    sigma: f64,
    sampling_rate: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(sampling_rate > 0.0 && sampling_rate <= 1.0);
    model.set_parameters(initial_params);
    if records.is_empty() {
        return vec![0.0; initial_params.len()];
    }
    let dim = initial_params.len();
    let expected_batch = (sampling_rate * records.len() as f64).max(1.0);
    let sgd = Sgd::new(learning_rate);
    for _ in 0..steps {
        let mut sum_grad = vec![0.0; dim];
        for record in records {
            if !rng.gen_bool(sampling_rate) {
                continue;
            }
            let (_, grad) = model.loss_and_gradient(&[*record]);
            let clipped = clipping::clipped(&grad, clip_bound);
            for (s, g) in sum_grad.iter_mut().zip(clipped.iter()) {
                *s += g;
            }
        }
        let noise = gaussian_vector(rng, sigma * clip_bound, dim);
        for ((s, n), _) in sum_grad.iter_mut().zip(noise.iter()).zip(0..dim) {
            *s = (*s + n) / expected_batch;
        }
        sgd.step(model.parameters_mut(), &sum_grad);
    }
    model.parameters().iter().zip(initial_params.iter()).map(|(new, old)| new - old).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uldp_ml::{LinearClassifier, Model, Sample};

    fn separable_data() -> Vec<Sample> {
        vec![
            Sample::classification(vec![2.0, 1.0], 1),
            Sample::classification(vec![1.5, 2.0], 1),
            Sample::classification(vec![-2.0, -1.0], 0),
            Sample::classification(vec![-1.5, -2.0], 0),
        ]
    }

    #[test]
    fn local_train_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = LinearClassifier::new(2, 2);
        let data = separable_data();
        let refs: Vec<&Sample> = data.iter().collect();
        let init = model.parameters().to_vec();
        let initial_loss = {
            model.set_parameters(&init);
            model.loss(&refs)
        };
        let delta = local_train(&mut model, &init, &refs, 20, 0.5, 2, &mut rng);
        assert_eq!(delta.len(), init.len());
        // applying the delta reduces the loss
        let new_params: Vec<f64> = init.iter().zip(delta.iter()).map(|(a, b)| a + b).collect();
        model.set_parameters(&new_params);
        assert!(model.loss(&refs) < initial_loss);
    }

    #[test]
    fn empty_records_give_zero_delta() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = LinearClassifier::new(2, 2);
        let init = vec![0.5; model.num_parameters()];
        let delta = local_train(&mut model, &init, &[], 5, 0.1, 4, &mut rng);
        assert!(delta.iter().all(|&d| d == 0.0));
        let grad = local_gradient(&mut model, &init, &[]);
        assert!(grad.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn local_gradient_matches_model_gradient() {
        let mut model = LinearClassifier::new(2, 2);
        let data = separable_data();
        let refs: Vec<&Sample> = data.iter().collect();
        let params = vec![0.1; model.num_parameters()];
        let g1 = local_gradient(&mut model, &params, &refs);
        model.set_parameters(&params);
        let (_, g2) = model.loss_and_gradient(&refs);
        assert_eq!(g1, g2);
    }

    #[test]
    fn dp_sgd_without_noise_learns() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = LinearClassifier::new(2, 2);
        let data = separable_data();
        let refs: Vec<&Sample> = data.iter().collect();
        let init = vec![0.0; model.num_parameters()];
        let delta = dp_sgd(&mut model, &init, &refs, 60, 0.5, 5.0, 0.0, 1.0, &mut rng);
        let new_params: Vec<f64> = init.iter().zip(delta.iter()).map(|(a, b)| a + b).collect();
        model.set_parameters(&new_params);
        let preds: Vec<usize> = data.iter().map(|s| model.predict(&s.features)).collect();
        let labels: Vec<usize> = data.iter().map(|s| s.target.class().unwrap()).collect();
        assert_eq!(preds, labels);
    }

    #[test]
    fn dp_sgd_noise_perturbs_delta() {
        let mut model = LinearClassifier::new(2, 2);
        let data = separable_data();
        let refs: Vec<&Sample> = data.iter().collect();
        let init = vec![0.0; model.num_parameters()];
        let mut rng1 = StdRng::seed_from_u64(3);
        let noiseless = dp_sgd(&mut model, &init, &refs, 5, 0.1, 1.0, 0.0, 1.0, &mut rng1);
        let mut rng2 = StdRng::seed_from_u64(3);
        let noisy = dp_sgd(&mut model, &init, &refs, 5, 0.1, 1.0, 5.0, 1.0, &mut rng2);
        assert_ne!(noiseless, noisy);
    }

    #[test]
    fn local_train_is_deterministic_given_seed() {
        let data = separable_data();
        let refs: Vec<&Sample> = data.iter().collect();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut model = LinearClassifier::new(2, 2);
            let init = vec![0.0; model.num_parameters()];
            local_train(&mut model, &init, &refs, 3, 0.1, 2, &mut rng)
        };
        assert_eq!(run(7), run(7));
    }
}
