//! Per-user clipping weights `W = (w_{s,u})`.
//!
//! ULDP-AVG bounds each user's contribution to the aggregated model delta by `C` as long
//! as the weights satisfy `w_{s,u} ≥ 0` and `Σ_s w_{s,u} = 1` for every user (Theorem 3).
//! Two strategies from the paper are provided:
//!
//! * **uniform** — `w_{s,u} = 1/|S|`, which requires no knowledge of the data.
//! * **record-proportional** (Eq. 3, "ULDP-AVG-w") — `w_{s,u} = n_{s,u} / N_u`, which puts
//!   more weight on the silo holding more of the user's records and empirically reduces
//!   the clipping bias identified in the convergence analysis (Remark 4).
//!
//! User-level sub-sampling (Algorithm 4) is expressed by zeroing the weights of users not
//! sampled in the current round.

use crate::config::WeightingStrategy;
use crate::sampling::SampleMask;
use serde::{Deserialize, Serialize};

/// A `|S| × |U|` matrix of per-(silo, user) clipping weights.
///
/// ```
/// use uldp_core::config::WeightingStrategy;
/// use uldp_core::weighting::WeightMatrix;
///
/// // Two silos, one user with 3 records in silo 0 and 1 record in silo 1.
/// let histogram = vec![vec![3], vec![1]];
/// let weights = WeightMatrix::from_histogram(WeightingStrategy::RecordProportional, &histogram);
/// assert_eq!(weights.get(0, 0), 0.75);
/// assert_eq!(weights.get(1, 0), 0.25);
/// assert!(weights.satisfies_sensitivity_constraint(1e-12));
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WeightMatrix {
    num_silos: usize,
    num_users: usize,
    /// Row-major weights indexed `[silo][user]`.
    weights: Vec<f64>,
}

impl WeightMatrix {
    /// Builds the weight matrix for a strategy from the record histogram `n_{s,u}`.
    ///
    /// Users with zero records everywhere get zero weight in every silo (they contribute
    /// nothing and add no noise slots).
    pub fn from_histogram(strategy: WeightingStrategy, histogram: &[Vec<usize>]) -> Self {
        let num_silos = histogram.len();
        assert!(num_silos > 0, "need at least one silo");
        let num_users = histogram[0].len();
        assert!(
            histogram.iter().all(|row| row.len() == num_users),
            "histogram rows must have equal length"
        );
        let mut weights = vec![0.0; num_silos * num_users];
        for u in 0..num_users {
            let total: usize = (0..num_silos).map(|s| histogram[s][u]).sum();
            if total == 0 {
                continue;
            }
            for s in 0..num_silos {
                weights[s * num_users + u] = match strategy {
                    WeightingStrategy::Uniform => 1.0 / num_silos as f64,
                    WeightingStrategy::RecordProportional => histogram[s][u] as f64 / total as f64,
                };
            }
        }
        WeightMatrix { num_silos, num_users, weights }
    }

    /// A uniform `1/|S|` matrix for all users (no histogram needed).
    pub fn uniform(num_silos: usize, num_users: usize) -> Self {
        assert!(num_silos > 0 && num_users > 0);
        WeightMatrix {
            num_silos,
            num_users,
            weights: vec![1.0 / num_silos as f64; num_silos * num_users],
        }
    }

    /// The weight `w_{s,u}`.
    pub fn get(&self, silo: usize, user: usize) -> f64 {
        self.weights[silo * self.num_users + user]
    }

    /// Overrides the weight `w_{s,u}` (used by tests and the sub-sampling mask).
    pub fn set(&mut self, silo: usize, user: usize, value: f64) {
        assert!(value >= 0.0, "weights must be non-negative");
        self.weights[silo * self.num_users + user] = value;
    }

    /// Number of silos.
    pub fn num_silos(&self) -> usize {
        self.num_silos
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Returns a copy with the weights of all users *not* in `sampled` set to zero
    /// (Algorithm 4: user-level sub-sampling by zeroing weights).
    pub fn masked_by_sampling(&self, sampled: &[bool]) -> WeightMatrix {
        assert_eq!(sampled.len(), self.num_users, "sampling mask length mismatch");
        let mut out = self.clone();
        for (u, &keep) in sampled.iter().enumerate() {
            if !keep {
                for s in 0..self.num_silos {
                    out.weights[s * self.num_users + u] = 0.0;
                }
            }
        }
        out
    }

    /// Returns a copy with the weights of all users *not* in `mask` set to zero — the
    /// [`SampleMask`] equivalent of [`WeightMatrix::masked_by_sampling`], and bitwise
    /// equal to it on the densified mask.
    ///
    /// The output is still a dense `|S| × |U|` matrix; round-hot paths avoid this
    /// materialisation entirely by passing the mask itself down (the trainer hands
    /// `run_round` the unmasked matrix plus the mask). This copy exists for reference
    /// computations and tests that need the zeroed matrix explicitly.
    pub fn masked_by(&self, mask: &SampleMask) -> WeightMatrix {
        assert_eq!(mask.num_users(), self.num_users, "sampling mask length mismatch");
        let mut out = WeightMatrix {
            num_silos: self.num_silos,
            num_users: self.num_users,
            weights: vec![0.0; self.num_silos * self.num_users],
        };
        for u in mask.iter() {
            for s in 0..self.num_silos {
                out.weights[s * self.num_users + u] = self.weights[s * self.num_users + u];
            }
        }
        out
    }

    /// The per-user column sums `Σ_s w_{s,u}` (should be 1 for participating users, 0 for
    /// absent or unsampled users).
    pub fn user_sums(&self) -> Vec<f64> {
        (0..self.num_users).map(|u| (0..self.num_silos).map(|s| self.get(s, u)).sum()).collect()
    }

    /// Verifies the sensitivity constraint of Theorem 3: every column sums to at most
    /// `1 + tolerance`.
    pub fn satisfies_sensitivity_constraint(&self, tolerance: f64) -> bool {
        self.user_sums().into_iter().all(|s| s <= 1.0 + tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram() -> Vec<Vec<usize>> {
        // 2 silos, 3 users: user0 has 3+1 records, user1 has 0+4, user2 has none.
        vec![vec![3, 0, 0], vec![1, 4, 0]]
    }

    #[test]
    fn uniform_weights_sum_to_one_for_present_users() {
        let w = WeightMatrix::from_histogram(WeightingStrategy::Uniform, &histogram());
        let sums = w.user_sums();
        assert!((sums[0] - 1.0).abs() < 1e-12);
        assert!((sums[1] - 1.0).abs() < 1e-12);
        assert_eq!(sums[2], 0.0); // absent user
        assert!(w.satisfies_sensitivity_constraint(1e-9));
    }

    #[test]
    fn record_proportional_matches_eq3() {
        let w = WeightMatrix::from_histogram(WeightingStrategy::RecordProportional, &histogram());
        assert!((w.get(0, 0) - 0.75).abs() < 1e-12);
        assert!((w.get(1, 0) - 0.25).abs() < 1e-12);
        assert_eq!(w.get(0, 1), 0.0);
        assert!((w.get(1, 1) - 1.0).abs() < 1e-12);
        assert!(w.satisfies_sensitivity_constraint(1e-9));
    }

    #[test]
    fn uniform_constructor() {
        let w = WeightMatrix::uniform(4, 10);
        assert_eq!(w.num_silos(), 4);
        assert_eq!(w.num_users(), 10);
        assert!((w.get(3, 9) - 0.25).abs() < 1e-12);
        assert!(w.satisfies_sensitivity_constraint(1e-9));
    }

    #[test]
    fn sampling_mask_zeroes_unsampled_users() {
        let w = WeightMatrix::uniform(2, 3);
        let masked = w.masked_by_sampling(&[true, false, true]);
        assert_eq!(masked.get(0, 1), 0.0);
        assert_eq!(masked.get(1, 1), 0.0);
        assert!((masked.get(0, 0) - 0.5).abs() < 1e-12);
        // still satisfies the constraint
        assert!(masked.satisfies_sensitivity_constraint(1e-9));
    }

    #[test]
    fn masked_by_matches_masked_by_sampling_bitwise() {
        let w = WeightMatrix::from_histogram(WeightingStrategy::RecordProportional, &histogram());
        let flags = [true, false, true];
        let mask = SampleMask::from_dense(flags.to_vec());
        assert_eq!(w.masked_by(&mask), w.masked_by_sampling(&flags));
        assert_eq!(w.masked_by(&mask.densified()), w.masked_by_sampling(&flags));
    }

    #[test]
    #[should_panic(expected = "sampling mask length mismatch")]
    fn masked_by_length_checked() {
        let w = WeightMatrix::uniform(2, 3);
        let _ = w.masked_by(&SampleMask::all(2));
    }

    #[test]
    fn sensitivity_constraint_detects_violation() {
        let mut w = WeightMatrix::uniform(2, 2);
        w.set(0, 0, 0.9);
        w.set(1, 0, 0.9);
        assert!(!w.satisfies_sensitivity_constraint(1e-9));
    }

    #[test]
    #[should_panic(expected = "sampling mask length mismatch")]
    fn mask_length_checked() {
        let w = WeightMatrix::uniform(2, 3);
        let _ = w.masked_by_sampling(&[true]);
    }
}
