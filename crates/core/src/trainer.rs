//! Training orchestration: rounds, user-level sub-sampling, privacy accounting and
//! evaluation.
//!
//! [`Trainer`] owns a federated dataset, a model, an [`Accountant`] matched to the chosen
//! [`Method`], and the clipping-weight matrix. [`Trainer::run`] executes the configured
//! number of rounds and produces a [`TrainingHistory`] whose per-round entries are exactly
//! the series plotted in Figures 4–9 of the paper: a utility metric (accuracy, test loss
//! or C-index) and the accumulated ULDP ε.

use crate::algorithms::{self, group, round_seed};
use crate::config::{FlConfig, Method, WeightingStrategy};
use crate::sampling::SampleMask;
use crate::weighting::WeightMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use uldp_accounting::{Accountant, AlgorithmPrivacy};
use uldp_datasets::FederatedDataset;
use uldp_ml::{metrics, Model, ModelKind, Sample};
use uldp_runtime::{CloseOnDrop, Handoff, Runtime};
use uldp_telemetry::trace;

/// Utility and privacy measurements recorded after a round.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoundMetrics {
    /// 1-based round index.
    pub round: u64,
    /// Test accuracy (classification tasks).
    pub test_accuracy: Option<f64>,
    /// Average test loss.
    pub test_loss: Option<f64>,
    /// Concordance index (survival tasks).
    pub c_index: Option<f64>,
    /// Accumulated `(ε, δ)`-ULDP ε (infinite for the non-private baseline).
    pub epsilon: f64,
}

/// The complete record of a training run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// Method label (matches the paper's legends, e.g. "ULDP-AVG-w").
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Per-evaluation-point metrics.
    pub rounds: Vec<RoundMetrics>,
    /// Final flat model parameters.
    pub final_parameters: Vec<f64>,
}

impl TrainingHistory {
    /// The last recorded test accuracy, if any.
    pub fn final_accuracy(&self) -> Option<f64> {
        self.rounds.iter().rev().find_map(|r| r.test_accuracy)
    }

    /// The last recorded test loss, if any.
    pub fn final_loss(&self) -> Option<f64> {
        self.rounds.iter().rev().find_map(|r| r.test_loss)
    }

    /// The last recorded concordance index, if any.
    pub fn final_c_index(&self) -> Option<f64> {
        self.rounds.iter().rev().find_map(|r| r.c_index)
    }

    /// The final accumulated ε.
    pub fn final_epsilon(&self) -> f64 {
        self.rounds.last().map(|r| r.epsilon).unwrap_or(0.0)
    }

    /// Renders the history as CSV rows (`round,accuracy,loss,c_index,epsilon`), the format
    /// consumed by the figure-regeneration binaries.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("round,accuracy,loss,c_index,epsilon\n");
        for r in &self.rounds {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                r.round,
                r.test_accuracy.map(|v| v.to_string()).unwrap_or_default(),
                r.test_loss.map(|v| v.to_string()).unwrap_or_default(),
                r.c_index.map(|v| v.to_string()).unwrap_or_default(),
                r.epsilon
            ));
        }
        out
    }
}

/// Orchestrates a full federated training run for one method on one dataset.
pub struct Trainer {
    config: FlConfig,
    dataset: FederatedDataset,
    model: Box<dyn Model>,
    accountant: Accountant,
    weights: WeightMatrix,
    contribution_flags: Option<Vec<bool>>,
    /// The user-sampling mask currently in force (only with `user_sampling < 1.0`).
    /// Held for [`FlConfig::resample_every`] consecutive rounds before being redrawn,
    /// which keeps Protocol 1's cross-round ciphertext cache hot between redraws.
    /// Drawn by inversion-based Poisson sampling ([`SampleMask::poisson`]) — `O(q·|U|)`
    /// RNG draws and memory, not one Bernoulli trial per user.
    cached_mask: Option<SampleMask>,
    rng: StdRng,
    runtime: Arc<Runtime>,
}

impl Trainer {
    /// Creates a trainer, deriving the weight matrix, contribution flags and privacy
    /// accountant implied by the configured method.
    pub fn new(config: FlConfig, dataset: FederatedDataset, model: Box<dyn Model>) -> Self {
        config.validate();
        let histogram = dataset.histogram();
        let weights = match config.method {
            Method::UldpAvg { weighting } | Method::UldpSgd { weighting } => {
                WeightMatrix::from_histogram(weighting, &histogram)
            }
            _ => WeightMatrix::from_histogram(WeightingStrategy::Uniform, &histogram),
        };
        let contribution_flags = match config.method {
            Method::UldpGroup { group_size, .. } => {
                let k = group::resolve_group_size(&dataset, group_size);
                Some(group::build_contribution_flags(&dataset, k))
            }
            _ => None,
        };
        let privacy = match config.method {
            Method::Default => AlgorithmPrivacy::NonPrivate,
            Method::UldpNaive => {
                AlgorithmPrivacy::UserLevelGaussian { sigma: config.sigma, q: 1.0 }
            }
            Method::UldpAvg { .. } | Method::UldpSgd { .. } => {
                AlgorithmPrivacy::UserLevelGaussian { sigma: config.sigma, q: config.user_sampling }
            }
            Method::UldpGroup { group_size, sampling_rate } => {
                let k = group::resolve_group_size(&dataset, group_size);
                AlgorithmPrivacy::GroupDpSgd {
                    sigma: config.sigma,
                    sampling_rate,
                    steps_per_round: config.local_epochs,
                    group_size: group::accounting_group_size(k),
                }
            }
        };
        let accountant = Accountant::new(privacy);
        let rng = StdRng::seed_from_u64(config.seed);
        let runtime = Runtime::handle(config.threads);
        Trainer {
            config,
            dataset,
            model,
            accountant,
            weights,
            contribution_flags,
            cached_mask: None,
            rng,
            runtime,
        }
    }

    /// The configuration used by this trainer.
    pub fn config(&self) -> &FlConfig {
        &self.config
    }

    /// The dataset being trained on.
    pub fn dataset(&self) -> &FederatedDataset {
        &self.dataset
    }

    /// The current global model.
    pub fn model(&self) -> &dyn Model {
        self.model.as_ref()
    }

    /// The privacy accountant (read access, e.g. for inspecting the RDP curve).
    pub fn accountant(&self) -> &Accountant {
        &self.accountant
    }

    /// The clipping weight matrix in use.
    pub fn weights(&self) -> &WeightMatrix {
        &self.weights
    }

    /// The worker pool rounds run on (sized by [`FlConfig::threads`]).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Executes a single round (without evaluation) and updates the privacy accountant.
    pub fn step(&mut self, round: u64) {
        let seed = round_seed(self.config.seed, round);
        let rt = Arc::clone(&self.runtime);
        match self.config.method {
            Method::Default => algorithms::default::run_round(
                &rt,
                &mut self.model,
                &self.dataset,
                &self.config,
                seed,
            ),
            Method::UldpNaive => algorithms::naive::run_round(
                &rt,
                &mut self.model,
                &self.dataset,
                &self.config,
                seed,
            ),
            Method::UldpGroup { .. } => {
                let flags = self
                    .contribution_flags
                    .as_ref()
                    .expect("GROUP method always builds contribution flags");
                group::run_round(&rt, &mut self.model, &self.dataset, &self.config, flags, seed);
            }
            Method::UldpAvg { .. } | Method::UldpSgd { .. } => {
                let q = self.config.user_sampling;
                let effective_q = if q < 1.0 {
                    // Redraw the mask on its schedule (`resample_every`, default: every
                    // round); between redraws the held mask is reused verbatim, so the
                    // secure path's per-user plaintexts — and with them Protocol 1's
                    // ciphertext cache — stay unchanged. The draw walks geometric gaps
                    // (one uniform per *sampled* user), so a sparse round over a large
                    // population never pays a per-user Bernoulli pass.
                    if self.cached_mask.is_none()
                        || round.is_multiple_of(self.config.resample_every)
                    {
                        self.cached_mask =
                            Some(SampleMask::poisson(&mut self.rng, self.dataset.num_users, q));
                    }
                    q
                } else {
                    self.cached_mask = None;
                    1.0
                };
                let mask = self.cached_mask.as_ref();
                if matches!(self.config.method, Method::UldpAvg { .. }) {
                    algorithms::uldp_avg::run_round(
                        &rt,
                        &mut self.model,
                        &self.dataset,
                        &self.config,
                        &self.weights,
                        mask,
                        effective_q,
                        seed,
                    );
                } else {
                    algorithms::uldp_sgd::run_round(
                        &rt,
                        &mut self.model,
                        &self.dataset,
                        &self.config,
                        &self.weights,
                        mask,
                        effective_q,
                        seed,
                    );
                }
            }
        }
        self.accountant.step_round();
        // Privacy-budget ledger: one entry per accounted round with the running
        // (ε, δ) total, so traces show privacy spend alongside the timing spans.
        if uldp_telemetry::enabled() {
            uldp_telemetry::metrics::LEDGER_ENTRIES.inc();
            let epsilon = self.accountant.epsilon(self.config.delta);
            trace::event(
                "privacy",
                "ledger",
                vec![
                    ("round", round.into()),
                    ("rounds_accounted", self.accountant.rounds().into()),
                    ("epsilon", epsilon.into()),
                    ("delta", self.config.delta.into()),
                ],
            );
        }
    }

    /// Evaluates the current model on the held-out test set.
    pub fn evaluate(&self, round: u64) -> RoundMetrics {
        let epsilon = self.accountant.epsilon(self.config.delta);
        evaluate_model(self.model.as_ref(), &self.dataset.test, round, epsilon)
    }

    /// Runs the full configured number of rounds and returns the training history.
    ///
    /// Evaluation points are pipelined through the same handoff primitive as the
    /// protocol's round pipeline: the evaluation of round `t` scores a cheap model
    /// snapshot on a side thread while the main thread already steps round `t+1`.
    /// Snapshot, epsilon and round index are captured at exactly the point the
    /// sequential loop would evaluate, so the history is bit-identical at any depth
    /// (`ULDP_PIPELINE=0` or [`FlConfig::pipeline_depth`] control it; see
    /// [`Trainer::run_with_pipeline`]).
    pub fn run(&mut self) -> TrainingHistory {
        let depth = uldp_runtime::resolve_pipeline_depth(self.config.pipeline_depth);
        self.run_with_pipeline(depth)
    }

    /// [`Trainer::run`] at an explicit pipeline depth: `0` runs the sequential
    /// reference loop. Exposed so tests can compare depths without touching the
    /// process environment.
    pub fn run_with_pipeline(&mut self, depth: usize) -> TrainingHistory {
        if depth == 0 || self.config.rounds < 2 {
            let mut rounds = Vec::new();
            for t in 0..self.config.rounds {
                self.step(t);
                let is_last = t + 1 == self.config.rounds;
                if (t + 1) % self.config.eval_every == 0 || is_last {
                    rounds.push(self.evaluate(t + 1));
                }
            }
            return self.finish(rounds);
        }
        // The held-out test set is immutable for the whole run but the stepping loop
        // needs `&mut self`, so the side thread scores against its own copy.
        let test: Vec<Sample> = self.dataset.test.clone();
        let total = self.config.rounds;
        let eval_every = self.config.eval_every;
        let jobs: Handoff<EvalJob> = Handoff::new(depth);
        let scored: Handoff<RoundMetrics> = Handoff::new(total.max(1) as usize);
        std::thread::scope(|scope| {
            let (jobs, scored, test) = (&jobs, &scored, &test);
            scope.spawn(move || {
                let _close_scored = CloseOnDrop(scored);
                let _close_jobs = CloseOnDrop(jobs);
                while let Some((seq, job)) = jobs.pop() {
                    let m = evaluate_model(job.model.as_ref(), test, job.round, job.epsilon);
                    if !scored.push(seq, m) {
                        break;
                    }
                }
            });
            let mut seq = 0u64;
            for t in 0..total {
                self.step(t);
                let is_last = t + 1 == total;
                if (t + 1) % eval_every == 0 || is_last {
                    // Everything the sequential evaluate would read is captured here,
                    // before the next step mutates the model or the accountant.
                    let job = EvalJob {
                        round: t + 1,
                        model: self.model.clone_model(),
                        epsilon: self.accountant.epsilon(self.config.delta),
                    };
                    let _wait = trace::span("train", "pipeline_wait").arg("round", t);
                    assert!(jobs.push(seq, job), "evaluation stage terminated early");
                    seq += 1;
                }
            }
            jobs.close();
        });
        // The scored queue outlives the consumer (closed by its guard), so this drains
        // every evaluation in submission order.
        let mut rounds = Vec::new();
        while let Some((_, m)) = scored.pop() {
            rounds.push(m);
        }
        self.finish(rounds)
    }

    fn finish(&self, rounds: Vec<RoundMetrics>) -> TrainingHistory {
        TrainingHistory {
            method: self.config.method.label(),
            dataset: self.dataset.name.clone(),
            rounds,
            final_parameters: self.model.parameters().to_vec(),
        }
    }
}

/// What the training pipeline's step stage hands the evaluation stage: a model
/// snapshot (cheap — models are flat parameter vectors) plus the accountant state the
/// sequential loop would have read at this evaluation point.
struct EvalJob {
    round: u64,
    model: Box<dyn Model>,
    epsilon: f64,
}

/// [`Trainer::evaluate`] against an explicit model and test set, shared by the
/// sequential path and the pipelined evaluation stage.
fn evaluate_model(model: &dyn Model, test: &[Sample], round: u64, epsilon: f64) -> RoundMetrics {
    match model.kind() {
        ModelKind::Cox => RoundMetrics {
            round,
            test_accuracy: None,
            test_loss: Some(metrics::average_loss(model, test)),
            c_index: Some(metrics::concordance_index(model, test)),
            epsilon,
        },
        _ => RoundMetrics {
            round,
            test_accuracy: Some(metrics::accuracy(model, test)),
            test_loss: Some(metrics::average_loss(model, test)),
            c_index: None,
            epsilon,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_util::{tiny_federation, tiny_model};
    use crate::config::GroupSize;

    fn quick_config(method: Method) -> FlConfig {
        FlConfig {
            method,
            rounds: 3,
            local_epochs: 2,
            local_lr: 0.3,
            global_lr: if matches!(method, Method::UldpAvg { .. } | Method::UldpSgd { .. }) {
                10.0
            } else {
                1.0
            },
            sigma: if method.is_private() { 1.0 } else { 0.0 },
            clip_bound: 2.0,
            ..Default::default()
        }
    }

    #[test]
    fn default_run_produces_history_without_privacy() {
        let dataset = tiny_federation(2, 6, 80);
        let mut trainer = Trainer::new(quick_config(Method::Default), dataset, tiny_model());
        let history = trainer.run();
        assert_eq!(history.method, "DEFAULT");
        assert_eq!(history.rounds.len(), 3);
        assert!(history.final_epsilon().is_infinite());
        assert!(history.final_accuracy().unwrap() > 0.5);
    }

    #[test]
    fn uldp_avg_tracks_finite_epsilon() {
        let dataset = tiny_federation(2, 6, 80);
        let method = Method::UldpAvg { weighting: WeightingStrategy::Uniform };
        let mut trainer = Trainer::new(quick_config(method), dataset, tiny_model());
        let history = trainer.run();
        let eps = history.final_epsilon();
        assert!(eps.is_finite() && eps > 0.0);
        // epsilon grows monotonically across evaluation points
        let eps_series: Vec<f64> = history.rounds.iter().map(|r| r.epsilon).collect();
        assert!(eps_series.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn group_method_has_larger_epsilon_than_avg() {
        let dataset = tiny_federation(2, 6, 120);
        let avg = Method::UldpAvg { weighting: WeightingStrategy::Uniform };
        let group = Method::UldpGroup { group_size: GroupSize::Fixed(8), sampling_rate: 0.5 };
        let mut avg_trainer = Trainer::new(quick_config(avg), dataset.clone(), tiny_model());
        let mut group_trainer = Trainer::new(quick_config(group), dataset, tiny_model());
        let avg_eps = avg_trainer.run().final_epsilon();
        let group_eps = group_trainer.run().final_epsilon();
        assert!(group_eps > avg_eps, "group eps {group_eps} should exceed avg eps {avg_eps}");
    }

    #[test]
    fn subsampling_reduces_epsilon_in_training() {
        let dataset = tiny_federation(2, 10, 100);
        let method = Method::UldpAvg { weighting: WeightingStrategy::Uniform };
        let mut full_cfg = quick_config(method);
        full_cfg.sigma = 5.0;
        let mut sub_cfg = full_cfg.clone();
        sub_cfg.user_sampling = 0.3;
        let full_eps = Trainer::new(full_cfg, dataset.clone(), tiny_model()).run().final_epsilon();
        let sub_eps = Trainer::new(sub_cfg, dataset, tiny_model()).run().final_epsilon();
        assert!(sub_eps < full_eps, "{sub_eps} !< {full_eps}");
    }

    #[test]
    fn eval_every_controls_history_density() {
        let dataset = tiny_federation(2, 6, 40);
        let mut cfg = quick_config(Method::Default);
        cfg.rounds = 4;
        cfg.eval_every = 2;
        let mut trainer = Trainer::new(cfg, dataset, tiny_model());
        let history = trainer.run();
        assert_eq!(history.rounds.len(), 2);
        assert_eq!(history.rounds[0].round, 2);
        assert_eq!(history.rounds[1].round, 4);
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let dataset = tiny_federation(2, 6, 40);
        let mut trainer = Trainer::new(quick_config(Method::Default), dataset, tiny_model());
        let history = trainer.run();
        let csv = history.to_csv();
        assert!(csv.starts_with("round,accuracy,loss,c_index,epsilon\n"));
        assert_eq!(csv.lines().count(), 1 + history.rounds.len());
    }

    #[test]
    fn resample_every_holds_the_sampling_mask_between_redraws() {
        let dataset = tiny_federation(2, 12, 60);
        let method = Method::UldpAvg { weighting: WeightingStrategy::Uniform };
        let mut cfg = quick_config(method);
        cfg.user_sampling = 0.5;
        cfg.resample_every = 2;
        cfg.rounds = 4;
        let mut trainer = Trainer::new(cfg, dataset, tiny_model());
        trainer.step(0);
        let mask0 = trainer.cached_mask.clone().expect("round 0 draws a mask");
        trainer.step(1);
        assert_eq!(trainer.cached_mask, Some(mask0.clone()), "round 1 reuses the round-0 mask");
        trainer.step(2);
        let mask2 = trainer.cached_mask.clone().expect("round 2 redraws");
        assert_ne!(mask2, mask0, "the seeded redraw at round 2 produces a fresh mask");
        trainer.step(3);
        assert_eq!(trainer.cached_mask, Some(mask2), "round 3 reuses the round-2 mask");
    }

    #[test]
    fn runs_are_reproducible_with_same_seed() {
        let dataset = tiny_federation(2, 6, 60);
        let cfg = quick_config(Method::UldpAvg { weighting: WeightingStrategy::Uniform });
        let h1 = Trainer::new(cfg.clone(), dataset.clone(), tiny_model()).run();
        let h2 = Trainer::new(cfg, dataset, tiny_model()).run();
        assert_eq!(h1.final_parameters, h2.final_parameters);
    }

    #[test]
    fn pipelined_history_matches_sequential_at_every_depth() {
        let dataset = tiny_federation(2, 6, 60);
        let mut cfg = quick_config(Method::UldpAvg { weighting: WeightingStrategy::Uniform });
        cfg.rounds = 5;
        cfg.eval_every = 2;
        let sequential =
            Trainer::new(cfg.clone(), dataset.clone(), tiny_model()).run_with_pipeline(0);
        for depth in [1, 2, 3] {
            let piped =
                Trainer::new(cfg.clone(), dataset.clone(), tiny_model()).run_with_pipeline(depth);
            assert_eq!(
                piped.final_parameters, sequential.final_parameters,
                "depth {depth} changed the trained model"
            );
            assert_eq!(piped.rounds.len(), sequential.rounds.len());
            for (p, s) in piped.rounds.iter().zip(&sequential.rounds) {
                assert_eq!(p.round, s.round, "depth {depth} reordered evaluation points");
                assert_eq!(p.test_accuracy, s.test_accuracy, "depth {depth} round {}", s.round);
                assert_eq!(p.test_loss, s.test_loss, "depth {depth} round {}", s.round);
                assert_eq!(p.c_index, s.c_index, "depth {depth} round {}", s.round);
                assert_eq!(p.epsilon, s.epsilon, "depth {depth} round {}", s.round);
            }
        }
    }
}
