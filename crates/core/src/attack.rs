//! User-level membership-inference evaluation.
//!
//! The paper's conclusion points to empirically comparing user-level and record-level DP
//! through membership-inference attacks as an interesting follow-up. This module provides
//! that evaluation harness for the *user-level* threat model: the adversary observes the
//! released model and, given all records of a candidate user, must decide whether that
//! user's data was part of training.
//!
//! The implemented attack is the standard loss-threshold attack lifted to user level: the
//! attack score of a user is the negated average loss of the model on that user's records
//! (members tend to have lower loss because the model has seen their data). Reported
//! metrics are the attack ROC-AUC and the membership advantage `2·AUC − 1`; a model with a
//! strong user-level DP guarantee must keep the advantage close to zero.

use uldp_accounting::membership_advantage_bound;
use uldp_datasets::FederatedDataset;
use uldp_ml::{Model, Sample};

/// Result of a user-level membership-inference evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MembershipInferenceResult {
    /// ROC-AUC of the attack score (0.5 = no better than guessing).
    pub auc: f64,
    /// Membership advantage `2·AUC − 1` (0 = no leakage, 1 = perfect attack).
    pub advantage: f64,
    /// Mean per-user average loss over member users.
    pub member_mean_loss: f64,
    /// Mean per-user average loss over non-member users.
    pub non_member_mean_loss: f64,
}

/// Average loss of `model` over one user's records (the attack's sufficient statistic).
///
/// Returns `None` for users with no records.
pub fn user_average_loss(model: &dyn Model, records: &[Sample]) -> Option<f64> {
    if records.is_empty() {
        return None;
    }
    let refs: Vec<&Sample> = records.iter().collect();
    Some(model.loss(&refs))
}

/// Groups a federated dataset's training records per user (the member users' data as the
/// attacker would assemble it after record linkage).
pub fn member_user_records(dataset: &FederatedDataset) -> Vec<Vec<Sample>> {
    let mut per_user: Vec<Vec<Sample>> = vec![Vec::new(); dataset.num_users];
    for record in &dataset.records {
        per_user[record.user].push(record.sample.clone());
    }
    per_user.into_iter().filter(|records| !records.is_empty()).collect()
}

/// Runs the user-level loss-threshold membership-inference attack.
///
/// `members` holds the per-user record sets that *were* used in training and
/// `non_members` per-user record sets drawn from the same distribution that were *not*.
/// Users with no records are skipped.
pub fn user_level_membership_inference(
    model: &dyn Model,
    members: &[Vec<Sample>],
    non_members: &[Vec<Sample>],
) -> MembershipInferenceResult {
    let member_losses: Vec<f64> =
        members.iter().filter_map(|records| user_average_loss(model, records)).collect();
    let non_member_losses: Vec<f64> =
        non_members.iter().filter_map(|records| user_average_loss(model, records)).collect();
    assert!(
        !member_losses.is_empty() && !non_member_losses.is_empty(),
        "both member and non-member user sets must be non-empty"
    );

    // AUC of the score "-loss": members (positives) should score higher (lower loss).
    let mut favourable = 0.0f64;
    for &m in &member_losses {
        for &n in &non_member_losses {
            if m < n {
                favourable += 1.0;
            } else if (m - n).abs() < 1e-15 {
                favourable += 0.5;
            }
        }
    }
    let auc = favourable / (member_losses.len() as f64 * non_member_losses.len() as f64);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    MembershipInferenceResult {
        auc,
        advantage: 2.0 * auc - 1.0,
        member_mean_loss: mean(&member_losses),
        non_member_mean_loss: mean(&non_member_losses),
    }
}

/// The membership-inference outcome of one [`crate::scenario::Scenario`], scored against
/// the accountant's ε: the empirical attack advantage next to the theoretical
/// `(ε, δ)`-DP ceiling ([`membership_advantage_bound`]).
#[derive(Clone, Debug)]
pub struct ScenarioAttackScore {
    /// Scenario name ([`crate::scenario::Scenario::name`]).
    pub scenario: String,
    /// The attack result on the scenario's released model.
    pub result: MembershipInferenceResult,
    /// The accountant's accumulated ε for the run (∞ for non-private methods).
    pub epsilon: f64,
    /// The δ the guarantee (and the bound) is stated at.
    pub delta: f64,
    /// The `(ε, δ)`-DP ceiling on any attack's advantage.
    pub advantage_bound: f64,
}

impl ScenarioAttackScore {
    /// Whether the empirical advantage respects the theoretical ceiling (up to `slack`
    /// for the attack's finite-sample estimation noise).
    pub fn within_bound(&self, slack: f64) -> bool {
        self.result.advantage <= self.advantage_bound + slack
    }
}

/// Runs the user-level attack on a scenario's released model and scores it against the
/// `(ε, δ)` guarantee the accountant certified for that run.
pub fn score_scenario(
    scenario: impl Into<String>,
    model: &dyn Model,
    members: &[Vec<Sample>],
    non_members: &[Vec<Sample>],
    epsilon: f64,
    delta: f64,
) -> ScenarioAttackScore {
    let result = user_level_membership_inference(model, members, non_members);
    ScenarioAttackScore {
        scenario: scenario.into(),
        result,
        epsilon,
        delta,
        advantage_bound: membership_advantage_bound(epsilon, delta),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use uldp_ml::{LinearClassifier, Model, Sgd};

    /// Random-label data: the only way a model achieves low loss on it is memorisation,
    /// which is exactly the leakage membership inference detects.
    fn random_label_users(
        num_users: usize,
        records_per_user: usize,
        seed: u64,
    ) -> Vec<Vec<Sample>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..num_users)
            .map(|_| {
                (0..records_per_user)
                    .map(|_| {
                        let features: Vec<f64> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
                        Sample::classification(features, rng.gen_range(0..2))
                    })
                    .collect()
            })
            .collect()
    }

    fn overfit_model(members: &[Vec<Sample>]) -> LinearClassifier {
        let mut model = LinearClassifier::new(8, 2);
        let all: Vec<&Sample> = members.iter().flatten().collect();
        let sgd = Sgd::new(0.5);
        for _ in 0..2000 {
            let (_, grad) = model.loss_and_gradient(&all);
            sgd.step(model.parameters_mut(), &grad);
        }
        model
    }

    #[test]
    fn overfit_model_leaks_membership() {
        // Few records relative to model capacity (18 parameters, 24 records) so the
        // model can genuinely memorise the random labels and the attack has signal.
        let members = random_label_users(12, 2, 1);
        let non_members = random_label_users(12, 2, 2);
        let model = overfit_model(&members);
        let result = user_level_membership_inference(&model, &members, &non_members);
        assert!(result.auc > 0.6, "expected clear leakage, got AUC {}", result.auc);
        assert!(result.member_mean_loss < result.non_member_mean_loss);
        assert!(result.advantage > 0.2);
    }

    #[test]
    fn untrained_model_has_no_advantage() {
        let members = random_label_users(15, 4, 3);
        let non_members = random_label_users(15, 4, 4);
        let model = LinearClassifier::new(8, 2);
        let result = user_level_membership_inference(&model, &members, &non_members);
        // A constant predictor assigns the same loss structure to everyone.
        assert!(result.advantage.abs() < 0.25, "advantage {}", result.advantage);
    }

    #[test]
    fn member_user_records_groups_by_user() {
        use uldp_datasets::FederatedRecord;
        let records = vec![
            FederatedRecord { sample: Sample::classification(vec![0.0], 0), user: 0, silo: 0 },
            FederatedRecord { sample: Sample::classification(vec![1.0], 1), user: 0, silo: 1 },
            FederatedRecord { sample: Sample::classification(vec![2.0], 0), user: 2, silo: 0 },
        ];
        let dataset = FederatedDataset::new("t", 2, 3, records, vec![]);
        let grouped = member_user_records(&dataset);
        // user 1 has no records and is skipped
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].len(), 2);
        assert_eq!(grouped[1].len(), 1);
    }

    #[test]
    fn user_average_loss_empty_is_none() {
        let model = LinearClassifier::new(2, 2);
        assert!(user_average_loss(&model, &[]).is_none());
    }

    #[test]
    fn scenario_score_pairs_attack_with_epsilon_ceiling() {
        let members = random_label_users(12, 2, 5);
        let non_members = random_label_users(12, 2, 6);
        // A non-private overfit model: huge empirical advantage, but ε = ∞ puts the
        // ceiling at 1, so the score is still "within bound".
        let leaky = overfit_model(&members);
        let score = score_scenario("baseline", &leaky, &members, &non_members, f64::INFINITY, 1e-5);
        assert_eq!(score.scenario, "baseline");
        assert_eq!(score.advantage_bound, 1.0);
        assert!(score.within_bound(0.0));
        // A private untrained model at small ε: tiny ceiling, near-zero advantage.
        let private = LinearClassifier::new(8, 2);
        let score = score_scenario("dp", &private, &members, &non_members, 0.5, 1e-5);
        assert!(score.advantage_bound < 0.3);
        assert!(score.within_bound(0.25), "advantage {}", score.result.advantage);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn attack_requires_both_populations() {
        let model = LinearClassifier::new(2, 2);
        let members = vec![vec![Sample::classification(vec![0.0, 0.0], 0)]];
        let _ = user_level_membership_inference(&model, &members, &[]);
    }
}
