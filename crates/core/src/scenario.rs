//! Scenario engine: deterministic, seed-derived fault injection for adversarial and
//! degraded federations.
//!
//! The paper's evaluation assumes well-behaved federations — full participation (§2.1),
//! honest silos, roughly balanced user→silo allocations. Real cross-silo deployments face
//! stragglers, dropouts and byzantine updates. This module makes those conditions
//! *configurable and reproducible*: a [`FaultPlan`] threaded through
//! [`crate::config::FlConfig`] and [`crate::protocol::ProtocolConfig`] describes which
//! silos drop, lag or lie in a given round, and every decision is a **pure function of
//! `(plan seed, round seed, silo[, user])`** — derived through the same
//! [`seeding`] streams as the training RNGs, never through shared mutable state.
//!
//! That purity is what turns every scenario into a determinism test: a faulted round is
//! still bitwise-identical across every `(threads, shards, chunk_size)` grid point, so the
//! runtime-grid oracle of `tests/runtime_determinism.rs` extends unchanged to the whole
//! scenario catalogue (`tests/scenario_fuzz.rs`).
//!
//! Degradation semantics implemented on top of the plan:
//!
//! * **Dropout** (ULDP-AVG/SGD and Protocol 1): a dropped silo contributes neither its
//!   per-user deltas nor its DP noise. The aggregation path re-weights the surviving sum
//!   by `|S| / |S_surviving|`, so the update keeps its expected scale; in Protocol 1 the
//!   dropped silo's `(silo, coordinate)` cells are simply excluded from the streaming
//!   homomorphic fold — the Paillier path needs no mask-recovery machinery because the
//!   pairwise masks cancel *inside* each per-coordinate ciphertext sum over the silos
//!   that actually contributed (see `uldp-crypto::masking` for the precondition).
//!   At least one silo always survives ([`FaultPlan::dropped_silos`] clamps the count).
//! * **Delay** (Protocol 1): a delayed silo still contributes, but its report arrives
//!   `delay_ms` late; the round's `silo_weighting` timing is inflated accordingly while
//!   the aggregate stays bitwise-identical to the undelayed round.
//! * **Byzantine corruption** (ULDP-AVG/SGD): a corrupted silo's raw per-user deltas are
//!   rewritten by a [`ByzantineStrategy`] **before** clipping, so the per-user clipping
//!   defense applies: each corrupted `(silo, user)` task still contributes at most
//!   `w_{s,u} · C` in norm, bounding the attacker's influence on the aggregate by
//!   `2 · C · Σ_{corrupted (s,u)} w_{s,u}` regardless of the strategy's magnitude.
//! * **Skewed allocation**: a [`Scenario`] can pair its plan with the Zipf user→silo
//!   allocation of `uldp-datasets` ([`Allocation::zipf_default`]), concentrating records
//!   on few silos/users — the regime where dropouts hurt most.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use uldp_datasets::Allocation;
use uldp_ml::rng::gaussian_vector;
use uldp_runtime::seeding;

/// Stream tags separating the plan's derivations from one another and from the training
/// (`1`) and noise (`2`) streams of [`crate::algorithms`].
const STREAM_DROPOUT: u64 = 0x5d01;
const STREAM_DELAY: u64 = 0x5d02;
const STREAM_BYZANTINE: u64 = 0x5d03;
const STREAM_CORRUPTION: u64 = 0x5d04;

/// How a byzantine silo rewrites a raw (pre-clipping) per-user delta.
///
/// All strategies are applied *before* `clip_to_norm`, so their influence on the
/// aggregate is bounded by the clipping norm no matter how large the corruption is.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum ByzantineStrategy {
    /// Negate every coordinate: the classic model-poisoning direction flip.
    #[default]
    SignFlip,
    /// Multiply every coordinate by `factor` (e.g. `1e6`): a scaled-gradient attack that
    /// would dominate an unclipped aggregate.
    ScaledGradient {
        /// Multiplier applied to every coordinate of the honest delta.
        factor: f64,
    },
    /// Replace the delta with i.i.d. Gaussian noise of the given standard deviation.
    RandomNoise {
        /// Standard deviation of the replacement noise.
        std: f64,
    },
}

impl ByzantineStrategy {
    /// Short label for tables and report sections.
    pub fn label(&self) -> &'static str {
        match self {
            ByzantineStrategy::SignFlip => "sign-flip",
            ByzantineStrategy::ScaledGradient { .. } => "scaled-gradient",
            ByzantineStrategy::RandomNoise { .. } => "random-noise",
        }
    }

    /// Applies the strategy to a raw delta, drawing any randomness from `rng` (which the
    /// caller derives as a pure function of the task identity, keeping rounds bitwise
    /// reproducible at any thread count).
    pub fn corrupt<R: rand::Rng + ?Sized>(&self, delta: &mut [f64], rng: &mut R) {
        match self {
            ByzantineStrategy::SignFlip => {
                for d in delta.iter_mut() {
                    *d = -*d;
                }
            }
            ByzantineStrategy::ScaledGradient { factor } => {
                for d in delta.iter_mut() {
                    *d *= factor;
                }
            }
            ByzantineStrategy::RandomNoise { std } => {
                let noise = gaussian_vector(rng, *std, delta.len());
                delta.copy_from_slice(&noise);
            }
        }
    }
}

/// A deterministic, seed-derived fault plan for a federation.
///
/// The default plan injects nothing and is free: every fault path is gated on
/// [`FaultPlan::is_active`], and an inactive plan leaves the round byte-for-byte
/// identical to a plan-less build. Fractions are of the silo count; the affected silo
/// *sets* are re-drawn every round from `(seed, round_seed)`, so over a run each silo
/// takes its turn misbehaving.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Fraction of silos that drop out of each round between Protocol 1 steps 2.(b) and
    /// 2.(c) (after the server ships the encrypted blinded inverses, before silo reports
    /// are aggregated). Clamped so at least one silo always survives.
    pub dropout_fraction: f64,
    /// Fraction of silos whose reports straggle by [`FaultPlan::delay_ms`] each.
    pub delay_fraction: f64,
    /// Simulated lateness of a delayed silo's report, in milliseconds. Only accounted in
    /// the round timings — no wall-clock sleep, results are unchanged.
    pub delay_ms: u64,
    /// Fraction of silos whose per-user updates are corrupted.
    pub byzantine_fraction: f64,
    /// The corruption applied by byzantine silos.
    pub byzantine: ByzantineStrategy,
    /// Seed of the plan's derivation streams, mixed with each round's seed.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: no dropouts, no delays, no corruption.
    pub fn none() -> Self {
        FaultPlan {
            dropout_fraction: 0.0,
            delay_fraction: 0.0,
            delay_ms: 0,
            byzantine_fraction: 0.0,
            byzantine: ByzantineStrategy::SignFlip,
            seed: 0,
        }
    }

    /// Whether any fault is injected at all. Inactive plans short-circuit every hook.
    pub fn is_active(&self) -> bool {
        self.dropout_fraction > 0.0 || self.delay_fraction > 0.0 || self.byzantine_fraction > 0.0
    }

    /// Panics unless every fraction lies in `[0, 1]` and the magnitudes are finite.
    pub fn validate(&self) {
        for (name, f) in [
            ("dropout_fraction", self.dropout_fraction),
            ("delay_fraction", self.delay_fraction),
            ("byzantine_fraction", self.byzantine_fraction),
        ] {
            assert!((0.0..=1.0).contains(&f), "{name} must be in [0, 1], got {f}");
        }
        match self.byzantine {
            ByzantineStrategy::SignFlip => {}
            ByzantineStrategy::ScaledGradient { factor } => {
                assert!(factor.is_finite(), "scaled-gradient factor must be finite");
            }
            ByzantineStrategy::RandomNoise { std } => {
                assert!(std.is_finite() && std >= 0.0, "random-noise std must be finite and >= 0");
            }
        }
    }

    /// The derivation stream for one `(round, fault kind)` pair.
    fn round_stream(&self, round_seed: u64, tag: u64) -> u64 {
        seeding::mix(seeding::mix(self.seed, round_seed), tag)
    }

    /// Silos dropping out of this round, as a mask in silo order. At most
    /// `num_silos − 1` silos are dropped so the surviving re-weighting is well defined.
    pub fn dropped_silos(&self, round_seed: u64, num_silos: usize) -> Vec<bool> {
        let max = num_silos.saturating_sub(1);
        select_silos(
            self.round_stream(round_seed, STREAM_DROPOUT),
            num_silos,
            self.dropout_fraction,
            max,
        )
    }

    /// Silos whose reports straggle this round.
    pub fn delayed_silos(&self, round_seed: u64, num_silos: usize) -> Vec<bool> {
        select_silos(
            self.round_stream(round_seed, STREAM_DELAY),
            num_silos,
            self.delay_fraction,
            num_silos,
        )
    }

    /// Silos applying [`FaultPlan::byzantine`] to their updates this round.
    pub fn byzantine_silos(&self, round_seed: u64, num_silos: usize) -> Vec<bool> {
        select_silos(
            self.round_stream(round_seed, STREAM_BYZANTINE),
            num_silos,
            self.byzantine_fraction,
            num_silos,
        )
    }

    /// Applies the byzantine strategy to one `(silo, user)` task's raw delta.
    ///
    /// The corruption RNG is a pure function of `(plan seed, round_seed, silo, user)` —
    /// the same flattening as the training streams — so corrupted rounds stay on the
    /// bitwise-determinism oracle.
    pub fn corrupt_delta(
        &self,
        delta: &mut [f64],
        round_seed: u64,
        num_users: usize,
        silo: usize,
        user: usize,
    ) {
        let task_index = (silo * num_users + user) as u64;
        let mut rng = StdRng::seed_from_u64(seeding::index_seed(
            self.round_stream(round_seed, STREAM_CORRUPTION),
            task_index,
        ));
        self.byzantine.corrupt(delta, &mut rng);
    }
}

/// Deterministically selects `round(fraction · num_silos)` silos (capped at `max`) by
/// ranking the per-silo scores `index_seed(stream, silo)` and taking the smallest — a
/// seed-derived random subset that is stable across thread counts and participant order.
fn select_silos(stream: u64, num_silos: usize, fraction: f64, max: usize) -> Vec<bool> {
    let mut mask = vec![false; num_silos];
    if fraction <= 0.0 || num_silos == 0 {
        return mask;
    }
    let k = ((fraction * num_silos as f64).round() as usize).min(max);
    if k == 0 {
        return mask;
    }
    let mut ranked: Vec<(u64, usize)> =
        (0..num_silos).map(|s| (seeding::index_seed(stream, s as u64), s)).collect();
    ranked.sort_unstable();
    for &(_, silo) in ranked.iter().take(k) {
        mask[silo] = true;
    }
    mask
}

/// A named federation condition: a fault plan plus an allocation regime.
///
/// [`Scenario::catalogue`] is the shared grid sampled by the round fuzzer
/// (`tests/scenario_fuzz.rs`), the scenario smoke binary and the per-scenario
/// membership-inference scoring that feeds the `scenarios` report section.
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// Stable name used in test labels and the `scenarios` report section.
    pub name: &'static str,
    /// The faults injected under this scenario.
    pub plan: FaultPlan,
    /// Whether the federation uses the heavily skewed Zipf user→silo allocation instead
    /// of the uniform one.
    pub skewed: bool,
}

impl Scenario {
    /// The user→silo allocation the scenario's federation is generated with.
    pub fn allocation(&self) -> Allocation {
        if self.skewed {
            Allocation::zipf_default()
        } else {
            Allocation::Uniform
        }
    }

    /// The canonical scenario grid: a well-behaved baseline, dropout at two severities,
    /// stragglers, each byzantine strategy, Zipf skew, and a mixed worst case.
    pub fn catalogue() -> Vec<Scenario> {
        let base = FaultPlan { seed: 0x5ce0, ..FaultPlan::none() };
        vec![
            Scenario { name: "baseline", plan: FaultPlan::none(), skewed: false },
            Scenario {
                name: "dropout_light",
                plan: FaultPlan { dropout_fraction: 0.25, ..base },
                skewed: false,
            },
            Scenario {
                name: "dropout_heavy",
                plan: FaultPlan { dropout_fraction: 0.5, ..base },
                skewed: false,
            },
            Scenario {
                name: "stragglers",
                plan: FaultPlan { delay_fraction: 0.5, delay_ms: 2, ..base },
                skewed: false,
            },
            Scenario {
                name: "byz_sign_flip",
                plan: FaultPlan {
                    byzantine_fraction: 0.25,
                    byzantine: ByzantineStrategy::SignFlip,
                    ..base
                },
                skewed: false,
            },
            Scenario {
                name: "byz_scaled",
                plan: FaultPlan {
                    byzantine_fraction: 0.25,
                    byzantine: ByzantineStrategy::ScaledGradient { factor: 1e6 },
                    ..base
                },
                skewed: false,
            },
            Scenario {
                name: "byz_noise",
                plan: FaultPlan {
                    byzantine_fraction: 0.25,
                    byzantine: ByzantineStrategy::RandomNoise { std: 10.0 },
                    ..base
                },
                skewed: false,
            },
            Scenario { name: "zipf_skew", plan: FaultPlan::none(), skewed: true },
            Scenario {
                name: "mixed_worst_case",
                plan: FaultPlan {
                    dropout_fraction: 0.25,
                    byzantine_fraction: 0.25,
                    byzantine: ByzantineStrategy::SignFlip,
                    ..base
                },
                skewed: true,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(dropout: f64, byz: f64) -> FaultPlan {
        FaultPlan {
            dropout_fraction: dropout,
            byzantine_fraction: byz,
            seed: 42,
            ..FaultPlan::none()
        }
    }

    #[test]
    fn inactive_plan_selects_nothing() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert!(p.dropped_silos(7, 5).iter().all(|&d| !d));
        assert!(p.delayed_silos(7, 5).iter().all(|&d| !d));
        assert!(p.byzantine_silos(7, 5).iter().all(|&d| !d));
    }

    #[test]
    fn selection_is_deterministic_and_round_dependent() {
        let p = plan(0.5, 0.0);
        assert_eq!(p.dropped_silos(3, 8), p.dropped_silos(3, 8));
        // Over many rounds the selected set must vary (rounds are re-drawn).
        let first = p.dropped_silos(0, 8);
        assert!((1..50).any(|r| p.dropped_silos(r, 8) != first));
    }

    #[test]
    fn dropout_counts_match_fraction_and_clamp() {
        let p = plan(0.5, 0.0);
        assert_eq!(p.dropped_silos(1, 8).iter().filter(|&&d| d).count(), 4);
        // Full dropout clamps to n − 1 so one silo always survives.
        let all = plan(1.0, 0.0);
        assert_eq!(all.dropped_silos(1, 4).iter().filter(|&&d| d).count(), 3);
        let single = plan(1.0, 0.0);
        assert_eq!(single.dropped_silos(1, 1).iter().filter(|&&d| d).count(), 0);
    }

    #[test]
    fn fault_kinds_draw_independent_streams() {
        let p = FaultPlan {
            dropout_fraction: 0.5,
            delay_fraction: 0.5,
            byzantine_fraction: 0.5,
            seed: 7,
            ..FaultPlan::none()
        };
        // With identical fractions the three masks come from distinct streams, so at
        // least one round separates them.
        assert!((0..20).any(|r| {
            let d = p.dropped_silos(r, 10);
            d != p.delayed_silos(r, 10) || d != p.byzantine_silos(r, 10)
        }));
    }

    #[test]
    fn corruption_is_deterministic_per_task() {
        let p = FaultPlan {
            byzantine_fraction: 1.0,
            byzantine: ByzantineStrategy::RandomNoise { std: 1.0 },
            seed: 9,
            ..FaultPlan::none()
        };
        let mut a = vec![1.0, 2.0, 3.0];
        let mut b = vec![1.0, 2.0, 3.0];
        p.corrupt_delta(&mut a, 5, 10, 1, 3);
        p.corrupt_delta(&mut b, 5, 10, 1, 3);
        assert_eq!(a, b);
        let mut c = vec![1.0, 2.0, 3.0];
        p.corrupt_delta(&mut c, 5, 10, 1, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn strategies_do_what_they_say() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = vec![1.0, -2.0];
        ByzantineStrategy::SignFlip.corrupt(&mut d, &mut rng);
        assert_eq!(d, vec![-1.0, 2.0]);
        ByzantineStrategy::ScaledGradient { factor: 10.0 }.corrupt(&mut d, &mut rng);
        assert_eq!(d, vec![-10.0, 20.0]);
        ByzantineStrategy::RandomNoise { std: 1.0 }.corrupt(&mut d, &mut rng);
        assert!(d != vec![-10.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "dropout_fraction")]
    fn validate_rejects_out_of_range_fractions() {
        plan(1.5, 0.0).validate();
    }

    #[test]
    fn catalogue_is_valid_and_distinctly_named() {
        let scenarios = Scenario::catalogue();
        assert!(scenarios.len() >= 8);
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len(), "duplicate scenario names");
        for s in &scenarios {
            s.plan.validate();
        }
        assert!(scenarios.iter().any(|s| s.skewed));
        assert!(scenarios.iter().any(|s| !s.plan.is_active()));
    }
}
