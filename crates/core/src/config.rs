//! Training configuration for the Uldp-FL framework.

use crate::scenario::FaultPlan;
use serde::{Deserialize, Serialize};

/// Name of the environment variable backing [`FlConfig::shards`]` = 0` (a positive
/// number of shards per silo).
pub const SHARDS_ENV: &str = "ULDP_SHARDS";

/// Which per-user clipping weights `w_{s,u}` to use in ULDP-AVG / ULDP-SGD.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeightingStrategy {
    /// The privacy-free default `w_{s,u} = 1/|S|`.
    Uniform,
    /// The enhanced strategy of Eq. (3): `w_{s,u} = n_{s,u} / N_u`
    /// (more weight where the user has more records). This is "ULDP-AVG-w" in the paper.
    RecordProportional,
}

/// How ULDP-GROUP chooses its group size `k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupSize {
    /// The maximum number of records any user holds (no record is dropped; utility upper
    /// bound for record-level-DP approaches, privacy lower bound).
    Max,
    /// The median number of records per user.
    Median,
    /// A fixed group size.
    Fixed(u64),
}

/// The training algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Method {
    /// Non-private FedAVG with two-sided learning rates (the paper's DEFAULT baseline).
    Default,
    /// ULDP-NAIVE (Algorithm 1): silo-level clipping with |S|-scaled noise.
    UldpNaive,
    /// ULDP-GROUP-k (Algorithm 2): per-silo DP-SGD + group-privacy conversion.
    UldpGroup {
        /// Group size selection.
        group_size: GroupSize,
        /// Record-level Poisson sampling rate γ of the local DP-SGD.
        sampling_rate: f64,
    },
    /// ULDP-SGD (Algorithm 3, single local gradient step per user).
    UldpSgd {
        /// Clipping-weight strategy.
        weighting: WeightingStrategy,
    },
    /// ULDP-AVG (Algorithm 3, Q local epochs per user).
    UldpAvg {
        /// Clipping-weight strategy (RecordProportional = "ULDP-AVG-w").
        weighting: WeightingStrategy,
    },
}

impl Method {
    /// Human-readable label matching the paper's legends.
    pub fn label(&self) -> String {
        match self {
            Method::Default => "DEFAULT".to_string(),
            Method::UldpNaive => "ULDP-NAIVE".to_string(),
            Method::UldpGroup { group_size, .. } => match group_size {
                GroupSize::Max => "ULDP-GROUP-max".to_string(),
                GroupSize::Median => "ULDP-GROUP-median".to_string(),
                GroupSize::Fixed(k) => format!("ULDP-GROUP-{k}"),
            },
            Method::UldpSgd { .. } => "ULDP-SGD".to_string(),
            Method::UldpAvg { weighting } => match weighting {
                WeightingStrategy::Uniform => "ULDP-AVG".to_string(),
                WeightingStrategy::RecordProportional => "ULDP-AVG-w".to_string(),
            },
        }
    }

    /// Whether this method provides a (finite) ULDP guarantee.
    pub fn is_private(&self) -> bool {
        !matches!(self, Method::Default)
    }
}

/// Full configuration of a federated training run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlConfig {
    /// Training algorithm.
    pub method: Method,
    /// Local learning rate `η_l`.
    pub local_lr: f64,
    /// Global learning rate `η_g` applied by the server to the aggregated delta.
    pub global_lr: f64,
    /// Noise multiplier σ (paper default: 5.0).
    pub sigma: f64,
    /// Clipping bound `C`.
    pub clip_bound: f64,
    /// Total number of rounds `T`.
    pub rounds: u64,
    /// Local epochs `Q` per round.
    pub local_epochs: u64,
    /// Mini-batch size for silo-level training (DEFAULT / NAIVE / GROUP local loops).
    pub batch_size: usize,
    /// User-level Poisson sub-sampling probability `q` (1.0 disables sub-sampling).
    pub user_sampling: f64,
    /// Redraw the user-sampling mask every this many rounds (default 1: a fresh mask
    /// per round, the paper's setting). Larger values hold each drawn mask for
    /// `resample_every` consecutive rounds, which keeps Protocol 1's cross-round
    /// ciphertext cache hot between redraws — the accountant still composes one
    /// sub-sampled step per round, a conservative bound for correlated participation.
    /// Ignored when `user_sampling = 1.0` (there is no mask to hold).
    pub resample_every: u64,
    /// Privacy parameter δ (paper default: 1e-5).
    pub delta: f64,
    /// Evaluate utility every this many rounds (ε is tracked every round regardless).
    pub eval_every: u64,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Worker threads for the round's parallel loops: `0` uses the process-wide runtime
    /// (`ULDP_THREADS` / available parallelism), `1` forces sequential execution, any
    /// other value builds a dedicated pool. Training results are bitwise-identical at any
    /// setting.
    pub threads: usize,
    /// Shards per silo for the streaming round engine: each silo's participating users
    /// are split into this many contiguous shards that run as independent pooled tasks,
    /// so one silo's round scales past a single task. `0` reads `ULDP_SHARDS`, falling
    /// back to `1`. Training results are bitwise-identical at any setting.
    pub shards: usize,
    /// Fold chunk size (tasks per chunk) of the streaming round engine: each shard
    /// streams its users in chunks of this many tasks, each folding one dim-length
    /// partial in place — transient round memory is O(chunks × dim) instead of
    /// O(users × dim). `0` reads `ULDP_CHUNK`, falling back to a small default.
    /// Exception: ULDP-GROUP folds whole *silos*, not `(silo, user)` pairs, so at `0`
    /// it uses one silo per chunk and ignores `ULDP_CHUNK` (a per-user-sized value
    /// there would serialise typical silo counts); an explicit non-zero value still
    /// wins. Training results are bitwise-identical at any setting.
    pub chunk_size: usize,
    /// Depth of the round pipeline (in-flight evaluation / decryption slots): the
    /// trainer and Protocol 1 overlap round `t`'s tail stage with round `t+1`'s compute.
    /// `0` reads `ULDP_PIPELINE_DEPTH`, falling back to 2; `ULDP_PIPELINE=0` forces the
    /// sequential path regardless. Results are bitwise-identical at any setting.
    pub pipeline_depth: usize,
    /// Deterministic fault injection for the round ([`crate::scenario`]): dropouts,
    /// stragglers and byzantine updates. Honoured by ULDP-AVG / ULDP-SGD (Protocol 1
    /// carries its own copy in [`crate::protocol::ProtocolConfig`]); the silo-level
    /// baselines ignore it. The default plan injects nothing and leaves rounds
    /// byte-for-byte unchanged.
    pub fault_plan: FaultPlan,
}

impl Default for FlConfig {
    fn default() -> Self {
        FlConfig {
            method: Method::UldpAvg { weighting: WeightingStrategy::Uniform },
            local_lr: 0.1,
            global_lr: 1.0,
            sigma: 5.0,
            clip_bound: 1.0,
            rounds: 10,
            local_epochs: 2,
            batch_size: 32,
            user_sampling: 1.0,
            resample_every: 1,
            delta: 1e-5,
            eval_every: 1,
            seed: 42,
            threads: 0,
            shards: 0,
            chunk_size: 0,
            pipeline_depth: 0,
            fault_plan: FaultPlan::none(),
        }
    }
}

impl FlConfig {
    /// A configuration with sensible learning rates for the given method and silo count.
    ///
    /// ULDP-AVG/SGD divide the aggregate by `|U|·|S|` and use `1/|S|`-scale weights, so
    /// the convergence analysis (Remark 2) recommends a global learning rate scaled by
    /// `|S|`; the silo-level methods use a plain average and keep `η_g = 1`.
    pub fn recommended(method: Method, num_silos: usize) -> Self {
        let mut cfg = FlConfig { method, ..Default::default() };
        match method {
            Method::UldpAvg { .. } | Method::UldpSgd { .. } => {
                cfg.global_lr = num_silos as f64;
            }
            _ => {
                cfg.global_lr = 1.0;
            }
        }
        cfg
    }

    /// The effective shard count: a non-zero [`FlConfig::shards`] wins, otherwise
    /// `ULDP_SHARDS`, otherwise `1`.
    pub fn resolved_shards(&self) -> usize {
        if self.shards != 0 {
            return self.shards;
        }
        match std::env::var(SHARDS_ENV) {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    eprintln!("warning: ignoring invalid {SHARDS_ENV}={raw:?}; using 1 shard");
                    1
                }
            },
            Err(_) => 1,
        }
    }

    /// The effective fold chunk size: a non-zero [`FlConfig::chunk_size`] wins,
    /// otherwise `ULDP_CHUNK`, otherwise the engine default.
    pub fn resolved_chunk_size(&self) -> usize {
        uldp_runtime::resolve_chunk_size(
            self.chunk_size,
            crate::algorithms::stream::DEFAULT_TRAIN_CHUNK,
        )
    }

    /// Validates parameter ranges, panicking with a descriptive message when invalid.
    pub fn validate(&self) {
        assert!(self.local_lr > 0.0, "local learning rate must be positive");
        assert!(self.global_lr > 0.0, "global learning rate must be positive");
        assert!(self.sigma >= 0.0, "noise multiplier must be non-negative");
        assert!(self.clip_bound > 0.0, "clipping bound must be positive");
        assert!(self.rounds > 0, "must train for at least one round");
        assert!(self.local_epochs > 0, "at least one local epoch is required");
        assert!(self.batch_size > 0, "batch size must be positive");
        assert!(
            self.user_sampling > 0.0 && self.user_sampling <= 1.0,
            "user sampling probability must be in (0, 1]"
        );
        assert!(self.resample_every > 0, "resample_every must be at least 1");
        assert!(self.delta > 0.0 && self.delta < 1.0, "delta must be in (0, 1)");
        assert!(self.eval_every > 0, "eval_every must be positive");
        self.fault_plan.validate();
        if let Method::UldpGroup { sampling_rate, group_size } = self.method {
            assert!(
                sampling_rate > 0.0 && sampling_rate <= 1.0,
                "DP-SGD sampling rate must be in (0, 1]"
            );
            if let GroupSize::Fixed(k) = group_size {
                assert!(k >= 1, "group size must be at least 1");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(Method::Default.label(), "DEFAULT");
        assert_eq!(Method::UldpNaive.label(), "ULDP-NAIVE");
        assert_eq!(
            Method::UldpGroup { group_size: GroupSize::Fixed(8), sampling_rate: 0.1 }.label(),
            "ULDP-GROUP-8"
        );
        assert_eq!(
            Method::UldpGroup { group_size: GroupSize::Max, sampling_rate: 0.1 }.label(),
            "ULDP-GROUP-max"
        );
        assert_eq!(
            Method::UldpAvg { weighting: WeightingStrategy::RecordProportional }.label(),
            "ULDP-AVG-w"
        );
        assert_eq!(Method::UldpSgd { weighting: WeightingStrategy::Uniform }.label(), "ULDP-SGD");
    }

    #[test]
    fn privacy_flag() {
        assert!(!Method::Default.is_private());
        assert!(Method::UldpNaive.is_private());
        assert!(Method::UldpAvg { weighting: WeightingStrategy::Uniform }.is_private());
    }

    #[test]
    fn recommended_scales_global_lr_for_avg() {
        let avg =
            FlConfig::recommended(Method::UldpAvg { weighting: WeightingStrategy::Uniform }, 5);
        assert_eq!(avg.global_lr, 5.0);
        let naive = FlConfig::recommended(Method::UldpNaive, 5);
        assert_eq!(naive.global_lr, 1.0);
    }

    #[test]
    fn default_config_is_valid() {
        FlConfig::default().validate();
    }

    #[test]
    fn shard_and_chunk_knobs_resolve_explicit_values() {
        // Only the explicit-configuration path is testable without mutating the process
        // environment (racy with concurrently running tests).
        let cfg = FlConfig { shards: 3, chunk_size: 7, ..Default::default() };
        assert_eq!(cfg.resolved_shards(), 3);
        assert_eq!(cfg.resolved_chunk_size(), 7);
        let auto = FlConfig::default();
        if std::env::var(SHARDS_ENV).is_err() {
            assert_eq!(auto.resolved_shards(), 1);
        }
        if std::env::var(uldp_runtime::CHUNK_ENV).is_err() {
            assert_eq!(auto.resolved_chunk_size(), crate::algorithms::stream::DEFAULT_TRAIN_CHUNK);
        }
    }

    #[test]
    #[should_panic(expected = "user sampling probability")]
    fn invalid_sampling_rejected() {
        let cfg = FlConfig { user_sampling: 0.0, ..Default::default() };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "resample_every")]
    fn invalid_resample_every_rejected() {
        let cfg = FlConfig { resample_every: 0, ..Default::default() };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "clipping bound")]
    fn invalid_clip_rejected() {
        let cfg = FlConfig { clip_bound: 0.0, ..Default::default() };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "byzantine_fraction")]
    fn invalid_fault_plan_rejected() {
        let cfg = FlConfig {
            fault_plan: FaultPlan { byzantine_fraction: -0.5, ..FaultPlan::none() },
            ..Default::default()
        };
        cfg.validate();
    }
}
