//! # uldp-telemetry
//!
//! Structured observability for the Uldp-FL workspace: hierarchical wall-clock
//! [spans](trace::Span), [instant events](trace::event) (fault injections, privacy-ledger
//! entries), atomic [counters](metrics::Counter), [gauges](metrics::Gauge) and
//! fixed-bucket [histograms](metrics::Histogram), with three exporters — a chrome-trace
//! (`chrome://tracing` / Perfetto) JSON file, a flat human-readable summary, and a
//! structured snapshot that `uldp-bench` merges into `BENCH_protocol.json` as the
//! `telemetry` section.
//!
//! The crate has **zero dependencies** (the same vendored-shim philosophy as the rest of
//! the workspace) so it can sit below every other crate in the graph: `uldp-runtime`
//! emits per-job spans, `uldp-bigint`/`uldp-crypto` bump hot-path op counters,
//! `uldp-core` names the Protocol 1 phases and training folds, and `uldp-accounting`
//! appends privacy-budget ledger events — all through this one registry.
//!
//! ## Gating and overhead
//!
//! Everything is gated on [`enabled`]: the `ULDP_TRACE` environment variable is read
//! **once per process** (the `ULDP_GENERIC_MODPOW` idiom) into an atomic that hot paths
//! check with a single relaxed load. With tracing off, a counter bump is one load and a
//! branch, and a span is a no-op that never calls [`std::time::Instant::now`] —
//! protocol-phase spans that must report durations regardless (the `ProtocolTimings` /
//! `RoundTimings` structs predate tracing) use [`trace::timed_span`], which always
//! measures but only records when enabled. [`set_enabled`] exists for tests and binaries
//! that need to flip tracing programmatically (e.g. the traced-vs-untraced bitwise
//! determinism oracle in `tests/trace_determinism.rs`).
//!
//! ## Determinism
//!
//! Telemetry must never perturb results: timestamps live only in timing fields, spans
//! and events never branch the instrumented code and never touch an RNG stream. The
//! bitwise grid oracle (threads × shards × chunk) holds with tracing on.

pub mod export;
pub mod metrics;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Environment variable that enables telemetry recording (`1`/`true`/`on`).
pub const TRACE_ENV: &str = "ULDP_TRACE";

/// Environment variable overriding the chrome-trace output path used by
/// [`export::write_chrome_trace_default`].
pub const TRACE_OUT_ENV: &str = "ULDP_TRACE_OUT";

/// Default chrome-trace output path when `ULDP_TRACE_OUT` is unset.
pub const DEFAULT_TRACE_OUT: &str = "ULDP_trace.json";

fn enabled_flag() -> &'static AtomicBool {
    static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
    ENABLED.get_or_init(|| {
        let on = std::env::var(TRACE_ENV)
            .map(|v| {
                let v = v.trim();
                !v.is_empty()
                    && v != "0"
                    && !v.eq_ignore_ascii_case("false")
                    && !v.eq_ignore_ascii_case("off")
            })
            .unwrap_or(false);
        AtomicBool::new(on)
    })
}

/// Whether telemetry recording is on. One relaxed atomic load — cheap enough for the
/// Montgomery-multiply hot path; the environment is consulted only on the first call.
#[inline]
pub fn enabled() -> bool {
    enabled_flag().load(Ordering::Relaxed)
}

/// Programmatically switches recording on or off, overriding `ULDP_TRACE`.
///
/// Intended for tests (the traced-vs-untraced determinism oracle) and binaries that
/// manage their own tracing lifecycle; production code should rely on the env knob.
pub fn set_enabled(on: bool) {
    enabled_flag().store(on, Ordering::Relaxed);
}

/// The process-wide monotonic epoch all span/event timestamps are relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process-wide telemetry epoch.
pub(crate) fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Clears every recorded span/event and resets all counters, gauges and histograms.
///
/// Benchmarks call this between sections so each section's `telemetry` export covers
/// exactly its own work.
pub fn reset() {
    trace::clear_records();
    metrics::reset_all();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enabled flag is process-global; tests that flip it share this lock so they
    // don't observe each other's state.
    pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn set_enabled_overrides_and_restores() {
        let _g = test_guard();
        let before = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(before);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }
}
