//! Exporters: chrome-trace JSON, flat text summary, and aggregated span statistics.
//!
//! The chrome-trace output is the [Trace Event Format] consumed by `chrome://tracing`
//! and [Perfetto](https://ui.perfetto.dev): complete (`"ph": "X"`) slices for spans,
//! instant (`"ph": "i"`) markers for events, one row per logical thread. Counters,
//! gauges and histograms ride along as a `metadata` pseudo-thread of instant events at
//! export time plus the flat [`summary`].
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::metrics;
use crate::trace::{self, ArgValue, Record};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    pub cat: &'static str,
    pub name: &'static str,
    pub count: u64,
    pub total_us: u64,
    pub max_us: u64,
}

/// Per-name aggregates over every *span* record drained so far (instant events are
/// counted separately by their metrics counters), sorted by category then name.
pub fn span_stats() -> Vec<SpanStat> {
    let mut stats: Vec<SpanStat> = Vec::new();
    for record in trace::snapshot_records() {
        let Some(dur) = record.dur_us else { continue };
        match stats.iter_mut().find(|s| s.cat == record.cat && s.name == record.name) {
            Some(s) => {
                s.count += 1;
                s.total_us += dur;
                s.max_us = s.max_us.max(dur);
            }
            None => stats.push(SpanStat {
                cat: record.cat,
                name: record.name,
                count: 1,
                total_us: dur,
                max_us: dur,
            }),
        }
    }
    stats.sort_by(|a, b| (a.cat, a.name).cmp(&(b.cat, b.name)));
    stats
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn arg_json(value: &ArgValue) -> String {
    match value {
        ArgValue::Int(v) => v.to_string(),
        ArgValue::Uint(v) => v.to_string(),
        ArgValue::Float(v) if v.is_finite() => format!("{v}"),
        ArgValue::Float(v) => format!("\"{v}\""),
        ArgValue::Str(s) => format!("\"{}\"", escape_json(s)),
    }
}

fn args_json(args: &[(&'static str, ArgValue)]) -> String {
    let fields: Vec<String> =
        args.iter().map(|(k, v)| format!("\"{}\":{}", escape_json(k), arg_json(v))).collect();
    format!("{{{}}}", fields.join(","))
}

fn record_json(r: &Record) -> String {
    let common = format!(
        "\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{}",
        escape_json(r.name),
        escape_json(r.cat),
        r.tid,
        r.ts_us,
        args_json(&r.args),
    );
    match r.dur_us {
        Some(dur) => format!("{{\"ph\":\"X\",{common},\"dur\":{dur}}}"),
        // "s": "t" scopes the instant marker to its thread row.
        None => format!("{{\"ph\":\"i\",{common},\"s\":\"t\"}}"),
    }
}

/// Serialises every drained record plus a metrics snapshot as chrome-trace JSON.
pub fn chrome_trace_json() -> String {
    let records = trace::snapshot_records();
    let mut events: Vec<String> = records.iter().map(record_json).collect();
    // Metrics become one instant event each on a reserved pseudo-thread (tid 0), stamped
    // at export time — Perfetto shows them as a "metrics" row with args.
    let ts = crate::now_us();
    for c in metrics::all_counters() {
        if c.get() > 0 {
            events.push(format!(
                "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"metric\",\"pid\":1,\"tid\":0,\
                 \"ts\":{ts},\"s\":\"t\",\"args\":{{\"count\":{}}}}}",
                escape_json(c.name()),
                c.get()
            ));
        }
    }
    for g in metrics::all_gauges() {
        if g.peak() > 0 {
            events.push(format!(
                "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"metric\",\"pid\":1,\"tid\":0,\
                 \"ts\":{ts},\"s\":\"t\",\"args\":{{\"value\":{},\"peak\":{}}}}}",
                escape_json(g.name()),
                g.get(),
                g.peak()
            ));
        }
    }
    for h in metrics::all_histograms() {
        if h.count() > 0 {
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .iter()
                .map(|&(bound, n)| format!("\"le_{bound}us\":{n}"))
                .collect();
            events.push(format!(
                "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"metric\",\"pid\":1,\"tid\":0,\
                 \"ts\":{ts},\"s\":\"t\",\"args\":{{\"count\":{},\"sum_us\":{},\"max_us\":{},{}}}}}",
                escape_json(h.name()),
                h.count(),
                h.sum_us(),
                h.max_us(),
                buckets.join(",")
            ));
        }
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
}

/// Writes [`chrome_trace_json`] to `path` (atomically: temp file + rename).
pub fn write_chrome_trace(path: &Path) -> std::io::Result<()> {
    let json = chrome_trace_json();
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, json)?;
    std::fs::rename(&tmp, path)
}

/// The chrome-trace output path: `ULDP_TRACE_OUT` or [`crate::DEFAULT_TRACE_OUT`].
pub fn trace_out_path() -> PathBuf {
    std::env::var(crate::TRACE_OUT_ENV)
        .ok()
        .filter(|v| !v.trim().is_empty())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(crate::DEFAULT_TRACE_OUT))
}

/// Writes the chrome trace to [`trace_out_path`] when telemetry is enabled; returns the
/// path written, or `None` (and touches nothing) when telemetry is off.
pub fn write_chrome_trace_default() -> std::io::Result<Option<PathBuf>> {
    if !crate::enabled() {
        return Ok(None);
    }
    let path = trace_out_path();
    write_chrome_trace(&path)?;
    Ok(Some(path))
}

/// A flat human-readable summary of spans, counters, gauges and histograms.
pub fn summary() -> String {
    let mut out = String::new();
    let stats = span_stats();
    if !stats.is_empty() {
        out.push_str("spans (count, total ms, mean ms, max ms):\n");
        for s in &stats {
            let total_ms = s.total_us as f64 / 1e3;
            let _ = writeln!(
                out,
                "  {:<36} {:>8} {:>12.3} {:>12.3} {:>12.3}",
                format!("{}.{}", s.cat, s.name),
                s.count,
                total_ms,
                total_ms / s.count as f64,
                s.max_us as f64 / 1e3,
            );
        }
    }
    let counters: Vec<_> = metrics::all_counters().iter().filter(|c| c.get() > 0).collect();
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for c in counters {
            let _ = writeln!(out, "  {:<36} {:>12}", c.name(), c.get());
        }
    }
    let gauges: Vec<_> = metrics::all_gauges().iter().filter(|g| g.peak() > 0).collect();
    if !gauges.is_empty() {
        out.push_str("gauges (last / peak):\n");
        for g in gauges {
            let _ = writeln!(out, "  {:<36} {:>12} / {}", g.name(), g.get(), g.peak());
        }
    }
    let hists: Vec<_> = metrics::all_histograms().iter().filter(|h| h.count() > 0).collect();
    if !hists.is_empty() {
        out.push_str("histograms (count, mean µs, max µs):\n");
        for h in hists {
            let _ = writeln!(
                out,
                "  {:<36} {:>8} {:>12.1} {:>12}",
                h.name(),
                h.count(),
                h.sum_us() as f64 / h.count() as f64,
                h.max_us(),
            );
        }
    }
    if out.is_empty() {
        out.push_str("telemetry: no records\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal structural JSON validation (matching braces/brackets outside strings),
    /// enough to catch malformed escaping or trailing commas without a JSON dep.
    fn check_balanced_json(s: &str) {
        let mut depth: i64 = 0;
        let mut in_string = false;
        let mut escaped = false;
        let mut prev_significant = ' ';
        for c in s.chars() {
            if in_string {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    assert_ne!(prev_significant, ',', "trailing comma before {c}");
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced close");
                }
                _ => {}
            }
            if !c.is_whitespace() {
                prev_significant = c;
            }
        }
        assert_eq!(depth, 0, "unbalanced JSON");
        assert!(!in_string, "unterminated string");
    }

    #[test]
    fn chrome_trace_is_structurally_valid_and_covers_records() {
        let _g = crate::tests::test_guard();
        crate::set_enabled(true);
        crate::reset();
        {
            let _s = trace::span("test", "export_span").arg("label", "a \"quoted\"\nvalue");
        }
        trace::event("fault", "dropout", vec![("silo", 2u64.into())]);
        metrics::MONT_MUL.add(10);
        metrics::POOL_OCCUPANCY.add(3);
        metrics::JOB_EXEC_US.record_us(120);
        let json = chrome_trace_json();
        crate::set_enabled(false);
        crate::reset();
        check_balanced_json(&json);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"export_span\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dropout\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"bigint.mont_mul\""));
        assert!(json.contains("\"runtime.pool_occupancy\""));
        assert!(json.contains("\"runtime.job_exec_us\""));
        assert!(json.contains("a \\\"quoted\\\"\\nvalue"));
    }

    #[test]
    fn span_stats_aggregate_by_name() {
        let _g = crate::tests::test_guard();
        crate::set_enabled(true);
        crate::reset();
        for _ in 0..3 {
            let _s = trace::span("test", "agg");
        }
        let stats = span_stats();
        crate::set_enabled(false);
        crate::reset();
        let agg = stats.iter().find(|s| s.name == "agg").expect("agg stat");
        assert_eq!(agg.count, 3);
        assert!(agg.max_us <= agg.total_us);
    }

    #[test]
    fn summary_lists_all_metric_kinds() {
        let _g = crate::tests::test_guard();
        crate::set_enabled(true);
        crate::reset();
        {
            let _s = trace::span("test", "summary_span");
        }
        metrics::PAILLIER_ENCRYPT.add(7);
        metrics::FOLD_BYTES.set(4096);
        metrics::JOB_QUEUE_US.record_us(5);
        let text = summary();
        crate::set_enabled(false);
        crate::reset();
        assert!(text.contains("test.summary_span"));
        assert!(text.contains("crypto.paillier_encrypt"));
        assert!(text.contains("runtime.fold_bytes"));
        assert!(text.contains("runtime.job_queue_wait_us"));
    }

    #[test]
    fn write_chrome_trace_default_is_inert_when_disabled() {
        let _g = crate::tests::test_guard();
        crate::set_enabled(false);
        assert_eq!(write_chrome_trace_default().unwrap(), None);
    }
}
