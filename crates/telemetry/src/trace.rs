//! Hierarchical spans and instant events, buffered per thread.
//!
//! A [`Span`] is an RAII guard: it captures a monotonic begin timestamp on creation and
//! records a *complete* record (begin + duration) when finished or dropped. Hierarchy
//! comes from nesting — records carry the logical thread id and per-thread span depth,
//! which is exactly what `chrome://tracing` / Perfetto use to stack slices.
//!
//! Records accumulate in a per-thread buffer and drain into the global registry when
//! the thread's span stack unwinds to depth zero (every pool job is wrapped in a span,
//! so worker threads flush at each job boundary) or when the buffer hits its cap.
//! Recording never panics and never blocks the instrumented code beyond the registry
//! mutex during a flush.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Flush the thread buffer to the global registry once it holds this many records.
const THREAD_BUFFER_CAP: usize = 256;

/// One argument value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    Int(i64),
    Uint(u64),
    Float(f64),
    Str(String),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> ArgValue {
        ArgValue::Int(v)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::Uint(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> ArgValue {
        ArgValue::Uint(v as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> ArgValue {
        ArgValue::Uint(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> ArgValue {
        ArgValue::Float(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

/// One recorded span or instant event.
#[derive(Debug, Clone)]
pub struct Record {
    /// Category (the chrome-trace `cat` field): `protocol`, `runtime`, `train`, `fault`,
    /// `privacy`, …
    pub cat: &'static str,
    pub name: &'static str,
    /// Microseconds since the process telemetry epoch.
    pub ts_us: u64,
    /// Duration in microseconds; `None` for instant events.
    pub dur_us: Option<u64>,
    /// Logical thread id (small dense integers, assigned per OS thread on first record).
    pub tid: u64,
    /// Span nesting depth on that thread at record time (0 = top level).
    pub depth: u32,
    pub args: Vec<(&'static str, ArgValue)>,
}

struct ThreadBuffer {
    records: Vec<Record>,
    tid: u64,
}

thread_local! {
    static BUFFER: RefCell<ThreadBuffer> = RefCell::new(ThreadBuffer {
        records: Vec::new(),
        tid: next_tid(),
    });
    /// Number of live (emitting) spans on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn next_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Relaxed)
}

fn registry() -> &'static Mutex<Vec<Record>> {
    static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());
    &RECORDS
}

fn push_record(mut record: Record) {
    BUFFER.with(|buf| {
        let mut buf = buf.borrow_mut();
        record.tid = buf.tid;
        buf.records.push(record);
        if buf.records.len() >= THREAD_BUFFER_CAP || DEPTH.with(Cell::get) == 0 {
            let drained = std::mem::take(&mut buf.records);
            registry().lock().unwrap_or_else(|e| e.into_inner()).extend(drained);
        }
    });
}

/// Drains the current thread's buffer into the global registry.
///
/// Only needed by threads that emit events outside any span and want them visible
/// before the thread's next depth-zero flush; span unwinding flushes automatically.
pub fn flush_thread() {
    BUFFER.with(|buf| {
        let mut buf = buf.borrow_mut();
        if !buf.records.is_empty() {
            let drained = std::mem::take(&mut buf.records);
            registry().lock().unwrap_or_else(|e| e.into_inner()).extend(drained);
        }
    });
}

/// A snapshot of every record drained to the registry so far (flushes the calling
/// thread first). Records stay in the registry until [`clear_records`].
pub fn snapshot_records() -> Vec<Record> {
    flush_thread();
    registry().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Empties the global registry and the calling thread's buffer (see [`crate::reset`]).
pub(crate) fn clear_records() {
    BUFFER.with(|buf| buf.borrow_mut().records.clear());
    registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// An in-flight span. Created by [`span`] / [`timed_span`]; records on [`Span::finish`]
/// or drop.
#[must_use = "a span measures the scope it lives in; bind it with `let _span = ...`"]
pub struct Span {
    cat: &'static str,
    name: &'static str,
    /// `Some` while the span is timing; `None` for a disabled no-op span.
    start: Option<(Instant, u64)>,
    /// Record on finish/drop (false when telemetry was off at creation).
    emit: bool,
    args: Vec<(&'static str, ArgValue)>,
}

/// Starts a span, or a no-op (no clock read, nothing recorded) when telemetry is off.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> Span {
    if crate::enabled() {
        Span::start(cat, name, true)
    } else {
        Span { cat, name, start: None, emit: false, args: Vec::new() }
    }
}

/// Starts a span that always measures wall-clock time — [`Span::finish`] returns the
/// real elapsed duration even when telemetry is off (nothing is recorded then).
///
/// For call sites like the Protocol 1 phases, whose timings feed `ProtocolTimings` /
/// `RoundTimings` regardless of tracing.
#[inline]
pub fn timed_span(cat: &'static str, name: &'static str) -> Span {
    Span::start(cat, name, crate::enabled())
}

impl Span {
    fn start(cat: &'static str, name: &'static str, emit: bool) -> Span {
        if emit {
            DEPTH.with(|d| d.set(d.get() + 1));
        }
        Span { cat, name, start: Some((Instant::now(), crate::now_us())), emit, args: Vec::new() }
    }

    /// Attaches an argument (visible in the chrome trace). No-op on a disabled span, so
    /// callers may pass cheaply-computed values unconditionally.
    pub fn arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Span {
        if self.emit {
            self.args.push((key, value.into()));
        }
        self
    }

    /// Ends the span, records it (when enabled) and returns the measured duration
    /// (`Duration::ZERO` for a disabled [`span`]).
    pub fn finish(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        let Some((start, ts_us)) = self.start.take() else {
            return Duration::ZERO;
        };
        let elapsed = start.elapsed();
        if self.emit {
            // Depth decrements before the push so a top-level span flushes itself.
            let depth = DEPTH.with(|d| {
                let v = d.get().saturating_sub(1);
                d.set(v);
                v
            });
            push_record(Record {
                cat: self.cat,
                name: self.name,
                ts_us,
                dur_us: Some(elapsed.as_micros() as u64),
                tid: 0, // filled by push_record
                depth,
                args: std::mem::take(&mut self.args),
            });
            self.emit = false;
        }
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// Records an instant event (a vertical marker in the chrome trace): fault injections,
/// privacy-ledger entries.
///
/// Cheap no-op when telemetry is off; callers constructing expensive argument values
/// should still gate on [`crate::enabled`] themselves.
pub fn event(cat: &'static str, name: &'static str, args: Vec<(&'static str, ArgValue)>) {
    if !crate::enabled() {
        return;
    }
    push_record(Record {
        cat,
        name,
        ts_us: crate::now_us(),
        dur_us: None,
        tid: 0, // filled by push_record
        depth: DEPTH.with(Cell::get),
        args,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = crate::tests::test_guard();
        crate::set_enabled(false);
        crate::reset();
        let s = span("test", "noop");
        assert_eq!(s.finish(), Duration::ZERO);
        event("test", "noop_event", vec![]);
        assert!(snapshot_records().is_empty());
    }

    #[test]
    fn timed_span_measures_even_when_disabled() {
        let _g = crate::tests::test_guard();
        crate::set_enabled(false);
        crate::reset();
        let s = timed_span("test", "always_timed");
        std::thread::sleep(Duration::from_millis(2));
        assert!(s.finish() >= Duration::from_millis(2));
        assert!(snapshot_records().is_empty());
    }

    #[test]
    fn nested_spans_record_depth_and_flush_at_top_level() {
        let _g = crate::tests::test_guard();
        crate::set_enabled(true);
        crate::reset();
        {
            let _outer = span("test", "outer").arg("k", 1u64);
            {
                let _inner = span("test", "inner");
            }
            event("test", "marker", vec![("silo", 3u64.into())]);
        }
        let records = snapshot_records();
        crate::set_enabled(false);
        assert_eq!(records.len(), 3);
        let inner = records.iter().find(|r| r.name == "inner").unwrap();
        let outer = records.iter().find(|r| r.name == "outer").unwrap();
        let marker = records.iter().find(|r| r.name == "marker").unwrap();
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.depth, 0);
        assert_eq!(marker.dur_us, None);
        assert_eq!(marker.args, vec![("silo", ArgValue::Uint(3))]);
        assert_eq!(outer.args, vec![("k", ArgValue::Uint(1))]);
        // the inner span nests inside the outer one on the timeline
        assert!(inner.ts_us >= outer.ts_us);
        assert!(inner.ts_us + inner.dur_us.unwrap() <= outer.ts_us + outer.dur_us.unwrap() + 1);
        assert_eq!(inner.tid, outer.tid);
    }

    #[test]
    fn worker_thread_records_carry_their_own_tid() {
        let _g = crate::tests::test_guard();
        crate::set_enabled(true);
        crate::reset();
        {
            let _main = span("test", "main_side");
        }
        std::thread::spawn(|| {
            let _worker = span("test", "worker_side");
        })
        .join()
        .unwrap();
        let records = snapshot_records();
        crate::set_enabled(false);
        let main_tid = records.iter().find(|r| r.name == "main_side").unwrap().tid;
        let worker_tid = records.iter().find(|r| r.name == "worker_side").unwrap().tid;
        assert_ne!(main_tid, worker_tid);
    }
}
