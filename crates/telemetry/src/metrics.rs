//! Atomic counters, gauges and fixed-bucket histograms with a static registry.
//!
//! Every metric in the workspace is a `static` declared in this module, so hot-path
//! increments are a gated `fetch_add` on a known address — no name lookup, no
//! registration handshake. The registry slices ([`all_counters`], [`all_gauges`],
//! [`all_histograms`]) are what the exporters and [`crate::reset`] iterate.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// A monotonically increasing event count (ops, calls, faults).
///
/// Increments are dropped while [`crate::enabled`] is off, so an untraced process pays
/// one relaxed load and a predictable branch per call site.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    pub const fn new(name: &'static str) -> Counter {
        Counter { name, value: AtomicU64::new(0) }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` to the counter (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Relaxed);
        }
    }

    /// Bumps the counter by one (no-op while telemetry is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Relaxed);
    }
}

/// A last-value metric with a high-water mark (pool occupancy, fold bytes).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    pub const fn new(name: &'static str) -> Gauge {
        Gauge { name, value: AtomicU64::new(0), peak: AtomicU64::new(0) }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sets the gauge to `v` (no-op while telemetry is disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if crate::enabled() {
            self.value.store(v, Relaxed);
            self.peak.fetch_max(v, Relaxed);
        }
    }

    /// Increments the gauge (e.g. a job entering the pool's busy set).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            let now = self.value.fetch_add(n, Relaxed) + n;
            self.peak.fetch_max(now, Relaxed);
        }
    }

    /// Decrements the gauge, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        if crate::enabled() {
            // fetch_update never misses concurrent adds; saturate so a late decrement
            // after a reset can't wrap to u64::MAX.
            let _ = self.value.fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(n)));
        }
    }

    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }

    pub fn peak(&self) -> u64 {
        self.peak.load(Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Relaxed);
        self.peak.store(0, Relaxed);
    }
}

/// Number of histogram buckets: bucket `i` counts values in `[2^(i-1), 2^i)` µs, with
/// bucket 0 covering zero and an implicit saturation into the last bucket.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed power-of-two-bucket histogram of microsecond durations.
///
/// Recording is one `leading_zeros` plus one `fetch_add`; the bucket layout is fixed at
/// compile time so the exporter needs no per-histogram metadata.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Histogram {
    pub const fn new(name: &'static str) -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The bucket index a microsecond value falls into.
    pub fn bucket_index(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one duration in microseconds (no-op while telemetry is disabled).
    #[inline]
    pub fn record_us(&self, us: u64) {
        if crate::enabled() {
            self.buckets[Self::bucket_index(us)].fetch_add(1, Relaxed);
            self.count.fetch_add(1, Relaxed);
            self.sum_us.fetch_add(us, Relaxed);
            self.max_us.fetch_max(us, Relaxed);
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Relaxed)
    }

    pub fn max_us(&self) -> u64 {
        self.max_us.load(Relaxed)
    }

    /// Non-empty buckets as `(bucket upper bound in µs, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Relaxed);
                (n > 0).then(|| (if i == 0 { 0 } else { 1u64 << i }, n))
            })
            .collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum_us.store(0, Relaxed);
        self.max_us.store(0, Relaxed);
    }
}

// ---------------------------------------------------------------------------
// The workspace's metrics. Names are `layer.metric`; the exporters group by the
// prefix before the first dot.
// ---------------------------------------------------------------------------

/// CIOS Montgomery multiplications (`ModulusCtx::mont_mul`).
pub static MONT_MUL: Counter = Counter::new("bigint.mont_mul");
/// Montgomery squarings (`ModulusCtx::mont_sqr`).
pub static MONT_SQR: Counter = Counter::new("bigint.mont_sqr");
/// Schoolbook square-and-multiply exponentiations (`modular::mod_pow` generic path).
pub static MODPOW_GENERIC: Counter = Counter::new("bigint.mod_pow_generic");
/// Sliding-window Montgomery exponentiations (`ModulusCtx::pow` / `pow_mont`).
pub static MODPOW_WINDOW: Counter = Counter::new("bigint.mod_pow_window");
/// Fixed-base table exponentiations (`FixedBaseCtx::pow`).
pub static MODPOW_FIXED_BASE: Counter = Counter::new("bigint.mod_pow_fixed_base");
/// Interleaved multi-exponentiations (`ModulusCtx::multi_exp`, incl. batch members).
pub static MULTI_EXP: Counter = Counter::new("bigint.multi_exp");
/// Paillier encryptions (`encrypt` / `encrypt_with_randomness`, incl. batch members).
pub static PAILLIER_ENCRYPT: Counter = Counter::new("crypto.paillier_encrypt");
/// Paillier ciphertext re-randomisations (all `rerandomise*` variants).
pub static PAILLIER_RERANDOMISE: Counter = Counter::new("crypto.paillier_rerandomise");
/// Paillier ciphertext scalar multiplications (all `scalar_mul*` variants).
pub static PAILLIER_SCALAR_MUL: Counter = Counter::new("crypto.paillier_scalar_mul");
/// Paillier decryptions (CRT and generic).
pub static PAILLIER_DECRYPT: Counter = Counter::new("crypto.paillier_decrypt");
/// Jobs executed by the worker pool.
pub static POOL_JOBS: Counter = Counter::new("runtime.pool_jobs");
/// Structured fault events emitted by the scenario engine.
pub static FAULT_EVENTS: Counter = Counter::new("scenario.fault_events");
/// Privacy-ledger entries appended by the accountant.
pub static LEDGER_ENTRIES: Counter = Counter::new("privacy.ledger_entries");

/// Workers currently executing a pool job (peak = max observed concurrency).
pub static POOL_OCCUPANCY: Gauge = Gauge::new("runtime.pool_occupancy");
/// Live streaming-fold accumulator bytes, republished from the runtime's `MemoryGauge`.
pub static FOLD_BYTES: Gauge = Gauge::new("runtime.fold_bytes");
/// Rounds queued between the pipeline's fold and decrypt stages (peak = achieved
/// overlap; stays 0 on the sequential path).
pub static PIPELINE_INFLIGHT: Gauge = Gauge::new("protocol.pipeline_inflight");

/// Time pool jobs spend queued before a worker picks them up.
pub static JOB_QUEUE_US: Histogram = Histogram::new("runtime.job_queue_wait_us");
/// Pool job execution time.
pub static JOB_EXEC_US: Histogram = Histogram::new("runtime.job_exec_us");

static COUNTERS: [&Counter; 13] = [
    &MONT_MUL,
    &MONT_SQR,
    &MODPOW_GENERIC,
    &MODPOW_WINDOW,
    &MODPOW_FIXED_BASE,
    &MULTI_EXP,
    &PAILLIER_ENCRYPT,
    &PAILLIER_SCALAR_MUL,
    &PAILLIER_RERANDOMISE,
    &PAILLIER_DECRYPT,
    &POOL_JOBS,
    &FAULT_EVENTS,
    &LEDGER_ENTRIES,
];
static GAUGES: [&Gauge; 3] = [&POOL_OCCUPANCY, &FOLD_BYTES, &PIPELINE_INFLIGHT];
static HISTOGRAMS: [&Histogram; 2] = [&JOB_QUEUE_US, &JOB_EXEC_US];

/// Every counter, in export order.
pub fn all_counters() -> &'static [&'static Counter] {
    &COUNTERS
}

/// Every gauge, in export order.
pub fn all_gauges() -> &'static [&'static Gauge] {
    &GAUGES
}

/// Every histogram, in export order.
pub fn all_histograms() -> &'static [&'static Histogram] {
    &HISTOGRAMS
}

/// Zeroes every metric (see [`crate::reset`]).
pub(crate) fn reset_all() {
    for c in all_counters() {
        c.reset();
    }
    for g in all_gauges() {
        g.reset();
    }
    for h in all_histograms() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gate_on_enabled() {
        let _g = crate::tests::test_guard();
        crate::set_enabled(false);
        static C: Counter = Counter::new("test.gated");
        C.inc();
        assert_eq!(C.get(), 0);
        crate::set_enabled(true);
        C.inc();
        C.add(4);
        assert_eq!(C.get(), 5);
        crate::set_enabled(false);
    }

    #[test]
    fn gauge_tracks_value_and_peak() {
        let _g = crate::tests::test_guard();
        crate::set_enabled(true);
        static G: Gauge = Gauge::new("test.gauge");
        G.reset();
        G.add(2);
        G.add(3);
        G.sub(4);
        assert_eq!(G.get(), 1);
        assert_eq!(G.peak(), 5);
        G.sub(100); // saturates, never wraps
        assert_eq!(G.get(), 0);
        G.set(7);
        assert_eq!((G.get(), G.peak()), (7, 7));
        crate::set_enabled(false);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);

        let _g = crate::tests::test_guard();
        crate::set_enabled(true);
        static H: Histogram = Histogram::new("test.hist");
        H.reset();
        for us in [0, 1, 3, 3, 1000] {
            H.record_us(us);
        }
        assert_eq!(H.count(), 5);
        assert_eq!(H.sum_us(), 1007);
        assert_eq!(H.max_us(), 1000);
        let buckets = H.nonzero_buckets();
        assert_eq!(buckets.iter().map(|&(_, n)| n).sum::<u64>(), 5);
        assert!(buckets.iter().any(|&(bound, n)| bound == 4 && n == 2)); // the two 3 µs
        crate::set_enabled(false);
    }

    #[test]
    fn registry_covers_workspace_metrics() {
        assert!(all_counters().iter().any(|c| c.name() == "bigint.mont_mul"));
        assert!(all_counters().iter().any(|c| c.name() == "bigint.multi_exp"));
        assert!(all_counters().iter().any(|c| c.name() == "crypto.paillier_rerandomise"));
        assert!(all_counters().iter().any(|c| c.name() == "privacy.ledger_entries"));
        assert!(all_gauges().iter().any(|g| g.name() == "runtime.pool_occupancy"));
        assert!(all_histograms().iter().any(|h| h.name() == "runtime.job_exec_us"));
        // names are unique — duplicate registration would corrupt the export
        let mut names: Vec<_> = all_counters().iter().map(|c| c.name()).collect();
        names.extend(all_gauges().iter().map(|g| g.name()));
        names.extend(all_histograms().iter().map(|h| h.name()));
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
