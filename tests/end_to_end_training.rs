//! Cross-crate integration tests: every training method runs end to end on small
//! synthetic federations and reproduces the qualitative relationships the paper reports.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_fl::core::{FlConfig, GroupSize, Method, Trainer, WeightingStrategy};
use uldp_fl::datasets::creditcard::{self, CreditcardConfig};
use uldp_fl::datasets::heart_disease::{self, HeartDiseaseConfig};
use uldp_fl::datasets::tcga_brca::{self, TcgaBrcaConfig};
use uldp_fl::datasets::{Allocation, FederatedDataset};
use uldp_fl::ml::{CoxRegression, LinearClassifier};

fn small_creditcard(allocation: Allocation) -> FederatedDataset {
    let mut rng = StdRng::seed_from_u64(100);
    creditcard::generate(
        &mut rng,
        &CreditcardConfig {
            train_records: 1200,
            test_records: 300,
            num_users: 60,
            allocation,
            ..Default::default()
        },
    )
}

fn config_for(method: Method, num_silos: usize, rounds: u64) -> FlConfig {
    let mut cfg = FlConfig::recommended(method, num_silos);
    cfg.rounds = rounds;
    cfg.local_epochs = 2;
    cfg.local_lr = 0.3;
    cfg.clip_bound = 1.0;
    cfg.sigma = 5.0;
    cfg.eval_every = rounds; // evaluate only at the end to keep tests fast
    if matches!(method, Method::UldpAvg { .. } | Method::UldpSgd { .. }) {
        cfg.global_lr = num_silos as f64 * 15.0;
    }
    cfg
}

#[test]
fn all_methods_run_and_report_consistent_privacy() {
    let dataset = small_creditcard(Allocation::Uniform);
    let methods = [
        Method::Default,
        Method::UldpNaive,
        Method::UldpGroup { group_size: GroupSize::Fixed(8), sampling_rate: 0.2 },
        Method::UldpSgd { weighting: WeightingStrategy::Uniform },
        Method::UldpAvg { weighting: WeightingStrategy::Uniform },
        Method::UldpAvg { weighting: WeightingStrategy::RecordProportional },
    ];
    let mut results = Vec::new();
    for method in methods {
        let cfg = config_for(method, dataset.num_silos, 3);
        let model = Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
        let history = Trainer::new(cfg, dataset.clone(), model).run();
        let acc = history.final_accuracy().expect("classification accuracy");
        assert!((0.0..=1.0).contains(&acc), "{}: accuracy {acc}", history.method);
        assert!(history.final_parameters.iter().all(|p| p.is_finite()));
        results.push((history.method.clone(), acc, history.final_epsilon()));
    }
    // DEFAULT is non-private.
    assert!(results[0].2.is_infinite());
    // All private methods report a positive finite epsilon.
    for (label, _, eps) in &results[1..] {
        assert!(eps.is_finite() && *eps > 0.0, "{label} epsilon {eps}");
    }
    // NAIVE and AVG share the same accountant, so their epsilon matches (Theorems 1 & 3).
    let naive_eps = results[1].2;
    let avg_eps = results[4].2;
    assert!((naive_eps - avg_eps).abs() < 1e-9);
    // GROUP pays a much larger privacy bound than AVG for the same number of rounds.
    let group_eps = results[2].2;
    assert!(group_eps > avg_eps, "GROUP {group_eps} should exceed AVG {avg_eps}");
}

#[test]
fn default_beats_naive_in_utility_on_creditcard() {
    // The paper's headline qualitative result at small scale: the non-private baseline has
    // the best utility and ULDP-NAIVE the worst (noise scaled by |S|).
    let dataset = small_creditcard(Allocation::Uniform);
    let default_cfg = config_for(Method::Default, dataset.num_silos, 6);
    let naive_cfg = config_for(Method::UldpNaive, dataset.num_silos, 6);
    let default_acc = Trainer::new(
        default_cfg,
        dataset.clone(),
        Box::new(LinearClassifier::new(dataset.feature_dim(), 2)),
    )
    .run()
    .final_accuracy()
    .unwrap();
    let naive_acc = Trainer::new(
        naive_cfg,
        dataset.clone(),
        Box::new(LinearClassifier::new(dataset.feature_dim(), 2)),
    )
    .run()
    .final_accuracy()
    .unwrap();
    assert!(
        default_acc >= naive_acc,
        "DEFAULT ({default_acc}) should not lose to ULDP-NAIVE ({naive_acc})"
    );
    assert!(default_acc > 0.8, "DEFAULT should learn the separable task ({default_acc})");
}

#[test]
fn uldp_avg_learns_on_heart_disease() {
    let mut rng = StdRng::seed_from_u64(5);
    let dataset = heart_disease::generate(
        &mut rng,
        &HeartDiseaseConfig { num_users: 50, ..Default::default() },
    );
    let method = Method::UldpAvg { weighting: WeightingStrategy::Uniform };
    let mut cfg = config_for(method, dataset.num_silos, 8);
    cfg.sigma = 1.0; // modest noise so the tiny run shows learning
    cfg.eval_every = 8;
    let model = Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
    let history = Trainer::new(cfg, dataset, model).run();
    let acc = history.final_accuracy().unwrap();
    assert!(acc > 0.6, "ULDP-AVG should beat chance on HeartDisease (acc = {acc})");
    assert!(history.final_epsilon().is_finite());
}

#[test]
fn uldp_avg_trains_cox_model_on_tcga_brca() {
    let mut rng = StdRng::seed_from_u64(6);
    let dataset = tcga_brca::generate(
        &mut rng,
        &TcgaBrcaConfig { num_users: 50, allocation: Allocation::Uniform, ..Default::default() },
    );
    let method = Method::UldpAvg { weighting: WeightingStrategy::RecordProportional };
    let mut cfg = config_for(method, dataset.num_silos, 8);
    cfg.sigma = 1.0;
    cfg.clip_bound = 0.5;
    cfg.local_lr = 0.2;
    cfg.eval_every = 8;
    let model = Box::new(CoxRegression::new(dataset.feature_dim()));
    let history = Trainer::new(cfg, dataset, model).run();
    let ci = history.final_c_index().expect("survival task reports a C-index");
    assert!(ci > 0.55, "C-index should beat 0.5 (got {ci})");
}

#[test]
fn user_level_subsampling_trades_utility_for_privacy() {
    let dataset = small_creditcard(Allocation::Uniform);
    let method = Method::UldpAvg { weighting: WeightingStrategy::Uniform };
    let mut full_cfg = config_for(method, dataset.num_silos, 4);
    full_cfg.eval_every = 4;
    let mut sub_cfg = full_cfg.clone();
    sub_cfg.user_sampling = 0.3;
    let full = Trainer::new(
        full_cfg,
        dataset.clone(),
        Box::new(LinearClassifier::new(dataset.feature_dim(), 2)),
    )
    .run();
    let sub = Trainer::new(
        sub_cfg,
        dataset.clone(),
        Box::new(LinearClassifier::new(dataset.feature_dim(), 2)),
    )
    .run();
    assert!(
        sub.final_epsilon() < full.final_epsilon(),
        "sub-sampling must tighten the privacy bound ({} !< {})",
        sub.final_epsilon(),
        full.final_epsilon()
    );
}

#[test]
fn enhanced_weighting_helps_under_skew() {
    // Figure 8's qualitative claim: under a zipf allocation ULDP-AVG-w converges at least
    // as well as uniform ULDP-AVG (compare noiseless losses to isolate the weighting bias).
    let dataset = small_creditcard(Allocation::zipf_default());
    let mut uniform_cfg =
        config_for(Method::UldpAvg { weighting: WeightingStrategy::Uniform }, dataset.num_silos, 6);
    uniform_cfg.sigma = 0.0;
    uniform_cfg.eval_every = 6;
    let mut weighted_cfg = config_for(
        Method::UldpAvg { weighting: WeightingStrategy::RecordProportional },
        dataset.num_silos,
        6,
    );
    weighted_cfg.sigma = 0.0;
    weighted_cfg.eval_every = 6;
    let uniform_loss = Trainer::new(
        uniform_cfg,
        dataset.clone(),
        Box::new(LinearClassifier::new(dataset.feature_dim(), 2)),
    )
    .run()
    .final_loss()
    .unwrap();
    let weighted_loss = Trainer::new(
        weighted_cfg,
        dataset.clone(),
        Box::new(LinearClassifier::new(dataset.feature_dim(), 2)),
    )
    .run()
    .final_loss()
    .unwrap();
    assert!(
        weighted_loss <= uniform_loss * 1.10,
        "ULDP-AVG-w loss {weighted_loss} should not be materially worse than uniform {uniform_loss}"
    );
}
