//! The measured memory claim of the streaming sharded round engine: transient
//! delta-buffer bytes per round scale with the number of fold spans (shards × chunks),
//! **not** with the number of users — the seed implementation held one dim-length delta
//! per participating `(silo, user)` task instead.
//!
//! The fold sites report their live accumulator bytes to the runtime's
//! [`uldp_fl::runtime::MemoryGauge`]; these tests pin the reported peak against the
//! span-grid arithmetic and against the old O(tasks × dim) equivalent.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_fl::core::{FlConfig, Method, Trainer, WeightingStrategy};
use uldp_fl::datasets::creditcard::{self, CreditcardConfig};
use uldp_fl::ml::{LinearClassifier, Model};

/// Size of one exact fixed-point accumulator coordinate (`i128`).
const ACC_COORD_BYTES: usize = 16;

/// Runs one noiseless ULDP-AVG round with the given structure and returns
/// `(peak fold bytes, participating tasks, per-silo task counts, model dim)`.
fn round_peak(
    num_users: usize,
    shards: usize,
    chunk_size: usize,
) -> (usize, usize, Vec<usize>, usize) {
    let mut rng = StdRng::seed_from_u64(123);
    let dataset = creditcard::generate(
        &mut rng,
        &CreditcardConfig {
            train_records: 12 * num_users,
            test_records: 20,
            num_users,
            ..Default::default()
        },
    );
    let method = Method::UldpAvg { weighting: WeightingStrategy::Uniform };
    let mut config = FlConfig::recommended(method, dataset.num_silos);
    config.rounds = 1;
    config.local_epochs = 1;
    config.sigma = 0.0;
    config.threads = 2; // dedicated pool, so the gauge is isolated from other tests
    config.shards = shards;
    config.chunk_size = chunk_size;
    // Uniform weights and no sub-sampling: every (silo, user) pair with records is one
    // task of the round.
    let per_silo_tasks: Vec<usize> = (0..dataset.num_silos)
        .map(|s| {
            dataset
                .users_in_silo(s)
                .into_iter()
                .filter(|&u| !dataset.silo_user_records(s, u).is_empty())
                .count()
        })
        .collect();
    let tasks = per_silo_tasks.iter().sum();
    let model: Box<dyn Model> = Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
    let dim = model.num_parameters();
    let mut trainer = Trainer::new(config, dataset, model);
    trainer.runtime().fold_gauge().reset();
    trainer.step(0);
    (trainer.runtime().fold_gauge().peak(), tasks, per_silo_tasks, dim)
}

/// Expected span count of one round: per silo, tasks split into `shards` near-equal
/// shards (empty ones dropped), each split into `chunk_size`-task chunks.
fn expected_spans(per_silo_tasks: &[usize], shards: usize, chunk_size: usize) -> usize {
    per_silo_tasks
        .iter()
        .map(|&len| {
            let base = len / shards;
            let extra = len % shards;
            (0..shards)
                .map(|s| {
                    let shard_len = base + usize::from(s < extra);
                    if shard_len == 0 {
                        0
                    } else {
                        shard_len.div_ceil(chunk_size.min(shard_len))
                    }
                })
                .sum::<usize>()
        })
        .sum()
}

#[test]
fn peak_bytes_scale_with_span_count_not_user_count() {
    // Fixed structure (2 shards per silo, whole shard per chunk): doubling the user
    // population must not change the transient footprint at all.
    let (peak_small, tasks_small, per_silo_small, dim) = round_peak(40, 2, usize::MAX);
    let (peak_large, tasks_large, _, dim_large) = round_peak(80, 2, usize::MAX);
    assert_eq!(dim, dim_large);
    assert!(tasks_large > tasks_small, "doubling users must add tasks");
    assert_eq!(
        peak_small,
        expected_spans(&per_silo_small, 2, usize::MAX) * dim * ACC_COORD_BYTES,
        "peak must equal spans × accumulator bytes"
    );
    assert_eq!(
        peak_small, peak_large,
        "fixed span structure: the footprint may not grow with the user count"
    );
    // And it beats the seed's O(tasks × dim) materialisation by a growing margin.
    let old_equivalent = tasks_large * dim * std::mem::size_of::<f64>();
    assert!(
        peak_large < old_equivalent,
        "streamed peak {peak_large} should undercut the materialised {old_equivalent}"
    );
}

#[test]
fn per_section_reset_prevents_peak_inheritance() {
    // The bench binaries measure several sections back-to-back on one shared runtime.
    // `peak()` is a high-water mark, so a section that folds less than its predecessor
    // inherits the old peak unless the binary resets the gauge per section — the
    // lifecycle contract `protocol_smoke`/`scenario_smoke` now follow.
    let rt = uldp_fl::runtime::Runtime::new(1);
    let gauge = rt.fold_gauge();
    gauge.record(4096); // section 1: a large round
    gauge.record(512); // section 2 without a reset: stale peak
    assert_eq!(gauge.peak(), 4096, "high-water mark survives smaller recordings");
    gauge.reset();
    assert_eq!((gauge.last(), gauge.peak()), (0, 0));
    gauge.record(512); // section 2 measured after a per-section reset
    assert_eq!(gauge.peak(), 512, "post-reset peak reflects only the new section");
}

#[test]
fn peak_bytes_grow_with_the_chunk_count() {
    // Finer chunks mean more live partials: chunk_size = 1 degenerates to one span per
    // task (the seed's footprint shape, in accumulator units), so the gauge must report
    // exactly tasks × dim × 16 — and more than the whole-shard-per-chunk setting.
    let (peak_fine, tasks, per_silo, dim) = round_peak(40, 1, 1);
    assert_eq!(peak_fine, tasks * dim * ACC_COORD_BYTES);
    assert_eq!(peak_fine, expected_spans(&per_silo, 1, 1) * dim * ACC_COORD_BYTES);
    let (peak_coarse, _, _, _) = round_peak(40, 1, usize::MAX);
    assert!(
        peak_coarse < peak_fine,
        "coarser chunks ({peak_coarse}) must hold fewer live partials than chunk=1 ({peak_fine})"
    );
}
