//! Tracing must observe, never perturb: a traced training run has to be bitwise-
//! identical to an untraced one, because telemetry timestamps live only in timing
//! fields — never in control flow or RNG streams.
//!
//! A single test function owns the whole file: `uldp_fl::telemetry::set_enabled`
//! toggles process-global state, so concurrent test functions in this binary would
//! race on the flag.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_fl::core::{
    ByzantineStrategy, FaultPlan, FlConfig, Method, Trainer, TrainingHistory, WeightingStrategy,
};
use uldp_fl::datasets::creditcard::{self, CreditcardConfig};
use uldp_fl::ml::{LinearClassifier, Model};

/// Collapses a history into its bit-exact content for comparison.
fn bits(h: &TrainingHistory) -> Vec<u64> {
    let mut out: Vec<u64> = h.final_parameters.iter().map(|p| p.to_bits()).collect();
    for r in &h.rounds {
        out.push(r.round);
        out.push(r.epsilon.to_bits());
        out.push(r.test_accuracy.map(|v| v.to_bits()).unwrap_or(u64::MAX));
        out.push(r.test_loss.map(|v| v.to_bits()).unwrap_or(u64::MAX));
    }
    out
}

/// One faulted ULDP-AVG run with the given runtime structure.
fn train(threads: usize, shards: usize, chunk: usize) -> TrainingHistory {
    let mut rng = StdRng::seed_from_u64(41);
    let dataset = creditcard::generate(
        &mut rng,
        &CreditcardConfig {
            train_records: 150,
            test_records: 30,
            num_silos: 4,
            num_users: 20,
            ..Default::default()
        },
    );
    let method = Method::UldpAvg { weighting: WeightingStrategy::RecordProportional };
    let mut config = FlConfig::recommended(method, dataset.num_silos);
    config.rounds = 2;
    config.local_epochs = 1;
    config.sigma = 1.0;
    config.user_sampling = 0.7;
    config.threads = threads;
    config.shards = shards;
    config.chunk_size = chunk;
    // Faults on, so the traced run also walks the fault-event emission paths.
    config.fault_plan = FaultPlan {
        dropout_fraction: 0.5,
        delay_fraction: 0.25,
        delay_ms: 20,
        byzantine_fraction: 0.5,
        byzantine: ByzantineStrategy::SignFlip,
        seed: 7,
    };
    let model: Box<dyn Model> = Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
    Trainer::new(config, dataset, model).run()
}

#[test]
fn traced_and_untraced_histories_are_bitwise_identical() {
    uldp_fl::telemetry::set_enabled(false);
    let reference = bits(&train(1, 1, usize::MAX));

    uldp_fl::telemetry::set_enabled(true);
    // Tracing on, across a small (threads × shards × chunk) grid: every cell must land
    // on the untraced sequential reference bit for bit.
    for (threads, shards, chunk) in [(1, 1, usize::MAX), (2, 2, 4), (4, 3, 1)] {
        let traced = bits(&train(threads, shards, chunk));
        assert_eq!(
            traced, reference,
            "traced run diverged at threads={threads} shards={shards} chunk={chunk}"
        );
    }
    // The traced runs actually recorded something (the flag was honoured)...
    assert!(
        !uldp_fl::telemetry::trace::snapshot_records().is_empty(),
        "tracing was enabled but no records were captured"
    );
    assert!(uldp_fl::telemetry::metrics::FAULT_EVENTS.get() > 0, "fault events not emitted");
    assert!(uldp_fl::telemetry::metrics::LEDGER_ENTRIES.get() > 0, "ledger entries not emitted");

    // ...and an untraced re-run still matches after tracing is switched back off.
    uldp_fl::telemetry::set_enabled(false);
    uldp_fl::telemetry::reset();
    assert_eq!(bits(&train(2, 2, 4)), reference);
    assert!(
        uldp_fl::telemetry::trace::snapshot_records().is_empty(),
        "disabled tracing must record nothing"
    );
}
