//! Integration tests of the privacy accounting against the paper's stated results:
//! Theorems 1–3, the group-privacy blow-up of Figure 2, and the interaction between the
//! accountant and the trainer.

use uldp_fl::accounting::{
    calibrate_sigma, default_orders, dp_to_group_dp, gaussian_rdp, group_epsilon_via_normal_dp,
    group_rdp, rdp_to_dp, subsampled_gaussian_rdp, Accountant, AlgorithmPrivacy, RdpCurve,
};

/// The per-step RDP curve of the paper's Figure 2 pre-experiment: a sub-sampled Gaussian
/// with σ = 5 and sampling rate 0.01, composed 1e5 times.
fn figure2_curve() -> RdpCurve {
    RdpCurve::from_fn(default_orders(), |a| subsampled_gaussian_rdp(a, 0.01, 5.0) * 1e5)
}

#[test]
fn figure2_record_level_epsilon_is_small() {
    // The paper reports ε ≈ 2.85 at record level (k = 1) for this setting; the exact value
    // depends on the accountant, but it must land in the low single digits.
    let (eps, _) = rdp_to_dp(&figure2_curve(), 1e-5);
    assert!(eps > 0.5 && eps < 6.0, "record-level epsilon {eps}");
}

#[test]
fn figure2_group_epsilon_blows_up_superlinearly() {
    let curve = figure2_curve();
    let eps1 = rdp_to_dp(&curve, 1e-5).0;
    let mut previous = eps1;
    let mut ratios = Vec::new();
    for k in [2u64, 4, 8, 16, 32, 64] {
        let grouped = group_rdp(&curve, k);
        let eps = rdp_to_dp(&grouped, 1e-5).0;
        assert!(eps > previous, "epsilon must grow with k (k={k}: {eps} <= {previous})");
        ratios.push(eps / eps1);
        previous = eps;
    }
    // Super-linear growth: by k = 32 the ratio must far exceed 32, by k = 64 even more
    // (the paper reports ~2100/2.85 ≈ 740x at k=32 and ~11400/2.85 ≈ 4000x at k=64).
    assert!(ratios[4] > 32.0, "k=32 blow-up only {}", ratios[4]);
    assert!(ratios[5] > ratios[4] * 2.0, "k=64 should be much worse than k=32");
}

#[test]
fn figure2_normal_dp_route_also_blows_up() {
    let curve = figure2_curve();
    let eps1 = group_epsilon_via_normal_dp(&curve, 1e-5, 1, 1e-6);
    let eps8 = group_epsilon_via_normal_dp(&curve, 1e-5, 8, 1e-6);
    let eps32 = group_epsilon_via_normal_dp(&curve, 1e-5, 32, 1e-6);
    assert!(eps8 > 8.0 * eps1, "k=8 must be super-linear: {eps8} vs {eps1}");
    assert!(eps32 > eps8);
}

#[test]
fn theorem_1_and_3_closed_form_is_an_upper_bound_of_the_accountant() {
    // The accountant minimises over Rényi orders, so it can only improve on the closed
    // form evaluated at an arbitrary order.
    let sigma = 5.0;
    let rounds = 100u64;
    let delta = 1e-5;
    let mut acc = Accountant::new(AlgorithmPrivacy::UserLevelGaussian { sigma, q: 1.0 });
    acc.step_rounds(rounds);
    let eps = acc.epsilon(delta);
    for alpha in [2.0f64, 8.0, 32.0, 128.0] {
        let closed_form = rounds as f64 * alpha / (2.0 * sigma * sigma)
            + ((alpha - 1.0) / alpha).ln()
            - (delta.ln() + alpha.ln()) / (alpha - 1.0);
        assert!(eps <= closed_form + 1e-9, "alpha {alpha}: {eps} > {closed_form}");
    }
}

#[test]
fn lemma5_matches_hand_computed_values() {
    let (ge, gd) = dp_to_group_dp(0.5, 1e-6, 2);
    assert!((ge - 1.0).abs() < 1e-12);
    assert!((gd - 2.0 * 0.5f64.exp() * 1e-6).abs() < 1e-15);
}

#[test]
fn gaussian_rdp_scales_linearly_with_composition() {
    let one = RdpCurve::from_fn(default_orders(), |a| gaussian_rdp(a as f64, 5.0));
    let hundred = one.scaled(100.0);
    for (r1, r100) in one.rho.iter().zip(hundred.rho.iter()) {
        assert!((r100 - 100.0 * r1).abs() < 1e-9);
    }
}

#[test]
fn calibration_round_trips_with_the_accountant() {
    let target_eps = 3.0;
    let rounds = 200;
    let sigma = calibrate_sigma(target_eps, 1e-5, rounds);
    let mut acc = Accountant::new(AlgorithmPrivacy::UserLevelGaussian { sigma, q: 1.0 });
    acc.step_rounds(rounds);
    let achieved = acc.epsilon(1e-5);
    assert!(achieved <= target_eps * 1.001, "calibrated sigma {sigma} gives {achieved}");
    assert!(achieved > target_eps * 0.8, "calibration should not be wildly conservative");
}

#[test]
fn group_accounting_depends_on_local_dataset_via_sampling_rate() {
    // The paper notes ULDP-GROUP's bound depends on the DP-SGD sampling rate (hence the
    // local dataset size): a smaller rate (larger dataset) gives a smaller epsilon.
    let make = |rate: f64| {
        let mut acc = Accountant::new(AlgorithmPrivacy::GroupDpSgd {
            sigma: 5.0,
            sampling_rate: rate,
            steps_per_round: 10,
            group_size: 8,
        });
        acc.step_rounds(20);
        acc.epsilon(1e-5)
    };
    assert!(make(0.01) < make(0.1));
    assert!(make(0.1) < make(0.5));
}
