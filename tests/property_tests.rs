//! Property-based tests (proptest) of the core invariants the Uldp-FL analysis relies on:
//! big-integer ring axioms, Paillier homomorphism, fixed-point round-trips, mask
//! cancellation, clipping bounds, weight-matrix sensitivity, and accountant monotonicity.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_fl::accounting::{rdp_to_dp, subsampled_gaussian_rdp, RdpCurve};
use uldp_fl::bigint::modular::{mod_add, mod_inv, mod_mul, mod_pow};
use uldp_fl::bigint::BigUint;
use uldp_fl::core::{WeightMatrix, WeightingStrategy};
use uldp_fl::crypto::masking::{apply_pairwise_masks, MaskGenerator, MaskSeed};
use uldp_fl::crypto::paillier::PaillierKeyPair;
use uldp_fl::crypto::FixedPointCodec;
use uldp_fl::ml::{clip_to_norm, clipped, l2_norm};

fn big(v: u128) -> BigUint {
    BigUint::from_u128(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------- big-integer arithmetic ----------

    #[test]
    fn biguint_add_commutes(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(big(a).add(&big(b)), big(b).add(&big(a)));
    }

    #[test]
    fn biguint_mul_distributes_over_add(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (big(a as u128), big(b as u128), big(c as u128));
        let lhs = a.mul(&b.add(&c));
        let rhs = a.mul(&b).add(&a.mul(&c));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn biguint_div_rem_invariant(a in any::<u128>(), b in 1u128..) {
        let (q, r) = big(a).div_rem(&big(b));
        prop_assert!(r < big(b));
        prop_assert_eq!(q.mul(&big(b)).add(&r), big(a));
    }

    #[test]
    fn biguint_shift_roundtrip(a in any::<u128>(), s in 0usize..200) {
        prop_assert_eq!(big(a).shl_bits(s).shr_bits(s), big(a));
    }

    #[test]
    fn modular_inverse_is_inverse(a in 1u64.., ) {
        // modulus: a fixed prime
        let p = BigUint::from_u64(2_147_483_647);
        let a = BigUint::from_u64(a).rem(&p);
        if !a.is_zero() {
            let inv = mod_inv(&a, &p).unwrap();
            prop_assert_eq!(mod_mul(&a, &inv, &p), BigUint::one());
        }
    }

    #[test]
    fn modpow_adds_exponents(base in 2u64..1000, e1 in 0u64..50, e2 in 0u64..50) {
        let p = BigUint::from_u64(1_000_003);
        let b = BigUint::from_u64(base);
        let lhs = mod_pow(&b, &BigUint::from_u64(e1 + e2), &p);
        let rhs = mod_mul(
            &mod_pow(&b, &BigUint::from_u64(e1), &p),
            &mod_pow(&b, &BigUint::from_u64(e2), &p),
            &p,
        );
        prop_assert_eq!(lhs, rhs);
    }

    // ---------- clipping ----------

    #[test]
    fn clipping_never_exceeds_bound(v in prop::collection::vec(-1e6f64..1e6, 1..32), c in 0.01f64..100.0) {
        let out = clipped(&v, c);
        prop_assert!(l2_norm(&out) <= c * (1.0 + 1e-9));
    }

    #[test]
    fn clipping_is_idempotent(v in prop::collection::vec(-1e3f64..1e3, 1..16), c in 0.1f64..10.0) {
        // Idempotent up to floating-point rounding: a second clip may rescale by a factor
        // within a few ulps of 1 when the first clip lands exactly on the boundary.
        let mut once = v.clone();
        clip_to_norm(&mut once, c);
        let mut twice = once.clone();
        clip_to_norm(&mut twice, c);
        for (a, b) in once.iter().zip(twice.iter()) {
            prop_assert!((a - b).abs() <= 1e-12 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn clipping_preserves_vectors_inside_ball(v in prop::collection::vec(-1.0f64..1.0, 1..8)) {
        let norm = l2_norm(&v);
        let c = norm + 1.0;
        prop_assert_eq!(clipped(&v, c), v);
    }

    // ---------- fixed-point codec ----------

    #[test]
    fn fixed_point_roundtrip(x in -1e6f64..1e6) {
        let codec = FixedPointCodec::new(1e-9, BigUint::one().shl_bits(128));
        let decoded = codec.decode_plain(&codec.encode(x));
        prop_assert!((decoded - x).abs() <= 1e-9 * (1.0 + x.abs()));
    }

    #[test]
    fn fixed_point_addition_homomorphic(a in -1e4f64..1e4, b in -1e4f64..1e4) {
        let codec = FixedPointCodec::new(1e-9, BigUint::one().shl_bits(128));
        let m = codec.modulus().clone();
        let sum = mod_add(&codec.encode(a), &codec.encode(b), &m);
        prop_assert!((codec.decode_plain(&sum) - (a + b)).abs() <= 2e-9 * (1.0 + a.abs() + b.abs()));
    }

    // ---------- weight matrices ----------

    #[test]
    fn weight_matrices_satisfy_sensitivity_constraint(
        histogram in prop::collection::vec(prop::collection::vec(0usize..20, 8), 2..6)
    ) {
        for strategy in [WeightingStrategy::Uniform, WeightingStrategy::RecordProportional] {
            let w = WeightMatrix::from_histogram(strategy, &histogram);
            prop_assert!(w.satisfies_sensitivity_constraint(1e-9));
            // Every present user's weights sum to exactly one.
            for (u, total) in w.user_sums().into_iter().enumerate() {
                let records: usize = histogram.iter().map(|row| row[u]).sum();
                if records > 0 {
                    prop_assert!((total - 1.0).abs() < 1e-9);
                } else {
                    prop_assert_eq!(total, 0.0);
                }
            }
        }
    }

    // ---------- secure-aggregation masks ----------

    #[test]
    fn pairwise_masks_cancel(num_silos in 2usize..6, round in 0u64..100, index in 0u64..100) {
        let modulus = BigUint::one().shl_bits(120);
        let seed = |a: usize, b: usize| {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let mut bytes = [0u8; 32];
            bytes[0] = lo as u8;
            bytes[1] = hi as u8;
            MaskSeed::new(bytes)
        };
        let values: Vec<BigUint> = (0..num_silos).map(|i| BigUint::from_u64(1000 + i as u64)).collect();
        let mut total = BigUint::zero();
        for (s, value) in values.iter().enumerate() {
            let masks: Vec<(usize, BigUint)> = (0..num_silos)
                .filter(|&o| o != s)
                .map(|o| (o, MaskGenerator::new(seed(s, o), modulus.clone()).mask(round, index)))
                .collect();
            let masked = apply_pairwise_masks(value, s, &masks, &modulus);
            total = mod_add(&total, &masked, &modulus);
        }
        let expected = values.iter().fold(BigUint::zero(), |acc, v| mod_add(&acc, v, &modulus));
        prop_assert_eq!(total, expected);
    }

    // ---------- accountant monotonicity ----------

    #[test]
    fn subsampled_rdp_monotone_in_q(alpha in 2u64..64, q1 in 0.01f64..0.5, dq in 0.01f64..0.49) {
        let q2 = (q1 + dq).min(1.0);
        let lo = subsampled_gaussian_rdp(alpha, q1, 5.0);
        let hi = subsampled_gaussian_rdp(alpha, q2, 5.0);
        prop_assert!(lo <= hi + 1e-12);
    }

    #[test]
    fn epsilon_monotone_in_steps(steps in 1u64..500) {
        let orders: Vec<u64> = (2..=64).collect();
        let one = RdpCurve::from_fn(orders.clone(), |a| a as f64 / 50.0);
        let eps_small = rdp_to_dp(&one.scaled(steps as f64), 1e-5).0;
        let eps_large = rdp_to_dp(&one.scaled((steps + 1) as f64), 1e-5).0;
        prop_assert!(eps_small <= eps_large + 1e-12);
    }
}

// Paillier homomorphism is tested outside the proptest macro with a shared key pair,
// because key generation is too slow to repeat per case.
#[test]
fn paillier_homomorphism_random_values() {
    let mut keygen_rng = StdRng::seed_from_u64(77);
    let kp = PaillierKeyPair::generate(&mut keygen_rng, 256);
    let mut runner = proptest::test_runner::TestRunner::default();
    runner
        .run(&(any::<u64>(), any::<u64>(), 1u64..10_000), |(a, b, k)| {
            // Fresh encryption randomness derived from the case inputs (the closure is Fn,
            // so it cannot mutably capture an outer RNG).
            let mut rng = StdRng::seed_from_u64(a ^ b.rotate_left(17) ^ k);
            let ca = kp.public.encrypt(&mut rng, &BigUint::from_u64(a));
            let cb = kp.public.encrypt(&mut rng, &BigUint::from_u64(b));
            let sum = kp.secret.decrypt(&kp.public.add(&ca, &cb));
            let expected_sum = BigUint::from_u128(a as u128 + b as u128).rem(&kp.public.n);
            prop_assert_eq!(sum, expected_sum);
            let scaled = kp.secret.decrypt(&kp.public.scalar_mul(&ca, &BigUint::from_u64(k)));
            let expected_scaled = BigUint::from_u128(a as u128 * k as u128).rem(&kp.public.n);
            prop_assert_eq!(scaled, expected_scaled);
            Ok(())
        })
        .unwrap();
}

// Same shared-key-pair shape for the re-randomisation invariants: both the one-shot
// `rerandomise` and the fixed-base `RerandCtx` path must decrypt to the original
// plaintext while never reproducing the input ciphertext bits (the fresh n-th power is
// 1 only with probability ~1/n ≈ 2⁻²⁵⁶).
#[test]
fn paillier_rerandomise_preserves_plaintext_never_bits() {
    let mut keygen_rng = StdRng::seed_from_u64(78);
    let kp = PaillierKeyPair::generate(&mut keygen_rng, 256);
    let rerand_ctx = kp.public.rerand_ctx(&mut keygen_rng);
    let mut runner = proptest::test_runner::TestRunner::default();
    runner
        .run(&(any::<u64>(), any::<u64>()), |(m, r)| {
            let mut rng = StdRng::seed_from_u64(m ^ r.rotate_left(29));
            let m = BigUint::from_u64(m);
            let c = kp.public.encrypt(&mut rng, &m);
            let fresh = kp.public.rerandomise(&mut rng, &c);
            prop_assert_eq!(kp.secret.decrypt(&fresh), m.clone());
            prop_assert_ne!(&fresh, &c);
            let (ctx_fresh, _t) = rerand_ctx.rerandomise(&mut rng, &c);
            prop_assert_eq!(kp.secret.decrypt(&ctx_fresh), m);
            prop_assert_ne!(&ctx_fresh, &c);
            Ok(())
        })
        .unwrap();
}
